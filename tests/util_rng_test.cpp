#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace tacc::util {
namespace {

TEST(Splitmix64, DeterministicSequence) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, LongJumpChangesStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(123);
  Rng childA = parent.fork(1);
  Rng childA2 = Rng(123).fork(1);
  Rng childB = parent.fork(2);
  EXPECT_EQ(childA.next_below(1'000'000), childA2.next_below(1'000'000));
  // Different streams should not track each other.
  int equal = 0;
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  for (int i = 0; i < 64; ++i) {
    if (a.next_below(1u << 30) == b.next_below(1u << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_EQ(rng.uniform_int(5, 2), 5);  // lo >= hi returns lo
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(19);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 0.25, 0.01);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0.0;
  const int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / kSamples, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(31);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / kSamples, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ZipfRanksInRange) {
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t rank = rng.zipf(50, 1.0);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng rng(41);
  int rank1 = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.zipf(100, 1.2) == 1) ++rank1;
  }
  // With s=1.2, rank 1 holds a large share (≈ 1/H ≈ 18%).
  EXPECT_GT(rank1, kSamples / 10);
}

TEST(Rng, ZipfExponentZeroIsUniformish) {
  Rng rng(43);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.zipf(9, 0.0));
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.15);  // mean of 1..9
}

TEST(Rng, ZipfCacheRebuildsOnParamChange) {
  Rng rng(47);
  (void)rng.zipf(10, 1.0);
  const std::size_t r = rng.zipf(3, 2.0);
  EXPECT_GE(r, 1u);
  EXPECT_LE(r, 3u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(59);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  const std::vector<int> original = values;
  rng.shuffle(values);
  EXPECT_NE(values, original);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(61);
  const std::vector<int> values{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(std::span<const int>(values));
    EXPECT_TRUE(v == 5 || v == 6 || v == 7);
  }
}

}  // namespace
}  // namespace tacc::util
