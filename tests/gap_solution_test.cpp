#include "gap/solution.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace tacc::gap {
namespace {

Instance make_3x2() {
  topo::DelayMatrix delay(3, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 2.0);
  delay.set(1, 0, 3.0);
  delay.set(1, 1, 4.0);
  delay.set(2, 0, 5.0);
  delay.set(2, 1, 6.0);
  return Instance(std::move(delay), {1.0, 2.0, 1.0}, {1.0, 1.0, 1.0},
                  {2.0, 2.0});
}

TEST(Evaluate, KnownAssignment) {
  const Instance inst = make_3x2();
  const Assignment x{0, 1, 0};
  const Evaluation ev = evaluate(inst, x);
  EXPECT_DOUBLE_EQ(ev.total_cost, 1.0 + 8.0 + 5.0);
  EXPECT_DOUBLE_EQ(ev.avg_delay_ms, (1.0 + 4.0 + 5.0) / 3.0);
  EXPECT_DOUBLE_EQ(ev.weighted_avg_delay_ms, 14.0 / 4.0);
  EXPECT_DOUBLE_EQ(ev.max_delay_ms, 5.0);
  ASSERT_EQ(ev.loads.size(), 2u);
  EXPECT_DOUBLE_EQ(ev.loads[0], 2.0);
  EXPECT_DOUBLE_EQ(ev.loads[1], 1.0);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.overloaded_servers, 0u);
  EXPECT_DOUBLE_EQ(ev.max_utilization, 1.0);
}

TEST(Evaluate, DetectsOverload) {
  const Instance inst = make_3x2();
  const Assignment x{0, 0, 0};  // 3 demand on capacity-2 server
  const Evaluation ev = evaluate(inst, x);
  EXPECT_FALSE(ev.feasible);
  EXPECT_EQ(ev.overloaded_servers, 1u);
  EXPECT_DOUBLE_EQ(ev.total_overload, 1.0);
  EXPECT_DOUBLE_EQ(ev.max_utilization, 1.5);
}

TEST(Evaluate, CountsUnassigned) {
  const Instance inst = make_3x2();
  const Assignment x{0, kUnassigned, 1};
  const Evaluation ev = evaluate(inst, x);
  EXPECT_EQ(ev.unassigned_devices, 1u);
  EXPECT_FALSE(ev.feasible);
  EXPECT_DOUBLE_EQ(ev.avg_delay_ms, (1.0 + 6.0) / 2.0);
}

TEST(Evaluate, ShapeMismatchThrows) {
  const Instance inst = make_3x2();
  EXPECT_THROW((void)evaluate(inst, Assignment{0, 1}), std::invalid_argument);
  EXPECT_THROW((void)evaluate(inst, Assignment{0, 1, 5}), std::out_of_range);
}

TEST(Evaluate, ToStringMentionsFeasibility) {
  const Instance inst = make_3x2();
  const Evaluation good = evaluate(inst, {0, 1, 0});
  EXPECT_NE(good.to_string().find("[feasible]"), std::string::npos);
  const Evaluation bad = evaluate(inst, {0, 0, 0});
  EXPECT_NE(bad.to_string().find("INFEASIBLE"), std::string::npos);
}

TEST(IsFeasible, AgreesWithEvaluate) {
  const Instance inst = make_3x2();
  EXPECT_TRUE(is_feasible(inst, {0, 1, 0}));
  EXPECT_FALSE(is_feasible(inst, {0, 0, 0}));
  EXPECT_FALSE(is_feasible(inst, {0, kUnassigned, 1}));
}

TEST(ServerLoads, SumsDemands) {
  const Instance inst = make_3x2();
  const auto loads = server_loads(inst, {1, 1, 1});
  EXPECT_DOUBLE_EQ(loads[0], 0.0);
  EXPECT_DOUBLE_EQ(loads[1], 3.0);
}

TEST(IncrementalEvaluator, RequiresCompleteAssignment) {
  const Instance inst = make_3x2();
  EXPECT_THROW(IncrementalEvaluator(inst, {0, kUnassigned, 0}),
               std::invalid_argument);
}

TEST(IncrementalEvaluator, MoveDeltaAndApply) {
  const Instance inst = make_3x2();
  IncrementalEvaluator eval(inst, {0, 1, 0});
  EXPECT_DOUBLE_EQ(eval.total_cost(), 14.0);
  EXPECT_DOUBLE_EQ(eval.move_cost_delta(2, 1), 1.0);  // 6 - 5
  EXPECT_TRUE(eval.move_feasible(2, 1));
  eval.apply_move(2, 1);
  EXPECT_DOUBLE_EQ(eval.total_cost(), 15.0);
  EXPECT_DOUBLE_EQ(eval.load(0), 1.0);
  EXPECT_DOUBLE_EQ(eval.load(1), 2.0);
}

TEST(IncrementalEvaluator, MoveInfeasibleWhenFull) {
  const Instance inst = make_3x2();
  IncrementalEvaluator eval(inst, {0, 0, 1});  // server 0 at capacity
  EXPECT_FALSE(eval.move_feasible(2, 0));
  EXPECT_TRUE(eval.move_feasible(2, 1));  // staying put is feasible
}

TEST(IncrementalEvaluator, SwapDeltaAndApply) {
  const Instance inst = make_3x2();
  IncrementalEvaluator eval(inst, {0, 1, 0});
  // Swap devices 1 (on s1) and 2 (on s0):
  // delta = c(1,0)+c(2,1) - c(1,1) - c(2,0) = 6+6-8-5 = -1.
  EXPECT_DOUBLE_EQ(eval.swap_cost_delta(1, 2), -1.0);
  EXPECT_TRUE(eval.swap_feasible(1, 2));
  eval.apply_swap(1, 2);
  EXPECT_DOUBLE_EQ(eval.total_cost(), 13.0);
  const Evaluation check = evaluate(inst, eval.assignment());
  EXPECT_DOUBLE_EQ(check.total_cost, 13.0);
}

TEST(IncrementalEvaluator, SameServerOpsAreNoops) {
  const Instance inst = make_3x2();
  IncrementalEvaluator eval(inst, {0, 0, 1});
  EXPECT_DOUBLE_EQ(eval.move_cost_delta(0, 0), 0.0);
  eval.apply_move(0, 0);
  EXPECT_DOUBLE_EQ(eval.swap_cost_delta(0, 1), 0.0);
  eval.apply_swap(0, 1);
  EXPECT_DOUBLE_EQ(eval.total_cost(),
                   evaluate(inst, eval.assignment()).total_cost);
}

// Property: a random walk of moves/swaps stays consistent with full
// re-evaluation.
class IncrementalWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalWalk, MatchesFullEvaluation) {
  util::Rng rng(GetParam());
  const Instance inst = test::small_instance(GetParam(), 25, 5, 0.5);
  Assignment x(inst.device_count());
  for (auto& v : x) {
    v = static_cast<std::int32_t>(rng.index(inst.server_count()));
  }
  IncrementalEvaluator eval(inst, x);
  for (int step = 0; step < 200; ++step) {
    if (rng.bernoulli(0.5)) {
      const DeviceIndex i = rng.index(inst.device_count());
      const ServerIndex j = rng.index(inst.server_count());
      const double predicted = eval.total_cost() + eval.move_cost_delta(i, j);
      eval.apply_move(i, j);
      EXPECT_NEAR(eval.total_cost(), predicted, 1e-9);
    } else {
      const DeviceIndex a = rng.index(inst.device_count());
      const DeviceIndex b = rng.index(inst.device_count());
      const double predicted = eval.total_cost() + eval.swap_cost_delta(a, b);
      eval.apply_swap(a, b);
      EXPECT_NEAR(eval.total_cost(), predicted, 1e-9);
    }
  }
  const Evaluation full = evaluate(inst, eval.assignment());
  EXPECT_NEAR(full.total_cost, eval.total_cost(), 1e-6);
  for (ServerIndex j = 0; j < inst.server_count(); ++j) {
    EXPECT_NEAR(full.loads[j], eval.load(j), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalWalk,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tacc::gap
