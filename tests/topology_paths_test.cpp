#include "topology/shortest_paths.hpp"

#include <gtest/gtest.h>

#include "tests/test_helpers.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace tacc::topo {
namespace {

TEST(Dijkstra, KnownGraphDistances) {
  const Graph g = test::known_graph();
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance_ms[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.distance_ms[2], 2.0);
  EXPECT_DOUBLE_EQ(tree.distance_ms[4], 2.0);  // 0-1-4
  EXPECT_DOUBLE_EQ(tree.distance_ms[3], 3.0);  // 0-1-4-3 beats direct 4.0
  EXPECT_DOUBLE_EQ(tree.distance_ms[5], 3.0);  // 0-1-2-5
}

TEST(Dijkstra, PathReconstruction) {
  const Graph g = test::known_graph();
  const auto tree = dijkstra(g, 0);
  const auto path = tree.path_to(3);
  const std::vector<NodeId> expected{0, 1, 4, 3};
  EXPECT_EQ(path, expected);
}

TEST(Dijkstra, PathToSourceIsItself) {
  const Graph g = test::known_graph();
  const auto tree = dijkstra(g, 2);
  const std::vector<NodeId> expected{2};
  EXPECT_EQ(tree.path_to(2), expected);
}

TEST(Dijkstra, DisconnectedIsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, {1.0, 1.0});
  const auto tree = dijkstra(g, 0);
  EXPECT_EQ(tree.distance_ms[2], kUnreachable);
  EXPECT_TRUE(tree.path_to(2).empty());
}

TEST(Dijkstra, BadSourceYieldsAllUnreachable) {
  Graph g(2);
  const auto tree = dijkstra(g, 9);
  EXPECT_EQ(tree.distance_ms[0], kUnreachable);
}

TEST(BfsHops, KnownGraph) {
  const Graph g = test::known_graph();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[3], 1u);  // direct edge, hops ignore latency
  EXPECT_EQ(hops[5], 3u);  // 0-1-2-5 (and 0-·-4-5) are all 3 hops
}

TEST(BfsHops, Disconnected) {
  Graph g(2);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[1], kUnreachableHops);
}

TEST(Connectivity, DetectsConnectedAndNot) {
  Graph connected(2);
  connected.add_edge(0, 1, {1.0, 1.0});
  EXPECT_TRUE(is_connected(connected));
  Graph disconnected(2);
  EXPECT_FALSE(is_connected(disconnected));
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(Components, LabelsAreDense) {
  Graph g(5);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(2, 3, {1.0, 1.0});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
  EXPECT_NE(labels[4], labels[2]);
}

// Property: Dijkstra agrees with Floyd–Warshall on random graphs.
class PathEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathEquivalence, DijkstraMatchesFloydWarshall) {
  util::Rng rng(GetParam());
  GeneratorParams params;
  params.node_count = 24;
  params.er_edge_probability = 0.12;
  const LinkDelayModel delay;
  const GeoGraph geo = generate_erdos_renyi(params, delay, rng);
  const auto fw = floyd_warshall(geo.graph);
  for (NodeId s = 0; s < geo.graph.node_count(); s += 3) {
    const auto tree = dijkstra(geo.graph, s);
    for (NodeId t = 0; t < geo.graph.node_count(); ++t) {
      if (fw[s][t] == kUnreachable) {
        EXPECT_EQ(tree.distance_ms[t], kUnreachable);
      } else {
        EXPECT_NEAR(tree.distance_ms[t], fw[s][t], 1e-9);
      }
    }
  }
}

TEST_P(PathEquivalence, PathCostMatchesDistance) {
  util::Rng rng(GetParam() + 1000);
  GeneratorParams params;
  params.node_count = 20;
  const LinkDelayModel delay;
  GeoGraph geo = generate_waxman(params, delay, rng);
  ensure_connected(geo, delay);
  const auto tree = dijkstra(geo.graph, 0);
  for (NodeId t = 0; t < geo.graph.node_count(); ++t) {
    const auto path = tree.path_to(t);
    ASSERT_FALSE(path.empty());
    double cost = 0.0;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      double best = kUnreachable;
      for (const auto& adj : geo.graph.neighbors(path[h])) {
        if (adj.to == path[h + 1]) best = std::min(best, adj.props.latency_ms);
      }
      cost += best;
    }
    EXPECT_NEAR(cost, tree.distance_ms[t], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AllPairs, MatchesPerSourceDijkstra) {
  const Graph g = test::known_graph();
  const auto all = all_pairs_distances(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto tree = dijkstra(g, s);
    EXPECT_EQ(all[s], tree.distance_ms);
  }
}

TEST(AllPairs, ParallelMatchesSerialExactly) {
  util::Rng rng(77);
  GeneratorParams params;
  params.node_count = 40;
  const LinkDelayModel delay;
  GeoGraph geo = generate_waxman(params, delay, rng);
  ensure_connected(geo, delay);
  const auto serial = all_pairs_distances(geo.graph, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(all_pairs_distances(geo.graph, threads), serial) << threads;
  }
}

TEST(DijkstraFanOut, ParallelMatchesSerialTrees) {
  util::Rng rng(78);
  GeneratorParams params;
  params.node_count = 30;
  const LinkDelayModel delay;
  GeoGraph geo = generate_waxman(params, delay, rng);
  ensure_connected(geo, delay);
  const std::vector<NodeId> sources = {0, 5, 9, 17, 29};
  const auto serial = dijkstra_fan_out(geo.graph, sources, 1);
  const auto parallel = dijkstra_fan_out(geo.graph, sources, 4);
  ASSERT_EQ(serial.size(), sources.size());
  ASSERT_EQ(parallel.size(), sources.size());
  for (std::size_t k = 0; k < sources.size(); ++k) {
    EXPECT_EQ(parallel[k].distance_ms, serial[k].distance_ms) << k;
    EXPECT_EQ(parallel[k].parent, serial[k].parent) << k;
    // And both agree with a direct per-source run.
    const auto direct = dijkstra(geo.graph, sources[k]);
    EXPECT_EQ(serial[k].distance_ms, direct.distance_ms) << k;
  }
}

}  // namespace
}  // namespace tacc::topo
