// Re-optimizer tests: planner proposals (improving moves, plan-size caps,
// net-gain requirement), the synchronous run_pass() path (cost descent,
// budget metering, ledger partition identity), the background thread's
// lifecycle, and — in the ReoptConcurrency suite TSan runs — the optimizer
// thread racing cluster churn through the shared mutex.
#include "optimize/reoptimizer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "core/dynamic.hpp"
#include "optimize/planner.hpp"
#include "util/contracts.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace tacc::opt {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed, std::size_t iot = 40,
                            std::size_t edge = 6) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

/// Degrades up to `count` devices by moving each to its most expensive
/// feasible server — manufactured suboptimality the optimizer must drain.
/// Returns devices actually degraded.
std::size_t degrade(DynamicCluster& cluster, std::size_t count) {
  std::size_t degraded = 0;
  for (std::size_t i = 0;
       i < cluster.device_slot_count() && degraded < count; ++i) {
    if (!cluster.is_active(i)) continue;
    const std::size_t from = cluster.server_of(i);
    const double demand = cluster.device(i).demand;
    std::size_t worst = from;
    double worst_cost = cluster.placement_cost(i, from);
    for (std::size_t j = 0; j < cluster.server_count(); ++j) {
      if (j == from || cluster.server_failed(j)) continue;
      if (cluster.loads()[j] + demand > cluster.capacities()[j]) continue;
      const double cost = cluster.placement_cost(i, j);
      if (cost > worst_cost) {
        worst_cost = cost;
        worst = j;
      }
    }
    if (worst == from) continue;
    MovePlan plan;
    plan.moves.push_back(
        {i, cluster.slot_generation(i), from, worst, 0.0});
    if (cluster.apply_move_plan(plan).applied == 1) ++degraded;
  }
  return degraded;
}

TEST(ReoptPlanner, ProposesImprovingMovesWithPositiveGain) {
  DynamicCluster cluster = make_cluster(21);
  ASSERT_GT(degrade(cluster, 5), 0u);
  const double before = cluster.total_cost();

  PlannerState state;
  const MovePlan plan = propose_plan(cluster, PlannerOptions{}, state);
  ASSERT_FALSE(plan.empty());
  EXPECT_GT(plan.predicted_gain(), 0.0);

  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_GT(report.applied, 0u);
  EXPECT_LT(cluster.total_cost(), before);
  EXPECT_NEAR(report.achieved_gain, before - cluster.total_cost(), 1e-6);
  cluster.check_invariants();
}

TEST(ReoptPlanner, RespectsPlanSizeCap) {
  DynamicCluster cluster = make_cluster(22);
  ASSERT_GT(degrade(cluster, 8), 2u);
  PlannerOptions options;
  options.max_plan_moves = 2;
  PlannerState state;
  const MovePlan plan = propose_plan(cluster, options, state);
  EXPECT_LE(plan.size(), 2u);
}

TEST(ReoptPlanner, EmptyPlanOnceConverged) {
  DynamicCluster cluster = make_cluster(23);
  degrade(cluster, 10);
  PlannerState state;
  // Drain to the planner's fixpoint, then one more pass must be empty —
  // and with nothing left to propose, the round-robin cursor guarantees
  // the whole population was re-scanned.
  for (int i = 0; i < 64; ++i) {
    const MovePlan plan = propose_plan(cluster, PlannerOptions{}, state);
    if (plan.empty()) break;
    (void)cluster.apply_move_plan(plan);
  }
  EXPECT_TRUE(propose_plan(cluster, PlannerOptions{}, state).empty());
}

TEST(Reoptimizer, RunPassDrivesCostDown) {
  DynamicCluster cluster = make_cluster(24);
  ASSERT_GT(degrade(cluster, 6), 0u);
  const double before = cluster.total_cost();

  tacc::Mutex mutex;
  ReoptOptions options;
  options.validate = true;  // bracket the apply with check_invariants
  Reoptimizer reopt(cluster, mutex, options);
  EXPECT_GT(reopt.run_pass(), 0u);
  EXPECT_LT(cluster.total_cost(), before);

  const ReoptStats stats = reopt.stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.plans, 1u);
  EXPECT_GT(stats.achieved_gain, 0.0);
  reopt.check_invariants();
}

TEST(Reoptimizer, BudgetCapsMovesPerWindow) {
  DynamicCluster cluster = make_cluster(25);
  ASSERT_GT(degrade(cluster, 10), 3u);

  tacc::Mutex mutex;
  ReoptOptions options;
  options.budget.max_moves_per_window = 2;
  options.budget.max_device_moves_per_window = 1;
  options.budget.window_s = 1'000.0;  // the whole test is one window
  Reoptimizer reopt(cluster, mutex, options);
  // However many passes run, the window's spend is the ceiling.
  std::size_t applied = 0;
  for (int i = 0; i < 5; ++i) applied += reopt.run_pass();
  EXPECT_LE(applied, 2u);
  EXPECT_EQ(reopt.stats().moves_applied, applied);
  reopt.check_invariants();
}

TEST(Reoptimizer, StatsPartitionProposalsExactly) {
  DynamicCluster cluster = make_cluster(26);
  degrade(cluster, 10);
  tacc::Mutex mutex;
  Reoptimizer reopt(cluster, mutex, ReoptOptions{});
  for (int i = 0; i < 8; ++i) (void)reopt.run_pass();
  const ReoptStats stats = reopt.stats();
  EXPECT_EQ(stats.moves_proposed, stats.moves_applied + stats.rejected());
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  EXPECT_NO_THROW(reopt.check_invariants());
}

TEST(Reoptimizer, StartStopIdempotent) {
  DynamicCluster cluster = make_cluster(27);
  tacc::Mutex mutex;
  ReoptOptions options;
  options.interval_ms = 1.0;
  Reoptimizer reopt(cluster, mutex, options);
  EXPECT_FALSE(reopt.running());
  reopt.start();
  reopt.start();
  EXPECT_TRUE(reopt.running());
  reopt.stop();
  reopt.stop();
  EXPECT_FALSE(reopt.running());
  // Restartable after a stop; the destructor stops it again.
  reopt.start();
  EXPECT_TRUE(reopt.running());
}

TEST(ReoptConcurrency, BackgroundThreadRacesChurn) {
  DynamicCluster cluster = make_cluster(28, 60, 6);
  tacc::Mutex mutex;
  ReoptOptions options;
  options.interval_ms = 0.1;
  options.seed = 28;
  Reoptimizer reopt(cluster, mutex, options);
  reopt.start();

  // Churn the cluster under the shared mutex while the optimizer passes
  // race it, reading stats concurrently the way STATS snapshots do.
  util::Rng rng(28);
  workload::IotDevice device;
  for (int i = 0; i < 400; ++i) {
    {
      const MutexLock lock(&mutex);
      const std::size_t slot = rng.index(cluster.device_slot_count());
      if (cluster.is_active(slot) && cluster.active_count() > 10) {
        if (rng.uniform(0.0, 1.0) < 0.5) {
          cluster.leave(slot);
        } else {
          (void)cluster.move(slot, {rng.uniform(0.0, 2.0),
                                    rng.uniform(0.0, 2.0)});
        }
      } else {
        device.position = {rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
        device.request_rate_hz = 5.0;
        device.demand = 5.0;
        (void)cluster.join(device);
      }
    }
    if (i % 16 == 0) (void)reopt.stats();
  }
  reopt.stop();

  const ReoptStats stats = reopt.stats();
  EXPECT_EQ(stats.moves_proposed, stats.moves_applied + stats.rejected());
  reopt.check_invariants();
  const MutexLock lock(&mutex);
  cluster.check_invariants();
}

TEST(ReoptConcurrency, StopWhileHoldingClusterMutexCannotDeadlock) {
  DynamicCluster cluster = make_cluster(29);
  tacc::Mutex mutex;
  ReoptOptions options;
  options.interval_ms = 0.1;
  Reoptimizer reopt(cluster, mutex, options);
  reopt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    // The background thread only ever try_locks the cluster mutex, so
    // stopping it while we hold that mutex must complete.
    const MutexLock lock(&mutex);
    reopt.stop();
  }
  EXPECT_FALSE(reopt.running());
  reopt.check_invariants();
}

}  // namespace
}  // namespace tacc::opt
