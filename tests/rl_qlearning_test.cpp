#include "rl/qlearning.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/constructive.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::rl {
namespace {

RlOptions fast_options(std::uint64_t seed) {
  RlOptions options;
  options.episodes = 150;
  options.seed = seed;
  return options;
}

// ---- QTable -----------------------------------------------------------------

TEST(QTable, GetSetAndShape) {
  QTable table(4, 3);
  EXPECT_EQ(table.state_count(), 4u);
  EXPECT_EQ(table.action_count(), 3u);
  EXPECT_DOUBLE_EQ(table.get(2, 1), 0.0);
  table.set(2, 1, 5.5);
  EXPECT_DOUBLE_EQ(table.get(2, 1), 5.5);
  EXPECT_THROW((void)table.get(9, 0), std::out_of_range);
}

TEST(QTable, BestActionUnmasked) {
  QTable table(1, 3);
  table.set(0, 0, 1.0);
  table.set(0, 1, 3.0);
  table.set(0, 2, 2.0);
  EXPECT_EQ(table.best_action(0, 0), 1u);
  EXPECT_DOUBLE_EQ(table.max_value(0, 0), 3.0);
}

TEST(QTable, BestActionRespectsMask) {
  QTable table(1, 3);
  table.set(0, 0, 1.0);
  table.set(0, 1, 3.0);
  table.set(0, 2, 2.0);
  EXPECT_EQ(table.best_action(0, 0b101), 2u);  // action 1 masked out
  EXPECT_DOUBLE_EQ(table.max_value(0, 0b101), 2.0);
}

TEST(QTable, TiesBreakToLowestAction) {
  QTable table(1, 3);
  EXPECT_EQ(table.best_action(0, 0), 0u);
}

// ---- Training ---------------------------------------------------------------

TEST(Train, ProducesFeasibleAssignmentAtModerateLoad) {
  const gap::Instance inst = test::small_instance(1, 40, 6, 0.7);
  const TrainResult result = train(inst, fast_options(1), TdVariant::kQLearning);
  EXPECT_TRUE(result.best_feasible);
  EXPECT_TRUE(gap::is_feasible(inst, result.best_assignment));
  EXPECT_EQ(result.trace.size(), 150u);
  EXPECT_GT(result.total_steps, 150u * 40u);  // training + greedy eval
}

TEST(Train, BestCostTraceIsMonotone) {
  const gap::Instance inst = test::small_instance(2, 30, 5, 0.6);
  const TrainResult result = train(inst, fast_options(2), TdVariant::kQLearning);
  for (std::size_t e = 1; e < result.trace.size(); ++e) {
    EXPECT_LE(result.trace[e].best_cost_so_far,
              result.trace[e - 1].best_cost_so_far + 1e-9);
  }
}

TEST(Train, EpsilonDecaysToFloor) {
  const gap::Instance inst = test::small_instance(3, 20, 4, 0.6);
  RlOptions options = fast_options(3);
  options.episodes = 500;
  options.epsilon_min = 0.05;
  const TrainResult result = train(inst, options, TdVariant::kSarsa);
  EXPECT_NEAR(result.trace.back().epsilon, 0.05, 1e-9);
  EXPECT_GT(result.trace.front().epsilon, 0.3);
}

TEST(Train, RewardImprovesOverTraining) {
  const gap::Instance inst = test::small_instance(4, 60, 8, 0.75);
  RlOptions options = fast_options(4);
  options.episodes = 300;
  const TrainResult result = train(inst, options, TdVariant::kQLearning);
  // Mean reward over the first vs last 50 episodes.
  double early = 0.0, late = 0.0;
  for (std::size_t e = 0; e < 50; ++e) {
    early += result.trace[e].total_reward;
    late += result.trace[result.trace.size() - 1 - e].total_reward;
  }
  EXPECT_GT(late, early);
}

TEST(Train, DeterministicPerSeed) {
  const gap::Instance inst = test::small_instance(5, 30, 5, 0.7);
  const TrainResult a = train(inst, fast_options(9), TdVariant::kQLearning);
  const TrainResult b = train(inst, fast_options(9), TdVariant::kQLearning);
  EXPECT_EQ(a.best_assignment, b.best_assignment);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(Train, PolishNeverWorsens) {
  const gap::Instance inst = test::small_instance(6, 40, 6, 0.7);
  RlOptions no_polish = fast_options(6);
  no_polish.polish = false;
  RlOptions with_polish = fast_options(6);
  const TrainResult raw = train(inst, no_polish, TdVariant::kQLearning);
  const TrainResult polished = train(inst, with_polish, TdVariant::kQLearning);
  EXPECT_LE(polished.best_cost, raw.best_cost + 1e-9);
}

TEST(Train, BestCostMatchesAssignment) {
  const gap::Instance inst = test::small_instance(7, 30, 5, 0.6);
  const TrainResult result = train(inst, fast_options(7), TdVariant::kQLearning);
  EXPECT_NEAR(gap::evaluate(inst, result.best_assignment).total_cost,
              result.best_cost, 1e-9);
}

// ---- Solver interface ----------------------------------------------------------

TEST(QLearningSolver, BeatsCapacityObliviousNearestOnTightInstances) {
  // At high load the nearest policy overloads; QL must stay feasible.
  const gap::Instance inst = test::small_instance(8, 50, 5, 0.92);
  QLearningSolver ql(fast_options(8));
  solvers::GreedyNearestSolver nearest;
  const auto ql_result = ql.solve(inst);
  const auto nearest_result = nearest.solve(inst);
  EXPECT_TRUE(ql_result.feasible);
  EXPECT_FALSE(nearest_result.feasible);
}

TEST(QLearningSolver, CompetitiveWithGreedyBestFit) {
  double ql_total = 0.0, greedy_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.8);
    QLearningSolver ql(fast_options(seed));
    solvers::GreedyBestFitSolver greedy;
    ql_total += ql.solve(inst).total_cost;
    greedy_total += greedy.solve(inst).total_cost;
  }
  EXPECT_LE(ql_total, greedy_total + 1e-9);
}

TEST(QLearningSolver, SolvesTrapOptimally) {
  const auto trap = gap::crafted_greedy_trap();
  QLearningSolver solver(fast_options(1));
  const auto result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
}

TEST(SarsaSolver, FeasibleAndReportsName) {
  const gap::Instance inst = test::small_instance(9, 40, 6, 0.7);
  SarsaSolver solver(fast_options(9));
  const auto result = solver.solve(inst);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(solver.name(), "sarsa");
  EXPECT_EQ(QLearningSolver(fast_options(1)).name(), "q-learning");
}

TEST(SarsaAndQLearning, ProduceDifferentTrainingDynamics) {
  const gap::Instance inst = test::small_instance(10, 40, 6, 0.8);
  const TrainResult q = train(inst, fast_options(10), TdVariant::kQLearning);
  const TrainResult s = train(inst, fast_options(10), TdVariant::kSarsa);
  // Same seed, different bootstrap targets — traces must diverge.
  bool diverged = false;
  for (std::size_t e = 0; e < q.trace.size(); ++e) {
    if (q.trace[e].episode_cost != s.trace[e].episode_cost) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace tacc::rl
