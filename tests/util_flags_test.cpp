#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace tacc::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, TypedGettersAndDefaults) {
  const Flags flags =
      parse({"--n=500", "--rate=2.5", "--algo=qlearning", "--verbose"});
  EXPECT_EQ(flags.get_int("n", 0), 500);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get_string("algo", "greedy"), "qlearning");
  EXPECT_TRUE(flags.get_bool("verbose", false));  // bare flag reads as true
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_EQ(flags.get_string("missing", "fallback"), "fallback");
  EXPECT_FALSE(flags.get("missing").has_value());
}

TEST(Flags, BoolSpellings) {
  const Flags flags = parse({"--a=1", "--b=yes", "--c=0", "--d=no",
                             "--e=false", "--f=true"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_FALSE(flags.get_bool("d", true));
  EXPECT_FALSE(flags.get_bool("e", true));
  EXPECT_TRUE(flags.get_bool("f", false));
}

TEST(Flags, MalformedValuesThrow) {
  const Flags flags = parse({"--n=12x", "--rate=fast", "--flag=maybe"});
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_bool("flag", false), std::invalid_argument);
}

TEST(Flags, MalformedFlagsThrowAtParse) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
  EXPECT_THROW(parse({"--=value"}), std::invalid_argument);
}

TEST(Flags, DuplicateFlagLastOccurrenceWins) {
  const Flags flags = parse({"--seed=1", "--seed=2", "--seed=3"});
  EXPECT_EQ(flags.get_int("seed", 0), 3);
}

TEST(Flags, PositionalsKeepOrder) {
  const Flags flags = parse({"first", "--n=1", "second", "-x", "third"});
  // A single dash is not a flag prefix; it stays positional.
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second", "-x", "third"}));
}

TEST(Flags, UnusedReportsOnlyNeverReadFlags) {
  const Flags flags = parse({"--seed=7", "--seeed=8", "--quick"});
  EXPECT_EQ(flags.get_int("seed", 0), 7);
  EXPECT_EQ(flags.unused(), (std::vector<std::string>{"quick", "seeed"}));
  // Reading (even via a default-returning getter) consumes the flag.
  EXPECT_TRUE(flags.get_bool("quick", false));
  EXPECT_EQ(flags.unused(), (std::vector<std::string>{"seeed"}));
}

TEST(Flags, EmptyValueIsKeptVerbatim) {
  const Flags flags = parse({"--tag="});
  EXPECT_EQ(flags.get_string("tag", "default"), "");
}

}  // namespace
}  // namespace tacc::util
