// DynamicCluster failure handling and mobility handovers.
#include <gtest/gtest.h>

#include "core/dynamic.hpp"
#include "util/rng.hpp"
#include "workload/mobility.hpp"

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed, std::size_t iot = 60,
                            std::size_t edge = 6) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

// ---- Server failures ----------------------------------------------------------

TEST(FailServer, EvacuatesAllResidents) {
  DynamicCluster cluster = make_cluster(1);
  // Find a server hosting at least one device.
  std::size_t target = 0;
  for (std::size_t j = 0; j < cluster.server_count(); ++j) {
    if (cluster.loads()[j] > 0.0) {
      target = j;
      break;
    }
  }
  const EvacuationReport report = cluster.fail_server(target);
  EXPECT_GT(report.evacuated, 0u);
  EXPECT_TRUE(cluster.server_failed(target));
  EXPECT_NEAR(cluster.loads()[target], 0.0, 1e-9);
  EXPECT_EQ(cluster.active_count(), 60u);  // nobody lost
  EXPECT_EQ(cluster.healthy_server_count(), 5u);
  // No active device may remain on the failed server.
  for (std::size_t i = 0; i < 60; ++i) {
    if (cluster.is_active(i)) {
      EXPECT_NE(cluster.server_of(i), target);
    }
  }
}

TEST(FailServer, DelayRisesButServiceContinues) {
  DynamicCluster cluster = make_cluster(2);
  const double before = cluster.avg_delay_ms();
  (void)cluster.fail_server(0);
  EXPECT_GE(cluster.avg_delay_ms(), before - 1e-9);
  EXPECT_EQ(cluster.active_count(), 60u);
}

TEST(FailServer, DoubleFailureThrows) {
  DynamicCluster cluster = make_cluster(3);
  (void)cluster.fail_server(1);
  EXPECT_THROW((void)cluster.fail_server(1), std::invalid_argument);
  EXPECT_THROW((void)cluster.fail_server(99), std::invalid_argument);
}

TEST(FailServer, LastHealthyServerProtected) {
  DynamicCluster cluster = make_cluster(4, 20, 2);
  (void)cluster.fail_server(0);
  EXPECT_THROW((void)cluster.fail_server(1), std::logic_error);
}

TEST(FailServer, JoinsAvoidFailedServers) {
  DynamicCluster cluster = make_cluster(5);
  (void)cluster.fail_server(2);
  for (int k = 0; k < 10; ++k) {
    workload::IotDevice device;
    device.position = {1.0 + k * 0.1, 1.0};
    device.request_rate_hz = 5.0;
    device.demand = 5.0;
    const JoinResult joined = cluster.join(device);
    EXPECT_NE(joined.server, 2u);
    EXPECT_NE(cluster.server_of(joined.device_index), 2u);
  }
}

TEST(RecoverServer, RebalanceMovesLoadBack) {
  DynamicCluster cluster = make_cluster(6);
  const double healthy_delay = cluster.avg_delay_ms();
  (void)cluster.fail_server(0);
  const double degraded_delay = cluster.avg_delay_ms();
  cluster.recover_server(0);
  EXPECT_FALSE(cluster.server_failed(0));
  (void)cluster.rebalance(1000);
  // After recovery + rebalance, delay returns to (at least) healthy level.
  EXPECT_LE(cluster.avg_delay_ms(), degraded_delay + 1e-9);
  EXPECT_LE(cluster.avg_delay_ms(), healthy_delay + 1e-9);
}

TEST(Repair, RestoresFeasibilityAfterCascade) {
  // Fail enough servers that the fallback overloads the survivors; after
  // recovery, rebalance() alone cannot fix overload (it only improves
  // cost), repair() must.
  DynamicCluster cluster = make_cluster(12, 80, 5);
  (void)cluster.fail_server(0);
  (void)cluster.fail_server(1);
  (void)cluster.fail_server(2);
  cluster.recover_server(0);
  cluster.recover_server(1);
  cluster.recover_server(2);
  if (cluster.feasible()) GTEST_SKIP() << "cascade never overloaded";
  (void)cluster.rebalance(10'000);
  // rebalance is not guaranteed to restore feasibility…
  const std::size_t moves = cluster.repair(10'000);
  EXPECT_GT(moves, 0u);
  EXPECT_TRUE(cluster.feasible());
}

TEST(Repair, NoopOnFeasibleCluster) {
  DynamicCluster cluster = make_cluster(13);
  ASSERT_TRUE(cluster.feasible());
  EXPECT_EQ(cluster.repair(100), 0u);
}

TEST(Repair, RespectsMoveBudget) {
  DynamicCluster cluster = make_cluster(14, 80, 5);
  (void)cluster.fail_server(0);
  (void)cluster.fail_server(1);
  cluster.recover_server(0);
  cluster.recover_server(1);
  EXPECT_LE(cluster.repair(2), 2u);
}

TEST(RecoverServer, RecoveringHealthyThrows) {
  DynamicCluster cluster = make_cluster(7);
  EXPECT_THROW(cluster.recover_server(0), std::invalid_argument);
}

// ---- Mobility handovers ---------------------------------------------------------

TEST(Move, ReassignsInPlaceAndKeepsBookkeeping) {
  DynamicCluster cluster = make_cluster(8);
  const std::size_t index = 3;
  ASSERT_TRUE(cluster.is_active(index));
  const std::size_t nodes = cluster.graph_node_count();
  const JoinResult moved = cluster.move(index, {0.1, 0.1});
  EXPECT_EQ(moved.device_index, index);  // handover keeps the index
  EXPECT_TRUE(cluster.is_active(index));
  EXPECT_EQ(cluster.server_of(index), moved.server);
  EXPECT_EQ(cluster.active_count(), 60u);
  EXPECT_EQ(cluster.graph_node_count(), nodes);  // node recycled, not leaked
  EXPECT_TRUE(cluster.feasible());
}

TEST(MovePinned, KeepsServer) {
  DynamicCluster cluster = make_cluster(9);
  const std::size_t index = 5;
  const std::size_t server = cluster.server_of(index);
  const JoinResult moved = cluster.move_pinned(index, {3.9, 3.9});
  EXPECT_EQ(moved.device_index, index);
  EXPECT_EQ(moved.server, server);
  EXPECT_EQ(cluster.server_of(index), server);
  EXPECT_EQ(cluster.active_count(), 60u);
}

TEST(Move, InactiveDeviceThrows) {
  DynamicCluster cluster = make_cluster(10);
  cluster.leave(0);
  EXPECT_THROW((void)cluster.move(0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)cluster.move_pinned(0, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(MovePinned, FallsBackOffFailedServer) {
  DynamicCluster cluster = make_cluster(15);
  // Deferred evacuation leaves residents on the failed server; a pinned
  // handover must still refuse to land there.
  std::size_t target = 0;
  for (std::size_t j = 0; j < cluster.server_count(); ++j) {
    if (cluster.loads()[j] > 0.0) {
      target = j;
      break;
    }
  }
  std::size_t resident = cluster.active_count();
  for (std::size_t i = 0; i < cluster.active_count(); ++i) {
    if (cluster.server_of(i) == target) {
      resident = i;
      break;
    }
  }
  ASSERT_LT(resident, cluster.active_count());
  const EvacuationReport deferred = cluster.fail_server(target, false);
  EXPECT_EQ(deferred.evacuated, 0u);
  ASSERT_EQ(cluster.server_of(resident), target);  // still parked there
  const JoinResult moved = cluster.move_pinned(resident, {2.0, 2.0});
  EXPECT_NE(moved.server, target);
  EXPECT_FALSE(cluster.server_failed(moved.server));
  EXPECT_EQ(cluster.server_of(resident), moved.server);
}

TEST(FailServer, DeferredEvacuationDrainsOnDemand) {
  DynamicCluster cluster = make_cluster(16);
  std::size_t target = 0;
  for (std::size_t j = 0; j < cluster.server_count(); ++j) {
    if (cluster.loads()[j] > 0.0) {
      target = j;
      break;
    }
  }
  (void)cluster.fail_server(target, false);
  EXPECT_GT(cluster.loads()[target], 0.0);  // residents still assigned
  const EvacuationReport report = cluster.evacuate_server(target);
  EXPECT_GT(report.evacuated, 0u);
  EXPECT_NEAR(cluster.loads()[target], 0.0, 1e-9);
  for (std::size_t i = 0; i < 60; ++i) {
    if (cluster.is_active(i)) {
      EXPECT_NE(cluster.server_of(i), target);
    }
  }
  const std::size_t healthy = target == 0 ? 1 : 0;
  EXPECT_THROW((void)cluster.evacuate_server(healthy), std::invalid_argument);
}

TEST(FailServer, CascadeReportsOverloadFallback) {
  // Fail servers until the survivors cannot absorb the load feasibly; the
  // evacuation report must surface the overload instead of hiding it.
  DynamicCluster cluster = make_cluster(17, 80, 5);
  std::size_t overloaded = 0;
  for (std::size_t j = 0; j + 2 < cluster.server_count(); ++j) {
    overloaded += cluster.fail_server(j).overloaded;
  }
  if (cluster.feasible()) GTEST_SKIP() << "cascade never overloaded";
  EXPECT_GT(overloaded, 0u);
}

TEST(ChurnWithFailures, NeverLandsOnFailedServer) {
  // Property soak: through joins, handovers, pinned handovers, failures
  // (half of them deferred) and recoveries, no placement may ever return a
  // failed server.
  DynamicCluster cluster = make_cluster(18, 60, 6);
  util::Rng rng(18);
  std::vector<std::size_t> alive(60);
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;
  for (int event = 0; event < 400; ++event) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.25) {
      workload::IotDevice device;
      device.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
      device.request_rate_hz = rng.uniform(1.0, 6.0);
      device.demand = device.request_rate_hz;
      const JoinResult joined = cluster.join(device);
      EXPECT_FALSE(cluster.server_failed(joined.server));
      alive.push_back(joined.device_index);
    } else if (roll < 0.5 && !alive.empty()) {
      const std::size_t pick = rng.index(alive.size());
      const JoinResult moved = cluster.move(
          alive[pick], {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
      EXPECT_FALSE(cluster.server_failed(moved.server));
    } else if (roll < 0.7 && !alive.empty()) {
      const std::size_t pick = rng.index(alive.size());
      const JoinResult moved = cluster.move_pinned(
          alive[pick], {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
      EXPECT_FALSE(cluster.server_failed(moved.server));
    } else if (roll < 0.8 && !alive.empty()) {
      const std::size_t pick = rng.index(alive.size());
      cluster.leave(alive[pick]);
      alive[pick] = alive.back();
      alive.pop_back();
    } else if (roll < 0.9) {
      if (cluster.healthy_server_count() > 2) {
        std::size_t j = rng.index(cluster.server_count());
        while (cluster.server_failed(j)) j = rng.index(cluster.server_count());
        (void)cluster.fail_server(j, rng.bernoulli(0.5));
      }
    } else {
      for (std::size_t j = 0; j < cluster.server_count(); ++j) {
        if (cluster.server_failed(j)) {
          (void)cluster.evacuate_server(j);
          cluster.recover_server(j);
          break;
        }
      }
    }
  }
  // Whatever the final failure set, no active device sits on a failed
  // server that has been evacuated, and every *immediate* placement above
  // was checked against the failure set at the time.
  SUCCEED();
}

TEST(Mobility, PinnedDriftWorseThanHandover) {
  // Drive both policies with the same mobility trace; reassigning movers
  // must realize average delay no worse than pinning them.
  const Scenario scenario = Scenario::campus(80, 6, 11);
  DynamicCluster pinned(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(11));
  DynamicCluster handover(scenario, Algorithm::kGreedyBestFit,
                          cheap_options(11));
  workload::MobilityParams params;
  params.area_km = scenario.params().workload.area_km;
  params.mobile_fraction = 1.0;
  workload::RandomWaypointModel model(scenario.workload().iot, params,
                                      util::Rng(11));

  std::vector<std::size_t> pinned_ids(80), handover_ids(80);
  for (std::size_t i = 0; i < 80; ++i) pinned_ids[i] = handover_ids[i] = i;

  for (int epoch = 0; epoch < 5; ++epoch) {
    for (const std::size_t mover : model.advance(60.0)) {
      const auto p = model.position(mover);
      pinned_ids[mover] =
          pinned.move_pinned(pinned_ids[mover], p).device_index;
      handover_ids[mover] = handover.move(handover_ids[mover], p).device_index;
    }
  }
  EXPECT_LE(handover.avg_delay_ms(), pinned.avg_delay_ms() + 1e-9);
}

}  // namespace
}  // namespace tacc
