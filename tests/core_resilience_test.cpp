// DynamicCluster failure handling and mobility handovers.
#include <gtest/gtest.h>

#include "core/dynamic.hpp"
#include "util/rng.hpp"
#include "workload/mobility.hpp"

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed, std::size_t iot = 60,
                            std::size_t edge = 6) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

// ---- Server failures ----------------------------------------------------------

TEST(FailServer, EvacuatesAllResidents) {
  DynamicCluster cluster = make_cluster(1);
  // Find a server hosting at least one device.
  std::size_t target = 0;
  for (std::size_t j = 0; j < cluster.server_count(); ++j) {
    if (cluster.loads()[j] > 0.0) {
      target = j;
      break;
    }
  }
  const std::size_t evacuated = cluster.fail_server(target);
  EXPECT_GT(evacuated, 0u);
  EXPECT_TRUE(cluster.server_failed(target));
  EXPECT_NEAR(cluster.loads()[target], 0.0, 1e-9);
  EXPECT_EQ(cluster.active_count(), 60u);  // nobody lost
  EXPECT_EQ(cluster.healthy_server_count(), 5u);
  // No active device may remain on the failed server.
  for (std::size_t i = 0; i < 60; ++i) {
    if (cluster.is_active(i)) {
      EXPECT_NE(cluster.server_of(i), target);
    }
  }
}

TEST(FailServer, DelayRisesButServiceContinues) {
  DynamicCluster cluster = make_cluster(2);
  const double before = cluster.avg_delay_ms();
  (void)cluster.fail_server(0);
  EXPECT_GE(cluster.avg_delay_ms(), before - 1e-9);
  EXPECT_EQ(cluster.active_count(), 60u);
}

TEST(FailServer, DoubleFailureThrows) {
  DynamicCluster cluster = make_cluster(3);
  (void)cluster.fail_server(1);
  EXPECT_THROW((void)cluster.fail_server(1), std::invalid_argument);
  EXPECT_THROW((void)cluster.fail_server(99), std::invalid_argument);
}

TEST(FailServer, LastHealthyServerProtected) {
  DynamicCluster cluster = make_cluster(4, 20, 2);
  (void)cluster.fail_server(0);
  EXPECT_THROW((void)cluster.fail_server(1), std::logic_error);
}

TEST(FailServer, JoinsAvoidFailedServers) {
  DynamicCluster cluster = make_cluster(5);
  (void)cluster.fail_server(2);
  for (int k = 0; k < 10; ++k) {
    workload::IotDevice device;
    device.position = {1.0 + k * 0.1, 1.0};
    device.request_rate_hz = 5.0;
    device.demand = 5.0;
    const std::size_t index = cluster.join(device);
    EXPECT_NE(cluster.server_of(index), 2u);
  }
}

TEST(RecoverServer, RebalanceMovesLoadBack) {
  DynamicCluster cluster = make_cluster(6);
  const double healthy_delay = cluster.avg_delay_ms();
  (void)cluster.fail_server(0);
  const double degraded_delay = cluster.avg_delay_ms();
  cluster.recover_server(0);
  EXPECT_FALSE(cluster.server_failed(0));
  (void)cluster.rebalance(1000);
  // After recovery + rebalance, delay returns to (at least) healthy level.
  EXPECT_LE(cluster.avg_delay_ms(), degraded_delay + 1e-9);
  EXPECT_LE(cluster.avg_delay_ms(), healthy_delay + 1e-9);
}

TEST(Repair, RestoresFeasibilityAfterCascade) {
  // Fail enough servers that the fallback overloads the survivors; after
  // recovery, rebalance() alone cannot fix overload (it only improves
  // cost), repair() must.
  DynamicCluster cluster = make_cluster(12, 80, 5);
  (void)cluster.fail_server(0);
  (void)cluster.fail_server(1);
  (void)cluster.fail_server(2);
  cluster.recover_server(0);
  cluster.recover_server(1);
  cluster.recover_server(2);
  if (cluster.feasible()) GTEST_SKIP() << "cascade never overloaded";
  (void)cluster.rebalance(10'000);
  // rebalance is not guaranteed to restore feasibility…
  const std::size_t moves = cluster.repair(10'000);
  EXPECT_GT(moves, 0u);
  EXPECT_TRUE(cluster.feasible());
}

TEST(Repair, NoopOnFeasibleCluster) {
  DynamicCluster cluster = make_cluster(13);
  ASSERT_TRUE(cluster.feasible());
  EXPECT_EQ(cluster.repair(100), 0u);
}

TEST(Repair, RespectsMoveBudget) {
  DynamicCluster cluster = make_cluster(14, 80, 5);
  (void)cluster.fail_server(0);
  (void)cluster.fail_server(1);
  cluster.recover_server(0);
  cluster.recover_server(1);
  EXPECT_LE(cluster.repair(2), 2u);
}

TEST(RecoverServer, RecoveringHealthyThrows) {
  DynamicCluster cluster = make_cluster(7);
  EXPECT_THROW(cluster.recover_server(0), std::invalid_argument);
}

// ---- Mobility handovers ---------------------------------------------------------

TEST(Move, ReassignsAndKeepsBookkeeping) {
  DynamicCluster cluster = make_cluster(8);
  const std::size_t old_index = 3;
  ASSERT_TRUE(cluster.is_active(old_index));
  const std::size_t new_index = cluster.move(old_index, {0.1, 0.1});
  EXPECT_FALSE(cluster.is_active(old_index));
  EXPECT_TRUE(cluster.is_active(new_index));
  EXPECT_EQ(cluster.active_count(), 60u);
  EXPECT_TRUE(cluster.feasible());
}

TEST(MovePinned, KeepsServer) {
  DynamicCluster cluster = make_cluster(9);
  const std::size_t old_index = 5;
  const std::size_t server = cluster.server_of(old_index);
  const std::size_t new_index = cluster.move_pinned(old_index, {3.9, 3.9});
  EXPECT_EQ(cluster.server_of(new_index), server);
  EXPECT_EQ(cluster.active_count(), 60u);
}

TEST(Move, InactiveDeviceThrows) {
  DynamicCluster cluster = make_cluster(10);
  cluster.leave(0);
  EXPECT_THROW((void)cluster.move(0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)cluster.move_pinned(0, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Mobility, PinnedDriftWorseThanHandover) {
  // Drive both policies with the same mobility trace; reassigning movers
  // must realize average delay no worse than pinning them.
  const Scenario scenario = Scenario::campus(80, 6, 11);
  DynamicCluster pinned(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(11));
  DynamicCluster handover(scenario, Algorithm::kGreedyBestFit,
                          cheap_options(11));
  workload::MobilityParams params;
  params.area_km = scenario.params().workload.area_km;
  params.mobile_fraction = 1.0;
  workload::RandomWaypointModel model(scenario.workload().iot, params,
                                      util::Rng(11));

  std::vector<std::size_t> pinned_ids(80), handover_ids(80);
  for (std::size_t i = 0; i < 80; ++i) pinned_ids[i] = handover_ids[i] = i;

  for (int epoch = 0; epoch < 5; ++epoch) {
    for (const std::size_t mover : model.advance(60.0)) {
      const auto p = model.position(mover);
      pinned_ids[mover] = pinned.move_pinned(pinned_ids[mover], p);
      handover_ids[mover] = handover.move(handover_ids[mover], p);
    }
  }
  EXPECT_LE(handover.avg_delay_ms(), pinned.avg_delay_ms() + 1e-9);
}

}  // namespace
}  // namespace tacc
