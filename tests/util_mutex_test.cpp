// Tests for the annotated tacc::Mutex family (util/mutex.hpp): lock/unlock
// and try-lock runtime semantics, RAII guard behavior, CondVar wakeups, and
// the REQUIRES-annotated-validator pattern used across the codebase. The
// annotations themselves are compile-time (clang -Wthread-safety; see
// tools/tsa_negative_check.sh for the gate-fires proof) — these tests pin
// the runtime behavior the annotations describe.
#include "util/mutex.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace tacc {
namespace {

using namespace std::chrono_literals;

// The project-wide pattern: a guarded field plus a deep validator that
// asserts the caller already holds the lock. Under clang the REQUIRES
// annotation makes an unlocked call a compile error; at runtime the
// validator routes through the contracts handler like every other
// check_invariants() in the repo.
struct GuardedCounter {
  mutable Mutex mutex;
  int value TACC_GUARDED_BY(mutex) = 0;

  void increment() TACC_EXCLUDES(mutex) {
    const MutexLock lock(&mutex);
    ++value;
  }
  void check_invariants() const TACC_REQUIRES(mutex) {
    TACC_ASSERT(value >= 0, "counter must never go negative");
  }
};

// Runs `fn` on a fresh thread and returns its result.
template <typename Fn>
auto on_other_thread(Fn&& fn) {
  decltype(fn()) result{};
  std::thread worker([&] { result = fn(); });
  worker.join();
  return result;
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(on_other_thread([&] { return mu.try_lock(); }));
  mu.unlock();
  EXPECT_TRUE(on_other_thread([&] {
    if (!mu.try_lock()) return false;
    mu.unlock();
    return true;
  }));
}

TEST(MutexTest, MutexLockExcludesConcurrentCriticalSections) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  const MutexLock lock(&counter.mutex);
  counter.check_invariants();  // REQUIRES(mutex): legal here, under the lock
  EXPECT_EQ(counter.value, kThreads * kIters);
}

TEST(MutexTest, ReleasableMutexLockReleasesEarlyExactlyOnce) {
  Mutex mu;
  {
    ReleasableMutexLock lock(&mu);
    EXPECT_FALSE(on_other_thread([&] { return mu.try_lock(); }));
    lock.release();
    // Released: another thread can take it while `lock` is still in scope.
    EXPECT_TRUE(on_other_thread([&] {
      if (!mu.try_lock()) return false;
      mu.unlock();
      return true;
    }));
  }  // Destructor must not unlock a second time.
  EXPECT_TRUE(on_other_thread([&] {
    if (!mu.try_lock()) return false;
    mu.unlock();
    return true;
  }));
}

TEST(MutexTest, ReleasableMutexLockUnlocksInDtorWhenNotReleased) {
  Mutex mu;
  {
    const ReleasableMutexLock lock(&mu);
    EXPECT_FALSE(on_other_thread([&] { return mu.try_lock(); }));
  }
  EXPECT_TRUE(on_other_thread([&] {
    if (!mu.try_lock()) return false;
    mu.unlock();
    return true;
  }));
}

TEST(MutexTest, TryLockGuardReportsAcquisition) {
  Mutex mu;
  {
    const TryLock first(&mu);
    ASSERT_TRUE(static_cast<bool>(first));
    // The re-optimizer protocol: a contended try-lock backs off.
    EXPECT_FALSE(on_other_thread([&] {
      const TryLock attempt(&mu);
      return static_cast<bool>(attempt);
    }));
  }
  // First guard released in its destructor; the lock is free again.
  const TryLock second(&mu);
  EXPECT_TRUE(static_cast<bool>(second));
}

TEST(MutexTest, CondVarWakesExplicitWhileLoop) {
  Mutex mu;
  CondVar cv;
  bool ready TACC_GUARDED_BY(mu) = false;
  std::atomic<bool> observed{false};

  std::thread waiter([&] {
    const MutexLock lock(&mu);
    while (!ready) cv.wait(mu);  // explicit loop: TSA-visible, spurious-safe
    observed.store(true);
  });
  {
    const MutexLock lock(&mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(observed.load());
}

TEST(MutexTest, CondVarWaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  const MutexLock lock(&mu);
  EXPECT_EQ(cv.wait_for(mu, 1ms), std::cv_status::timeout);
}

TEST(MutexTest, CondVarStopTokenWaitHonorsStopRequest) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> finished{false};
  std::jthread sleeper([&](std::stop_token token) {
    const MutexLock lock(&mu);
    // Predicate never true: only the stop request can end the wait early.
    cv.wait_for(mu, token, 60s, [] { return false; });
    finished.store(true);
  });
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(finished.load());
  sleeper.request_stop();
  sleeper.join();
  EXPECT_TRUE(finished.load());
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  // assert_held() exists for the analyzer (TACC_ASSERT_CAPABILITY); at
  // runtime it must be callable and free of side effects whenever the
  // caller really does hold the lock — the engine calls it on every
  // session it reaches through a shard map.
  GuardedCounter counter;
  const MutexLock lock(&counter.mutex);
  counter.mutex.assert_held();
  counter.check_invariants();
  EXPECT_EQ(counter.value, 0);
}

}  // namespace
}  // namespace tacc
