// Engine tests: session lifecycle, admission control (OVERLOADED /
// DEADLINE_EXCEEDED / SHUTTING_DOWN), micro-batching counters, and the
// exactly-one-terminal-response invariant — all without sockets.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace tacc::service {
namespace {

Request must_parse(const std::string& line) {
  ParseResult result = parse_request(line);
  EXPECT_TRUE(result.ok()) << "'" << line << "': " << result.error;
  return result.request.value_or(Request{});
}

/// Submits one request and blocks for its terminal response.
std::string call(Engine& engine, const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  engine.submit(must_parse(line), [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

EngineOptions small_options() {
  EngineOptions options;
  options.threads = 2;
  options.max_queue = 64;
  options.default_timeout_ms = 5'000.0;
  return options;
}

TEST(Engine, ConfigureJoinMoveLeaveRoundTrip) {
  Engine engine(small_options());
  const std::string configured = call(engine, "CONFIGURE city 40 5 seed=9");
  ASSERT_EQ(configured.rfind("OK", 0), 0u) << configured;
  EXPECT_NE(configured.find("session=city"), std::string::npos);
  EXPECT_NE(configured.find("devices=40"), std::string::npos);
  EXPECT_NE(configured.find("servers=5"), std::string::npos);

  const std::string joined = call(engine, "JOIN city 1.0 2.0");
  ASSERT_EQ(joined.rfind("OK", 0), 0u) << joined;
  EXPECT_NE(joined.find("device=40"), std::string::npos);  // first new slot

  EXPECT_EQ(call(engine, "MOVE city 0 3.0 3.0").rfind("OK", 0), 0u);
  EXPECT_EQ(call(engine, "LEAVE city 40").rfind("OK", 0), 0u);
  EXPECT_EQ(engine.session_count(), 1u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(Engine, FailEvacuateRecoverRoundTrip) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE f 30 4 seed=3").rfind("OK", 0), 0u);
  const std::string failed = call(engine, "FAIL f 1");
  EXPECT_EQ(failed.rfind("OK", 0), 0u) << failed;
  EXPECT_NE(failed.find("evacuated="), std::string::npos);
  EXPECT_EQ(call(engine, "RECOVER f 1").rfind("OK", 0), 0u);
  // EVACUATE applies to an already-failed server (FAIL evacuate=0 leaves
  // the devices stranded for a later explicit evacuation).
  ASSERT_EQ(call(engine, "FAIL f 2 evacuate=0").rfind("OK", 0), 0u);
  EXPECT_EQ(call(engine, "EVACUATE f 2").rfind("OK", 0), 0u);
  // Evacuating a healthy server is a precondition violation, not a crash.
  EXPECT_EQ(call(engine, "EVACUATE f 0").rfind("ERR BAD_REQUEST", 0), 0u);
}

TEST(Engine, MutationOnUnknownSessionIsNotFound) {
  Engine engine(small_options());
  const std::string response = call(engine, "JOIN nosuch 1.0 1.0");
  EXPECT_EQ(response.rfind("ERR NOT_FOUND", 0), 0u) << response;
  // NOT_FOUND is a terminal response: it must not leak in-flight slots.
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, ClusterPreconditionViolationIsBadRequest) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE c 20 3 seed=5").rfind("OK", 0), 0u);
  // Device 999 does not exist; DynamicCluster throws, the engine maps it.
  const std::string response = call(engine, "MOVE c 999 1.0 1.0");
  EXPECT_EQ(response.rfind("ERR BAD_REQUEST", 0), 0u) << response;
  // The session survives a failed request.
  EXPECT_EQ(call(engine, "MOVE c 0 1.0 1.0").rfind("OK", 0), 0u);
}

TEST(Engine, PingAndShutdownBelongToTransport) {
  Engine engine(small_options());
  EXPECT_EQ(call(engine, "PING").rfind("ERR BAD_REQUEST", 0), 0u);
  EXPECT_EQ(call(engine, "SHUTDOWN").rfind("ERR BAD_REQUEST", 0), 0u);
}

TEST(Engine, GlobalAndSessionStats) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE s 25 4 seed=2").rfind("OK", 0), 0u);
  ASSERT_EQ(call(engine, "JOIN s 0.5 0.5").rfind("OK", 0), 0u);
  engine.drain();  // counters/snapshot flush with the batch, post-response

  const std::string global = call(engine, "STATS");
  EXPECT_NE(global.find("sessions=1"), std::string::npos) << global;
  EXPECT_NE(global.find("accepted=2"), std::string::npos);
  EXPECT_NE(global.find("completed=2"), std::string::npos);

  const std::string session = call(engine, "STATS s");
  EXPECT_NE(session.find("configured=1"), std::string::npos) << session;
  EXPECT_NE(session.find("devices=26"), std::string::npos);
  EXPECT_NE(session.find("latency_count=2"), std::string::npos);
  EXPECT_NE(session.find("p50_us="), std::string::npos);

  EXPECT_EQ(call(engine, "STATS nosuch").rfind("ERR NOT_FOUND", 0), 0u);
}

TEST(Engine, LinkChurnRoundTripThroughWireVerbs) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE net 30 4 seed=5").rfind("OK", 0), 0u);

  // Discover a live backbone link via the LINKS diagnostic verb.
  const std::string links = call(engine, "LINKS net limit=1");
  ASSERT_EQ(links.rfind("OK", 0), 0u) << links;
  ASSERT_NE(links.find("failed=0"), std::string::npos) << links;
  const std::size_t at = links.find("links=");
  ASSERT_NE(at, std::string::npos) << links;
  const std::size_t dash = links.find('-', at);
  const std::size_t end = links.find_first_of(", ", dash);
  ASSERT_NE(dash, std::string::npos) << links;
  const std::string u = links.substr(at + 6, dash - (at + 6));
  const std::string v = links.substr(dash + 1, end - (dash + 1));

  const std::string failed = call(engine, "LINK_FAIL net " + u + " " + v);
  ASSERT_EQ(failed.rfind("OK", 0), 0u) << failed;
  EXPECT_NE(failed.find("epoch="), std::string::npos);
  EXPECT_NE(failed.find("rows_refreshed="), std::string::npos);
  EXPECT_NE(call(engine, "LINKS net limit=1").find("failed=1"),
            std::string::npos);

  // Failing the same link twice is a precondition violation.
  EXPECT_EQ(call(engine, "LINK_FAIL net " + u + " " + v)
                .rfind("ERR BAD_REQUEST", 0),
            0u);
  ASSERT_EQ(call(engine, "LINK_RESTORE net " + u + " " + v).rfind("OK", 0),
            0u);
  const std::string set = call(engine, "LINK_SET net " + u + " " + v + " 9.5");
  ASSERT_EQ(set.rfind("OK", 0), 0u) << set;
  EXPECT_NE(set.find("latency_ms="), std::string::npos);  // previous latency

  // An out-of-range endpoint is rejected before touching the topology.
  EXPECT_EQ(call(engine, "LINK_FAIL net 999999 0").rfind("ERR BAD_REQUEST", 0),
            0u);

  engine.drain();
  const std::string stats = call(engine, "STATS net");
  // 3 successful updates (fail, restore, set); rejected ones don't count.
  EXPECT_NE(stats.find("link_updates=3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("delay_epoch="), std::string::npos);
  EXPECT_NE(stats.find("link_nodes_affected="), std::string::npos);
  EXPECT_NE(stats.find("delay_rows_refreshed="), std::string::npos);
}

TEST(Engine, StatsAnswersWhileSessionIsBusy) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE busy 20 3 seed=4").rfind("OK", 0), 0u);

  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP busy 300"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });

  // STATS bypasses admission and answers from the snapshot immediately.
  const util::WallTimer timer;
  const std::string stats = call(engine, "STATS busy");
  EXPECT_LT(timer.elapsed_ms(), 250.0) << "STATS blocked behind SLEEP";
  EXPECT_EQ(stats.rfind("OK", 0), 0u);

  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
}

TEST(Engine, OverflowRejectsWithOverloaded) {
  EngineOptions options = small_options();
  options.max_queue = 1;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE o 20 3 seed=6").rfind("OK", 0), 0u);
  engine.drain();  // the CONFIGURE's admission slot frees after its response

  // The SLEEP occupies the single admission slot until it completes...
  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP o 300"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });

  // ...so every request submitted meanwhile bounces synchronously.
  for (int i = 0; i < 3; ++i) {
    const std::string rejected = call(engine, "JOIN o 1.0 1.0");
    EXPECT_EQ(rejected.rfind("ERR OVERLOADED", 0), 0u) << rejected;
  }
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  engine.drain();  // the in-flight slot frees shortly AFTER the response
  EXPECT_EQ(engine.counters().rejected_overload, 3u);

  // Capacity freed: the same request is admitted again.
  EXPECT_EQ(call(engine, "JOIN o 1.0 1.0").rfind("OK", 0), 0u);
}

TEST(Engine, ExpiredQueuedRequestAnswersDeadlineExceeded) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE d 20 3 seed=8").rfind("OK", 0), 0u);

  // The SLEEP holds the session's single drainer for 200ms; a 1ms-deadline
  // request queued behind it must expire before execution.
  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP d 200"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });
  const std::string expired = call(engine, "JOIN d 1.0 1.0 timeout_ms=1");
  EXPECT_EQ(expired.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << expired;
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  engine.drain();  // counters flush with the batch, after the responses
  EXPECT_EQ(engine.counters().rejected_deadline, 1u);
}

TEST(Engine, ShutdownRejectsNewWorkButDrainsAdmitted) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE z 20 3 seed=1").rfind("OK", 0), 0u);

  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP z 150"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });
  engine.begin_shutdown();

  const std::string rejected = call(engine, "JOIN z 1.0 1.0");
  EXPECT_EQ(rejected.rfind("ERR SHUTTING_DOWN", 0), 0u) << rejected;

  engine.drain();
  // The admitted SLEEP still got its real response, not a shutdown error.
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  EXPECT_EQ(engine.counters().rejected_shutdown, 1u);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, EveryRequestGetsExactlyOneResponse) {
  EngineOptions options = small_options();
  options.max_queue = 8;  // small enough that the burst trips OVERLOADED
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE a 30 4 seed=11").rfind("OK", 0), 0u);

  constexpr std::size_t kBurst = 200;
  std::atomic<std::size_t> responses{0};
  std::atomic<std::size_t> ok{0};
  for (std::size_t i = 0; i < kBurst; ++i) {
    engine.submit(must_parse("MOVE a " + std::to_string(i % 30) + " 1.0 1.0"),
                  [&responses, &ok](const std::string& response) {
                    responses.fetch_add(1);
                    if (response.rfind("OK", 0) == 0) ok.fetch_add(1);
                  });
  }
  engine.begin_shutdown();
  engine.drain();
  EXPECT_EQ(responses.load(), kBurst);
  EXPECT_GT(ok.load(), 0u);

  // Ledger closes: every accepted request completed or failed, every other
  // submission was rejected with a terminal error.
  const EngineCounters counters = engine.counters();
  // Every accepted request (the CONFIGURE included) ends as completed,
  // failed, or expired...
  EXPECT_EQ(counters.completed + counters.failed + counters.rejected_deadline,
            counters.accepted);
  // ...and every burst submission was either accepted or bounced.
  EXPECT_EQ(counters.accepted - 1 + counters.rejected_overload +
                counters.rejected_shutdown,
            kBurst);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(Engine, BatchingCoalescesBurstsIntoFewerDrains) {
  EngineOptions options = small_options();
  options.threads = 1;  // one worker: the burst piles up behind the sleep
  options.max_batch = 16;
  options.max_queue = 128;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE b 20 3 seed=13").rfind("OK", 0), 0u);

  constexpr std::size_t kBurst = 64;
  std::atomic<std::size_t> responses{0};
  // Park the lone worker first so every MOVE queues up behind it; without
  // this the drainer can keep pace with the submission loop and legitimately
  // take one pass per event.
  engine.submit(must_parse("SLEEP b 100"), [](const std::string&) {});
  for (std::size_t i = 0; i < kBurst; ++i) {
    engine.submit(must_parse("MOVE b " + std::to_string(i % 20) + " 2.0 2.0"),
                  [&responses](const std::string&) {
                    responses.fetch_add(1);
                  });
  }
  engine.begin_shutdown();
  engine.drain();
  ASSERT_EQ(responses.load(), kBurst);

  // batches is visible via STATS; with max_batch=16 the 64 MOVEs need at
  // least 4 passes but far fewer than 64 if batching works at all.
  const std::string stats = call(engine, "STATS b");
  const std::size_t pos = stats.find("batches=");
  ASSERT_NE(pos, std::string::npos) << stats;
  const std::size_t batches =
      static_cast<std::size_t>(std::stoul(stats.substr(pos + 8)));
  EXPECT_LT(batches, kBurst) << "no coalescing happened: " << stats;
}

TEST(Engine, SessionsDrainConcurrently) {
  EngineOptions options = small_options();
  options.threads = 2;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE s1 20 3 seed=21").rfind("OK", 0), 0u);
  ASSERT_EQ(call(engine, "CONFIGURE s2 20 3 seed=22").rfind("OK", 0), 0u);

  // Two 200ms sleeps on different sessions should overlap on the two
  // workers: total wall time well under the 400ms serial bound.
  const util::WallTimer timer;
  std::promise<std::string> first;
  std::promise<std::string> second;
  std::future<std::string> first_future = first.get_future();
  std::future<std::string> second_future = second.get_future();
  engine.submit(must_parse("SLEEP s1 200"), [&first](std::string r) {
    first.set_value(std::move(r));
  });
  engine.submit(must_parse("SLEEP s2 200"), [&second](std::string r) {
    second.set_value(std::move(r));
  });
  EXPECT_EQ(first_future.get().rfind("OK", 0), 0u);
  EXPECT_EQ(second_future.get().rfind("OK", 0), 0u);
  EXPECT_LT(timer.elapsed_ms(), 390.0) << "sessions serialized";
}

}  // namespace
}  // namespace tacc::service
