// Engine tests: session lifecycle, admission control (OVERLOADED /
// DEADLINE_EXCEEDED / SHUTTING_DOWN), micro-batching counters, and the
// exactly-one-terminal-response invariant — all without sockets.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace tacc::service {
namespace {

Request must_parse(const std::string& line) {
  ParseResult result = parse_request(line);
  EXPECT_TRUE(result.ok()) << "'" << line << "': " << result.error;
  return result.request.value_or(Request{});
}

/// Submits one request and blocks for its terminal response.
std::string call(Engine& engine, const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  engine.submit(must_parse(line), [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

EngineOptions small_options() {
  EngineOptions options;
  options.threads = 2;
  // Pinned (not hardware-dependent) so admission math and routing are the
  // same on every machine the suite runs on.
  options.shards = 2;
  options.max_queue = 64;
  options.default_timeout_ms = 5'000.0;
  return options;
}

/// Extracts the integer value of `key=` from an OK response line.
std::uint64_t field_value(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(" " + key + "=");
  EXPECT_NE(at, std::string::npos) << "missing " << key << " in: " << line;
  if (at == std::string::npos) return 0;
  return std::stoull(line.substr(at + key.size() + 2));
}

/// Session names, one per shard, discovered by probing the stable hash.
std::vector<std::string> sessions_covering_all_shards(const Engine& engine) {
  std::vector<std::string> names(engine.shard_count());
  std::vector<bool> found(engine.shard_count(), false);
  std::size_t covered = 0;
  for (int i = 0; covered < engine.shard_count() && i < 10'000; ++i) {
    std::string name = "probe" + std::to_string(i);
    const std::size_t shard = engine.shard_of(name);
    if (!found[shard]) {
      found[shard] = true;
      names[shard] = std::move(name);
      ++covered;
    }
  }
  EXPECT_EQ(covered, engine.shard_count()) << "hash never covered all shards";
  return names;
}

TEST(Engine, ConfigureJoinMoveLeaveRoundTrip) {
  Engine engine(small_options());
  const std::string configured = call(engine, "CONFIGURE city 40 5 seed=9");
  ASSERT_EQ(configured.rfind("OK", 0), 0u) << configured;
  EXPECT_NE(configured.find("session=city"), std::string::npos);
  EXPECT_NE(configured.find("devices=40"), std::string::npos);
  EXPECT_NE(configured.find("servers=5"), std::string::npos);

  const std::string joined = call(engine, "JOIN city 1.0 2.0");
  ASSERT_EQ(joined.rfind("OK", 0), 0u) << joined;
  EXPECT_NE(joined.find("device=40"), std::string::npos);  // first new slot

  EXPECT_EQ(call(engine, "MOVE city 0 3.0 3.0").rfind("OK", 0), 0u);
  EXPECT_EQ(call(engine, "LEAVE city 40").rfind("OK", 0), 0u);
  EXPECT_EQ(engine.session_count(), 1u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(Engine, FailEvacuateRecoverRoundTrip) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE f 30 4 seed=3").rfind("OK", 0), 0u);
  const std::string failed = call(engine, "FAIL f 1");
  EXPECT_EQ(failed.rfind("OK", 0), 0u) << failed;
  EXPECT_NE(failed.find("evacuated="), std::string::npos);
  EXPECT_EQ(call(engine, "RECOVER f 1").rfind("OK", 0), 0u);
  // EVACUATE applies to an already-failed server (FAIL evacuate=0 leaves
  // the devices stranded for a later explicit evacuation).
  ASSERT_EQ(call(engine, "FAIL f 2 evacuate=0").rfind("OK", 0), 0u);
  EXPECT_EQ(call(engine, "EVACUATE f 2").rfind("OK", 0), 0u);
  // Evacuating a healthy server is a precondition violation, not a crash.
  EXPECT_EQ(call(engine, "EVACUATE f 0").rfind("ERR BAD_REQUEST", 0), 0u);
}

TEST(Engine, MutationOnUnknownSessionIsNotFound) {
  Engine engine(small_options());
  const std::string response = call(engine, "JOIN nosuch 1.0 1.0");
  EXPECT_EQ(response.rfind("ERR NOT_FOUND", 0), 0u) << response;
  // NOT_FOUND is a terminal response: it must not leak in-flight slots.
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, ClusterPreconditionViolationIsBadRequest) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE c 20 3 seed=5").rfind("OK", 0), 0u);
  // Device 999 does not exist; DynamicCluster throws, the engine maps it.
  const std::string response = call(engine, "MOVE c 999 1.0 1.0");
  EXPECT_EQ(response.rfind("ERR BAD_REQUEST", 0), 0u) << response;
  // The session survives a failed request.
  EXPECT_EQ(call(engine, "MOVE c 0 1.0 1.0").rfind("OK", 0), 0u);
}

TEST(Engine, PingAndShutdownBelongToTransport) {
  Engine engine(small_options());
  EXPECT_EQ(call(engine, "PING").rfind("ERR BAD_REQUEST", 0), 0u);
  EXPECT_EQ(call(engine, "SHUTDOWN").rfind("ERR BAD_REQUEST", 0), 0u);
}

TEST(Engine, GlobalAndSessionStats) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE s 25 4 seed=2").rfind("OK", 0), 0u);
  ASSERT_EQ(call(engine, "JOIN s 0.5 0.5").rfind("OK", 0), 0u);
  engine.drain();  // counters/snapshot flush with the batch, post-response

  const std::string global = call(engine, "STATS");
  EXPECT_NE(global.find("sessions=1"), std::string::npos) << global;
  EXPECT_NE(global.find("accepted=2"), std::string::npos);
  EXPECT_NE(global.find("completed=2"), std::string::npos);

  const std::string session = call(engine, "STATS s");
  EXPECT_NE(session.find("configured=1"), std::string::npos) << session;
  EXPECT_NE(session.find("devices=26"), std::string::npos);
  EXPECT_NE(session.find("latency_count=2"), std::string::npos);
  EXPECT_NE(session.find("p50_us="), std::string::npos);

  EXPECT_EQ(call(engine, "STATS nosuch").rfind("ERR NOT_FOUND", 0), 0u);
}

TEST(Engine, LinkChurnRoundTripThroughWireVerbs) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE net 30 4 seed=5").rfind("OK", 0), 0u);

  // Discover a live backbone link via the LINKS diagnostic verb.
  const std::string links = call(engine, "LINKS net limit=1");
  ASSERT_EQ(links.rfind("OK", 0), 0u) << links;
  ASSERT_NE(links.find("failed=0"), std::string::npos) << links;
  const std::size_t at = links.find("links=");
  ASSERT_NE(at, std::string::npos) << links;
  const std::size_t dash = links.find('-', at);
  const std::size_t end = links.find_first_of(", ", dash);
  ASSERT_NE(dash, std::string::npos) << links;
  const std::string u = links.substr(at + 6, dash - (at + 6));
  const std::string v = links.substr(dash + 1, end - (dash + 1));

  const std::string failed = call(engine, "LINK_FAIL net " + u + " " + v);
  ASSERT_EQ(failed.rfind("OK", 0), 0u) << failed;
  EXPECT_NE(failed.find("epoch="), std::string::npos);
  EXPECT_NE(failed.find("rows_refreshed="), std::string::npos);
  EXPECT_NE(call(engine, "LINKS net limit=1").find("failed=1"),
            std::string::npos);

  // Failing the same link twice is a precondition violation.
  EXPECT_EQ(call(engine, "LINK_FAIL net " + u + " " + v)
                .rfind("ERR BAD_REQUEST", 0),
            0u);
  ASSERT_EQ(call(engine, "LINK_RESTORE net " + u + " " + v).rfind("OK", 0),
            0u);
  const std::string set = call(engine, "LINK_SET net " + u + " " + v + " 9.5");
  ASSERT_EQ(set.rfind("OK", 0), 0u) << set;
  EXPECT_NE(set.find("latency_ms="), std::string::npos);  // previous latency

  // An out-of-range endpoint is rejected before touching the topology.
  EXPECT_EQ(call(engine, "LINK_FAIL net 999999 0").rfind("ERR BAD_REQUEST", 0),
            0u);

  engine.drain();
  const std::string stats = call(engine, "STATS net");
  // 3 successful updates (fail, restore, set); rejected ones don't count.
  EXPECT_NE(stats.find("link_updates=3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("delay_epoch="), std::string::npos);
  EXPECT_NE(stats.find("link_nodes_affected="), std::string::npos);
  EXPECT_NE(stats.find("delay_rows_refreshed="), std::string::npos);
}

TEST(Engine, StatsAnswersWhileSessionIsBusy) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE busy 20 3 seed=4").rfind("OK", 0), 0u);

  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP busy 300"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });

  // STATS bypasses admission and answers from the snapshot immediately.
  const util::WallTimer timer;
  const std::string stats = call(engine, "STATS busy");
  EXPECT_LT(timer.elapsed_ms(), 250.0) << "STATS blocked behind SLEEP";
  EXPECT_EQ(stats.rfind("OK", 0), 0u);

  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
}

TEST(Engine, OverflowRejectsWithOverloaded) {
  EngineOptions options = small_options();
  options.max_queue = 1;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE o 20 3 seed=6").rfind("OK", 0), 0u);
  engine.drain();  // the CONFIGURE's admission slot frees after its response

  // The SLEEP occupies the single admission slot until it completes...
  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP o 300"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });

  // ...so every request submitted meanwhile bounces synchronously.
  for (int i = 0; i < 3; ++i) {
    const std::string rejected = call(engine, "JOIN o 1.0 1.0");
    EXPECT_EQ(rejected.rfind("ERR OVERLOADED", 0), 0u) << rejected;
  }
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  engine.drain();  // the in-flight slot frees shortly AFTER the response
  EXPECT_EQ(engine.counters().rejected_overload, 3u);

  // Capacity freed: the same request is admitted again.
  EXPECT_EQ(call(engine, "JOIN o 1.0 1.0").rfind("OK", 0), 0u);
}

TEST(Engine, ExpiredQueuedRequestAnswersDeadlineExceeded) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE d 20 3 seed=8").rfind("OK", 0), 0u);

  // The SLEEP holds the session's single drainer for 200ms; a 1ms-deadline
  // request queued behind it must expire before execution.
  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP d 200"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });
  const std::string expired = call(engine, "JOIN d 1.0 1.0 timeout_ms=1");
  EXPECT_EQ(expired.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << expired;
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  engine.drain();  // counters flush with the batch, after the responses
  EXPECT_EQ(engine.counters().rejected_deadline, 1u);
}

TEST(Engine, ShutdownRejectsNewWorkButDrainsAdmitted) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE z 20 3 seed=1").rfind("OK", 0), 0u);

  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP z 150"), [&slept](std::string r) {
    slept.set_value(std::move(r));
  });
  engine.begin_shutdown();

  const std::string rejected = call(engine, "JOIN z 1.0 1.0");
  EXPECT_EQ(rejected.rfind("ERR SHUTTING_DOWN", 0), 0u) << rejected;

  engine.drain();
  // The admitted SLEEP still got its real response, not a shutdown error.
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  EXPECT_EQ(engine.counters().rejected_shutdown, 1u);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, EveryRequestGetsExactlyOneResponse) {
  EngineOptions options = small_options();
  options.max_queue = 8;  // small enough that the burst trips OVERLOADED
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE a 30 4 seed=11").rfind("OK", 0), 0u);

  constexpr std::size_t kBurst = 200;
  std::atomic<std::size_t> responses{0};
  std::atomic<std::size_t> ok{0};
  for (std::size_t i = 0; i < kBurst; ++i) {
    engine.submit(must_parse("MOVE a " + std::to_string(i % 30) + " 1.0 1.0"),
                  [&responses, &ok](const std::string& response) {
                    responses.fetch_add(1);
                    if (response.rfind("OK", 0) == 0) ok.fetch_add(1);
                  });
  }
  engine.begin_shutdown();
  engine.drain();
  EXPECT_EQ(responses.load(), kBurst);
  EXPECT_GT(ok.load(), 0u);

  // Ledger closes: every accepted request completed or failed, every other
  // submission was rejected with a terminal error.
  const EngineCounters counters = engine.counters();
  // Every accepted request (the CONFIGURE included) ends as completed,
  // failed, or expired...
  EXPECT_EQ(counters.completed + counters.failed + counters.rejected_deadline,
            counters.accepted);
  // ...and every burst submission was either accepted or bounced.
  EXPECT_EQ(counters.accepted - 1 + counters.rejected_overload +
                counters.rejected_shutdown,
            kBurst);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(Engine, BatchingCoalescesBurstsIntoFewerDrains) {
  EngineOptions options = small_options();
  options.threads = 1;  // one worker: the burst piles up behind the sleep
  options.max_batch = 16;
  options.max_queue = 128;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE b 20 3 seed=13").rfind("OK", 0), 0u);

  constexpr std::size_t kBurst = 64;
  std::atomic<std::size_t> responses{0};
  // Park the lone worker first so every MOVE queues up behind it; without
  // this the drainer can keep pace with the submission loop and legitimately
  // take one pass per event.
  engine.submit(must_parse("SLEEP b 100"), [](const std::string&) {});
  for (std::size_t i = 0; i < kBurst; ++i) {
    engine.submit(must_parse("MOVE b " + std::to_string(i % 20) + " 2.0 2.0"),
                  [&responses](const std::string&) {
                    responses.fetch_add(1);
                  });
  }
  engine.begin_shutdown();
  engine.drain();
  ASSERT_EQ(responses.load(), kBurst);

  // batches is visible via STATS; with max_batch=16 the 64 MOVEs need at
  // least 4 passes but far fewer than 64 if batching works at all.
  const std::string stats = call(engine, "STATS b");
  const std::size_t pos = stats.find("batches=");
  ASSERT_NE(pos, std::string::npos) << stats;
  const std::size_t batches =
      static_cast<std::size_t>(std::stoul(stats.substr(pos + 8)));
  EXPECT_LT(batches, kBurst) << "no coalescing happened: " << stats;
}

TEST(Engine, SessionsDrainConcurrently) {
  EngineOptions options = small_options();
  options.threads = 2;
  // One shard so both workers serve the same pool: the overlap being
  // tested must not depend on which shards the two names hash to.
  options.shards = 1;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE s1 20 3 seed=21").rfind("OK", 0), 0u);
  ASSERT_EQ(call(engine, "CONFIGURE s2 20 3 seed=22").rfind("OK", 0), 0u);

  // Two 200ms sleeps on different sessions should overlap on the two
  // workers: total wall time well under the 400ms serial bound.
  const util::WallTimer timer;
  std::promise<std::string> first;
  std::promise<std::string> second;
  std::future<std::string> first_future = first.get_future();
  std::future<std::string> second_future = second.get_future();
  engine.submit(must_parse("SLEEP s1 200"), [&first](std::string r) {
    first.set_value(std::move(r));
  });
  engine.submit(must_parse("SLEEP s2 200"), [&second](std::string r) {
    second.set_value(std::move(r));
  });
  EXPECT_EQ(first_future.get().rfind("OK", 0), 0u);
  EXPECT_EQ(second_future.get().rfind("OK", 0), 0u);
  EXPECT_LT(timer.elapsed_ms(), 390.0) << "sessions serialized";
}

// ---- Sharding --------------------------------------------------------------

TEST(EngineSharding, RoutingIsStableAcrossEngineInstances) {
  EngineOptions options = small_options();
  options.shards = 4;
  const Engine first(options);
  const Engine second(options);
  EXPECT_EQ(first.shard_count(), 4u);
  for (const std::string name :
       {"city", "factory", "a", "session-with-a-long-name", "x:y.z_9"}) {
    // Same name ⇒ same shard, in this engine and in a freshly constructed
    // one (i.e. across daemon restarts).
    EXPECT_EQ(first.shard_of(name), second.shard_of(name)) << name;

    // Pin the routing function itself: FNV-1a 64-bit mod shard count.
    // std::hash would be allowed to change between libstdc++ versions.
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : name) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    EXPECT_EQ(first.shard_of(name), hash % 4u) << name;
  }
}

TEST(EngineSharding, SessionStatsReportOwningShard) {
  EngineOptions options = small_options();
  options.shards = 4;
  Engine engine(options);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (std::size_t shard = 0; shard < names.size(); ++shard) {
    ASSERT_EQ(call(engine, "CONFIGURE " + names[shard] + " 20 3 seed=1")
                  .rfind("OK", 0),
              0u);
    const std::string stats = call(engine, "STATS " + names[shard]);
    EXPECT_EQ(field_value(stats, "shard"), shard) << stats;
  }
}

TEST(EngineSharding, ShardQuotasAreIndependent) {
  EngineOptions options = small_options();
  options.shards = 2;
  options.max_queue = 2;  // one admission slot per shard
  Engine engine(options);
  ASSERT_EQ(engine.shard_quota(), 1u);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (const std::string& name : names) {
    ASSERT_EQ(call(engine, "CONFIGURE " + name + " 20 3 seed=1").rfind("OK", 0),
              0u);
    engine.drain();
  }

  // Fill shard 0's only slot with a parked SLEEP...
  std::promise<std::string> slept;
  std::future<std::string> slept_future = slept.get_future();
  engine.submit(must_parse("SLEEP " + names[0] + " 200"),
                [&slept](std::string r) { slept.set_value(std::move(r)); });

  // ...shard 0 is now full, but shard 1 still admits: overload on one
  // shard must not reject traffic routed to another.
  EXPECT_EQ(call(engine, "JOIN " + names[0] + " 1.0 1.0")
                .rfind("ERR OVERLOADED", 0),
            0u);
  EXPECT_EQ(call(engine, "JOIN " + names[1] + " 1.0 1.0").rfind("OK", 0), 0u);
  EXPECT_EQ(slept_future.get().rfind("OK", 0), 0u);
  engine.drain();
  EXPECT_EQ(engine.counters().rejected_overload, 1u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(EngineSharding, DrainOnShutdownCoversEveryShard) {
  EngineOptions options = small_options();
  options.shards = 4;
  options.threads = 4;
  Engine engine(options);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (const std::string& name : names) {
    ASSERT_EQ(call(engine, "CONFIGURE " + name + " 20 3 seed=1").rfind("OK", 0),
              0u);
  }

  // Park in-flight work on EVERY shard, then shut down: drain() must not
  // return until each shard's admitted work reached its terminal response.
  std::vector<std::future<std::string>> futures;
  std::vector<std::promise<std::string>> promises(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    futures.push_back(promises[i].get_future());
    engine.submit(must_parse("SLEEP " + names[i] + " 100"),
                  [&promise = promises[i]](std::string r) {
                    promise.set_value(std::move(r));
                  });
  }
  engine.begin_shutdown();
  EXPECT_EQ(call(engine, "JOIN " + names[0] + " 1.0 1.0")
                .rfind("ERR SHUTTING_DOWN", 0),
            0u);
  engine.drain();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain() returned with work still in flight";
    EXPECT_EQ(future.get().rfind("OK", 0), 0u);
  }
  EXPECT_EQ(engine.queue_depth(), 0u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(EngineSharding, NotFoundIsCountedAsRejectionNotFailure) {
  Engine engine(small_options());
  EXPECT_EQ(call(engine, "JOIN nosuch 1.0 1.0").rfind("ERR NOT_FOUND", 0), 0u);
  const EngineCounters counters = engine.counters();
  // The old engine counted this as `failed` without `accepted`, silently
  // breaking accepted == completed + failed + expired + in_flight.
  EXPECT_EQ(counters.rejected_not_found, 1u);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.accepted, 0u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(EngineSharding, GlobalStatsCarryShardFieldsAndBreakdown) {
  EngineOptions options = small_options();
  options.shards = 2;
  Engine engine(options);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (const std::string& name : names) {
    ASSERT_EQ(call(engine, "CONFIGURE " + name + " 20 3 seed=1").rfind("OK", 0),
              0u);
    ASSERT_EQ(call(engine, "JOIN " + name + " 1.0 1.0").rfind("OK", 0), 0u);
  }
  engine.drain();

  const std::string global = call(engine, "STATS");
  EXPECT_EQ(field_value(global, "shards"), 2u);
  EXPECT_EQ(field_value(global, "shard_quota"), 32u);  // ceil(64 / 2)
  EXPECT_EQ(field_value(global, "rejected_not_found"), 0u);
  EXPECT_EQ(global.find("s0_depth="), std::string::npos)
      << "breakdown must be opt-in: " << global;

  const std::string detailed = call(engine, "STATS shards=1");
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::string p = "s" + std::to_string(shard) + "_";
    // Each shard processed its one session's CONFIGURE + JOIN.
    EXPECT_EQ(field_value(detailed, p + "accepted"), 2u) << detailed;
    EXPECT_EQ(field_value(detailed, p + "completed"), 2u) << detailed;
    EXPECT_EQ(field_value(detailed, p + "sessions"), 1u) << detailed;
  }
}

// ---- Deadlines -------------------------------------------------------------

TEST(EngineDeadline, BoundaryExactlyAtDequeueCountsAsExpired) {
  const Engine::Clock::time_point t{std::chrono::nanoseconds(1'000'000)};
  const Engine::Clock::duration tick{std::chrono::nanoseconds(1)};
  EXPECT_TRUE(Engine::deadline_expired(t, t));  // the pinned boundary
  EXPECT_TRUE(Engine::deadline_expired(t, t + tick));
  EXPECT_FALSE(Engine::deadline_expired(t + tick, t));
}

TEST(EngineDeadline, ExecutionOverrunIsRejectedNotCompleted) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE late 20 3 seed=1").rfind("OK", 0), 0u);
  engine.drain();

  // The request is dequeued while its 40ms deadline is still live, but the
  // 120ms execution overruns it. The old engine answered OK and counted it
  // `completed`; the deadline contract says ERR DEADLINE_EXCEEDED.
  const std::string late = call(engine, "SLEEP late 120 timeout_ms=40");
  EXPECT_EQ(late.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << late;
  engine.drain();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.rejected_deadline, 1u);
  EXPECT_EQ(counters.completed, 1u);  // the CONFIGURE only
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

// ---- STATS coherence under concurrency -------------------------------------

TEST(EngineConcurrency, StatsIdentityHoldsUnderConcurrentTraffic) {
  EngineOptions options = small_options();
  options.shards = 2;
  options.threads = 2;
  options.max_queue = 32;
  Engine engine(options);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (const std::string& name : names) {
    ASSERT_EQ(call(engine, "CONFIGURE " + name + " 20 3 seed=1").rfind("OK", 0),
              0u);
  }
  engine.drain();

  // Drivers push MOVE traffic at both shards while a reader hammers STATS.
  // Every per-shard block in every reply must satisfy the accounting
  // identity exactly — the pre-shard engine could serve a torn snapshot
  // (counters split across two mutexes). Run under TSan for the data-race
  // side of the same bug.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> responses{0};
  std::vector<std::thread> drivers;
  drivers.reserve(names.size());
  for (const std::string& name : names) {
    drivers.emplace_back([&engine, &responses, &stop, name] {
      while (!stop.load(std::memory_order_relaxed)) {
        engine.submit(must_parse("MOVE " + name + " 0 1.0 1.0"),
                      [&responses](const std::string&) {
                        responses.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    });
  }

  const auto end = Engine::Clock::now() + std::chrono::milliseconds(150);
  std::size_t checked = 0;
  while (Engine::Clock::now() < end) {
    const std::string stats = call(engine, "STATS shards=1");
    ASSERT_EQ(stats.rfind("OK", 0), 0u) << stats;
    for (std::size_t shard = 0; shard < 2; ++shard) {
      const std::string p = "s" + std::to_string(shard) + "_";
      const std::uint64_t accepted = field_value(stats, p + "accepted");
      const std::uint64_t settled = field_value(stats, p + "completed") +
                                    field_value(stats, p + "failed") +
                                    field_value(stats, p + "deadline") +
                                    field_value(stats, p + "depth");
      ASSERT_EQ(accepted, settled)
          << "torn shard " << shard << " snapshot: " << stats;
    }
    ++checked;
  }
  stop.store(true);
  for (std::thread& driver : drivers) driver.join();
  engine.begin_shutdown();
  engine.drain();
  EXPECT_GT(checked, 0u);
  EXPECT_GT(responses.load(), 0u);
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

// ---- Background re-optimizer attach/detach ---------------------------------

TEST(ReoptEngine, StartStatsStopLifecycle) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE city 40 5 seed=9").rfind("OK", 0), 0u);

  const std::string started =
      call(engine, "REOPT_START city moves=8 device_moves=2 window_s=0.5");
  ASSERT_EQ(started.rfind("OK", 0), 0u) << started;
  EXPECT_EQ(field_value(started, "running"), 1u);
  EXPECT_EQ(field_value(started, "moves_per_window"), 8u);
  EXPECT_EQ(field_value(started, "device_moves_per_window"), 2u);

  const std::string stats = call(engine, "REOPT_STATS city");
  ASSERT_EQ(stats.rfind("OK", 0), 0u) << stats;
  EXPECT_EQ(field_value(stats, "running"), 1u);
  // The ledger partition identity must hold in any sampled snapshot.
  EXPECT_EQ(field_value(stats, "proposed"),
            field_value(stats, "applied") +
                field_value(stats, "rejected_stale") +
                field_value(stats, "rejected_target_failed") +
                field_value(stats, "rejected_infeasible") +
                field_value(stats, "rejected_budget"));

  // Session STATS carries the optimizer ledger too.
  const std::string session_stats = call(engine, "STATS city");
  EXPECT_EQ(field_value(session_stats, "reopt_running"), 1u);

  const std::string stopped = call(engine, "REOPT_STOP city");
  ASSERT_EQ(stopped.rfind("OK", 0), 0u) << stopped;
  EXPECT_EQ(field_value(stopped, "running"), 0u);
  EXPECT_EQ(field_value(call(engine, "REOPT_STATS city"), "running"), 0u);
  // Idempotent: stopping a detached optimizer is still OK.
  EXPECT_EQ(call(engine, "REOPT_STOP city").rfind("OK", 0), 0u);

  engine.begin_shutdown();
  engine.drain();
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

TEST(ReoptEngine, StatsWithoutOptimizerReportZeros) {
  Engine engine(small_options());
  ASSERT_EQ(call(engine, "CONFIGURE quiet 30 4").rfind("OK", 0), 0u);
  const std::string stats = call(engine, "REOPT_STATS quiet");
  ASSERT_EQ(stats.rfind("OK", 0), 0u) << stats;
  EXPECT_EQ(field_value(stats, "running"), 0u);
  EXPECT_EQ(field_value(stats, "passes"), 0u);
  EXPECT_EQ(field_value(call(engine, "STATS quiet"), "reopt_running"), 0u);
}

TEST(ReoptEngine, VerbsRequireAnExistingSession) {
  Engine engine(small_options());
  EXPECT_EQ(call(engine, "REOPT_START ghost").rfind("ERR", 0), 0u);
  EXPECT_EQ(call(engine, "REOPT_STOP ghost").rfind("ERR", 0), 0u);
  EXPECT_EQ(call(engine, "REOPT_STATS ghost").rfind("ERR", 0), 0u);
}

TEST(ReoptEngine, AutoReoptAttachesOnConfigure) {
  EngineOptions options = small_options();
  options.auto_reopt = true;
  options.reopt.interval_ms = 1.0;
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE auto 40 5 seed=3").rfind("OK", 0), 0u);
  EXPECT_EQ(field_value(call(engine, "REOPT_STATS auto"), "running"), 1u);
  // Reconfiguring the session re-attaches a fresh optimizer.
  ASSERT_EQ(call(engine, "CONFIGURE auto 30 5 seed=4").rfind("OK", 0), 0u);
  EXPECT_EQ(field_value(call(engine, "REOPT_STATS auto"), "running"), 1u);
  engine.begin_shutdown();
  engine.drain();
}

// ---- Delay-oracle selection and stats --------------------------------------

TEST(OracleEngine, ConfigureReportsBackendAndStatsRespond) {
  Engine engine(small_options());
  const std::string ok =
      call(engine, "CONFIGURE city 40 5 seed=9 oracle=landmark,k=4,eps=0.2");
  ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
  EXPECT_NE(ok.find(" oracle=landmark"), std::string::npos) << ok;

  const std::string stats = call(engine, "ORACLE_STATS city");
  ASSERT_EQ(stats.rfind("OK", 0), 0u) << stats;
  EXPECT_NE(stats.find(" backend=landmark"), std::string::npos) << stats;
  // CONFIGURE solves the initial placement, so the oracle has been queried.
  EXPECT_GT(field_value(stats, "queries"), 0u);
  EXPECT_GT(field_value(stats, "rows"), 0u);
  EXPECT_GT(field_value(stats, "resident_bytes"), 0u);
  EXPECT_NE(stats.find(" width_hist="), std::string::npos) << stats;
}

TEST(OracleEngine, DefaultsToExactBackend) {
  Engine engine(small_options());
  const std::string ok = call(engine, "CONFIGURE city 30 4");
  ASSERT_EQ(ok.rfind("OK", 0), 0u) << ok;
  EXPECT_NE(ok.find(" oracle=exact"), std::string::npos) << ok;
  const std::string stats = call(engine, "ORACLE_STATS city");
  EXPECT_NE(stats.find(" backend=exact"), std::string::npos) << stats;
  // The exact backend certifies zero-width envelopes: no fallbacks recorded.
  EXPECT_EQ(field_value(stats, "exact_fallbacks"), 0u);
}

TEST(OracleEngine, EngineDefaultOracleAppliesWhenRequestOmitsIt) {
  EngineOptions options = small_options();
  options.default_oracle = "landmark,k=4";
  Engine engine(options);
  ASSERT_EQ(call(engine, "CONFIGURE city 30 4").rfind("OK", 0), 0u);
  const std::string stats = call(engine, "ORACLE_STATS city");
  EXPECT_NE(stats.find(" backend=landmark"), std::string::npos) << stats;
  // A per-request spec still wins over the engine-wide default.
  ASSERT_EQ(call(engine, "CONFIGURE other 30 4 oracle=exact").rfind("OK", 0),
            0u);
  EXPECT_NE(call(engine, "ORACLE_STATS other").find(" backend=exact"),
            std::string::npos);
}

TEST(OracleEngine, StatsRequireAnExistingSession) {
  Engine engine(small_options());
  EXPECT_EQ(call(engine, "ORACLE_STATS ghost").rfind("ERR", 0), 0u);
}

TEST(ReoptConcurrency, OptimizerRacesServingPathAndStats) {
  EngineOptions options = small_options();
  options.auto_reopt = true;
  options.reopt.interval_ms = 0.1;
  options.reopt.validate = true;  // bracket applies with check_invariants
  Engine engine(options);
  const std::vector<std::string> names = sessions_covering_all_shards(engine);
  for (const std::string& name : names) {
    ASSERT_EQ(
        call(engine, "CONFIGURE " + name + " 40 5 seed=6").rfind("OK", 0),
        0u);
  }
  engine.drain();

  // Closed-loop MOVE storm per session while the attached optimizers race
  // the drain tasks for the cluster mutex and STATS snapshots read the
  // optimizer ledgers concurrently.
  std::atomic<std::size_t> responded{0};
  std::size_t submitted = 0;
  constexpr std::size_t kPerSession = 120;
  for (std::size_t r = 0; r < kPerSession; ++r) {
    for (const std::string& name : names) {
      // Closed-loop window so admission never sees an overloaded queue.
      while (submitted - responded.load(std::memory_order_acquire) >= 32) {
        std::this_thread::yield();
      }
      Request move = must_parse("MOVE " + name + " " +
                                std::to_string(r % 40) + " 1.0 1.0");
      engine.submit(move, [&responded](const std::string& response) {
        EXPECT_EQ(response.rfind("OK", 0), 0u) << response;
        responded.fetch_add(1, std::memory_order_release);
      });
      ++submitted;
    }
    if (r % 10 == 0) {
      for (const std::string& name : names) {
        EXPECT_EQ(call(engine, "REOPT_STATS " + name).rfind("OK", 0), 0u);
      }
    }
  }
  engine.drain();
  EXPECT_EQ(responded.load(), kPerSession * names.size());
  engine.begin_shutdown();
  engine.drain();
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants();
}

}  // namespace
}  // namespace tacc::service
