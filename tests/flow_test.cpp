#include "flow/min_cost_flow.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace tacc::flow {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow net(2);
  const auto arc = net.add_arc(0, 1, 5.0, 2.0);
  const auto result = net.solve(0, 1, 3.0);
  EXPECT_TRUE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.flow, 3.0);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_DOUBLE_EQ(net.flow_on(arc), 3.0);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // 0→1→3 (cost 1+1) vs 0→2→3 (cost 5+5); cheap path capacity 2.
  MinCostFlow net(4);
  net.add_arc(0, 1, 2.0, 1.0);
  net.add_arc(1, 3, 2.0, 1.0);
  net.add_arc(0, 2, 10.0, 5.0);
  net.add_arc(2, 3, 10.0, 5.0);
  const auto result = net.solve(0, 3, 5.0);
  EXPECT_TRUE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.cost, 2.0 * 2.0 + 3.0 * 10.0);
}

TEST(MinCostFlow, StopsAtCut) {
  MinCostFlow net(3);
  net.add_arc(0, 1, 2.0, 1.0);
  net.add_arc(1, 2, 1.0, 1.0);  // bottleneck
  const auto result = net.solve(0, 2, 10.0);
  EXPECT_FALSE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.flow, 1.0);
}

TEST(MinCostFlow, ZeroRequestIsTrivial) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 1.0, 1.0);
  const auto result = net.solve(0, 1, 0.0);
  EXPECT_TRUE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.flow, 0.0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(MinCostFlow, UsesResidualRerouting) {
  // Classic residual case: naive greedy saturates 0→1→3 then needs 1→2
  // reversal. Min cost for 2 units must use both diagonal routes.
  //   0→1 (1 unit, cost 1), 0→2 (1, 2), 1→3 (1, 2), 2→3 (1, 1), 1→2 (1, 0)
  MinCostFlow net(4);
  net.add_arc(0, 1, 1.0, 1.0);
  net.add_arc(0, 2, 1.0, 2.0);
  net.add_arc(1, 3, 1.0, 2.0);
  net.add_arc(2, 3, 1.0, 1.0);
  net.add_arc(1, 2, 1.0, 0.0);
  const auto result = net.solve(0, 3, 2.0);
  EXPECT_TRUE(result.reached_target);
  // Optimal: 0→1→2→3 (cost 2) + 0→2? capacity 0→2 is 1 and 2→3 is 1 — so
  // 0→1→3 (3) + 0→2→3 (3) = 6, or 0→1→2→3 (2) + 0→2→3 blocked (2→3 full)
  // → 0→2 then 2→3 full… the optimum is 0→1→3 + 0→2→3 = 6 vs
  // 0→1→2→3 + 0→2→?→3 infeasible. Hence min cost = 6.
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
}

TEST(MinCostFlow, InputValidation) {
  MinCostFlow net(2);
  EXPECT_THROW(net.add_arc(0, 5, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(net.add_arc(0, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_arc(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.solve(0, 9, 1.0), std::out_of_range);
  EXPECT_THROW((void)net.flow_on(99), std::out_of_range);
}

// Property: on random transportation instances, MCMF matches a brute-force
// LP optimum computed by enumerating integral flows (demands all 1.0, so
// the optimal splittable solution is integral — transportation polytopes
// with integer supplies/demands have integral vertices).
class TransportationOptimum : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransportationOptimum, MatchesBruteForce) {
  util::Rng rng(GetParam());
  const std::size_t devices = 5;
  const std::size_t servers = 3;
  std::vector<std::vector<double>> cost(devices,
                                        std::vector<double>(servers));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(1.0, 10.0);
  }
  std::vector<double> capacity(servers, 2.0);  // total 6 ≥ 5 demands

  MinCostFlow net(devices + servers + 2);
  const auto source = static_cast<std::uint32_t>(devices + servers);
  const auto sink = source + 1;
  for (std::uint32_t i = 0; i < devices; ++i) {
    net.add_arc(source, i, 1.0, 0.0);
    for (std::uint32_t j = 0; j < servers; ++j) {
      net.add_arc(i, static_cast<std::uint32_t>(devices + j), 1.0,
                  cost[i][j]);
    }
  }
  for (std::uint32_t j = 0; j < servers; ++j) {
    net.add_arc(static_cast<std::uint32_t>(devices + j), sink, capacity[j],
                0.0);
  }
  const auto result = net.solve(source, sink, static_cast<double>(devices));
  ASSERT_TRUE(result.reached_target);

  // Brute force over all assignments respecting capacity 2 per server.
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(devices, 0);
  while (true) {
    std::vector<double> load(servers, 0.0);
    double total = 0.0;
    bool ok = true;
    for (std::size_t i = 0; i < devices; ++i) {
      load[choice[i]] += 1.0;
      total += cost[i][choice[i]];
      if (load[choice[i]] > capacity[choice[i]] + 1e-9) ok = false;
    }
    if (ok) best = std::min(best, total);
    std::size_t d = 0;
    while (d < devices && ++choice[d] == servers) {
      choice[d] = 0;
      ++d;
    }
    if (d == devices) break;
  }
  EXPECT_NEAR(result.cost, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportationOptimum,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace tacc::flow
