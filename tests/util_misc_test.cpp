// CSV, table, flags, logging, timer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace tacc::util {
namespace {

// ---- CSV -------------------------------------------------------------------

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, HeaderAndTypedRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "value"});
  writer.row("x", 1);
  writer.row("y", 2.5);
  EXPECT_EQ(out.str(), "name,value\nx,1\ny,2.5\n");
  EXPECT_EQ(writer.rows_written(), 3u);
}

TEST(CsvParse, SimpleFields) {
  const auto fields = csv_parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const auto fields = csv_parse_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  const auto fields = csv_parse_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = csv_parse_line("a,,b,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvParse, RoundTripThroughEscape) {
  const std::string nasty = "x\"y,z\nw";
  const auto fields = csv_parse_line(csv_escape(nasty));
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], nasty);
}

// ---- Table -----------------------------------------------------------------

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable table({"a", "long-header"});
  table.add_row({"wide-cell", "x"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("| wide-cell | x           |"), std::string::npos);
}

TEST(ConsoleTable, TitleIncluded) {
  ConsoleTable table({"c"});
  table.add_row({"1"});
  EXPECT_EQ(table.to_string("My Title").find("My Title"), 0u);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(ConsoleTable, ShortRowsPadded) {
  ConsoleTable table({"a", "b"});
  table.add_row({"only-one"});
  EXPECT_NE(table.to_string().find("only-one"), std::string::npos);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
}

TEST(FormatDouble, NanRendersDash) {
  EXPECT_EQ(format_double(std::nan(""), 2), "-");
}

// ---- Flags -----------------------------------------------------------------

TEST(Flags, ParsesKeyValueAndBare) {
  const char* argv[] = {"prog", "--n=5", "--verbose", "pos1"};
  const Flags flags = Flags::parse(4, argv);
  EXPECT_EQ(flags.get_int("n", 0), 5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags = Flags::parse(1, argv);
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("s", "d"), "d");
  EXPECT_FALSE(flags.get_bool("b", false));
}

TEST(Flags, TypedParsing) {
  const char* argv[] = {"prog", "--x=2.75", "--b=false", "--s=hello"};
  const Flags flags = Flags::parse(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 2.75);
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_EQ(flags.get_string("s", ""), "hello");
}

TEST(Flags, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  const Flags flags = Flags::parse(2, argv);
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
}

TEST(Flags, BadBooleanThrows) {
  const char* argv[] = {"prog", "--b=maybe"};
  const Flags flags = Flags::parse(2, argv);
  EXPECT_THROW((void)flags.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, BareDoubleDashThrows) {
  const char* argv[] = {"prog", "--"};
  EXPECT_THROW(Flags::parse(2, argv), std::invalid_argument);
}

TEST(Flags, UnusedDetection) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Flags flags = Flags::parse(3, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ---- Log / Timer -----------------------------------------------------------

TEST(Log, LevelGateHoldsAndRestores) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("suppressed at error level");  // must not crash
  set_log_level(before);
}

TEST(Timer, ElapsedIsMonotonicNonNegative) {
  WallTimer timer;
  const double a = timer.elapsed_seconds();
  const double b = timer.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  timer.reset();
  EXPECT_GE(timer.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace tacc::util
