#include "workload/provider.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/dynamic.hpp"
#include "core/scenario.hpp"
#include "service/protocol.hpp"
#include "workload/wire.hpp"

namespace tacc::workload {
namespace {

ProviderContext test_context(std::uint64_t seed = 7) {
  const Scenario scenario = Scenario::smart_city(30, 4, seed);
  return make_context(scenario.network(), scenario.workload(),
                      scenario.params().workload.area_km, seed);
}

/// Replays a stream against reference bookkeeping and fails on any
/// legality violation (the provider contract consumers rely on).
class StreamChecker {
 public:
  explicit StreamChecker(const ProviderContext& ctx)
      : live_(ctx.base_devices(), true),
        link_failed_(ctx.links.size(), false) {}

  void apply(const Event& event) {
    switch (event.kind) {
      case EventKind::kJoin:
        ASSERT_EQ(event.device, live_.size()) << "ids must be minted densely";
        ASSERT_GT(event.demand, 0.0);
        ASSERT_GT(event.rate_hz, 0.0);
        live_.push_back(true);
        break;
      case EventKind::kLeave:
        ASSERT_TRUE(is_live(event.device));
        live_[event.device] = false;
        break;
      case EventKind::kMove:
        ASSERT_TRUE(is_live(event.device));
        break;
      case EventKind::kDemandPulse:
        ASSERT_TRUE(is_live(event.device));
        ASSERT_GT(event.demand, 0.0);
        break;
      case EventKind::kLinkFail:
        ASSERT_LT(event.link, link_failed_.size());
        ASSERT_FALSE(link_failed_[event.link]);
        link_failed_[event.link] = true;
        break;
      case EventKind::kLinkRestore:
        ASSERT_LT(event.link, link_failed_.size());
        ASSERT_TRUE(link_failed_[event.link]);
        link_failed_[event.link] = false;
        break;
      case EventKind::kLinkSetLatency:
        ASSERT_LT(event.link, link_failed_.size());
        ASSERT_FALSE(link_failed_[event.link]);
        ASSERT_GT(event.latency_ms, 0.0);
        break;
    }
  }

  [[nodiscard]] std::size_t live_count() const {
    return static_cast<std::size_t>(
        std::count(live_.begin(), live_.end(), true));
  }

 private:
  [[nodiscard]] bool is_live(std::size_t id) const {
    return id < live_.size() && live_[id];
  }

  std::vector<bool> live_;
  std::vector<bool> link_failed_;
};

std::vector<Event> run_steps(WorkloadProvider& provider, int steps,
                             double dt_s) {
  std::vector<Event> all;
  for (int i = 0; i < steps; ++i) {
    for (const Event& event : provider.step(dt_s)) all.push_back(event);
  }
  return all;
}

TEST(MakeContext, SnapshotsScenario) {
  const Scenario scenario = Scenario::smart_city(30, 4, 7);
  const ProviderContext ctx = test_context(7);
  EXPECT_EQ(ctx.base_devices(), scenario.workload().iot.size());
  EXPECT_EQ(ctx.base_demands.size(), ctx.base_devices());
  EXPECT_EQ(ctx.base_rates_hz.size(), ctx.base_devices());
  EXPECT_EQ(ctx.links.size(),
            topo::backbone_links(scenario.network()).size());
  EXPECT_EQ(ctx.link_midpoints.size(), ctx.links.size());
  EXPECT_EQ(ctx.link_latency_ms.size(), ctx.links.size());
  for (const double latency : ctx.link_latency_ms) EXPECT_GT(latency, 0.0);
}

TEST(MakeContext, MismatchedWorkloadThrows) {
  const Scenario a = Scenario::smart_city(30, 4, 7);
  const Scenario b = Scenario::smart_city(31, 4, 7);
  EXPECT_THROW((void)make_context(a.network(), b.workload(), 10.0, 7),
               std::invalid_argument);
}

TEST(Registry, EveryNameConstructsAndRoundTrips) {
  const ProviderContext ctx = test_context();
  for (const std::string_view name : provider_names()) {
    auto provider = make_provider(name, ctx);
    ASSERT_NE(provider, nullptr) << name;
    EXPECT_EQ(provider->name(), name);
    EXPECT_EQ(provider->live_devices(), ctx.base_devices()) << name;
    EXPECT_EQ(provider->now_s(), 0.0) << name;
  }
}

TEST(Registry, UnknownNameThrowsListingKnown) {
  const ProviderContext ctx = test_context();
  try {
    (void)make_provider("bogus", ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("steady"), std::string::npos);
  }
}

TEST(Registry, UnknownParameterThrowsListingValid) {
  const ProviderContext ctx = test_context();
  try {
    (void)make_provider("steady,bogus_rate=3", ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("join_rate"), std::string::npos);
  }
}

TEST(Registry, MalformedSpecThrows) {
  const ProviderContext ctx = test_context();
  EXPECT_THROW((void)make_provider("steady,join_rate", ctx),
               std::invalid_argument);
  EXPECT_THROW((void)make_provider("steady,join_rate=abc", ctx),
               std::invalid_argument);
  EXPECT_THROW((void)make_provider("steady,=3", ctx), std::invalid_argument);
}

TEST(Registry, ParametersChangeTheStream) {
  const ProviderContext ctx = test_context();
  auto slow = make_provider("steady,join_rate=0.1", ctx);
  auto fast = make_provider("steady,join_rate=50", ctx);
  EXPECT_NE(run_steps(*slow, 20, 1.0).size(),
            run_steps(*fast, 20, 1.0).size());
}

TEST(Provider, DeterministicPerSpecAndSeed) {
  for (const std::string_view name : provider_names()) {
    const ProviderContext ctx = test_context(11);
    auto a = make_provider(name, ctx);
    auto b = make_provider(name, ctx);
    EXPECT_EQ(run_steps(*a, 50, 0.5), run_steps(*b, 50, 0.5)) << name;
    EXPECT_EQ(a->now_s(), b->now_s());
    EXPECT_EQ(a->live_devices(), b->live_devices());
  }
}

TEST(Provider, DifferentSeedsDiverge) {
  auto a = make_provider("steady", test_context(1));
  auto b = make_provider("steady", test_context(2));
  EXPECT_NE(run_steps(*a, 20, 1.0), run_steps(*b, 20, 1.0));
}

TEST(Provider, StreamsAreLegalAndLiveCountsAgree) {
  for (const std::string_view name : provider_names()) {
    const ProviderContext ctx = test_context(13);
    auto provider = make_provider(
        name == "steady" ? std::string_view("steady,link_rate=1") : name,
        ctx);
    StreamChecker checker(ctx);
    for (int i = 0; i < 120; ++i) {
      for (const Event& event : provider->step(1.0)) {
        checker.apply(event);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    EXPECT_EQ(checker.live_count(), provider->live_devices()) << name;
    // No provider drains the cluster below half its base population.
    EXPECT_GE(provider->live_devices(), ctx.base_devices() / 2) << name;
    EXPECT_DOUBLE_EQ(provider->now_s(), 120.0) << name;
  }
}

TEST(Provider, MobilityTraceOnlyMovesBaseDevices) {
  const ProviderContext ctx = test_context();
  auto provider = make_provider("mobility_trace", ctx);
  const std::vector<Event> events = run_steps(*provider, 30, 1.0);
  EXPECT_FALSE(events.empty());
  for (const Event& event : events) {
    EXPECT_EQ(event.kind, EventKind::kMove);
    EXPECT_LT(event.device, ctx.base_devices());
  }
  EXPECT_EQ(provider->live_devices(), ctx.base_devices());
}

TEST(Provider, RegionalLinkFailureFailsAndRestoresInReverse) {
  const ProviderContext ctx = test_context();
  auto provider = make_provider(
      "regional_link_failure,outage_every_s=5,outage_s=3,reweight_rate=0",
      ctx);
  const std::vector<Event> events = run_steps(*provider, 60, 1.0);
  std::vector<std::size_t> failed;
  bool saw_outage = false;
  for (const Event& event : events) {
    if (event.kind == EventKind::kLinkFail) {
      failed.push_back(event.link);
      saw_outage = true;
    } else if (event.kind == EventKind::kLinkRestore) {
      ASSERT_FALSE(failed.empty());
      EXPECT_EQ(event.link, failed.back()) << "restore must run in reverse";
      failed.pop_back();
    }
  }
  EXPECT_TRUE(saw_outage);
}

TEST(Provider, NonPositiveDtThrows) {
  auto provider = make_provider("steady", test_context());
  EXPECT_THROW((void)provider->step(0.0), std::invalid_argument);
  EXPECT_THROW((void)provider->step(-1.0), std::invalid_argument);
}

// ---- reopt_pause quiet windows ---------------------------------------------

TEST(ReoptPause, QuietWindowsSuppressEventsButAdvanceClock) {
  const ProviderContext ctx = test_context(31);
  auto provider =
      make_provider("steady,reopt_pause=2,reopt_active_s=3", ctx);
  // Cycle of 5 s: steps starting at phase 0,1,2 are active, 3,4 quiet.
  for (int step = 0; step < 20; ++step) {
    const double phase = std::fmod(provider->now_s(), 5.0);
    const std::vector<Event> events = provider->step(1.0);
    if (phase >= 3.0) {
      EXPECT_TRUE(events.empty())
          << "quiet step at t=" << provider->now_s() - 1.0 << " emitted "
          << events.size() << " events";
    }
  }
  EXPECT_DOUBLE_EQ(provider->now_s(), 20.0);
}

TEST(ReoptPause, StreamStaysDeterministic) {
  const std::string spec = "diurnal,reopt_pause=2,reopt_active_s=3";
  auto a = make_provider(spec, test_context(32));
  auto b = make_provider(spec, test_context(32));
  for (int step = 0; step < 15; ++step) {
    const std::vector<Event> ea = a->step(1.0);
    const std::vector<Event> eb = b->step(1.0);
    ASSERT_EQ(ea.size(), eb.size()) << "step " << step;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].kind, eb[i].kind);
      EXPECT_EQ(ea[i].device, eb[i].device);
    }
  }
}

TEST(ReoptPause, EveryProviderAcceptsTheSharedParams) {
  const ProviderContext ctx = test_context(33);
  for (const std::string name :
       {"steady", "diurnal", "flash_crowd", "mobility_trace",
        "regional_link_failure", "hotspot_adversary"}) {
    auto provider =
        make_provider(name + ",reopt_pause=1,reopt_active_s=2", ctx);
    for (int step = 0; step < 6; ++step) (void)provider->step(1.0);
    EXPECT_DOUBLE_EQ(provider->now_s(), 6.0) << name;
  }
}

TEST(ReoptPause, InvalidParametersThrow) {
  const ProviderContext ctx = test_context(34);
  EXPECT_THROW((void)make_provider("steady,reopt_pause=-1", ctx),
               std::invalid_argument);
  EXPECT_THROW(
      (void)make_provider("steady,reopt_pause=1,reopt_active_s=0", ctx),
      std::invalid_argument);
}

TEST(EventKindNames, AllDistinct) {
  EXPECT_EQ(to_string(EventKind::kJoin), "join");
  EXPECT_EQ(to_string(EventKind::kDemandPulse), "demand_pulse");
  EXPECT_EQ(to_string(EventKind::kLinkSetLatency), "link_set_latency");
}

// ---- WireAdapter ----------------------------------------------------------

TEST(WireAdapter, RendersHandBuiltSequence) {
  ProviderContext ctx;
  ctx.base_positions = {{1.0, 1.0}, {2.0, 2.0}};
  ctx.base_demands = {1.0, 1.0};
  ctx.base_rates_hz = {5.0, 5.0};
  ctx.links = {{3, 4}};
  ctx.link_midpoints = {{0.0, 0.0}};
  ctx.link_latency_ms = {2.0};
  WireAdapter adapter(ctx, "s");

  Event join;
  join.kind = EventKind::kJoin;
  join.device = 2;
  join.position = {0.5, 0.25};
  join.rate_hz = 4.0;
  join.demand = 2.0;
  EXPECT_EQ(adapter.render(join),
            std::vector<std::string>{"JOIN s 0.5 0.25 demand=2 rate=4"});
  EXPECT_EQ(adapter.slot_of(2), 2u);  // minted past the base population

  Event leave;
  leave.kind = EventKind::kLeave;
  leave.device = 0;
  EXPECT_EQ(adapter.render(leave), std::vector<std::string>{"LEAVE s 0"});

  // Next join recycles slot 0 (LIFO), exactly like DynamicCluster.
  Event join2 = join;
  join2.device = 3;
  EXPECT_EQ(adapter.render(join2),
            std::vector<std::string>{"JOIN s 0.5 0.25 demand=2 rate=4"});
  EXPECT_EQ(adapter.slot_of(3), 0u);

  Event move;
  move.kind = EventKind::kMove;
  move.device = 1;
  move.position = {3.0, 4.0};
  EXPECT_EQ(adapter.render(move), std::vector<std::string>{"MOVE s 1 3 4"});

  Event fail;
  fail.kind = EventKind::kLinkFail;
  fail.link = 0;
  EXPECT_EQ(adapter.render(fail),
            std::vector<std::string>{"LINK_FAIL s 3 4"});
  Event set;
  set.kind = EventKind::kLinkSetLatency;
  set.link = 0;
  set.latency_ms = 2.5;
  EXPECT_EQ(adapter.render(set),
            std::vector<std::string>{"LINK_SET s 3 4 2.5"});

  EXPECT_EQ(adapter.slots_ever(), 3u);
}

TEST(WireAdapter, DemandPulseRendersLeaveJoinIntoSameSlot) {
  ProviderContext ctx;
  ctx.base_positions = {{1.0, 1.0}};
  ctx.base_demands = {1.0};
  ctx.base_rates_hz = {5.0};
  WireAdapter adapter(ctx, "s");

  Event pulse;
  pulse.kind = EventKind::kDemandPulse;
  pulse.device = 0;
  pulse.position = {1.0, 1.0};
  pulse.rate_hz = 5.0;
  pulse.demand = 3.0;
  const std::vector<std::string> lines = adapter.render(pulse);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "LEAVE s 0");
  EXPECT_EQ(lines[1], "JOIN s 1 1 demand=3 rate=5");
  EXPECT_EQ(adapter.slot_of(0), 0u);  // back in its slot
  EXPECT_EQ(adapter.slots_ever(), 1u);
}

TEST(WireAdapter, DeadDeviceThrows) {
  ProviderContext ctx;
  ctx.base_positions = {{1.0, 1.0}};
  ctx.base_demands = {1.0};
  ctx.base_rates_hz = {5.0};
  WireAdapter adapter(ctx, "s");
  Event leave;
  leave.kind = EventKind::kLeave;
  leave.device = 0;
  (void)adapter.render(leave);
  EXPECT_THROW((void)adapter.slot_of(0), std::out_of_range);
  EXPECT_THROW((void)adapter.render(leave), std::out_of_range);
}

TEST(WireAdapter, RenderedLinesParse) {
  const ProviderContext ctx = test_context();
  auto provider = make_provider("steady,link_rate=1", ctx);
  WireAdapter adapter(ctx, "sess");
  const auto parse_ok = [](const std::string& line) {
    const service::ParseResult parsed = service::parse_request(line);
    EXPECT_TRUE(parsed.ok()) << line << ": " << parsed.error;
  };
  parse_ok(adapter.configure_line(ctx.base_devices(), 4, 7, "greedy-bestfit",
                                  "smart_city"));
  for (int i = 0; i < 40; ++i) {
    for (const std::string& line : adapter.render(provider->step(1.0))) {
      parse_ok(line);
    }
  }
}

// The load-bearing parity property: the adapter's predicted slots match the
// indices a real DynamicCluster assigns when the same stream is applied
// directly (pulses applied as leave()+join(), exactly as documented).
TEST(WireAdapter, SlotPredictionsMatchDynamicCluster) {
  const std::uint64_t seed = 21;
  const Scenario scenario = Scenario::smart_city(24, 4, seed);
  const ProviderContext ctx =
      make_context(scenario.network(), scenario.workload(),
                   scenario.params().workload.area_km, seed);
  DynamicCluster cluster(scenario, Algorithm::kGreedyBestFit);
  auto provider = make_provider("steady,link_rate=0.5", ctx);
  WireAdapter adapter(ctx, "s");

  for (int step = 0; step < 60; ++step) {
    for (const Event& event : provider->step(1.0)) {
      switch (event.kind) {
        case EventKind::kJoin: {
          (void)adapter.render(event);
          IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          const JoinResult result = cluster.join(device);
          ASSERT_EQ(result.device_index, adapter.slot_of(event.device));
          break;
        }
        case EventKind::kLeave: {
          const std::size_t slot = adapter.slot_of(event.device);
          (void)adapter.render(event);
          cluster.leave(slot);
          break;
        }
        case EventKind::kMove: {
          const std::size_t slot = adapter.slot_of(event.device);
          (void)adapter.render(event);
          (void)cluster.move(slot, event.position);
          break;
        }
        case EventKind::kDemandPulse: {
          const std::size_t slot = adapter.slot_of(event.device);
          (void)adapter.render(event);
          cluster.leave(slot);
          IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          const JoinResult result = cluster.join(device);
          ASSERT_EQ(result.device_index, slot);
          ASSERT_EQ(result.device_index, adapter.slot_of(event.device));
          break;
        }
        case EventKind::kLinkFail: {
          (void)adapter.render(event);
          const auto& [u, v] = ctx.links[event.link];
          (void)cluster.fail_link(u, v);
          break;
        }
        case EventKind::kLinkRestore: {
          (void)adapter.render(event);
          const auto& [u, v] = ctx.links[event.link];
          (void)cluster.restore_link(u, v);
          break;
        }
        case EventKind::kLinkSetLatency: {
          (void)adapter.render(event);
          const auto& [u, v] = ctx.links[event.link];
          (void)cluster.set_link_latency(u, v, event.latency_ms);
          break;
        }
      }
    }
  }
  EXPECT_EQ(adapter.slots_ever(), cluster.device_slot_count());
  cluster.check_invariants();
}

}  // namespace
}  // namespace tacc::workload
