#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tacc::runtime {
namespace {

TEST(RuntimeThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(RuntimeThreadPool, RunsEverySubmittedJobExactlyOnce) {
  constexpr std::size_t kJobs = 200;
  std::vector<std::atomic<int>> hits(kJobs);
  ThreadPool pool(4);
  for (std::size_t i = 0; i < kJobs; ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(RuntimeThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&] { counter.fetch_add(1); });
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3);
  pool.wait_idle();  // idempotent on an empty queue
  EXPECT_EQ(counter.load(), 3);
}

TEST(RuntimeThreadPool, RethrowsFirstExceptionBySubmissionOrder) {
  ThreadPool pool(4);
  std::atomic<int> survivors{0};
  pool.submit([&] { survivors.fetch_add(1); });
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  pool.submit([&] { survivors.fetch_add(1); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  EXPECT_EQ(survivors.load(), 2);  // non-throwing jobs still ran
  // The pool stays usable after an exception.
  pool.submit([&] { survivors.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(survivors.load(), 3);
}

TEST(RuntimeThreadPool, DestructorDrainsWithoutWaitIdle) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor must join without losing queued work or deadlocking
  EXPECT_EQ(counter.load(), 50);
}

TEST(RuntimeParallelFor, CoversEveryIndexOnceAtAnyWidth) {
  constexpr std::size_t kCount = 137;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(RuntimeParallelFor, ZeroAndSingleCountsAreSafe) {
  parallel_for(0, 8, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RuntimeParallelFor, RethrowsFirstExceptionByIndex) {
  try {
    parallel_for(64, 4, [](std::size_t i) {
      if (i == 7) throw std::runtime_error("seven");
      if (i == 40) throw std::runtime_error("forty");
    });
    FAIL() << "parallel_for should rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "seven");
  }
}

}  // namespace
}  // namespace tacc::runtime
