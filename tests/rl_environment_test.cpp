#include "rl/environment.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::rl {
namespace {

EnvOptions small_env_options() {
  EnvOptions options;
  options.candidate_count = 3;
  options.load_buckets = 2;
  options.demand_buckets = 2;
  options.spread_buckets = 2;
  return options;
}

TEST(Environment, StateCountFormula) {
  const gap::Instance inst = test::small_instance(1, 20, 5);
  AssignmentEnv env(inst, small_env_options(), 1);
  // demand(2) × spread(2) × load_buckets(2)^K(3) = 32.
  EXPECT_EQ(env.state_count(), 32u);
  EXPECT_EQ(env.action_count(), 3u);
}

TEST(Environment, CandidateCountClampedToServers) {
  const gap::Instance inst = test::small_instance(2, 10, 2);
  EnvOptions options = small_env_options();
  options.candidate_count = 10;
  AssignmentEnv env(inst, options, 1);
  EXPECT_EQ(env.action_count(), 2u);
}

TEST(Environment, ZeroCandidatesThrows) {
  const gap::Instance inst = test::small_instance(3, 10, 2);
  EnvOptions options;
  options.candidate_count = 0;
  EXPECT_THROW(AssignmentEnv(inst, options, 1), std::invalid_argument);
}

TEST(Environment, EpisodeAssignsEveryDevice) {
  const gap::Instance inst = test::small_instance(4, 25, 5, 0.5);
  AssignmentEnv env(inst, small_env_options(), 7);
  std::size_t steps = 0;
  while (!env.done()) {
    EXPECT_LT(env.state(), env.state_count());
    (void)env.step(0);
    ++steps;
  }
  EXPECT_EQ(steps, inst.device_count());
  for (std::int32_t x : env.assignment()) EXPECT_NE(x, gap::kUnassigned);
  EXPECT_THROW((void)env.step(0), std::logic_error);
  EXPECT_THROW((void)env.state(), std::logic_error);
}

TEST(Environment, EpisodeCostMatchesEvaluate) {
  const gap::Instance inst = test::small_instance(5, 25, 5, 0.5);
  AssignmentEnv env(inst, small_env_options(), 7);
  while (!env.done()) (void)env.step(env.feasible_mask() & 1 ? 0 : 1);
  const gap::Evaluation ev = gap::evaluate(inst, env.assignment());
  EXPECT_NEAR(ev.total_cost, env.episode_cost(), 1e-9);
  EXPECT_EQ(env.episode_feasible(), ev.feasible);
}

TEST(Environment, ResetClearsEpisodeState) {
  const gap::Instance inst = test::small_instance(6, 15, 4, 0.5);
  AssignmentEnv env(inst, small_env_options(), 7);
  while (!env.done()) (void)env.step(0);
  const double first_cost = env.episode_cost();
  EXPECT_GT(first_cost, 0.0);
  env.reset();
  EXPECT_FALSE(env.done());
  EXPECT_DOUBLE_EQ(env.episode_cost(), 0.0);
  EXPECT_EQ(env.violations(), 0u);
}

TEST(Environment, ActionZeroIsLowestDelayCandidate) {
  const gap::Instance inst = test::small_instance(7, 15, 4, 0.3);
  EnvOptions options = small_env_options();
  options.shuffle_order = false;
  AssignmentEnv env(inst, options, 7);
  // With order unshuffled, the first device is device 0.
  const gap::ServerIndex server = env.action_server(0);
  EXPECT_EQ(server, inst.servers_by_delay(0)[0]);
  EXPECT_THROW((void)env.action_server(99), std::out_of_range);
}

TEST(Environment, FeasibleMaskReflectsCapacity) {
  // One tiny server and one huge server: once the tiny one fills, its bit
  // must drop out of the mask.
  topo::DelayMatrix delay(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    delay.set(i, 0, 1.0);   // everyone prefers server 0
    delay.set(i, 1, 10.0);
  }
  const gap::Instance inst(std::move(delay), {},
                           std::vector<double>{1.0, 1.0, 1.0},
                           std::vector<double>{1.0, 10.0});
  EnvOptions options;
  options.candidate_count = 2;
  options.shuffle_order = false;
  AssignmentEnv env(inst, options, 1);
  EXPECT_EQ(env.feasible_mask(), 0b11u);
  (void)env.step(0);  // fills server 0
  EXPECT_EQ(env.feasible_mask(), 0b10u);
}

TEST(Environment, RedirectsInsteadOfOverloading) {
  // Server 0 fits one device; choosing action 0 twice must redirect the
  // second device to server 1 rather than overload server 0.
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 5.0);
  delay.set(1, 0, 1.0);
  delay.set(1, 1, 5.0);
  const gap::Instance inst(std::move(delay), {},
                           std::vector<double>{1.0, 1.0},
                           std::vector<double>{1.0, 5.0});
  EnvOptions options;
  options.candidate_count = 1;  // only the nearest server is offered
  options.shuffle_order = false;
  AssignmentEnv env(inst, options, 1);
  const double r1 = env.step(0);
  const double r2 = env.step(0);
  EXPECT_TRUE(env.episode_feasible());
  EXPECT_EQ(env.violations(), 0u);
  EXPECT_LT(r2, r1);  // redirect penalty applied
  EXPECT_EQ(env.assignment()[1], 1);
}

TEST(Environment, TrueOverloadCountsViolation) {
  // No server can fit the second device anywhere.
  topo::DelayMatrix delay(2, 1, 1.0);
  const gap::Instance inst(std::move(delay), {},
                           std::vector<double>{1.0, 1.0},
                           std::vector<double>{1.5});
  EnvOptions options;
  options.candidate_count = 1;
  options.shuffle_order = false;
  AssignmentEnv env(inst, options, 1);
  (void)env.step(0);
  (void)env.step(0);
  EXPECT_FALSE(env.episode_feasible());
  EXPECT_EQ(env.violations(), 1u);
}

TEST(Environment, CostScaleIsMeanMinCost) {
  const auto trap = gap::crafted_greedy_trap();
  AssignmentEnv env(trap.instance, small_env_options(), 1);
  EXPECT_NEAR(env.cost_scale(), (1.0 + 2.0) / 2.0, 1e-12);
}

TEST(Environment, ShuffleChangesOrderAcrossEpisodes) {
  const gap::Instance inst = test::small_instance(8, 30, 4, 0.3);
  EnvOptions options = small_env_options();
  options.shuffle_order = true;
  AssignmentEnv env(inst, options, 3);
  // Act greedily twice; identical actions but shuffled orders should make
  // at least one device land differently across episodes with high
  // probability when capacities bind differently. Instead verify more
  // directly: the sequence of states differs between episodes.
  std::vector<std::size_t> states1, states2;
  while (!env.done()) {
    states1.push_back(env.state());
    (void)env.step(0);
  }
  env.reset();
  while (!env.done()) {
    states2.push_back(env.state());
    (void)env.step(0);
  }
  EXPECT_NE(states1, states2);
}

}  // namespace
}  // namespace tacc::rl
