// Move-plan tests: BudgetLedger window metering and the apply_move_plan
// failure paths the background re-optimizer depends on — stale plans
// (device gone / slot recycled / from mismatch / malformed), targets that
// failed mid-plan, headroom loss, and budget-exhausted partial
// application. Every rejection path must leave check_invariants() clean:
// a rejected move is a no-op, never a half-applied one.
#include "core/move_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "core/dynamic.hpp"
#include "util/contracts.hpp"

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed, std::size_t iot = 40,
                            std::size_t edge = 6) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

workload::IotDevice test_device(double x, double y, double rate = 10.0) {
  workload::IotDevice device;
  device.position = {x, y};
  device.request_rate_hz = rate;
  device.demand = rate;
  return device;
}

/// A healthy server != `not_this` with headroom for `demand`, or
/// server_count() when none exists.
std::size_t feasible_target(const DynamicCluster& cluster, std::size_t device,
                            std::size_t not_this) {
  const double demand = cluster.device(device).demand;
  for (std::size_t j = 0; j < cluster.server_count(); ++j) {
    if (j == not_this || cluster.server_failed(j)) continue;
    if (cluster.loads()[j] + demand <= cluster.capacities()[j]) return j;
  }
  return cluster.server_count();
}

/// One correctly-stamped move of `device` to `to`.
PlannedMove stamped_move(const DynamicCluster& cluster, std::size_t device,
                         std::size_t to) {
  return {device, cluster.slot_generation(device), cluster.server_of(device),
          to, 0.0};
}

TEST(MovePlan, PredictedGainSumsOverMoves) {
  MovePlan plan;
  EXPECT_TRUE(plan.empty());
  plan.moves.push_back({0, 0, 0, 1, 1.5});
  plan.moves.push_back({1, 0, 1, 0, 2.25});
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.predicted_gain(), 3.75);
}

TEST(BudgetLedger, MetersGlobalAndPerDeviceCaps) {
  BudgetLedger ledger(MigrationBudget{2, 1, 1.0});
  ledger.advance(0.0);
  EXPECT_EQ(ledger.remaining(), 2u);
  EXPECT_TRUE(ledger.allows(5));
  ledger.charge(5);
  // Device 5 hit its per-device cap; the global window still has headroom.
  EXPECT_FALSE(ledger.allows(5));
  EXPECT_TRUE(ledger.allows(7));
  ledger.charge(7);
  EXPECT_EQ(ledger.remaining(), 0u);
  EXPECT_FALSE(ledger.allows(9));
}

TEST(BudgetLedger, WindowRollResetsSpend) {
  BudgetLedger ledger(MigrationBudget{1, 1, 1.0});
  ledger.advance(0.0);
  ledger.charge(3);
  EXPECT_EQ(ledger.remaining(), 0u);
  // Same window: nothing resets.
  ledger.advance(0.9);
  EXPECT_EQ(ledger.remaining(), 0u);
  EXPECT_FALSE(ledger.allows(3));
  // Next window: both the global and the per-device spend reset.
  ledger.advance(1.1);
  EXPECT_EQ(ledger.remaining(), 1u);
  EXPECT_TRUE(ledger.allows(3));
  EXPECT_EQ(ledger.window_index(), 1u);
}

TEST(ApplyMovePlan, AppliesValidMoveAndScoresLiveGain) {
  DynamicCluster cluster = make_cluster(11);
  const std::size_t device = 0;
  const std::size_t from = cluster.server_of(device);
  const std::size_t to = feasible_target(cluster, device, from);
  ASSERT_LT(to, cluster.server_count());
  const double expected_gain =
      cluster.placement_cost(device, from) - cluster.placement_cost(device, to);
  const std::uint64_t version = cluster.assignment_version();

  MovePlan plan;
  plan.moves.push_back(stamped_move(cluster, device, to));
  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_DOUBLE_EQ(report.achieved_gain, expected_gain);
  EXPECT_EQ(cluster.server_of(device), to);
  EXPECT_GT(cluster.assignment_version(), version);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsDepartedDeviceAsStale) {
  DynamicCluster cluster = make_cluster(12);
  const std::size_t device = 3;
  MovePlan plan;
  plan.moves.push_back(stamped_move(
      cluster, device,
      feasible_target(cluster, device, cluster.server_of(device))));
  cluster.leave(device);

  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rejected_stale, 1u);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsRecycledSlotAsStale) {
  DynamicCluster cluster = make_cluster(13);
  const std::size_t device = 5;
  MovePlan plan;
  plan.moves.push_back(stamped_move(
      cluster, device,
      feasible_target(cluster, device, cluster.server_of(device))));

  // LIFO slot recycling: the departing device's slot is handed to the next
  // joiner, so the plan's index now names a different device (ABA). The
  // generation stamp must catch it even when `from` happens to match.
  cluster.leave(device);
  const JoinResult joined = cluster.join(test_device(1.0, 1.0));
  ASSERT_EQ(joined.device_index, device) << "expected LIFO slot reuse";

  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rejected_stale, 1u);
  EXPECT_EQ(cluster.server_of(device), joined.server);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsMovedDeviceAsStale) {
  DynamicCluster cluster = make_cluster(14);
  const std::size_t device = 2;
  const std::size_t to =
      feasible_target(cluster, device, cluster.server_of(device));
  ASSERT_LT(to, cluster.server_count());
  MovePlan plan;
  plan.moves.push_back(stamped_move(cluster, device, to));
  ASSERT_EQ(cluster.apply_move_plan(plan).applied, 1u);

  // Replaying the same plan: the device no longer sits on `from`.
  const MovePlanReport replay = cluster.apply_move_plan(plan);
  EXPECT_EQ(replay.applied, 0u);
  EXPECT_EQ(replay.rejected_stale, 1u);
  EXPECT_EQ(cluster.server_of(device), to);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsMalformedMovesAsStale) {
  DynamicCluster cluster = make_cluster(15);
  MovePlan plan;
  // Self-move, out-of-range device, out-of-range target.
  plan.moves.push_back(stamped_move(cluster, 0, cluster.server_of(0)));
  plan.moves.push_back({cluster.device_slot_count() + 7, 0, 0, 1, 0.0});
  plan.moves.push_back(
      {1, cluster.slot_generation(1), cluster.server_of(1),
       cluster.server_count(), 0.0});
  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rejected_stale, 3u);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsTargetFailedMidPlanAppliesRest) {
  DynamicCluster cluster = make_cluster(16);
  const std::size_t doomed = cluster.server_of(0) == 0 ? 1 : 0;

  // Propose two moves while `doomed` is healthy: one into it, one between
  // two other servers. Pick movers that are NOT residents of `doomed`, so
  // the evacuation on failure cannot invalidate their `from` stamps.
  std::size_t into_doomed = cluster.device_slot_count();
  std::size_t bystander = cluster.device_slot_count();
  for (std::size_t i = 0; i < cluster.device_slot_count(); ++i) {
    if (!cluster.is_active(i) || cluster.server_of(i) == doomed) continue;
    if (into_doomed == cluster.device_slot_count()) {
      into_doomed = i;
    } else if (feasible_target(cluster, i, doomed) <
                   cluster.server_count() &&
               feasible_target(cluster, i, doomed) != cluster.server_of(i)) {
      bystander = i;
      break;
    }
  }
  ASSERT_LT(into_doomed, cluster.device_slot_count());
  ASSERT_LT(bystander, cluster.device_slot_count());

  MovePlan plan;
  plan.moves.push_back(stamped_move(cluster, into_doomed, doomed));
  const std::size_t bystander_to =
      feasible_target(cluster, bystander, doomed);
  plan.moves.push_back(stamped_move(cluster, bystander, bystander_to));

  // The target fails between proposal and apply. Deferred drain keeps the
  // other servers' loads untouched, so only the failure itself can reject
  // a move.
  (void)cluster.fail_server(doomed, /*evacuate=*/false);
  const MovePlanReport report = cluster.apply_move_plan(plan);
  EXPECT_EQ(report.rejected_target_failed, 1u);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_NE(cluster.server_of(into_doomed), doomed);
  EXPECT_EQ(cluster.server_of(bystander), bystander_to);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, RejectsTargetWithoutHeadroom) {
  DynamicCluster cluster = make_cluster(17);
  // Pack server `target` through valid plans until some device no longer
  // fits, then attempt exactly that move.
  const std::size_t target = 0;
  bool saw_infeasible = false;
  for (std::size_t i = 0; i < cluster.device_slot_count(); ++i) {
    if (!cluster.is_active(i) || cluster.server_of(i) == target) continue;
    MovePlan plan;
    plan.moves.push_back(stamped_move(cluster, i, target));
    const MovePlanReport report = cluster.apply_move_plan(plan);
    if (report.rejected_infeasible == 1) {
      saw_infeasible = true;
      EXPECT_EQ(report.applied, 0u);
      EXPECT_NE(cluster.server_of(i), target);
      break;
    }
    ASSERT_EQ(report.applied, 1u);
  }
  EXPECT_TRUE(saw_infeasible)
      << "packing one server never exhausted its capacity";
  EXPECT_TRUE(cluster.feasible());
  cluster.check_invariants({.require_feasible = true});
}

TEST(ApplyMovePlan, BudgetExhaustionAppliesPrefixOnly) {
  DynamicCluster cluster = make_cluster(18);
  std::size_t first = cluster.device_slot_count();
  std::size_t second = cluster.device_slot_count();
  for (std::size_t i = 0; i < cluster.device_slot_count(); ++i) {
    if (!cluster.is_active(i)) continue;
    if (feasible_target(cluster, i, cluster.server_of(i)) >=
        cluster.server_count()) {
      continue;
    }
    if (first == cluster.device_slot_count()) {
      first = i;
    } else {
      second = i;
      break;
    }
  }
  ASSERT_LT(second, cluster.device_slot_count());

  MovePlan plan;
  plan.moves.push_back(stamped_move(
      cluster, first, feasible_target(cluster, first, cluster.server_of(first))));
  plan.moves.push_back(stamped_move(
      cluster, second,
      feasible_target(cluster, second, cluster.server_of(second))));

  BudgetLedger ledger(MigrationBudget{1, 1, 1'000.0});
  ledger.advance(0.0);
  const MovePlanReport report = cluster.apply_move_plan(plan, &ledger);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.rejected_budget, 1u);
  EXPECT_EQ(ledger.remaining(), 0u);
  // The prefix landed, the rejected tail did not.
  EXPECT_NE(cluster.server_of(first),
            plan.moves[0].from);
  EXPECT_EQ(cluster.server_of(second), plan.moves[1].from);
  cluster.check_invariants();
}

TEST(ApplyMovePlan, PerDeviceBudgetStopsRepeatMover) {
  DynamicCluster cluster = make_cluster(19);
  const std::size_t device = 4;
  const std::size_t from = cluster.server_of(device);
  const std::size_t to = feasible_target(cluster, device, from);
  ASSERT_LT(to, cluster.server_count());

  BudgetLedger ledger(MigrationBudget{10, 1, 1'000.0});
  ledger.advance(0.0);
  MovePlan out;
  out.moves.push_back(stamped_move(cluster, device, to));
  ASSERT_EQ(cluster.apply_move_plan(out, &ledger).applied, 1u);

  // Bouncing straight back is a fresh, correctly-stamped move — only the
  // per-device rate cap stands in its way.
  MovePlan back;
  back.moves.push_back(stamped_move(cluster, device, from));
  const MovePlanReport report = cluster.apply_move_plan(back, &ledger);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rejected_budget, 1u);
  EXPECT_EQ(cluster.server_of(device), to);
  cluster.check_invariants();
}

}  // namespace
}  // namespace tacc
