#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace tacc::workload {
namespace {

WorkloadParams base_params() {
  WorkloadParams params;
  params.iot_count = 200;
  params.edge_count = 10;
  params.area_km = 10.0;
  return params;
}

TEST(Workload, CountsMatchParams) {
  util::Rng rng(1);
  const Workload w = generate_workload(base_params(), rng);
  EXPECT_EQ(w.iot.size(), 200u);
  EXPECT_EQ(w.edges.size(), 10u);
}

TEST(Workload, LoadFactorHitsTargetExactly) {
  for (double target : {0.4, 0.7, 0.95}) {
    WorkloadParams params = base_params();
    params.load_factor = target;
    util::Rng rng(2);
    const Workload w = generate_workload(params, rng);
    EXPECT_NEAR(w.load_factor(), target, 1e-9);
  }
}

TEST(Workload, PositionsInsideArea) {
  util::Rng rng(3);
  const Workload w = generate_workload(base_params(), rng);
  for (const auto& d : w.iot) {
    EXPECT_GE(d.position.x, 0.0);
    EXPECT_LE(d.position.x, 10.0);
    EXPECT_GE(d.position.y, 0.0);
    EXPECT_LE(d.position.y, 10.0);
  }
  for (const auto& s : w.edges) {
    EXPECT_GE(s.position.x, 0.0);
    EXPECT_LE(s.position.x, 10.0);
  }
}

TEST(Workload, AllQuantitiesPositive) {
  util::Rng rng(4);
  const Workload w = generate_workload(base_params(), rng);
  for (const auto& d : w.iot) {
    EXPECT_GT(d.request_rate_hz, 0.0);
    EXPECT_GT(d.message_size_kb, 0.0);
    EXPECT_GT(d.demand, 0.0);
    EXPECT_GT(d.deadline_ms, 0.0);
  }
  for (const auto& s : w.edges) EXPECT_GT(s.capacity, 0.0);
}

TEST(Workload, DeadlinesWithinConfiguredRange) {
  WorkloadParams params = base_params();
  params.deadline_min_ms = 7.0;
  params.deadline_max_ms = 9.0;
  util::Rng rng(5);
  const Workload w = generate_workload(params, rng);
  for (const auto& d : w.iot) {
    EXPECT_GE(d.deadline_ms, 7.0);
    EXPECT_LE(d.deadline_ms, 9.0);
  }
}

TEST(Workload, RateMeanApproximatelyPreserved) {
  WorkloadParams params = base_params();
  params.iot_count = 5000;
  params.rate_mean_hz = 12.0;
  params.rate_sigma = 0.5;
  util::Rng rng(6);
  const Workload w = generate_workload(params, rng);
  double sum = 0.0;
  for (const auto& d : w.iot) sum += d.request_rate_hz;
  EXPECT_NEAR(sum / 5000.0, 12.0, 0.5);
}

TEST(Workload, ZeroSigmaIsHomogeneous) {
  WorkloadParams params = base_params();
  params.rate_sigma = 0.0;
  util::Rng rng(7);
  const Workload w = generate_workload(params, rng);
  for (const auto& d : w.iot) {
    EXPECT_NEAR(d.request_rate_hz, params.rate_mean_hz, 1e-9);
  }
}

TEST(Workload, HomogeneousCapacityWhenDisabled) {
  WorkloadParams params = base_params();
  params.heterogeneous_capacity = false;
  util::Rng rng(8);
  const Workload w = generate_workload(params, rng);
  for (const auto& s : w.edges) {
    EXPECT_NEAR(s.capacity, w.edges[0].capacity, 1e-9);
  }
}

TEST(Workload, HeterogeneousCapacityVaries) {
  util::Rng rng(9);
  const Workload w = generate_workload(base_params(), rng);
  const auto [lo, hi] = std::minmax_element(
      w.edges.begin(), w.edges.end(),
      [](const EdgeServer& a, const EdgeServer& b) {
        return a.capacity < b.capacity;
      });
  EXPECT_GT(hi->capacity, lo->capacity * 1.1);
}

TEST(Workload, ClusteredTighterThanUniform) {
  WorkloadParams clustered = base_params();
  clustered.iot_placement = PlacementPattern::kClustered;
  clustered.hotspot_count = 1;  // single hotspot: dispersion strictly lower
  clustered.hotspot_stddev_km = 0.3;
  WorkloadParams uniform = base_params();
  uniform.iot_placement = PlacementPattern::kUniform;

  const auto spread = [](const Workload& w) {
    double cx = 0.0, cy = 0.0;
    for (const auto& d : w.iot) {
      cx += d.position.x;
      cy += d.position.y;
    }
    cx /= static_cast<double>(w.iot.size());
    cy /= static_cast<double>(w.iot.size());
    // Mean distance to the nearest *other* device ≈ clustering proxy:
    // use variance of positions instead (cheap, monotone in dispersion).
    double var = 0.0;
    for (const auto& d : w.iot) {
      var += (d.position.x - cx) * (d.position.x - cx) +
             (d.position.y - cy) * (d.position.y - cy);
    }
    return var / static_cast<double>(w.iot.size());
  };
  util::Rng rng1(10), rng2(10);
  EXPECT_LT(spread(generate_workload(clustered, rng1)),
            spread(generate_workload(uniform, rng2)));
}

TEST(Workload, ColocatedEdgesSitOnHotspots) {
  WorkloadParams params = base_params();
  params.colocate_edges_with_hotspots = true;
  params.hotspot_count = 10;
  util::Rng rng1(11), rng2(11);
  const Workload a = generate_workload(params, rng1);
  const Workload b = generate_workload(params, rng2);
  // Determinism implies identical server positions for the same seed.
  for (std::size_t j = 0; j < a.edges.size(); ++j) {
    EXPECT_EQ(a.edges[j].position.x, b.edges[j].position.x);
  }
}

TEST(Workload, DeterministicPerSeed) {
  util::Rng rng1(12), rng2(12), rng3(13);
  const Workload a = generate_workload(base_params(), rng1);
  const Workload b = generate_workload(base_params(), rng2);
  const Workload c = generate_workload(base_params(), rng3);
  EXPECT_EQ(a.iot[5].position.x, b.iot[5].position.x);
  EXPECT_EQ(a.iot[5].demand, b.iot[5].demand);
  EXPECT_NE(a.iot[5].position.x, c.iot[5].position.x);
}

TEST(Workload, InvalidParamsThrow) {
  util::Rng rng(14);
  WorkloadParams no_iot = base_params();
  no_iot.iot_count = 0;
  EXPECT_THROW(generate_workload(no_iot, rng), std::invalid_argument);
  WorkloadParams no_edge = base_params();
  no_edge.edge_count = 0;
  EXPECT_THROW(generate_workload(no_edge, rng), std::invalid_argument);
  WorkloadParams bad_load = base_params();
  bad_load.load_factor = 0.0;
  EXPECT_THROW(generate_workload(bad_load, rng), std::invalid_argument);
}

TEST(Workload, TotalsConsistent) {
  util::Rng rng(15);
  const Workload w = generate_workload(base_params(), rng);
  double demand = 0.0;
  for (const auto& d : w.iot) demand += d.demand;
  EXPECT_NEAR(w.total_demand(), demand, 1e-9);
  EXPECT_GT(w.total_capacity(), w.total_demand());
}

TEST(Workload, PositionHelpersMatch) {
  util::Rng rng(16);
  const Workload w = generate_workload(base_params(), rng);
  const auto iot_pos = w.iot_positions();
  const auto edge_pos = w.edge_positions();
  ASSERT_EQ(iot_pos.size(), w.iot.size());
  ASSERT_EQ(edge_pos.size(), w.edges.size());
  EXPECT_EQ(iot_pos[3].x, w.iot[3].position.x);
  EXPECT_EQ(edge_pos[2].y, w.edges[2].position.y);
}

TEST(Workload, FixedCapacityPerServerScalesWithCount) {
  WorkloadParams params = base_params();
  params.fixed_capacity_per_server = 50.0;
  params.heterogeneous_capacity = false;
  util::Rng rng1(20), rng2(20);
  const Workload small = generate_workload(params, rng1);
  params.edge_count = 20;
  const Workload big = generate_workload(params, rng2);
  EXPECT_NEAR(small.total_capacity(), 50.0 * 10.0, 1e-6);
  EXPECT_NEAR(big.total_capacity(), 50.0 * 20.0, 1e-6);
  // More servers of the same size → lower realized load factor.
  EXPECT_LT(big.load_factor(), small.load_factor());
}

TEST(Workload, FixedCapacityIgnoresLoadFactor) {
  WorkloadParams params = base_params();
  params.fixed_capacity_per_server = 100.0;
  params.load_factor = 0.1;  // would imply huge capacity if honored
  params.heterogeneous_capacity = false;
  util::Rng rng(21);
  const Workload w = generate_workload(params, rng);
  for (const auto& s_ : w.edges) EXPECT_NEAR(s_.capacity, 100.0, 1e-9);
}

TEST(Workload, ZipfSkewWidensDemandSpread) {
  WorkloadParams flat = base_params();
  flat.iot_count = 2000;
  flat.rate_sigma = 0.0;  // isolate the Zipf effect
  WorkloadParams skewed = flat;
  skewed.demand_zipf_exponent = 1.2;
  util::Rng rng1(22), rng2(22);
  const Workload a = generate_workload(flat, rng1);
  const Workload b = generate_workload(skewed, rng2);
  const auto spread = [](const Workload& w) {
    double lo = 1e18, hi = 0.0;
    for (const auto& d : w.iot) {
      lo = std::min(lo, d.demand);
      hi = std::max(hi, d.demand);
    }
    return hi / lo;
  };
  EXPECT_NEAR(spread(a), 1.0, 1e-9);  // homogeneous without skew
  EXPECT_GT(spread(b), 1.5);
}

TEST(PlacementPattern, Names) {
  EXPECT_EQ(to_string(PlacementPattern::kUniform), "uniform");
  EXPECT_EQ(to_string(PlacementPattern::kClustered), "clustered");
}

}  // namespace
}  // namespace tacc::workload
