#include "workload/mobility.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace tacc::workload {
namespace {

std::vector<IotDevice> make_devices(std::size_t count, std::uint64_t seed) {
  WorkloadParams params;
  params.iot_count = count;
  params.edge_count = 2;
  util::Rng rng(seed);
  return generate_workload(params, rng).iot;
}

MobilityParams all_mobile() {
  MobilityParams params;
  params.mobile_fraction = 1.0;
  params.pause_s_mean = 0.001;  // effectively no pauses
  return params;
}

TEST(RandomWaypoint, PositionsStayInArea) {
  const auto devices = make_devices(50, 1);
  RandomWaypointModel model(devices, all_mobile(), util::Rng(1));
  for (int step = 0; step < 50; ++step) {
    (void)model.advance(10.0);
    for (std::size_t i = 0; i < model.device_count(); ++i) {
      const auto p = model.position(i);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 10.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 10.0);
    }
  }
}

TEST(RandomWaypoint, MobileDevicesActuallyMove) {
  const auto devices = make_devices(30, 2);
  RandomWaypointModel model(devices, all_mobile(), util::Rng(2));
  const auto moved = model.advance(30.0);
  EXPECT_EQ(moved.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NE(model.position(i).x, devices[i].position.x);
  }
}

TEST(RandomWaypoint, StaticFractionStaysPut) {
  const auto devices = make_devices(40, 3);
  MobilityParams params;
  params.mobile_fraction = 0.0;
  RandomWaypointModel model(devices, params, util::Rng(3));
  EXPECT_TRUE(model.advance(100.0).empty());
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(model.position(i).x, devices[i].position.x);
    EXPECT_FALSE(model.is_mobile(i));
  }
}

TEST(RandomWaypoint, SpeedBoundsDisplacement) {
  const auto devices = make_devices(20, 4);
  MobilityParams params = all_mobile();
  params.speed_max_km_s = 0.01;
  RandomWaypointModel model(devices, params, util::Rng(4));
  const double dt = 5.0;
  (void)model.advance(dt);
  for (std::size_t i = 0; i < 20; ++i) {
    const double d =
        topo::euclidean_distance(model.position(i), devices[i].position);
    EXPECT_LE(d, params.speed_max_km_s * dt + 1e-9);
  }
}

TEST(RandomWaypoint, ZeroDtIsNoop) {
  const auto devices = make_devices(10, 5);
  RandomWaypointModel model(devices, all_mobile(), util::Rng(5));
  EXPECT_TRUE(model.advance(0.0).empty());
}

TEST(RandomWaypoint, DeterministicPerSeed) {
  const auto devices = make_devices(25, 6);
  RandomWaypointModel a(devices, all_mobile(), util::Rng(7));
  RandomWaypointModel b(devices, all_mobile(), util::Rng(7));
  (void)a.advance(20.0);
  (void)b.advance(20.0);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(a.position(i).x, b.position(i).x);
    EXPECT_EQ(a.position(i).y, b.position(i).y);
  }
}

TEST(RandomWaypoint, PausesDelayDeparture) {
  const auto devices = make_devices(15, 8);
  MobilityParams pausing = all_mobile();
  pausing.pause_s_mean = 1e6;  // effectively parked after first waypoint
  MobilityParams moving = all_mobile();
  RandomWaypointModel parked(devices, pausing, util::Rng(9));
  RandomWaypointModel walker(devices, moving, util::Rng(9));
  // Run long enough that everyone reaches the first waypoint and pauses.
  (void)parked.advance(3000.0);
  (void)walker.advance(3000.0);
  const auto parked_now = parked.advance(50.0);
  const auto walking_now = walker.advance(50.0);
  EXPECT_LT(parked_now.size(), walking_now.size());
}

}  // namespace
}  // namespace tacc::workload
