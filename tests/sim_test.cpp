#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "gap/builder.hpp"
#include "sim/event_queue.hpp"
#include "solvers/constructive.hpp"

namespace tacc::sim {
namespace {

// ---- EventQueue --------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.push(3.0, 30);
  queue.push(1.0, 10);
  queue.push(2.0, 20);
  double t = 0.0;
  EXPECT_EQ(queue.pop(&t), 10);
  EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_EQ(queue.pop(&t), 20);
  EXPECT_EQ(queue.pop(&t), 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(5.0, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(EventQueue, SizeAndNextTime) {
  EventQueue<int> queue;
  queue.push(7.0, 1);
  queue.push(4.0, 2);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 4.0);
}

// ---- Simulator ----------------------------------------------------------------

struct SimFixture : public ::testing::Test {
  SimFixture() : scenario(tacc::Scenario::smart_city(60, 5, 123)) {
    solvers::GreedyBestFitSolver solver;
    assignment = solver.solve(scenario.instance()).assignment;
  }

  tacc::Scenario scenario;
  gap::Assignment assignment;
};

TEST_F(SimFixture, ProducesMeasurements) {
  SimParams params;
  params.duration_s = 5.0;
  params.warmup_s = 0.5;
  const SimResult result =
      simulate(scenario.network(), scenario.workload(), assignment, params);
  EXPECT_GT(result.messages_generated, 1000u);
  EXPECT_GT(result.messages_measured, 0u);
  EXPECT_LE(result.messages_measured, result.messages_generated);
  EXPECT_EQ(result.delay_ms.size(), result.messages_measured);
}

TEST_F(SimFixture, DelaysExceedStaticShortestPath) {
  SimParams params;
  params.duration_s = 5.0;
  const SimResult result =
      simulate(scenario.network(), scenario.workload(), assignment, params);
  // Static delay is propagation+forwarding only; realized delay adds
  // transmission and queueing, so even the minimum observed delay must be
  // at least the smallest static delay among assigned pairs.
  double min_static = 1e18;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    min_static = std::min(min_static,
                          scenario.instance().delay_ms(
                              i, static_cast<std::size_t>(assignment[i])));
  }
  EXPECT_GE(result.delay_ms.stats().min(), min_static);
}

TEST_F(SimFixture, DeterministicPerSeed) {
  SimParams params;
  params.duration_s = 2.0;
  params.seed = 9;
  const SimResult a =
      simulate(scenario.network(), scenario.workload(), assignment, params);
  const SimResult b =
      simulate(scenario.network(), scenario.workload(), assignment, params);
  EXPECT_EQ(a.messages_generated, b.messages_generated);
  EXPECT_EQ(a.messages_measured, b.messages_measured);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms(), b.mean_delay_ms());
}

TEST_F(SimFixture, DifferentSeedsDiffer) {
  SimParams a_params, b_params;
  a_params.duration_s = b_params.duration_s = 2.0;
  a_params.seed = 1;
  b_params.seed = 2;
  const SimResult a =
      simulate(scenario.network(), scenario.workload(), assignment, a_params);
  const SimResult b =
      simulate(scenario.network(), scenario.workload(), assignment, b_params);
  EXPECT_NE(a.messages_generated, b.messages_generated);
}

TEST_F(SimFixture, UtilizationBoundedAndPositive) {
  SimParams params;
  params.duration_s = 5.0;
  const SimResult result =
      simulate(scenario.network(), scenario.workload(), assignment, params);
  double total = 0.0;
  for (double u : result.server_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    total += u;
  }
  EXPECT_GT(total, 0.0);
}

TEST_F(SimFixture, WarmupReducesMeasuredCount) {
  SimParams no_warmup;
  no_warmup.duration_s = 4.0;
  no_warmup.warmup_s = 0.0;
  SimParams with_warmup = no_warmup;
  with_warmup.warmup_s = 2.0;
  const SimResult a = simulate(scenario.network(), scenario.workload(),
                               assignment, no_warmup);
  const SimResult b = simulate(scenario.network(), scenario.workload(),
                               assignment, with_warmup);
  EXPECT_GT(a.messages_measured, b.messages_measured);
}

TEST_F(SimFixture, InvalidAssignmentsThrow) {
  SimParams params;
  gap::Assignment short_assignment(assignment.begin(), assignment.end() - 1);
  EXPECT_THROW((void)simulate(scenario.network(), scenario.workload(),
                              short_assignment, params),
               std::invalid_argument);
  gap::Assignment with_hole = assignment;
  with_hole[3] = gap::kUnassigned;
  EXPECT_THROW((void)simulate(scenario.network(), scenario.workload(),
                              with_hole, params),
               std::invalid_argument);
  gap::Assignment bad_server = assignment;
  bad_server[3] = 999;
  EXPECT_THROW((void)simulate(scenario.network(), scenario.workload(),
                              bad_server, params),
               std::invalid_argument);
}

TEST(Simulator, OverloadedServerDivergesVsBalanced) {
  // Same scenario, two assignments: everything on one server vs best-fit.
  const tacc::Scenario scenario = tacc::Scenario::smart_city(80, 4, 7);
  solvers::GreedyBestFitSolver solver;
  const gap::Assignment balanced =
      solver.solve(scenario.instance()).assignment;
  gap::Assignment pileup(balanced.size(), 0);  // all onto server 0

  SimParams params;
  params.duration_s = 8.0;
  const SimResult good = simulate(scenario.network(), scenario.workload(),
                                  balanced, params);
  const SimResult bad = simulate(scenario.network(), scenario.workload(),
                                 pileup, params);
  EXPECT_GT(bad.mean_delay_ms(), 5.0 * good.mean_delay_ms());
  EXPECT_GT(bad.deadline_miss_rate(), good.deadline_miss_rate());
}

TEST(Simulator, MissRateFallsWithLooserDeadlines) {
  tacc::ScenarioParams params_a;
  params_a.workload.iot_count = 60;
  params_a.workload.edge_count = 5;
  params_a.workload.deadline_min_ms = 1.0;
  params_a.workload.deadline_max_ms = 2.0;
  params_a.seed = 5;
  tacc::ScenarioParams params_b = params_a;
  params_b.workload.deadline_min_ms = 500.0;
  params_b.workload.deadline_max_ms = 600.0;

  const tacc::Scenario tight = tacc::Scenario::generate(params_a);
  const tacc::Scenario loose = tacc::Scenario::generate(params_b);
  solvers::GreedyBestFitSolver solver;
  SimParams sim_params;
  sim_params.duration_s = 5.0;
  const SimResult tight_result =
      simulate(tight.network(), tight.workload(),
               solver.solve(tight.instance()).assignment, sim_params);
  const SimResult loose_result =
      simulate(loose.network(), loose.workload(),
               solver.solve(loose.instance()).assignment, sim_params);
  EXPECT_GT(tight_result.deadline_miss_rate(),
            loose_result.deadline_miss_rate());
  EXPECT_LT(loose_result.deadline_miss_rate(), 0.05);
}

TEST(SimResult, EmptyAccessorsSafe) {
  SimResult result;
  EXPECT_DOUBLE_EQ(result.deadline_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.mean_delay_ms(), 0.0);
}

}  // namespace
}  // namespace tacc::sim
