#include "topology/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/shortest_paths.hpp"
#include "util/rng.hpp"

namespace tacc::topo {
namespace {

const LinkDelayModel kDelay;

// Property sweep: every family × several seeds yields a connected graph of
// the right size with positive link latencies and in-area positions.
struct FamilySeed {
  TopologyFamily family;
  std::uint64_t seed;
};

class GeneratorProperties : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(GeneratorProperties, ConnectedSizedInArea) {
  const auto [family, seed] = GetParam();
  util::Rng rng(seed);
  GeneratorParams params;
  params.node_count = 40;
  params.area_km = 8.0;
  const GeoGraph geo = generate(family, params, kDelay, rng);

  // Grid truncates to a square; everything else hits the request exactly.
  if (family == TopologyFamily::kGrid) {
    EXPECT_EQ(geo.graph.node_count(), 36u);  // floor(sqrt(40))^2
  } else {
    EXPECT_EQ(geo.graph.node_count(), params.node_count);
  }
  EXPECT_EQ(geo.positions.size(), geo.graph.node_count());
  EXPECT_TRUE(is_connected(geo.graph));
  for (const auto& p : geo.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, params.area_km);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, params.area_km);
  }
  for (NodeId u = 0; u < geo.graph.node_count(); ++u) {
    for (const auto& adj : geo.graph.neighbors(u)) {
      EXPECT_GT(adj.props.latency_ms, 0.0);
      EXPECT_GT(adj.props.bandwidth_mbps, 0.0);
    }
  }
}

TEST_P(GeneratorProperties, DeterministicForSameSeed) {
  const auto [family, seed] = GetParam();
  util::Rng rng1(seed);
  util::Rng rng2(seed);
  GeneratorParams params;
  params.node_count = 30;
  const GeoGraph a = generate(family, params, kDelay, rng1);
  const GeoGraph b = generate(family, params, kDelay, rng2);
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (NodeId u = 0; u < a.graph.node_count(); ++u) {
    EXPECT_EQ(a.positions[u].x, b.positions[u].x);
    ASSERT_EQ(a.graph.degree(u), b.graph.degree(u));
  }
}

std::vector<FamilySeed> family_seed_matrix() {
  std::vector<FamilySeed> cases;
  for (TopologyFamily family : all_topology_families()) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      cases.push_back({family, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorProperties,
                         ::testing::ValuesIn(family_seed_matrix()));

TEST(Waxman, DenserWithHigherAlpha) {
  GeneratorParams sparse_params;
  sparse_params.node_count = 60;
  sparse_params.waxman_alpha = 0.05;
  GeneratorParams dense_params = sparse_params;
  dense_params.waxman_alpha = 0.9;
  util::Rng rng1(5), rng2(5);
  const auto sparse = generate_waxman(sparse_params, kDelay, rng1);
  const auto dense = generate_waxman(dense_params, kDelay, rng2);
  EXPECT_GT(dense.graph.edge_count(), sparse.graph.edge_count());
}

TEST(BarabasiAlbert, EdgeCountMatchesAttachment) {
  GeneratorParams params;
  params.node_count = 50;
  params.ba_attach_count = 2;
  util::Rng rng(7);
  const auto geo = generate_barabasi_albert(params, kDelay, rng);
  // Seed clique of m+1=3 nodes has 3 edges; each later node adds m=2.
  EXPECT_EQ(geo.graph.edge_count(), 3u + (50u - 3u) * 2u);
}

TEST(BarabasiAlbert, HasHubs) {
  GeneratorParams params;
  params.node_count = 200;
  params.ba_attach_count = 2;
  util::Rng rng(9);
  const auto geo = generate_barabasi_albert(params, kDelay, rng);
  std::size_t max_degree = 0;
  for (NodeId u = 0; u < geo.graph.node_count(); ++u) {
    max_degree = std::max(max_degree, geo.graph.degree(u));
  }
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GE(max_degree, 12u);
}

TEST(Grid, LatticeStructure) {
  GeneratorParams params;
  params.node_count = 16;
  params.area_km = 3.0;
  const auto geo = generate_grid(params, kDelay);
  EXPECT_EQ(geo.graph.node_count(), 16u);
  EXPECT_EQ(geo.graph.edge_count(), 24u);  // 2*4*3
  // Corners have degree 2, centre nodes degree 4.
  EXPECT_EQ(geo.graph.degree(0), 2u);
  EXPECT_EQ(geo.graph.degree(5), 4u);
}

TEST(Grid, SingleNode) {
  GeneratorParams params;
  params.node_count = 1;
  const auto geo = generate_grid(params, kDelay);
  EXPECT_EQ(geo.graph.node_count(), 1u);
  EXPECT_EQ(geo.graph.edge_count(), 0u);
}

TEST(Hierarchical, IsTreePlusNothing) {
  GeneratorParams params;
  params.node_count = 40;
  params.hierarchical_branching = 3;
  util::Rng rng(3);
  const auto geo = generate_hierarchical(params, kDelay, rng);
  // A tree on n nodes has exactly n-1 edges.
  EXPECT_EQ(geo.graph.edge_count(), geo.graph.node_count() - 1);
  EXPECT_TRUE(is_connected(geo.graph));
}

TEST(RandomGeometric, RadiusControlsEdges) {
  GeneratorParams small_params;
  small_params.node_count = 50;
  small_params.geometric_radius_km = 1.0;
  GeneratorParams big_params = small_params;
  big_params.geometric_radius_km = 5.0;
  util::Rng rng1(13), rng2(13);
  const auto small_r = generate_random_geometric(small_params, kDelay, rng1);
  const auto big_r = generate_random_geometric(big_params, kDelay, rng2);
  EXPECT_GT(big_r.graph.edge_count(), small_r.graph.edge_count());
}

TEST(EnsureConnected, RepairsFragments) {
  GeoGraph geo{Graph(4),
               {{0.0, 0.0}, {1.0, 0.0}, {5.0, 0.0}, {6.0, 0.0}}};
  geo.graph.add_edge(0, 1, {1.0, 1.0});
  geo.graph.add_edge(2, 3, {1.0, 1.0});
  ensure_connected(geo, kDelay);
  EXPECT_TRUE(is_connected(geo.graph));
  // Nearest cross pair is 1–2.
  EXPECT_TRUE(geo.graph.has_edge(1, 2));
}

TEST(FamilyNames, RoundTrip) {
  for (TopologyFamily family : all_topology_families()) {
    EXPECT_EQ(topology_family_from_string(to_string(family)), family);
  }
  EXPECT_THROW((void)topology_family_from_string("nope"),
               std::invalid_argument);
}

}  // namespace
}  // namespace tacc::topo
