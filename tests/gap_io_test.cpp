#include "gap/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tests/test_helpers.hpp"

namespace tacc::gap {
namespace {

TEST(InstanceIo, RoundTripExact) {
  const Instance original = test::small_instance(42, 15, 4);
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  ASSERT_EQ(loaded.device_count(), original.device_count());
  ASSERT_EQ(loaded.server_count(), original.server_count());
  for (DeviceIndex i = 0; i < original.device_count(); ++i) {
    EXPECT_EQ(loaded.traffic_weight(i), original.traffic_weight(i));
    EXPECT_EQ(loaded.demand(i, 0), original.demand(i, 0));
    for (ServerIndex j = 0; j < original.server_count(); ++j) {
      EXPECT_EQ(loaded.delay_ms(i, j), original.delay_ms(i, j));
    }
  }
  for (ServerIndex j = 0; j < original.server_count(); ++j) {
    EXPECT_EQ(loaded.capacity(j), original.capacity(j));
  }
}

TEST(InstanceIo, GeneralDemandRefusesToSerialize) {
  topo::DelayMatrix delay(1, 1, 1.0);
  topo::DelayMatrix demand(1, 1, 1.0);
  const Instance inst = Instance::with_demand_matrix(std::move(delay), {},
                                                     std::move(demand), {5.0});
  std::stringstream buffer;
  EXPECT_THROW(save_instance(inst, buffer), std::invalid_argument);
}

TEST(InstanceIo, BadMagicThrows) {
  std::stringstream buffer("not-an-instance\n");
  EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, TruncatedThrows) {
  const Instance original = test::small_instance(1, 5, 2);
  std::stringstream buffer;
  save_instance(original, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW((void)load_instance(half), std::runtime_error);
}

TEST(InstanceIo, CorruptedNumberThrows) {
  std::stringstream buffer(
      "tacc-instance v1\n"
      "devices,1,servers,1\n"
      "capacities,xyz\n"
      "weights,1\n"
      "demands,1\n"
      "delay,0,1\n");
  EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, WrongRowOrderThrows) {
  std::stringstream buffer(
      "tacc-instance v1\n"
      "devices,2,servers,1\n"
      "capacities,5\n"
      "weights,1,1\n"
      "demands,1,1\n"
      "delay,1,1\n"
      "delay,0,1\n");
  EXPECT_THROW((void)load_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, FileRoundTrip) {
  const Instance original = test::small_instance(7, 8, 3);
  const std::string path = ::testing::TempDir() + "/tacc_io_test.inst";
  save_instance_file(original, path);
  const Instance loaded = load_instance_file(path);
  EXPECT_EQ(loaded.device_count(), original.device_count());
  EXPECT_EQ(loaded.delay_ms(3, 1), original.delay_ms(3, 1));
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_instance_file("/nonexistent/path.inst"),
               std::runtime_error);
}

TEST(AssignmentIo, RoundTrip) {
  const Assignment original{0, 3, kUnassigned, 1};
  std::stringstream buffer;
  save_assignment(original, buffer);
  const Assignment loaded = load_assignment(buffer);
  EXPECT_EQ(loaded, original);
}

TEST(AssignmentIo, BadMagicThrows) {
  std::stringstream buffer("garbage\n");
  EXPECT_THROW((void)load_assignment(buffer), std::runtime_error);
}

TEST(AssignmentIo, OutOfOrderThrows) {
  std::stringstream buffer("tacc-assignment v1\n1,0\n0,1\n");
  EXPECT_THROW((void)load_assignment(buffer), std::runtime_error);
}

}  // namespace
}  // namespace tacc::gap
