// GRASP, Tabu search, and the genetic algorithm.
#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/constructive.hpp"
#include "solvers/genetic.hpp"
#include "solvers/grasp.hpp"
#include "solvers/tabu.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::solvers {
namespace {

// ---- GRASP -----------------------------------------------------------------

TEST(Grasp, FeasibleAndNoWorseThanPlainGreedy) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.8);
    GreedyBestFitSolver greedy;
    GraspOptions grasp_options;
    grasp_options.seed = seed;
    GraspSolver grasp(grasp_options);
    const SolveResult grasp_result = grasp.solve(inst);
    EXPECT_TRUE(grasp_result.feasible) << "seed " << seed;
    EXPECT_LE(grasp_result.total_cost,
              greedy.solve(inst).total_cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(Grasp, SolvesTrapOptimally) {
  const auto trap = gap::crafted_greedy_trap();
  GraspOptions solver_options;
  solver_options.seed = 3;
  GraspSolver solver(solver_options);
  const SolveResult result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
}

TEST(Grasp, DeterministicPerSeed) {
  const gap::Instance inst = test::small_instance(9, 30, 5, 0.7);
  GraspOptions options;
  options.seed = 11;
  GraspSolver a(options);
  GraspSolver b(options);
  EXPECT_EQ(a.solve(inst).assignment, b.solve(inst).assignment);
}

TEST(Grasp, MoreIterationsNeverWorse) {
  const gap::Instance inst = test::small_instance(10, 60, 8, 0.8);
  GraspOptions few;
  few.seed = 5;
  few.iterations = 2;
  GraspOptions many = few;
  many.iterations = 30;
  // Multi-start keeps its best: a superset of starts can only improve.
  // (Same seed → iteration k is identical in both runs.)
  EXPECT_LE(GraspSolver(many).solve(inst).total_cost,
            GraspSolver(few).solve(inst).total_cost + 1e-9);
}

TEST(Grasp, DegenerateOptionsStillWork) {
  const gap::Instance inst = test::small_instance(11, 20, 4, 0.6);
  GraspOptions options;
  options.iterations = 0;  // clamped to 1
  options.rcl_size = 0;    // clamped to 1 (pure greedy)
  GraspSolver solver(options);
  EXPECT_TRUE(solver.solve(inst).feasible);
}

// ---- Tabu ------------------------------------------------------------------

TEST(Tabu, FeasibleAndNoWorseThanSeed) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.8);
    GreedyBestFitSolver greedy;
    TabuSolver tabu({.seed = seed});
    const SolveResult result = tabu.solve(inst);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_LE(result.total_cost, greedy.solve(inst).total_cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(Tabu, EscapesLocalOptimaBeyondPlainDescent) {
  // Aggregate: tabu should match or beat plain local search on most seeds.
  int wins_or_ties = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 60, 6, 0.85);
    LocalSearchSolver descent({.seed = seed});
    TabuSolver tabu({.seed = seed});
    if (tabu.solve(inst).total_cost <=
        descent.solve(inst).total_cost + 1e-9) {
      ++wins_or_ties;
    }
  }
  EXPECT_GE(wins_or_ties, 6);
}

TEST(Tabu, IterationBudgetBoundsWork) {
  const gap::Instance inst = test::small_instance(5, 40, 5, 0.7);
  TabuOptions options;
  options.iterations = 10;
  TabuSolver solver(options);
  EXPECT_LE(solver.solve(inst).iterations, 10u);
}

TEST(Tabu, StallLimitTerminatesEarly) {
  const gap::Instance inst = test::small_instance(6, 30, 4, 0.6);
  TabuOptions options;
  options.iterations = 100'000;
  options.stall_limit = 25;
  TabuSolver solver(options);
  // Must terminate far before the nominal budget.
  EXPECT_LT(solver.solve(inst).iterations, 10'000u);
}

TEST(Tabu, SolvesCapacitySqueezeOptimally) {
  const auto squeeze = gap::crafted_capacity_squeeze();
  TabuSolver solver({.seed = 1});
  const SolveResult result = solver.solve(squeeze.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, squeeze.optimal_cost);
}

// ---- Genetic ----------------------------------------------------------------

TEST(Genetic, FeasibleAtModerateLoad) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.7);
    GeneticOptions options;
    options.seed = seed;
    options.generations = 60;
    GeneticSolver solver(options);
    EXPECT_TRUE(solver.solve(inst).feasible) << "seed " << seed;
  }
}

TEST(Genetic, BeatsRandomClearly) {
  const gap::Instance inst = test::small_instance(5, 50, 6, 0.6);
  GeneticSolver genetic({.seed = 5, .generations = 60});
  RandomSolver random(5);
  EXPECT_LT(genetic.solve(inst).total_cost, random.solve(inst).total_cost);
}

TEST(Genetic, DeterministicPerSeed) {
  const gap::Instance inst = test::small_instance(6, 30, 5, 0.7);
  GeneticOptions options;
  options.seed = 77;
  options.generations = 40;
  GeneticSolver a(options);
  GeneticSolver b(options);
  EXPECT_EQ(a.solve(inst).assignment, b.solve(inst).assignment);
}

TEST(Genetic, SolvesTrap) {
  const auto trap = gap::crafted_greedy_trap();
  GeneticSolver solver({.seed = 2, .generations = 80});
  const SolveResult result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
}

TEST(Genetic, EvaluationCountReported) {
  const gap::Instance inst = test::small_instance(7, 20, 4, 0.6);
  GeneticOptions options;
  options.population = 10;
  options.generations = 5;
  options.elite = 2;
  GeneticSolver solver(options);
  const SolveResult result = solver.solve(inst);
  // pop + gens × (pop − elite) scored children.
  EXPECT_EQ(result.iterations, 10u + 5u * 8u);
}

TEST(Genetic, RepairFixesOverloadedWinner) {
  // High mutation + zero penalty would drift infeasible; repair saves it.
  const gap::Instance inst = test::small_instance(8, 40, 5, 0.6);
  GeneticOptions options;
  options.seed = 8;
  options.generations = 10;
  options.mutation_rate = 0.3;
  GeneticSolver solver(options);
  EXPECT_TRUE(solver.solve(inst).feasible);
}

TEST(Names, AreStable) {
  EXPECT_EQ(GraspSolver().name(), "grasp");
  EXPECT_EQ(TabuSolver().name(), "tabu");
  EXPECT_EQ(GeneticSolver().name(), "genetic");
}

}  // namespace
}  // namespace tacc::solvers
