// Shared fixtures/builders for the TACC test suite.
#pragma once

#include <vector>

#include "gap/instance.hpp"
#include "gap/testgen.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace tacc::test {

/// Small random instance tuned so every capacity-aware solver can find a
/// feasible solution (moderate load factor).
inline gap::Instance small_instance(std::uint64_t seed,
                                    std::size_t devices = 20,
                                    std::size_t servers = 4,
                                    double load_factor = 0.6) {
  gap::RandomInstanceParams params;
  params.device_count = devices;
  params.server_count = servers;
  params.load_factor = load_factor;
  util::Rng rng(seed);
  return gap::random_instance(params, rng);
}

/// Tiny instance where brute force over all m^n assignments is tractable.
inline gap::Instance tiny_instance(std::uint64_t seed, std::size_t devices = 7,
                                   std::size_t servers = 3,
                                   double load_factor = 0.7) {
  return small_instance(seed, devices, servers, load_factor);
}

/// Exhaustive optimum by enumerating all server^device assignments.
/// Returns infinity if no feasible assignment exists.
inline double brute_force_optimum(const gap::Instance& instance) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(n, 0);
  while (true) {
    std::vector<double> loads(m, 0.0);
    double cost = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      loads[choice[i]] += instance.demand(i, choice[i]);
      cost += instance.cost(i, choice[i]);
      if (loads[choice[i]] > instance.capacity(choice[i]) + 1e-9) {
        feasible = false;
      }
    }
    if (feasible) best = std::min(best, cost);
    // Odometer increment.
    std::size_t d = 0;
    while (d < n && ++choice[d] == m) {
      choice[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return best;
}

/// A connected 6-node test graph with known shortest paths.
///
///     0 --1ms-- 1 --1ms-- 2
///     |         |         |
///    4ms       1ms       1ms
///     |         |         |
///     3 --1ms-- 4 --6ms-- 5
inline topo::Graph known_graph() {
  topo::Graph g(6);
  const auto link = [&](topo::NodeId u, topo::NodeId v, double ms) {
    g.add_edge(u, v, {ms, 100.0});
  };
  link(0, 1, 1.0);
  link(1, 2, 1.0);
  link(0, 3, 4.0);
  link(1, 4, 1.0);
  link(2, 5, 1.0);
  link(3, 4, 1.0);
  link(4, 5, 6.0);
  return g;
}

}  // namespace tacc::test
