#include "rl/ucb_rollout.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/constructive.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::rl {
namespace {

UcbRolloutOptions fast_options(std::uint64_t seed) {
  UcbRolloutOptions options;
  options.rollouts_per_device = 8;
  options.seed = seed;
  return options;
}

TEST(UcbRollout, CompleteAndFeasibleAtModerateLoad) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.7);
    UcbRolloutSolver solver(fast_options(seed));
    const auto result = solver.solve(inst);
    ASSERT_EQ(result.assignment.size(), inst.device_count());
    EXPECT_TRUE(result.feasible) << "seed " << seed;
  }
}

TEST(UcbRollout, BeatsRandomClearly) {
  const gap::Instance inst = test::small_instance(5, 50, 6, 0.6);
  UcbRolloutSolver ucb(fast_options(5));
  solvers::RandomSolver random(5);
  EXPECT_LT(ucb.solve(inst).total_cost, random.solve(inst).total_cost);
}

TEST(UcbRollout, SolvesTrapOptimally) {
  const auto trap = gap::crafted_greedy_trap();
  UcbRolloutSolver solver(fast_options(1));
  const auto result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
}

TEST(UcbRollout, DeterministicPerSeed) {
  const gap::Instance inst = test::small_instance(6, 30, 5, 0.7);
  UcbRolloutSolver a(fast_options(42));
  UcbRolloutSolver b(fast_options(42));
  EXPECT_EQ(a.solve(inst).assignment, b.solve(inst).assignment);
}

TEST(UcbRollout, RolloutBudgetScalesIterations) {
  const gap::Instance inst = test::small_instance(7, 20, 4, 0.6);
  UcbRolloutOptions small = fast_options(7);
  small.rollouts_per_device = 4;
  UcbRolloutOptions large = fast_options(7);
  large.rollouts_per_device = 16;
  UcbRolloutSolver a(small), b(large);
  const auto result_small = a.solve(inst);
  const auto result_large = b.solve(inst);
  EXPECT_EQ(result_small.iterations, 20u * 4u);
  EXPECT_EQ(result_large.iterations, 20u * 16u);
}

TEST(UcbRollout, NameIsStable) {
  EXPECT_EQ(UcbRolloutSolver(fast_options(1)).name(), "ucb-rollout");
}

TEST(UcbRollout, CandidateCountClamped) {
  const gap::Instance inst = test::small_instance(8, 15, 2, 0.5);
  UcbRolloutOptions options = fast_options(8);
  options.candidate_count = 99;
  UcbRolloutSolver solver(options);
  EXPECT_TRUE(solver.solve(inst).feasible);
}

}  // namespace
}  // namespace tacc::rl
