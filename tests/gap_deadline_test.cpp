// Deadline metadata on instances and the deadline-penalty transform.
#include <gtest/gtest.h>

#include <cmath>

#include "core/configurator.hpp"
#include "gap/builder.hpp"
#include "gap/instance.hpp"
#include "gap/solution.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::gap {
namespace {

Instance deadline_2x2() {
  //       s0    s1
  // d0:  2ms  10ms   deadline 5ms  → only s0 meets it
  // d1:  3ms   4ms   deadline 20ms → both meet it
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 2.0);
  delay.set(0, 1, 10.0);
  delay.set(1, 0, 3.0);
  delay.set(1, 1, 4.0);
  Instance inst(std::move(delay), {}, {1.0, 1.0}, {10.0, 10.0});
  inst.set_deadlines({5.0, 20.0});
  return inst;
}

TEST(Deadlines, AttachAndQuery) {
  const Instance inst = deadline_2x2();
  EXPECT_TRUE(inst.has_deadlines());
  EXPECT_DOUBLE_EQ(inst.deadline_ms(0), 5.0);
  EXPECT_DOUBLE_EQ(inst.deadline_ms(1), 20.0);
  EXPECT_THROW((void)inst.deadline_ms(9), std::out_of_range);
}

TEST(Deadlines, NoDeadlinesMeansInfinity) {
  const Instance inst = test::small_instance(1);
  EXPECT_FALSE(inst.has_deadlines());
  EXPECT_TRUE(std::isinf(inst.deadline_ms(0)));
}

TEST(Deadlines, ValidationOnAttach) {
  Instance inst = test::small_instance(2, 5, 2);
  EXPECT_THROW(inst.set_deadlines({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(inst.set_deadlines({1.0, 2.0, 3.0, 4.0, 0.0}),
               std::invalid_argument);
  inst.set_deadlines({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_TRUE(inst.has_deadlines());
  inst.set_deadlines({});  // clears
  EXPECT_FALSE(inst.has_deadlines());
}

TEST(Deadlines, EvaluationCountsViolations) {
  const Instance inst = deadline_2x2();
  const Evaluation good = evaluate(inst, {0, 1});
  EXPECT_EQ(good.deadline_violations, 0u);
  EXPECT_TRUE(good.meets_deadlines);
  const Evaluation bad = evaluate(inst, {1, 1});  // d0 on s1: 10 > 5
  EXPECT_EQ(bad.deadline_violations, 1u);
  EXPECT_FALSE(bad.meets_deadlines);
  EXPECT_TRUE(bad.feasible);  // capacity untouched by deadlines
}

TEST(Deadlines, NoDeadlinesNeverMeets) {
  const Instance inst = test::small_instance(3, 5, 2, 0.3);
  const Evaluation ev = evaluate(inst, {0, 0, 0, 0, 0});
  EXPECT_EQ(ev.deadline_violations, 0u);
  EXPECT_FALSE(ev.meets_deadlines);
}

TEST(Deadlines, PenaltyTransformInflatesOnlyViolators) {
  const Instance inst = deadline_2x2();
  const Instance penalized = inst.with_deadline_penalty(10.0);
  EXPECT_DOUBLE_EQ(penalized.delay_ms(0, 0), 2.0);    // within deadline
  EXPECT_DOUBLE_EQ(penalized.delay_ms(0, 1), 100.0);  // 10 > 5: ×10
  EXPECT_DOUBLE_EQ(penalized.delay_ms(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(penalized.delay_ms(1, 1), 4.0);
  EXPECT_TRUE(penalized.has_deadlines());
}

TEST(Deadlines, PenaltyTransformValidation) {
  const Instance no_deadlines = test::small_instance(4);
  EXPECT_THROW((void)no_deadlines.with_deadline_penalty(10.0),
               std::logic_error);
  const Instance inst = deadline_2x2();
  EXPECT_THROW((void)inst.with_deadline_penalty(1.0), std::invalid_argument);
}

TEST(Deadlines, BuilderAttachesWorkloadDeadlines) {
  const tacc::Scenario scenario = tacc::Scenario::factory(30, 4, 9);
  EXPECT_TRUE(scenario.instance().has_deadlines());
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(scenario.instance().deadline_ms(i),
                     scenario.workload().iot[i].deadline_ms);
  }
}

TEST(Deadlines, BuilderCanSkipDeadlines) {
  const tacc::Scenario scenario = tacc::Scenario::factory(20, 3, 9);
  BuilderOptions options;
  options.attach_deadlines = false;
  const Instance inst =
      build_instance(scenario.network(), scenario.workload(), options);
  EXPECT_FALSE(inst.has_deadlines());
}

TEST(Deadlines, DeadlineAwareConfigurationReducesViolations) {
  // Aggregate across seeds: penalizing deadline-violating servers during
  // solving must not increase realized violations.
  std::size_t plain_violations = 0;
  std::size_t aware_violations = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    tacc::ScenarioParams params;
    params.workload.iot_count = 60;
    params.workload.edge_count = 6;
    // Deadlines so tight that some assignment choices violate them.
    params.workload.deadline_min_ms = 4.0;
    params.workload.deadline_max_ms = 8.0;
    params.seed = seed;
    const tacc::Scenario scenario = tacc::Scenario::generate(params);
    const tacc::ClusterConfigurator configurator(scenario);
    tacc::AlgorithmOptions options;
    options.apply_seed(seed);
    plain_violations +=
        configurator.configure({tacc::Algorithm::kGreedyBestFit, options})
            .evaluation()
            .deadline_violations;
    aware_violations +=
        configurator
            .configure({tacc::Algorithm::kGreedyBestFit, options,
                        tacc::CostModel::kDeadlinePenalized})
            .evaluation()
            .deadline_violations;
  }
  EXPECT_LE(aware_violations, plain_violations);
}

TEST(Deadlines, PenaltyPreservedThroughGeneralDemandVariant) {
  topo::DelayMatrix delay(1, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 9.0);
  topo::DelayMatrix demand(1, 2, 1.0);
  Instance inst = Instance::with_demand_matrix(std::move(delay), {},
                                               std::move(demand), {5.0, 5.0});
  inst.set_deadlines({2.0});
  const Instance penalized = inst.with_deadline_penalty(5.0);
  EXPECT_FALSE(penalized.uniform_demand());
  EXPECT_DOUBLE_EQ(penalized.delay_ms(0, 1), 45.0);
}

}  // namespace
}  // namespace tacc::gap
