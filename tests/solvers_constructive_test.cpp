#include "solvers/constructive.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/flow_based.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::solvers {
namespace {

TEST(RandomSolver, CompleteAssignment) {
  const gap::Instance inst = test::small_instance(1);
  RandomSolver solver(7);
  const SolveResult result = solver.solve(inst);
  ASSERT_EQ(result.assignment.size(), inst.device_count());
  for (std::int32_t x : result.assignment) {
    EXPECT_NE(x, gap::kUnassigned);
    EXPECT_LT(static_cast<std::size_t>(x), inst.server_count());
  }
}

TEST(RandomSolver, SeededDeterminism) {
  const gap::Instance inst = test::small_instance(2);
  RandomSolver a(9);
  RandomSolver b(9);
  EXPECT_EQ(a.solve(inst).assignment, b.solve(inst).assignment);
}

TEST(RoundRobin, DealsCyclically) {
  const gap::Instance inst = test::small_instance(3, 10, 3);
  RoundRobinSolver solver;
  const SolveResult result = solver.solve(inst);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result.assignment[i], static_cast<std::int32_t>(i % 3));
  }
}

TEST(GreedyNearest, AchievesUnconstrainedMinimum) {
  const gap::Instance inst = test::small_instance(4, 40, 6);
  GreedyNearestSolver solver;
  const SolveResult result = solver.solve(inst);
  const LowerBounds bounds = compute_lower_bounds(inst);
  // Capacity-oblivious nearest IS the per-device minimum cost.
  EXPECT_NEAR(result.total_cost, bounds.min_cost, 1e-9);
}

TEST(GreedyNearest, FallsIntoCraftedTrap) {
  const auto trap = gap::crafted_greedy_trap();
  GreedyNearestSolver solver;
  const SolveResult result = solver.solve(trap.instance);
  // Both devices pile onto server 0 (capacity 1): infeasible.
  EXPECT_FALSE(result.feasible);
}

TEST(GreedyBestFit, FeasibleAtModerateLoad) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.7);
    GreedyBestFitSolver solver;
    EXPECT_TRUE(solver.solve(inst).feasible) << "seed " << seed;
  }
}

TEST(GreedyBestFit, SolvesCapacitySqueeze) {
  const auto squeeze = gap::crafted_capacity_squeeze();
  GreedyBestFitSolver solver;
  const SolveResult result = solver.solve(squeeze.instance);
  EXPECT_TRUE(result.feasible);
}

TEST(RegretGreedy, SolvesGreedyTrapOptimally) {
  const auto trap = gap::crafted_greedy_trap();
  RegretGreedySolver solver;
  const SolveResult result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  // Regret prioritizes device 1 (regret 98) so it takes server 0 first.
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
  EXPECT_EQ(result.assignment, trap.optimal_assignment);
}

TEST(RegretGreedy, SolvesCapacitySqueezeOptimally) {
  const auto squeeze = gap::crafted_capacity_squeeze();
  RegretGreedySolver solver;
  const SolveResult result = solver.solve(squeeze.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, squeeze.optimal_cost);
}

TEST(RegretGreedy, NoWorseThanBestFitUsually) {
  // Not a theorem, but across seeds the regret heuristic should win or tie
  // most of the time; assert the aggregate rather than per-seed.
  int regret_wins_or_ties = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.8);
    RegretGreedySolver regret;
    GreedyBestFitSolver bestfit;
    if (regret.solve(inst).total_cost <=
        bestfit.solve(inst).total_cost + 1e-9) {
      ++regret_wins_or_ties;
    }
  }
  EXPECT_GE(regret_wins_or_ties, 7);
}

// Property: every capacity-aware constructive solver returns feasible
// solutions at low load, and always complete assignments at any load.
struct SolverCase {
  const char* name;
  SolverPtr (*make)();
};

class ConstructiveProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

SolverPtr make_by_index(int index, std::uint64_t seed) {
  switch (index) {
    case 0:
      return std::make_unique<RandomSolver>(seed);
    case 1:
      return std::make_unique<RoundRobinSolver>();
    case 2:
      return std::make_unique<GreedyNearestSolver>();
    case 3:
      return std::make_unique<GreedyBestFitSolver>();
    default:
      return std::make_unique<RegretGreedySolver>();
  }
}

TEST_P(ConstructiveProperties, AlwaysComplete) {
  const auto [index, seed] = GetParam();
  const gap::Instance inst = test::small_instance(seed, 30, 5, 0.9);
  const SolveResult result = make_by_index(index, seed)->solve(inst);
  ASSERT_EQ(result.assignment.size(), inst.device_count());
  for (std::int32_t x : result.assignment) EXPECT_NE(x, gap::kUnassigned);
  // total_cost must equal a fresh evaluation.
  EXPECT_NEAR(result.total_cost,
              gap::evaluate(inst, result.assignment).total_cost, 1e-9);
}

TEST_P(ConstructiveProperties, CapacityAwareFeasibleAtLowLoad) {
  const auto [index, seed] = GetParam();
  if (index < 3) GTEST_SKIP() << "capacity-oblivious baseline";
  const gap::Instance inst = test::small_instance(seed, 30, 5, 0.4);
  EXPECT_TRUE(make_by_index(index, seed)->solve(inst).feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConstructiveProperties,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(11u, 22u, 33u)));

TEST(SolverNames, AreStable) {
  EXPECT_EQ(RandomSolver(1).name(), "random");
  EXPECT_EQ(RoundRobinSolver().name(), "round-robin");
  EXPECT_EQ(GreedyNearestSolver().name(), "greedy-nearest");
  EXPECT_EQ(GreedyBestFitSolver().name(), "greedy-bestfit");
  EXPECT_EQ(RegretGreedySolver().name(), "regret-greedy");
}

}  // namespace
}  // namespace tacc::solvers
