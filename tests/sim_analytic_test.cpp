// Analytic (M/D/1-style) delay predictor vs the packet-level simulator.
#include "sim/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/configurator.hpp"
#include "sim/simulator.hpp"
#include "solvers/constructive.hpp"

namespace tacc::sim {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t iot = 80,
                   std::size_t edge = 6)
      : scenario(tacc::Scenario::smart_city(iot, edge, seed)) {
    solvers::GreedyBestFitSolver solver;
    assignment = solver.solve(scenario.instance()).assignment;
  }
  tacc::Scenario scenario;
  gap::Assignment assignment;
};

TEST(Analytic, ShapesAndPositivity) {
  const Fixture f(1);
  const AnalyticResult result =
      predict_delays(f.scenario.network(), f.scenario.workload(),
                     f.assignment);
  ASSERT_EQ(result.device_delay_ms.size(), 80u);
  ASSERT_EQ(result.server_utilization.size(), 6u);
  EXPECT_FALSE(result.saturated);
  for (double d : result.device_delay_ms) EXPECT_GT(d, 0.0);
  EXPECT_GT(result.mean_delay_ms, 0.0);
}

TEST(Analytic, AtLeastStaticPathDelay) {
  const Fixture f(2);
  const AnalyticResult result =
      predict_delays(f.scenario.network(), f.scenario.workload(),
                     f.assignment);
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_GE(result.device_delay_ms[i],
              f.scenario.instance().delay_ms(
                  i, static_cast<std::size_t>(f.assignment[i])));
  }
}

TEST(Analytic, UtilizationMatchesLoadsTimesHeadroom) {
  const Fixture f(3);
  const AnalyticResult result =
      predict_delays(f.scenario.network(), f.scenario.workload(),
                     f.assignment, {.capacity_headroom = 0.75});
  const auto loads = gap::server_loads(f.scenario.instance(), f.assignment);
  for (std::size_t j = 0; j < 6; ++j) {
    const double expected =
        0.75 * loads[j] / f.scenario.workload().edges[j].capacity;
    EXPECT_NEAR(result.server_utilization[j], expected, 1e-9);
  }
}

TEST(Analytic, SaturationFlagsOverload) {
  const Fixture f(4);
  // Pile everything onto server 0.
  const gap::Assignment pileup(f.assignment.size(), 0);
  const AnalyticResult result = predict_delays(
      f.scenario.network(), f.scenario.workload(), pileup);
  EXPECT_TRUE(result.saturated);
  EXPECT_TRUE(std::isinf(result.device_delay_ms[0]));
}

TEST(Analytic, InvalidInputsThrow) {
  const Fixture f(5);
  gap::Assignment short_assignment(f.assignment.begin(),
                                   f.assignment.end() - 1);
  EXPECT_THROW((void)predict_delays(f.scenario.network(),
                                    f.scenario.workload(), short_assignment),
               std::invalid_argument);
  gap::Assignment with_hole = f.assignment;
  with_hole[0] = gap::kUnassigned;
  EXPECT_THROW((void)predict_delays(f.scenario.network(),
                                    f.scenario.workload(), with_hole),
               std::invalid_argument);
}

// The headline property: the closed form tracks the simulator.
class AnalyticVsSimulation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AnalyticVsSimulation, MeanWithinFifteenPercent) {
  const Fixture f(GetParam(), 100, 8);
  const AnalyticResult analytic = predict_delays(
      f.scenario.network(), f.scenario.workload(), f.assignment);
  SimParams sim_params;
  sim_params.duration_s = 20.0;
  sim_params.warmup_s = 4.0;
  sim_params.seed = GetParam();
  const SimResult sim = simulate(f.scenario.network(), f.scenario.workload(),
                                 f.assignment, sim_params);
  // The predictor ignores link queueing, so it may under-predict slightly;
  // 15% brackets the model error across seeds comfortably.
  EXPECT_NEAR(analytic.mean_delay_ms, sim.mean_delay_ms(),
              0.15 * sim.mean_delay_ms())
      << "analytic " << analytic.mean_delay_ms << " vs sim "
      << sim.mean_delay_ms();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticVsSimulation,
                         ::testing::Values(11, 22, 33, 44));

TEST(Analytic, RanksAssignmentsLikeTheSimulator) {
  // A balanced and an intentionally skewed assignment: the predictor must
  // order them the same way the DES does.
  const Fixture f(6, 100, 6);
  gap::Assignment skewed = f.assignment;
  // Push ~a third of devices onto server 0 (heavier load, worse queueing).
  for (std::size_t i = 0; i < skewed.size(); i += 3) skewed[i] = 0;

  const AnalyticResult a_good = predict_delays(
      f.scenario.network(), f.scenario.workload(), f.assignment);
  const AnalyticResult a_bad = predict_delays(
      f.scenario.network(), f.scenario.workload(), skewed);
  SimParams sim_params;
  sim_params.duration_s = 10.0;
  const SimResult s_good = simulate(f.scenario.network(),
                                    f.scenario.workload(), f.assignment,
                                    sim_params);
  const SimResult s_bad = simulate(f.scenario.network(),
                                   f.scenario.workload(), skewed, sim_params);
  EXPECT_LT(a_good.mean_delay_ms, a_bad.mean_delay_ms);
  EXPECT_LT(s_good.mean_delay_ms(), s_bad.mean_delay_ms());
}

}  // namespace
}  // namespace tacc::sim
