#include "topology/failures.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "topology/shortest_paths.hpp"

namespace tacc::topo {
namespace {

NetworkTopology test_net(std::uint64_t seed = 5) {
  return tacc::Scenario::smart_city(40, 5, seed).network();
}

TEST(RemoveEdge, RemovesBothDirections) {
  Graph g(3);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(1, 2, {1.0, 1.0});
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_FALSE(g.remove_edge(0, 9));  // bad node
}

TEST(RemoveEdge, ParallelEdgesRemovedOneAtATime) {
  Graph g(2);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(0, 1, {2.0, 1.0});
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(BackboneLinks, OnlyRouterRouterLinks) {
  const NetworkTopology net = test_net();
  const auto links = backbone_links(net);
  EXPECT_FALSE(links.empty());
  for (const auto& [u, v] : links) {
    EXPECT_EQ(net.kinds[u], NodeKind::kRouter);
    EXPECT_EQ(net.kinds[v], NodeKind::kRouter);
    EXPECT_LT(u, v);  // each undirected link reported once
    EXPECT_TRUE(net.graph.has_edge(u, v));
  }
}

TEST(AllDevicesServed, HoldsOnFreshNetwork) {
  EXPECT_TRUE(all_devices_served(test_net()));
}

TEST(AllDevicesServed, DetectsStrandedDevice) {
  NetworkTopology net = test_net();
  // Cut a device's only access link.
  const NodeId device = net.iot_nodes[0];
  const NodeId router = net.graph.neighbors(device)[0].to;
  ASSERT_TRUE(net.graph.remove_edge(device, router));
  EXPECT_FALSE(all_devices_served(net));
}

TEST(SampleFailableLinks, RespectsBudgetAndService) {
  util::Rng rng(7);
  const NetworkTopology net = test_net();
  const auto all = backbone_links(net);
  const auto failed = sample_failable_links(net, 0.2, rng);
  EXPECT_LE(failed.size(),
            static_cast<std::size_t>(0.2 * static_cast<double>(all.size())));
  NetworkTopology degraded = net;
  fail_links(degraded, failed);
  EXPECT_TRUE(all_devices_served(degraded));
}

TEST(SampleFailableLinks, ZeroFractionIsEmpty) {
  util::Rng rng(8);
  EXPECT_TRUE(sample_failable_links(test_net(), 0.0, rng).empty());
}

TEST(SampleFailableLinks, DeterministicPerSeed) {
  const NetworkTopology net = test_net();
  util::Rng rng1(9), rng2(9);
  EXPECT_EQ(sample_failable_links(net, 0.3, rng1),
            sample_failable_links(net, 0.3, rng2));
}

TEST(FailLinks, DelaysNeverImprove) {
  util::Rng rng(10);
  const NetworkTopology net = test_net();
  const auto failed = sample_failable_links(net, 0.25, rng);
  if (failed.empty()) GTEST_SKIP() << "nothing failable in this topology";
  NetworkTopology degraded = net;
  fail_links(degraded, failed);
  const DelayMatrix before = compute_delay_matrix(net);
  const DelayMatrix after = compute_delay_matrix(degraded);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      EXPECT_GE(after.at(i, j), before.at(i, j) - 1e-12);
    }
  }
}

TEST(FailLinks, InPlaceRoundTripRestoresDelaysExactly) {
  util::Rng rng(12);
  NetworkTopology net = test_net();
  const auto failed = sample_failable_links(net, 0.25, rng);
  if (failed.empty()) GTEST_SKIP() << "nothing failable in this topology";
  const std::size_t edges_before = net.graph.edge_count();
  const DelayMatrix before = compute_delay_matrix(net);

  fail_links(net, failed);
  EXPECT_EQ(net.graph.edge_count(), edges_before - failed.size());
  EXPECT_EQ(net.failed_links.size(), failed.size());
  for (const auto& [u, v] : failed) {
    EXPECT_TRUE(net.link_failed(u, v));
    EXPECT_TRUE(net.link_failed(v, u));  // endpoints match unordered
    EXPECT_FALSE(net.graph.has_edge(u, v));
  }

  restore_links(net, failed);
  EXPECT_EQ(net.graph.edge_count(), edges_before);
  EXPECT_TRUE(net.failed_links.empty());
  // Shortest-path delays are a function of the edge set, not adjacency
  // order, so the round trip restores them bit-exactly.
  const DelayMatrix after = compute_delay_matrix(net);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      EXPECT_EQ(after.at(i, j), before.at(i, j));
    }
  }
}

TEST(FailLinks, CopyThenFailMatchesFailInPlace) {
  // A degraded copy and an in-place degrade of the original must agree —
  // NetworkTopology's copy carries everything delay computation reads.
  util::Rng rng(13);
  NetworkTopology net = test_net();
  const auto failed = sample_failable_links(net, 0.2, rng);
  NetworkTopology degraded = net;
  fail_links(degraded, failed);
  fail_links(net, failed);
  const DelayMatrix copy_based = compute_delay_matrix(degraded);
  const DelayMatrix in_place = compute_delay_matrix(net);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      EXPECT_EQ(in_place.at(i, j), copy_based.at(i, j));
    }
  }
}

TEST(FailLinks, FailingUnknownOrRestoringLiveLinkThrows) {
  NetworkTopology net = test_net();
  EXPECT_THROW((void)net.fail_link(net.iot_nodes[0], net.iot_nodes[1]),
               std::invalid_argument);
  const auto [u, v] = backbone_links(net).front();
  EXPECT_THROW((void)net.restore_link(u, v), std::invalid_argument);
  EXPECT_THROW((void)net.set_link_latency(net.iot_nodes[0], net.iot_nodes[1],
                                          1.0),
               std::invalid_argument);
  EXPECT_THROW((void)net.set_link_latency(u, v, 0.0), std::invalid_argument);
}

TEST(SetLinkLatency, RewritesInPlaceAndReturnsPrevious) {
  NetworkTopology net = test_net();
  const auto [u, v] = backbone_links(net).front();
  const EdgeProps* before = net.graph.edge_props(u, v);
  ASSERT_NE(before, nullptr);
  const double old_latency = before->latency_ms;
  const double old_bandwidth = before->bandwidth_mbps;
  const EdgeProps previous = net.set_link_latency(u, v, old_latency * 2.0);
  EXPECT_EQ(previous.latency_ms, old_latency);
  const EdgeProps* after = net.graph.edge_props(v, u);  // mirror entry
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->latency_ms, old_latency * 2.0);
  EXPECT_EQ(after->bandwidth_mbps, old_bandwidth);  // bandwidth untouched
}

TEST(FailLinks, NonexistentLinkThrowsAndEarlierLinksStayFailed) {
  NetworkTopology net = test_net();
  const auto [u, v] = backbone_links(net).front();
  EXPECT_THROW(
      fail_links(net, {{u, v}, {net.iot_nodes[0], net.iot_nodes[1]}}),
      std::invalid_argument);
  // Documented partial-failure semantics: links before the bad one stay
  // failed so the caller can restore them.
  EXPECT_TRUE(net.link_failed(u, v));
  restore_links(net, {{u, v}});
  EXPECT_TRUE(net.failed_links.empty());
}

}  // namespace
}  // namespace tacc::topo
