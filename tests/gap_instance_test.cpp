#include "gap/instance.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace tacc::gap {
namespace {

Instance make_2x2() {
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 4.0);
  delay.set(1, 0, 2.0);
  delay.set(1, 1, 3.0);
  return Instance(std::move(delay), {2.0, 1.0}, {1.0, 1.5}, {2.0, 2.0});
}

TEST(Instance, AccessorsReflectInputs) {
  const Instance inst = make_2x2();
  EXPECT_EQ(inst.device_count(), 2u);
  EXPECT_EQ(inst.server_count(), 2u);
  EXPECT_DOUBLE_EQ(inst.delay_ms(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(inst.traffic_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(inst.cost(0, 1), 8.0);  // weight 2 × delay 4
  EXPECT_DOUBLE_EQ(inst.demand(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(inst.capacity(1), 2.0);
  EXPECT_TRUE(inst.uniform_demand());
}

TEST(Instance, EmptyWeightsBecomeOnes) {
  topo::DelayMatrix delay(2, 1);
  delay.set(0, 0, 3.0);
  delay.set(1, 0, 5.0);
  const Instance inst(std::move(delay), {}, {1.0, 1.0}, {10.0});
  EXPECT_DOUBLE_EQ(inst.traffic_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(inst.cost(1, 0), 5.0);
}

TEST(Instance, ShapeValidation) {
  topo::DelayMatrix delay(2, 2, 1.0);
  EXPECT_THROW(Instance(delay, {1.0}, {1.0, 1.0}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Instance(delay, {}, {1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Instance(delay, {}, {1.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance(topo::DelayMatrix(0, 0), {}, {}, {}),
               std::invalid_argument);
}

TEST(Instance, PositivityValidation) {
  topo::DelayMatrix delay(1, 1, 1.0);
  EXPECT_THROW(Instance(delay, {0.0}, {1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance(delay, {}, {0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance(delay, {}, {1.0}, {-1.0}), std::invalid_argument);
}

TEST(Instance, GeneralDemandMatrixVariant) {
  topo::DelayMatrix delay(2, 2, 1.0);
  topo::DelayMatrix demand(2, 2);
  demand.set(0, 0, 1.0);
  demand.set(0, 1, 2.0);
  demand.set(1, 0, 3.0);
  demand.set(1, 1, 4.0);
  const Instance inst = Instance::with_demand_matrix(
      std::move(delay), {}, std::move(demand), {10.0, 10.0});
  EXPECT_FALSE(inst.uniform_demand());
  EXPECT_DOUBLE_EQ(inst.demand(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(inst.demand(1, 0), 3.0);
}

TEST(Instance, GeneralDemandShapeMismatchThrows) {
  topo::DelayMatrix delay(2, 2, 1.0);
  topo::DelayMatrix demand(2, 3, 1.0);
  EXPECT_THROW(Instance::with_demand_matrix(delay, {}, demand,
                                            std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Instance, LoadFactorUsesMinDemand) {
  const Instance inst = make_2x2();
  // total demand 2.5, total capacity 4.0.
  EXPECT_NEAR(inst.load_factor(), 2.5 / 4.0, 1e-12);
  EXPECT_NEAR(inst.total_capacity(), 4.0, 1e-12);
  EXPECT_NEAR(inst.total_demand_lower_bound(), 2.5, 1e-12);
}

TEST(Instance, ServersByDelaySortedPerDevice) {
  util::Rng rng(3);
  const Instance inst = test::small_instance(3, 30, 6);
  for (DeviceIndex i = 0; i < inst.device_count(); ++i) {
    const auto ranked = inst.servers_by_delay(i);
    ASSERT_EQ(ranked.size(), inst.server_count());
    for (std::size_t r = 0; r + 1 < ranked.size(); ++r) {
      EXPECT_LE(inst.delay_ms(i, ranked[r]), inst.delay_ms(i, ranked[r + 1]));
    }
    // It must be a permutation.
    std::vector<bool> seen(inst.server_count(), false);
    for (std::uint32_t s : ranked) seen[s] = true;
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
  }
}

TEST(Instance, ServersByDelayBadIndexThrows) {
  const Instance inst = make_2x2();
  EXPECT_THROW((void)inst.servers_by_delay(5), std::out_of_range);
}

TEST(RandomInstance, HitsLoadFactor) {
  RandomInstanceParams params;
  params.load_factor = 0.65;
  util::Rng rng(4);
  const Instance inst = random_instance(params, rng);
  EXPECT_NEAR(inst.load_factor(), 0.65, 1e-9);
}

TEST(RandomInstance, RespectsShape) {
  RandomInstanceParams params;
  params.device_count = 13;
  params.server_count = 7;
  util::Rng rng(5);
  const Instance inst = random_instance(params, rng);
  EXPECT_EQ(inst.device_count(), 13u);
  EXPECT_EQ(inst.server_count(), 7u);
}

TEST(RandomInstance, DelaysWithinRange) {
  RandomInstanceParams params;
  params.delay_min_ms = 2.0;
  params.delay_max_ms = 5.0;
  util::Rng rng(6);
  const Instance inst = random_instance(params, rng);
  for (DeviceIndex i = 0; i < inst.device_count(); ++i) {
    for (ServerIndex j = 0; j < inst.server_count(); ++j) {
      EXPECT_GE(inst.delay_ms(i, j), 2.0);
      EXPECT_LE(inst.delay_ms(i, j), 5.0);
    }
  }
}

TEST(CraftedInstances, OptimaVerifiedByBruteForce) {
  const auto trap = crafted_greedy_trap();
  EXPECT_DOUBLE_EQ(test::brute_force_optimum(trap.instance),
                   trap.optimal_cost);
  const auto squeeze = crafted_capacity_squeeze();
  EXPECT_DOUBLE_EQ(test::brute_force_optimum(squeeze.instance),
                   squeeze.optimal_cost);
}

TEST(CraftedInstances, StoredAssignmentsAchieveOptimum) {
  const auto trap = crafted_greedy_trap();
  double cost = 0.0;
  for (std::size_t i = 0; i < trap.optimal_assignment.size(); ++i) {
    cost += trap.instance.cost(
        i, static_cast<ServerIndex>(trap.optimal_assignment[i]));
  }
  EXPECT_DOUBLE_EQ(cost, trap.optimal_cost);
}

}  // namespace
}  // namespace tacc::gap
