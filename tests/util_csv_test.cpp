#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tacc::util {
namespace {

TEST(CsvEscape, PlainFieldPassesThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvParseLine, SplitsPlainFields) {
  EXPECT_EQ(csv_parse_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv_parse_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(csv_parse_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(csv_parse_line("trailing,"),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(CsvParseLine, HandlesQuotingAndEscapedQuotes) {
  EXPECT_EQ(csv_parse_line("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(csv_parse_line("\"say \"\"hi\"\"\""),
            (std::vector<std::string>{"say \"hi\""}));
  EXPECT_EQ(csv_parse_line("x,\"\",y"),
            (std::vector<std::string>{"x", "", "y"}));
}

TEST(CsvParseLine, StripsCarriageReturnOutsideQuotes) {
  EXPECT_EQ(csv_parse_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
  // Inside quotes a CR is data, not a line terminator.
  EXPECT_EQ(csv_parse_line("\"a\rb\""), (std::vector<std::string>{"a\rb"}));
}

TEST(CsvRoundTrip, EscapeThenParseRecoversEveryField) {
  const std::vector<std::string> fields = {
      "plain", "", "with,comma", "with \"quotes\"", "multi\nline",
      "\r", ",,,", "\"", "tail "};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += csv_escape(fields[i]);
  }
  EXPECT_EQ(csv_parse_line(line), fields);
}

TEST(CsvWriter, WritesHeaderAndMixedRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "count", "note"});
  writer.row("alpha", 3, 1.5);
  writer.row("needs,quoting", 0, "q\"q");
  EXPECT_EQ(writer.rows_written(), 3u);
  EXPECT_EQ(out.str(),
            "name,count,note\n"
            "alpha,3,1.5\n"
            "\"needs,quoting\",0,\"q\"\"q\"\n");
}

TEST(CsvWriter, RowsRoundTripThroughParser) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row("a,b", "c\nd", "e\"f");
  std::string line = out.str();
  // One logical row: the embedded newline stays inside quotes; drop only
  // the final terminator.
  ASSERT_FALSE(line.empty());
  line.pop_back();
  EXPECT_EQ(csv_parse_line(line),
            (std::vector<std::string>{"a,b", "c\nd", "e\"f"}));
}

}  // namespace
}  // namespace tacc::util
