// The pluggable DelayOracle subsystem: spec parsing, the quantized row
// store, bit-identity of the exact backend, and the landmark/ALT backend's
// certified-envelope guarantees under churn (attached and standalone).
#include "topology/oracle/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "topology/failures.hpp"
#include "topology/incremental/cache.hpp"
#include "topology/oracle/exact.hpp"
#include "topology/oracle/landmark.hpp"
#include "topology/oracle/rowstore.hpp"
#include "topology/shortest_paths.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc::topo::oracle {
namespace {

const LinkDelayModel kDelay;

NetworkTopology make_net(TopologyFamily family, std::uint64_t seed,
                         std::size_t routers = 49, std::size_t devices = 24,
                         std::size_t servers = 4) {
  util::Rng rng(seed);
  GeneratorParams params;
  params.node_count = routers;
  const GeoGraph infra = generate(family, params, kDelay, rng);
  std::vector<Point2D> iot(devices);
  std::vector<Point2D> edges(servers);
  for (auto& p : iot) p = {rng.uniform(0.0, params.area_km),
                           rng.uniform(0.0, params.area_km)};
  for (auto& p : edges) p = {rng.uniform(0.0, params.area_km),
                             rng.uniform(0.0, params.area_km)};
  return build_network(infra, iot, edges, kDelay);
}

// ---- Spec parsing ----------------------------------------------------------

TEST(OracleConfig, ParsesSpecsAndRoundTrips) {
  const OracleConfig def = parse_oracle_spec("");
  EXPECT_EQ(def, OracleConfig{});
  EXPECT_EQ(parse_oracle_spec("exact"), OracleConfig{});

  const OracleConfig landmark = parse_oracle_spec("landmark,k=12,eps=0.2");
  EXPECT_EQ(landmark.backend, OracleBackend::kLandmark);
  EXPECT_EQ(landmark.landmarks, 12u);
  EXPECT_DOUBLE_EQ(landmark.max_rel_error, 0.2);

  const OracleConfig compressed = parse_oracle_spec("exact,compress=1,hot=7");
  EXPECT_TRUE(compressed.compress);
  EXPECT_EQ(compressed.hot_rows, 7u);

  // Canonical round trip for both backends.
  EXPECT_EQ(parse_oracle_spec(to_string(landmark)), landmark);
  EXPECT_EQ(parse_oracle_spec(to_string(compressed)), compressed);
  const OracleConfig seeded = parse_oracle_spec("landmark,seed=9,k=3");
  EXPECT_EQ(parse_oracle_spec(to_string(seeded)), seeded);
}

TEST(OracleConfig, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_oracle_spec("alt"), std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("exact,k=4"), std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("landmark,k=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("landmark,eps=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("landmark,eps=xyz"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("landmark,bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_oracle_spec("exact,hot=0"), std::invalid_argument);
}

// ---- QuantizedRowStore -----------------------------------------------------

TEST(QuantizedRowStore, HotRowsExactColdRowsWithinOneScaleStep) {
  QuantizedRowStore store(/*width=*/4, /*hot_capacity=*/2,
                          /*cold_capacity=*/8);
  const std::vector<double> a = {1.0, 2.5, 0.0, kUnreachable};
  const std::vector<double> b = {10.0, 0.25, 3.75, 9.5};
  const std::vector<double> c = {100.0, 50.0, 25.0, 12.5};
  store.put(0, a);
  store.put(1, b);
  const std::vector<double>* hot = store.get(1);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(*hot, b);  // hot tier is bit-exact

  store.put(2, c);  // demotes row 0 to the quantized cold tier
  EXPECT_EQ(store.hot_size(), 2u);
  EXPECT_EQ(store.cold_size(), 1u);
  const std::vector<double>* cold = store.get(0);  // promotes back
  ASSERT_NE(cold, nullptr);
  const double scale = 2.5 / 65534.0;  // max finite of row a
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (a[j] == kUnreachable) {
      EXPECT_EQ((*cold)[j], kUnreachable);
    } else {
      EXPECT_GE((*cold)[j], a[j]);
      EXPECT_LE((*cold)[j], a[j] + scale * 1.0001);
    }
  }
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    store.check_invariants();
  }
}

TEST(QuantizedRowStore, EvictsBeyondColdCapacityAndErases) {
  QuantizedRowStore store(/*width=*/2, /*hot_capacity=*/1,
                          /*cold_capacity=*/2);
  const std::vector<double> row = {1.0, 2.0};
  for (std::size_t r = 0; r < 5; ++r) store.put(r, row);
  // 1 hot + at most 2 cold survive; the oldest rows fell off entirely.
  EXPECT_EQ(store.hot_size(), 1u);
  EXPECT_LE(store.cold_size(), 2u);
  EXPECT_EQ(store.get(0), nullptr);
  EXPECT_TRUE(store.contains(4));
  store.erase(4);
  EXPECT_FALSE(store.contains(4));
  EXPECT_EQ(store.get(4), nullptr);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    store.check_invariants();
  }
}

// ---- ExactOracle -----------------------------------------------------------

TEST(ExactOracle, BitIdenticalToDelayMatrixCacheThroughChurn) {
  NetworkTopology net = make_net(TopologyFamily::kRandomGeometric, 7);
  NetworkTopology net2 = net;  // the reference drives an identical copy
  incr::IncrementalDelayEngine engine(net);
  incr::IncrementalDelayEngine reference_engine(net2);
  incr::DelayMatrixCache cache(reference_engine);
  auto oracle = make_oracle(OracleConfig{}, engine);
  EXPECT_EQ(oracle->name(), "exact");
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle->bind_row(i, net.iot_nodes[i]);
    cache.bind_row(i, net2.iot_nodes[i]);
  }
  EXPECT_EQ(oracle->fingerprint(), cache.fingerprint());

  const auto links = backbone_links(net);
  util::Rng rng(77);
  for (int step = 0; step < 30; ++step) {
    const auto& [u, v] = links[rng.index(links.size())];
    if (net.link_failed(u, v)) {
      engine.restore_link(u, v);
      reference_engine.restore_link(u, v);
    } else if (rng.uniform() < 0.5) {
      engine.fail_link(u, v);
      reference_engine.fail_link(u, v);
    } else {
      const double ms = rng.uniform(0.5, 6.0);
      engine.set_link_latency(u, v, ms);
      reference_engine.set_link_latency(u, v, ms);
    }
    EXPECT_EQ(oracle->refresh(), cache.refresh());
    EXPECT_EQ(oracle->rows_refreshed(), cache.rows_refreshed());
    EXPECT_EQ(oracle->rows_saved(), cache.rows_saved());
    EXPECT_EQ(oracle->fingerprint(), cache.fingerprint());
    for (std::size_t i = 0; i < net.iot_count(); ++i) {
      EXPECT_EQ(oracle->row(i), cache.row(i));
      EXPECT_EQ(oracle->row_epoch(i), cache.row_epoch(i));
    }
  }
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    oracle->check_invariants();
  }
}

TEST(ExactOracle, CompressedModeStaysWithinQuantizationSlack) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 13);
  incr::IncrementalDelayEngine engine(net);
  OracleConfig config;
  config.compress = true;
  config.hot_rows = 2;  // force demotion traffic with 24 devices
  auto oracle = make_oracle(config, engine);
  EXPECT_EQ(oracle->name(), "exact+compress");

  incr::DelayMatrixCache reference(engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle->bind_row(i, net.iot_nodes[i]);
    reference.bind_row(i, net.iot_nodes[i]);
  }
  // Touch every row twice so most traffic comes from the cold tier.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < net.iot_count(); ++i) {
      const std::vector<double>& served = oracle->row(i);
      const std::vector<double>& truth = reference.row(i);
      double max_finite = 0.0;
      for (const double v : truth) {
        if (v != kUnreachable) max_finite = std::max(max_finite, v);
      }
      const double scale = max_finite / 65534.0;
      for (std::size_t j = 0; j < truth.size(); ++j) {
        if (truth[j] == kUnreachable) {
          EXPECT_EQ(served[j], kUnreachable);
        } else {
          EXPECT_GE(served[j], truth[j]);
          EXPECT_LE(served[j], truth[j] + scale * 1.0001);
        }
      }
      // bounds_ms is computed live from the engine: always exact.
      const DelayBounds bounds = oracle->bounds_ms(i, 0);
      EXPECT_EQ(bounds.lo_ms, truth[0]);
      EXPECT_EQ(bounds.hi_ms, truth[0]);
      EXPECT_TRUE(bounds.certified);
    }
  }
  EXPECT_GT(oracle->stats().row_fills, 0u);
  // Residency stays bounded by the store, not the device count.
  const auto links = backbone_links(net);
  engine.fail_link(links[0].first, links[0].second);
  oracle->refresh();
  reference.refresh();
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    const std::vector<double>& truth = reference.row(i);
    const std::vector<double>& served = oracle->row(i);
    for (std::size_t j = 0; j < truth.size(); ++j) {
      if (truth[j] == kUnreachable) {
        EXPECT_EQ(served[j], kUnreachable);
      }
    }
  }
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    oracle->check_invariants();
  }
}

// ---- LandmarkOracle --------------------------------------------------------

/// Exact (device, server) delay via a fresh Dijkstra from the device node.
double exact_delay(const NetworkTopology& net, std::size_t device,
                   std::size_t server) {
  const ShortestPathTree tree = dijkstra(net.graph, net.iot_nodes[device]);
  return tree.distance_ms[net.edge_nodes[server]];
}

testing::AssertionResult envelopes_contain_exact(const DelayOracle& oracle,
                                                 const NetworkTopology& net,
                                                 double eps) {
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    const std::vector<double>& served = oracle.row(i);
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      const double exact = exact_delay(net, i, j);
      const DelayBounds bounds = oracle.bounds_ms(i, j);
      if (exact == kUnreachable) {
        if (served[j] != kUnreachable) {
          return testing::AssertionFailure()
                 << "(" << i << ", " << j << "): served " << served[j]
                 << " but exact is unreachable";
        }
        continue;
      }
      const double slack = 1e-9 * (1.0 + exact);
      if (bounds.lo_ms > exact + slack ||
          (bounds.hi_ms != kUnreachable && bounds.hi_ms + slack < exact)) {
        return testing::AssertionFailure()
               << "(" << i << ", " << j << "): envelope [" << bounds.lo_ms
               << ", " << bounds.hi_ms << "] excludes exact " << exact;
      }
      if (served[j] + slack < exact ||
          served[j] > (1.0 + eps) * exact + slack) {
        return testing::AssertionFailure()
               << "(" << i << ", " << j << "): served " << served[j]
               << " outside [exact, (1+eps)*exact] for exact " << exact;
      }
    }
  }
  return testing::AssertionSuccess();
}

TEST(LandmarkOracle, AttachedEnvelopesContainExactThroughChurn) {
  NetworkTopology net = make_net(TopologyFamily::kWaxman, 17);
  incr::IncrementalDelayEngine engine(net);
  OracleConfig config;
  config.backend = OracleBackend::kLandmark;
  config.landmarks = 6;
  config.max_rel_error = 0.15;
  auto oracle = make_oracle(config, engine);
  EXPECT_EQ(oracle->name(), "landmark");
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle->bind_row(i, net.iot_nodes[i]);
  }
  EXPECT_TRUE(envelopes_contain_exact(*oracle, net, config.max_rel_error));

  const auto links = backbone_links(net);
  util::Rng rng(18);
  for (int step = 0; step < 20; ++step) {
    const auto& [u, v] = links[rng.index(links.size())];
    if (net.link_failed(u, v)) {
      engine.restore_link(u, v);
    } else if (rng.uniform() < 0.4) {
      engine.fail_link(u, v);
    } else {
      engine.set_link_latency(u, v, rng.uniform(0.5, 6.0));
    }
    oracle->refresh();
    if (step % 5 == 0) {
      EXPECT_TRUE(
          envelopes_contain_exact(*oracle, net, config.max_rel_error));
      const contracts::ScopedFailureHandler guard(
          &contracts::throw_handler);
      oracle->check_invariants();
    }
  }
  // Link churn must never trigger a full landmark rebuild.
  EXPECT_EQ(oracle->stats().rebuilds, 0u);
  EXPECT_GT(oracle->stats().queries, 0u);
}

TEST(LandmarkOracle, ZeroEpsServesExactValues) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 23);
  incr::IncrementalDelayEngine engine(net);
  OracleConfig config;
  config.backend = OracleBackend::kLandmark;
  config.max_rel_error = 0.0;  // only bit-tight envelopes may be served
  auto oracle = make_oracle(config, engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle->bind_row(i, net.iot_nodes[i]);
  }
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    const std::vector<double>& served = oracle->row(i);
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      const double exact = exact_delay(net, i, j);
      if (exact == kUnreachable) {
        EXPECT_EQ(served[j], kUnreachable);
      } else {
        EXPECT_NEAR(served[j], exact, 1e-9 * (1.0 + exact));
      }
    }
  }
}

TEST(LandmarkOracle, SelectionIsSeedDeterministic) {
  NetworkTopology net = make_net(TopologyFamily::kBarabasiAlbert, 29);
  incr::IncrementalDelayEngine engine_a(net);
  incr::IncrementalDelayEngine engine_b(net);
  OracleConfig config;
  config.backend = OracleBackend::kLandmark;
  config.landmarks = 5;
  config.seed = 99;
  const LandmarkOracle a(engine_a, config);
  const LandmarkOracle b(engine_b, config);
  EXPECT_EQ(a.landmark_nodes(), b.landmark_nodes());
  EXPECT_EQ(a.landmark_nodes().size(), 5u);

  config.seed = 100;
  const LandmarkOracle c(engine_b, config);
  // A different seed starts farthest-point sampling elsewhere; the sets are
  // allowed to coincide, but the first landmark is the seeded draw.
  EXPECT_EQ(c.landmark_nodes().size(), 5u);
}

TEST(LandmarkOracle, StandaloneMutationsInvalidateAndStayCertified) {
  NetworkTopology net = make_net(TopologyFamily::kRandomGeometric, 37);
  OracleConfig config;
  config.backend = OracleBackend::kLandmark;
  config.landmarks = 6;
  config.max_rel_error = 0.2;
  LandmarkOracle oracle(net, config);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle.bind_row(i, net.iot_nodes[i]);
  }
  EXPECT_TRUE(envelopes_contain_exact(oracle, net, config.max_rel_error));
  const std::uint64_t epoch0 = oracle.epoch();

  const auto links = backbone_links(net);
  util::Rng rng(38);
  for (int step = 0; step < 12; ++step) {
    const auto& [u, v] = links[rng.index(links.size())];
    if (net.link_failed(u, v)) {
      const EdgeProps props = net.restore_link(u, v);
      oracle.apply_mutation(/*kind=*/0, u, v, 0.0, props.latency_ms);
    } else if (rng.uniform() < 0.4) {
      const EdgeProps props = net.fail_link(u, v);
      oracle.apply_mutation(/*kind=*/1, u, v, props.latency_ms,
                            kUnreachable);
    } else {
      const double ms = rng.uniform(0.5, 6.0);
      const EdgeProps props = net.set_link_latency(u, v, ms);
      oracle.apply_mutation(/*kind=*/2, u, v, props.latency_ms, ms);
    }
    oracle.refresh();
    EXPECT_TRUE(envelopes_contain_exact(oracle, net, config.max_rel_error));
  }
  EXPECT_GT(oracle.epoch(), epoch0);
  EXPECT_EQ(oracle.stats().rebuilds, 0u);
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    oracle.check_invariants();
  }
}

TEST(LandmarkOracle, RefreshAllInvalidatesEverything) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 43);
  incr::IncrementalDelayEngine engine(net);
  OracleConfig config;
  config.backend = OracleBackend::kLandmark;
  auto oracle = make_oracle(config, engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    oracle->bind_row(i, net.iot_nodes[i]);
  }
  for (std::size_t i = 0; i < net.iot_count(); ++i) (void)oracle->row(i);
  const std::uint64_t refreshed_before = oracle->rows_refreshed();
  oracle->refresh_all();
  EXPECT_EQ(oracle->rows_refreshed(),
            refreshed_before + oracle->bound_count());
  // Rows refill lazily and still serve certified values.
  EXPECT_TRUE(envelopes_contain_exact(*oracle, net, config.max_rel_error));
}

TEST(RowBindings, BindUnbindRebindBookkeeping) {
  RowBindings book;
  EXPECT_FALSE(book.bind(0, 5));
  EXPECT_FALSE(book.bind(1, 7));
  EXPECT_EQ(book.bound, 2u);
  EXPECT_EQ(book.row_of(5), 0u);
  EXPECT_TRUE(book.bind(0, 9));  // rebind
  EXPECT_EQ(book.row_of(9), 0u);
  EXPECT_EQ(book.row_of(5), RowBindings::kUnbound);
  EXPECT_TRUE(book.unbind(1));
  EXPECT_FALSE(book.unbind(1));  // already unbound
  EXPECT_EQ(book.bound, 1u);
  EXPECT_EQ(book.row_node(1), kInvalidNode);
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    book.check_invariants();
  }
}

}  // namespace
}  // namespace tacc::topo::oracle
