#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "metrics/fairness.hpp"
#include "metrics/histogram.hpp"
#include "metrics/stats.hpp"
#include "util/rng.hpp"

namespace tacc::metrics {
namespace {

// ---- RunningStats ------------------------------------------------------------

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  util::Rng rng(1);
  RunningStats bulk, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 2.0);
    bulk.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), bulk.min());
  EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

// ---- Percentiles --------------------------------------------------------------

TEST(Percentile, EmptyIsNan) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 2.0);
}

TEST(Summarize, AllFieldsConsistent) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Ci95, ShrinksWithSamples) {
  RunningStats few, many;
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) few.add(rng.normal());
  for (int i = 0; i < 1000; ++i) many.add(rng.normal());
  EXPECT_GT(ci95_half_width(few), ci95_half_width(many));
}

TEST(Ci95, ZeroForTinySamples) {
  RunningStats stats;
  EXPECT_EQ(ci95_half_width(stats), 0.0);
  stats.add(1.0);
  EXPECT_EQ(ci95_half_width(stats), 0.0);
}

TEST(SampleSet, TracksValuesAndStats) {
  SampleSet set;
  for (double v : {3.0, 1.0, 2.0}) set.add(v);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.stats().mean(), 2.0);
  EXPECT_DOUBLE_EQ(set.percentile(0.5), 2.0);
  EXPECT_FALSE(set.empty());
}

// ---- Histogram -----------------------------------------------------------------

TEST(Histogram, InvalidArgsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(2), 6.0);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(4.1);
  h.add(4.9);
  h.add(9.9);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(2), 2u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, NanIsCountedAsideNotBinned) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);  // NaN never lands in a bin
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) binned += h.count_at(b);
  EXPECT_EQ(binned, 1u);
  EXPECT_DOUBLE_EQ(h.cdf_at(h.bin_count() - 1), 1.0);
}

TEST(Histogram, InfinitiesClampToBoundaryBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, CdfMonotoneToOne) {
  Histogram h(0.0, 10.0, 4);
  for (double v : {1.0, 3.0, 5.0, 7.0, 9.0}) h.add(v);
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_GE(h.cdf_at(b), prev);
    prev = h.cdf_at(b);
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(h.bin_count() - 1), 1.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Histogram, QuantileEmptyIsNan) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);  // lone sample in bin [5, 6)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);  // bin lower edge
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);  // bin upper edge
}

TEST(Histogram, QuantileMatchesUniformSamples) {
  Histogram h(0.0, 100.0, 100);
  for (int v = 0; v < 100; ++v) h.add(static_cast<double>(v) + 0.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);  // resolution = one bin width
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileMonotoneInQ) {
  util::Rng rng(7);
  Histogram h(0.0, 1.0, 50);
  for (int i = 0; i < 1'000; ++i) h.add(rng.uniform());
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

TEST(Histogram, QuantileClampsQOutsideUnitInterval) {
  Histogram h(0.0, 10.0, 5);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(EmpiricalCdf, SortedAndEndsAtOne) {
  const std::vector<double> v{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);  // duplicates collapsed
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);  // 3 of 4 samples <= 2.0
}

// ---- Fairness --------------------------------------------------------------------

TEST(Jain, PerfectlyEvenIsOne) {
  const std::vector<double> loads{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(jain_fairness(loads), 1.0);
}

TEST(Jain, SingleHotspotIsOneOverN) {
  const std::vector<double> loads{12.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(loads), 0.25);
}

TEST(Jain, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(Imbalance, BalancedIsOne) {
  const std::vector<double> loads{2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(loads), 1.0);
}

TEST(Imbalance, SkewGrowsRatio) {
  const std::vector<double> loads{9.0, 1.0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(loads), 1.8);
}

TEST(CoefficientOfVariation, ZeroForConstant) {
  const std::vector<double> loads{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(loads), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  const std::vector<double> loads{2.0, 4.0};  // mean 3, pop stddev 1
  EXPECT_NEAR(coefficient_of_variation(loads), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace tacc::metrics
