#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include "topology/failures.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed,
                            std::size_t iot = 60,
                            std::size_t edge = 6) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

workload::IotDevice test_device(double x, double y, double rate = 10.0) {
  workload::IotDevice device;
  device.position = {x, y};
  device.request_rate_hz = rate;
  device.demand = rate;
  return device;
}

TEST(DynamicCluster, StartsFromInitialConfiguration) {
  DynamicCluster cluster = make_cluster(1);
  EXPECT_EQ(cluster.active_count(), 60u);
  EXPECT_EQ(cluster.server_count(), 6u);
  EXPECT_TRUE(cluster.feasible());
  EXPECT_GT(cluster.avg_delay_ms(), 0.0);
}

TEST(DynamicCluster, JoinAddsActiveDevice) {
  DynamicCluster cluster = make_cluster(2);
  const JoinResult joined = cluster.join(test_device(1.0, 1.0));
  EXPECT_EQ(joined.device_index, 60u);
  EXPECT_EQ(joined.server, cluster.server_of(joined.device_index));
  EXPECT_EQ(cluster.active_count(), 61u);
  EXPECT_TRUE(cluster.is_active(joined.device_index));
  EXPECT_LT(cluster.server_of(joined.device_index), cluster.server_count());
}

TEST(DynamicCluster, JoinPrefersFeasibleCheapServer) {
  DynamicCluster cluster = make_cluster(3);
  const JoinResult joined = cluster.join(test_device(2.0, 2.0, 1.0));
  // With tiny demand, the chosen server must be feasible.
  EXPECT_TRUE(joined.feasible);
  EXPECT_FALSE(joined.overload_fallback);
  EXPECT_TRUE(cluster.feasible());
  EXPECT_TRUE(cluster.is_active(joined.device_index));
}

TEST(DynamicCluster, JoinReportsOverloadFallback) {
  DynamicCluster cluster = make_cluster(3);
  // A device far beyond any server's remaining capacity cannot be placed
  // feasibly; the report must say so instead of silently overloading.
  const JoinResult joined = cluster.join(test_device(2.0, 2.0, 1e6));
  EXPECT_FALSE(joined.feasible);
  EXPECT_TRUE(joined.overload_fallback);
  EXPECT_FALSE(cluster.feasible());
  EXPECT_FALSE(cluster.server_failed(joined.server));
}

TEST(DynamicCluster, LeaveFreesLoad) {
  DynamicCluster cluster = make_cluster(4);
  const std::size_t index = cluster.join(test_device(1.0, 3.0)).device_index;
  const double util_with = cluster.max_utilization();
  cluster.leave(index);
  EXPECT_EQ(cluster.active_count(), 60u);
  EXPECT_FALSE(cluster.is_active(index));
  EXPECT_LE(cluster.max_utilization(), util_with + 1e-9);
}

TEST(DynamicCluster, DoubleLeaveThrows) {
  DynamicCluster cluster = make_cluster(5);
  const std::size_t index = cluster.join(test_device(0.5, 0.5)).device_index;
  cluster.leave(index);
  EXPECT_THROW(cluster.leave(index), std::invalid_argument);
  EXPECT_THROW(cluster.leave(9999), std::invalid_argument);
  EXPECT_THROW((void)cluster.server_of(index), std::invalid_argument);
}

TEST(DynamicCluster, LeaveRecyclesSlotAndGraphNode) {
  DynamicCluster cluster = make_cluster(5);
  const std::size_t slots = cluster.device_slot_count();
  const std::size_t nodes = cluster.graph_node_count();
  const std::size_t index = cluster.join(test_device(0.5, 0.5)).device_index;
  EXPECT_EQ(cluster.device_slot_count(), slots + 1);
  EXPECT_EQ(cluster.graph_node_count(), nodes + 1);
  cluster.leave(index);
  EXPECT_EQ(cluster.free_slot_count(), 1u);
  EXPECT_EQ(cluster.live_graph_node_count(), nodes);
  // The next join reuses the departed slot and node: no growth.
  const JoinResult joined = cluster.join(test_device(3.0, 3.0));
  EXPECT_EQ(joined.device_index, index);
  EXPECT_EQ(cluster.device_slot_count(), slots + 1);
  EXPECT_EQ(cluster.graph_node_count(), nodes + 1);
  EXPECT_EQ(cluster.free_slot_count(), 0u);
}

TEST(DynamicCluster, ChurnLeakRegression) {
  // N join/leave/move cycles must leave slot, row, and node storage exactly
  // at baseline — the old implementation leaked one node + access edge +
  // delay row per move.
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  DynamicCluster cluster = make_cluster(6);
  util::Rng rng(99);
  const std::size_t slots = cluster.device_slot_count();
  const std::size_t nodes = cluster.graph_node_count();
  for (int cycle = 0; cycle < 50; ++cycle) {
    const std::size_t index =
        cluster
            .join(test_device(rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)))
            .device_index;
    for (int m = 0; m < 4; ++m) {
      const JoinResult moved = cluster.move(
          index, {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
      EXPECT_EQ(moved.device_index, index);  // indices are stable
    }
    cluster.leave(index);
    EXPECT_EQ(cluster.device_slot_count(), slots + 1);
    EXPECT_EQ(cluster.graph_node_count(), nodes + 1);
    EXPECT_EQ(cluster.live_graph_node_count(), nodes);
    if (cycle % 10 == 0) cluster.check_invariants();
  }
  EXPECT_EQ(cluster.free_slot_count(), 1u);
  EXPECT_EQ(cluster.active_count(), 60u);
  cluster.check_invariants();
}

TEST(DynamicCluster, RebalanceNeverIncreasesAvgDelay) {
  DynamicCluster cluster = make_cluster(6);
  util::Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    cluster.join(test_device(rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0),
                             rng.uniform(2.0, 15.0)));
  }
  const double before = cluster.avg_delay_ms();
  const std::size_t moves = cluster.rebalance(100);
  EXPECT_LE(cluster.avg_delay_ms(), before + 1e-9);
  EXPECT_LE(moves, 100u);
}

TEST(DynamicCluster, RebalanceBudgetRespected) {
  DynamicCluster cluster = make_cluster(7);
  util::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    cluster.join(test_device(rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)));
  }
  EXPECT_LE(cluster.rebalance(3), 3u);
}

TEST(DynamicCluster, ChurnStormStaysFeasible) {
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  DynamicCluster cluster = make_cluster(8);
  util::Rng rng(8);
  std::vector<std::size_t> joined;
  for (int event = 0; event < 200; ++event) {
    if (joined.empty() || rng.bernoulli(0.6)) {
      joined.push_back(cluster
                           .join(test_device(rng.uniform(0.0, 4.0),
                                             rng.uniform(0.0, 4.0),
                                             rng.uniform(1.0, 8.0)))
                           .device_index);
    } else {
      const std::size_t pick = rng.index(joined.size());
      cluster.leave(joined[pick]);
      joined[pick] = joined.back();
      joined.pop_back();
    }
  }
  // Moderate load base + small joiners: the incremental policy must keep
  // the cluster feasible throughout.
  EXPECT_TRUE(cluster.feasible());
  EXPECT_EQ(cluster.active_count(), 60u + joined.size());
  DynamicCluster::InvariantOptions strict;
  strict.require_feasible = true;
  strict.forbid_failed_residents = true;
  cluster.check_invariants(strict);
}

TEST(DynamicClusterLinks, FailRestoreRoundTripRestoresDelaysExactly) {
  DynamicCluster cluster = make_cluster(10);
  const double baseline = cluster.avg_delay_ms();
  const std::uint64_t fp0 = cluster.delay_fingerprint();
  const auto links = topo::backbone_links(cluster.network());
  ASSERT_FALSE(links.empty());

  util::Rng rng(10);
  const auto failable =
      topo::sample_failable_links(cluster.network(), 0.2, rng);
  ASSERT_FALSE(failable.empty());
  std::uint64_t epoch = cluster.delay_epoch();
  for (const auto& [u, v] : failable) {
    const LinkUpdateReport report = cluster.fail_link(u, v);
    EXPECT_GT(report.epoch, epoch);
    epoch = report.epoch;
    EXPECT_GT(report.latency_ms, 0.0);
  }
  EXPECT_EQ(cluster.link_stats().link_updates, failable.size());
  for (auto it = failable.rbegin(); it != failable.rend(); ++it) {
    cluster.restore_link(it->first, it->second);
  }
  // Delays return to their exact pre-failure values (bit-identical)…
  EXPECT_EQ(cluster.avg_delay_ms(), baseline);
  // …but the fingerprint still records that the topology churned.
  EXPECT_NE(cluster.delay_fingerprint(), fp0);
  EXPECT_EQ(cluster.link_stats().link_updates, 2 * failable.size());
}

TEST(DynamicClusterLinks, SetLinkLatencyReportsPreviousAndMovesDelays) {
  DynamicCluster cluster = make_cluster(11);
  const double baseline = cluster.avg_delay_ms();
  const auto links = topo::backbone_links(cluster.network());
  ASSERT_FALSE(links.empty());

  std::vector<double> original(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto* props =
        cluster.network().graph.edge_props(links[i].first, links[i].second);
    ASSERT_NE(props, nullptr);
    original[i] = props->latency_ms;
    const LinkUpdateReport report = cluster.set_link_latency(
        links[i].first, links[i].second, original[i] * 10.0);
    EXPECT_DOUBLE_EQ(report.latency_ms, original[i]);
  }
  // Every backbone link 10x slower: the mean delay must strictly rise.
  EXPECT_GT(cluster.avg_delay_ms(), baseline);
  for (std::size_t i = 0; i < links.size(); ++i) {
    cluster.set_link_latency(links[i].first, links[i].second, original[i]);
  }
  EXPECT_EQ(cluster.avg_delay_ms(), baseline);
}

TEST(DynamicClusterLinks, LinkVerbsRequireRouterEndpoints) {
  DynamicCluster cluster = make_cluster(12);
  const topo::NodeId device = cluster.network().iot_nodes.front();
  const topo::NodeId server = cluster.network().edge_nodes.front();
  const auto links = topo::backbone_links(cluster.network());
  ASSERT_FALSE(links.empty());
  const auto [u, v] = links.front();

  EXPECT_THROW(cluster.fail_link(device, v), std::invalid_argument);
  EXPECT_THROW(cluster.fail_link(u, server), std::invalid_argument);
  EXPECT_THROW(cluster.set_link_latency(device, server, 1.0),
               std::invalid_argument);
  // Restoring a link that is not failed (or failing one twice) throws too.
  EXPECT_THROW(cluster.restore_link(u, v), std::invalid_argument);
  cluster.fail_link(u, v);
  EXPECT_THROW(cluster.fail_link(u, v), std::invalid_argument);
  cluster.restore_link(u, v);
}

TEST(DynamicClusterLinks, StatsCountSavingsAndRefreshes) {
  DynamicCluster cluster = make_cluster(13);
  const auto links = topo::backbone_links(cluster.network());
  ASSERT_FALSE(links.empty());
  const auto [u, v] = links.front();

  const LinkUpdateReport failed = cluster.fail_link(u, v);
  const LinkUpdateReport restored = cluster.restore_link(u, v);
  // Incrementality: each update must leave some tree nodes untouched
  // relative to a full recompute.
  EXPECT_GT(failed.nodes_saved + restored.nodes_saved, 0u);
  // Every bound row is either refreshed or saved on each of the 2 updates.
  EXPECT_EQ(cluster.delay_rows_saved() + cluster.delay_rows_refreshed(),
            2 * cluster.device_slot_count());
  EXPECT_EQ(cluster.delay_rows_refreshed(),
            failed.rows_refreshed + restored.rows_refreshed);
  EXPECT_EQ(cluster.link_stats().nodes_affected,
            failed.nodes_affected + restored.nodes_affected);
}

TEST(DynamicCluster, LoadsMatchAssignments) {
  DynamicCluster cluster = make_cluster(9);
  double total = 0.0;
  for (double load : cluster.loads()) total += load;
  // 60 initial devices, each demand == rate; joins none yet.
  const Scenario scenario = Scenario::campus(60, 6, 9);
  EXPECT_NEAR(total, scenario.workload().total_demand(), 1e-6);
}

}  // namespace
}  // namespace tacc
