#include "runtime/portfolio.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/experiments.hpp"

namespace tacc::runtime {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  options.ucb.rollouts_per_device = 4;
  options.annealing.steps = 10'000;
  return options;
}

std::vector<ConfigureRequest> comparison_requests(std::uint64_t seed) {
  std::vector<ConfigureRequest> requests;
  for (Algorithm a : {Algorithm::kGreedyBestFit, Algorithm::kLocalSearch,
                      Algorithm::kSimulatedAnnealing, Algorithm::kQLearning,
                      Algorithm::kSarsa}) {
    requests.push_back({a, cheap_options(seed)});
  }
  return requests;
}

TEST(RuntimePortfolio, DeriveTaskSeedIsPureAndSpreads) {
  EXPECT_EQ(derive_task_seed(1000, 0), derive_task_seed(1000, 0));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) seeds.insert(derive_task_seed(7, i));
  EXPECT_EQ(seeds.size(), 100u);  // no collisions among neighbors
  EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(2, 0));
}

TEST(RuntimePortfolio, BitIdenticalAcrossThreadCounts) {
  const Scenario scenario = Scenario::smart_city(60, 6, 91);
  const ClusterConfigurator configurator(scenario);
  const auto requests = comparison_requests(91);

  PortfolioRunner baseline(1);
  const PortfolioOutcome serial =
      baseline.run_seeded(configurator, requests, 91);
  ASSERT_EQ(serial.configurations.size(), requests.size());

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    PortfolioRunner runner(threads);
    const PortfolioOutcome out =
        runner.run_seeded(configurator, requests, 91);
    ASSERT_EQ(out.configurations.size(), requests.size());
    EXPECT_EQ(out.winner_index, serial.winner_index) << threads;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(out.configurations[i].assignment(),
                serial.configurations[i].assignment())
          << "threads=" << threads << " task=" << i;
      EXPECT_EQ(out.configurations[i].total_cost(),
                serial.configurations[i].total_cost());
      EXPECT_EQ(out.configurations[i].feasible(),
                serial.configurations[i].feasible());
      EXPECT_EQ(out.configurations[i].scenario_fingerprint(),
                serial.configurations[i].scenario_fingerprint());
    }
  }
}

TEST(RuntimePortfolio, WinnerPrefersFeasibleOverCheaperInfeasible) {
  // Craft outcomes directly: the infeasible one is cheaper, the feasible one
  // must still win; among feasible, cheapest wins; ties keep the lower index.
  const auto make = [](double cost, bool feasible) {
    solvers::SolveResult result;
    result.total_cost = cost;
    result.feasible = feasible;
    gap::Evaluation ev;
    ev.total_cost = cost;
    ev.feasible = feasible;
    return ClusterConfiguration(Algorithm::kGreedyBestFit, result, ev);
  };
  const std::vector<ClusterConfiguration> configurations = {
      make(10.0, false), make(50.0, true), make(40.0, true), make(40.0, true)};
  EXPECT_EQ(pick_winner(std::span<const ClusterConfiguration>(configurations)),
            2u);

  const std::vector<ClusterConfiguration> none_feasible = {
      make(30.0, false), make(20.0, false)};
  EXPECT_EQ(pick_winner(std::span<const ClusterConfiguration>(none_feasible)),
            1u);  // falls back to cheapest overall
}

TEST(RuntimePortfolio, EmptyAndSingleRequestAreSane) {
  const Scenario scenario = Scenario::smart_city(40, 5, 17);
  const ClusterConfigurator configurator(scenario);
  PortfolioRunner runner(4);

  const PortfolioOutcome empty =
      runner.run(configurator, std::span<const ConfigureRequest>{});
  EXPECT_TRUE(empty.configurations.empty());
  EXPECT_FALSE(empty.has_winner());
  EXPECT_THROW((void)empty.winner(), std::logic_error);

  const std::vector<ConfigureRequest> one = {
      {Algorithm::kGreedyBestFit, cheap_options(17)}};
  const PortfolioOutcome single = runner.run(configurator, one);
  ASSERT_EQ(single.configurations.size(), 1u);
  EXPECT_EQ(single.winner_index, 0u);
  EXPECT_EQ(single.stats.tasks, 1u);
}

TEST(RuntimePortfolio, RunStatsCountTasksAndTime) {
  const Scenario scenario = Scenario::smart_city(40, 5, 18);
  const ClusterConfigurator configurator(scenario);
  PortfolioRunner runner(2);
  const auto requests = comparison_requests(18);
  const PortfolioOutcome out = runner.run_seeded(configurator, requests, 18);
  EXPECT_EQ(out.stats.threads, 2u);
  EXPECT_EQ(out.stats.tasks, requests.size());
  ASSERT_EQ(out.stats.per_task.size(), requests.size());
  EXPECT_GT(out.stats.total_wall_ms, 0.0);
  EXPECT_GT(out.stats.task_wall_ms_sum(), 0.0);
  EXPECT_GE(out.stats.max_task_wall_ms(), 0.0);
  EXPECT_GE(out.stats.mean_queue_ms(), 0.0);
  EXPECT_GT(out.stats.parallel_speedup(), 0.0);
}

TEST(RuntimePortfolio, RunTasksMatchesDirectSolverLoop) {
  const Scenario scenario = Scenario::smart_city(50, 5, 23);
  const gap::Instance& instance = scenario.instance();
  std::vector<SolveTask> tasks;
  for (Algorithm a : {Algorithm::kGreedyBestFit, Algorithm::kQLearning}) {
    SolveTask task;
    task.algorithm = a;
    task.options = cheap_options(derive_task_seed(23, tasks.size()));
    tasks.push_back(std::move(task));
  }

  PortfolioRunner runner(2);
  RunStats stats;
  const std::vector<TaskOutcome> outcomes =
      runner.run_tasks(instance, tasks, &stats);
  ASSERT_EQ(outcomes.size(), tasks.size());
  EXPECT_EQ(stats.tasks, tasks.size());

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto direct =
        make_solver(tasks[i].algorithm, tasks[i].options)->solve(instance);
    EXPECT_EQ(outcomes[i].algorithm, tasks[i].algorithm);
    EXPECT_EQ(outcomes[i].result.assignment, direct.assignment) << i;
    EXPECT_EQ(outcomes[i].evaluation.total_cost,
              gap::evaluate(instance, direct.assignment).total_cost);
  }
}

TEST(RuntimePortfolio, RunBatchBroadcastsAndMatchesSerialHarness) {
  const auto make_scenario = [](std::uint64_t seed) {
    return Scenario::smart_city(40, 5, seed);
  };
  constexpr std::uint64_t kBase = 400;
  constexpr std::size_t kRepeats = 3;

  PortfolioRunner runner(4);
  RunStats stats;
  const AlgoStats parallel_stats = run_repeated_parallel(
      make_scenario, Algorithm::kGreedyBestFit, kRepeats, kBase,
      cheap_options(0), runner, &stats);
  const AlgoStats serial_stats = run_repeated(
      make_scenario, Algorithm::kGreedyBestFit, kRepeats, kBase,
      cheap_options(0));

  EXPECT_EQ(stats.tasks, kRepeats);
  EXPECT_EQ(parallel_stats.runs, serial_stats.runs);
  EXPECT_EQ(parallel_stats.feasible_runs, serial_stats.feasible_runs);
  EXPECT_EQ(parallel_stats.total_cost.mean(), serial_stats.total_cost.mean());
  EXPECT_EQ(parallel_stats.avg_delay_ms.mean(),
            serial_stats.avg_delay_ms.mean());
  EXPECT_EQ(parallel_stats.max_utilization.mean(),
            serial_stats.max_utilization.mean());

  // Mismatched request/scenario counts must be rejected loudly.
  const std::vector<Scenario> scenarios = {make_scenario(1), make_scenario(2)};
  const std::vector<ConfigureRequest> requests = {
      {Algorithm::kGreedyBestFit, cheap_options(1)},
      {Algorithm::kGreedyBestFit, cheap_options(2)},
      {Algorithm::kGreedyBestFit, cheap_options(3)}};
  EXPECT_THROW((void)runner.run_batch(scenarios, requests),
               std::invalid_argument);
}

}  // namespace
}  // namespace tacc::runtime
