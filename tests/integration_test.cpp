// End-to-end: scenario → every algorithm → static evaluation → packet-level
// simulation, plus cross-module consistency checks.
#include <gtest/gtest.h>

#include <sstream>

#include "core/tacc.hpp"
#include "gap/io.hpp"

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 80;
  options.ucb.rollouts_per_device = 6;
  options.annealing.steps = 20'000;
  return options;
}

TEST(Integration, FullPipelineEveryComparisonAlgorithm) {
  const Scenario scenario = Scenario::smart_city(80, 8, 77);
  const ClusterConfigurator configurator(scenario);
  sim::SimParams sim_params;
  sim_params.duration_s = 3.0;
  sim_params.warmup_s = 0.5;

  for (Algorithm algorithm : comparison_algorithms()) {
    const ClusterConfiguration conf =
        configurator.configure({algorithm, cheap_options(77)});
    if (algorithm != Algorithm::kGreedyNearest) {
      // Every capacity-aware algorithm must respect capacities; the
      // oblivious nearest baseline is *expected* to overload.
      EXPECT_TRUE(conf.feasible()) << to_string(algorithm);
    }
    const sim::SimResult sim = sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(),
        sim_params);
    EXPECT_GT(sim.messages_measured, 0u) << to_string(algorithm);
    // Simulated mean delay must exceed the static (queue-free) mean.
    EXPECT_GT(sim.mean_delay_ms(), conf.avg_delay_ms() * 0.9)
        << to_string(algorithm);
  }
}

TEST(Integration, RlBeatsObliviousNearestUnderSimulation) {
  const Scenario scenario = Scenario::smart_city(100, 8, 31);
  const ClusterConfigurator configurator(scenario);
  sim::SimParams sim_params;
  sim_params.duration_s = 5.0;

  const auto rl_conf =
      configurator.configure({Algorithm::kQLearning, cheap_options(31)});
  const auto nearest_conf =
      configurator.configure({Algorithm::kGreedyNearest, cheap_options(31)});
  const auto rl_sim = sim::simulate(scenario.network(), scenario.workload(),
                                    rl_conf.assignment(), sim_params);
  const auto nearest_sim =
      sim::simulate(scenario.network(), scenario.workload(),
                    nearest_conf.assignment(), sim_params);
  // The abstract's claim, end to end: near-optimal delay WITHOUT overload.
  EXPECT_TRUE(rl_conf.feasible());
  EXPECT_FALSE(nearest_conf.feasible());
  EXPECT_LT(rl_sim.p99_delay_ms(), nearest_sim.p99_delay_ms());
  EXPECT_LE(rl_sim.deadline_miss_rate(), nearest_sim.deadline_miss_rate());
}

TEST(Integration, InstanceSurvivesSerializationAndResolving) {
  const Scenario scenario = Scenario::smart_city(40, 5, 13);
  std::stringstream buffer;
  gap::save_instance(scenario.instance(), buffer);
  const gap::Instance loaded = gap::load_instance(buffer);
  AlgorithmOptions options = cheap_options(13);
  const auto direct =
      make_solver(Algorithm::kRegretGreedy, options)->solve(
          scenario.instance());
  const auto reloaded =
      make_solver(Algorithm::kRegretGreedy, options)->solve(loaded);
  EXPECT_EQ(direct.assignment, reloaded.assignment);
  EXPECT_DOUBLE_EQ(direct.total_cost, reloaded.total_cost);
}

TEST(Integration, LowerBoundsHoldOnGeneratedScenarios) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Scenario scenario = Scenario::campus(50, 6, seed);
    const auto bounds = solvers::compute_lower_bounds(scenario.instance());
    const ClusterConfigurator configurator(scenario);
    for (Algorithm algorithm :
         {Algorithm::kGreedyBestFit, Algorithm::kQLearning,
          Algorithm::kFlowRelaxRepair}) {
      const auto conf = configurator.configure({algorithm, cheap_options(seed)});
      if (conf.feasible()) {
        EXPECT_GE(conf.total_cost(), bounds.splittable_flow - 1e-6)
            << to_string(algorithm) << " seed " << seed;
      }
    }
  }
}

TEST(Integration, DynamicClusterAgreesWithStaticEvaluation) {
  const Scenario scenario = Scenario::campus(40, 5, 44);
  DynamicCluster cluster(scenario, Algorithm::kGreedyBestFit,
                         cheap_options(44));
  const ClusterConfigurator configurator(scenario);
  const auto conf =
      configurator.configure({Algorithm::kGreedyBestFit, cheap_options(44)});
  EXPECT_NEAR(cluster.avg_delay_ms(), conf.avg_delay_ms(), 1e-9);
  EXPECT_EQ(cluster.feasible(), conf.feasible());
}

}  // namespace
}  // namespace tacc
