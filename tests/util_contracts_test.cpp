// The contracts layer itself: handler plumbing, macro semantics in both
// build configurations (TACC_ENABLE_CONTRACTS on and off), and the
// always-on TACC_CHECK_INVARIANT that backs the check_invariants()
// validators.
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tacc::contracts {
namespace {

void ignoring_handler(const Violation&) {}

TEST(Contracts, DescribeCarriesEveryField) {
  const Violation violation{"REQUIRE", "x > 0", "core/foo.cpp", 42,
                            "x was -3"};
  const std::string text = describe(violation);
  EXPECT_NE(text.find("REQUIRE"), std::string::npos);
  EXPECT_NE(text.find("x > 0"), std::string::npos);
  EXPECT_NE(text.find("core/foo.cpp:42"), std::string::npos);
  EXPECT_NE(text.find("x was -3"), std::string::npos);
}

TEST(Contracts, SetFailureHandlerReturnsPrevious) {
  const FailureHandler original = failure_handler();
  EXPECT_EQ(set_failure_handler(&throw_handler), original);
  EXPECT_EQ(failure_handler(), &throw_handler);
  EXPECT_EQ(set_failure_handler(&ignoring_handler), &throw_handler);
  // nullptr restores the default abort handler rather than installing a
  // null callee.
  EXPECT_EQ(set_failure_handler(nullptr), &ignoring_handler);
  EXPECT_EQ(failure_handler(), &abort_handler);
  set_failure_handler(original);
}

TEST(Contracts, ScopedFailureHandlerRestoresOnExit) {
  const FailureHandler original = failure_handler();
  {
    ScopedFailureHandler guard(&throw_handler);
    EXPECT_EQ(failure_handler(), &throw_handler);
    {
      ScopedFailureHandler inner(&ignoring_handler);
      EXPECT_EQ(failure_handler(), &ignoring_handler);
    }
    EXPECT_EQ(failure_handler(), &throw_handler);
  }
  EXPECT_EQ(failure_handler(), original);
}

TEST(Contracts, CheckInvariantFiresInEveryBuildType) {
  // TACC_CHECK_INVARIANT backs the check_invariants() validators and is NOT
  // gated on TACC_ENABLE_CONTRACTS.
  ScopedFailureHandler guard(&throw_handler);
  TACC_CHECK_INVARIANT(1 + 1 == 2);  // true: no effect
  bool threw = false;
  try {
    TACC_CHECK_INVARIANT(1 + 1 == 3, "arithmetic broke");
  } catch (const ContractViolation& violation) {
    threw = true;
    EXPECT_STREQ(violation.kind(), "INVARIANT");
    const std::string what = violation.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("arithmetic broke"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(Contracts, MacrosFireExactlyWhenEnabled) {
  ScopedFailureHandler guard(&throw_handler);
  if (enabled()) {
    EXPECT_THROW(TACC_REQUIRE(false), ContractViolation);
    EXPECT_THROW(TACC_ENSURE(false), ContractViolation);
    EXPECT_THROW(TACC_ASSERT(false), ContractViolation);
  } else {
    EXPECT_NO_THROW(TACC_REQUIRE(false));
    EXPECT_NO_THROW(TACC_ENSURE(false));
    EXPECT_NO_THROW(TACC_ASSERT(false));
  }
  // A passing contract is silent in both configurations.
  EXPECT_NO_THROW(TACC_REQUIRE(true));
  EXPECT_NO_THROW(TACC_ENSURE(true));
  EXPECT_NO_THROW(TACC_ASSERT(true));
}

TEST(Contracts, MacroKindsAreDistinguishable) {
  if (!enabled()) GTEST_SKIP() << "contracts compiled out in this build";
  ScopedFailureHandler guard(&throw_handler);
  try {
    TACC_REQUIRE(2 < 1, "caller handed us nonsense");
    FAIL() << "TACC_REQUIRE(false) did not fire";
  } catch (const ContractViolation& violation) {
    EXPECT_STREQ(violation.kind(), "REQUIRE");
    const std::string what = violation.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("caller handed us nonsense"), std::string::npos);
  }
  try {
    TACC_ENSURE(false);
    FAIL() << "TACC_ENSURE(false) did not fire";
  } catch (const ContractViolation& violation) {
    EXPECT_STREQ(violation.kind(), "ENSURE");
  }
}

TEST(Contracts, DisabledConditionIsNeverEvaluated) {
  // The compiled-out form must type-check the condition without running it:
  // a contract can have no side effects in a Release binary.
  ScopedFailureHandler guard(&throw_handler);
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  TACC_ASSERT(probe());
  TACC_REQUIRE(probe());
  TACC_ENSURE(probe());
  EXPECT_EQ(evaluations, enabled() ? 3 : 0);
}

using ContractsDeathTest = testing::Test;

TEST(ContractsDeathTest, DefaultHandlerAborts) {
  // No handler swap: the process-default abort_handler logs and aborts.
  EXPECT_DEATH(fail("INVARIANT", "false", "here.cpp", 7, "boom"), "");
}

TEST(ContractsDeathTest, ReturningHandlerStillAborts) {
  // fail() never returns even if a (buggy or custom) handler does: the code
  // after a violated contract must not run on corrupt state.
  ScopedFailureHandler guard(&ignoring_handler);
  EXPECT_DEATH(fail("ASSERT", "x == y", "here.cpp", 9), "");
}

}  // namespace
}  // namespace tacc::contracts
