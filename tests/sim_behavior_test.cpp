// Behavioural properties of the packet-level simulator: the physics the
// delay numbers are supposed to obey.
#include <gtest/gtest.h>

#include "core/configurator.hpp"
#include "sim/simulator.hpp"
#include "solvers/constructive.hpp"

namespace tacc::sim {
namespace {

Scenario make_scenario(std::uint64_t seed, double load_factor = 0.7,
                       std::size_t iot = 80, std::size_t edge = 6) {
  ScenarioParams params;
  params.workload.iot_count = iot;
  params.workload.edge_count = edge;
  params.workload.load_factor = load_factor;
  params.seed = seed;
  return Scenario::generate(params);
}

gap::Assignment best_fit(const Scenario& scenario) {
  solvers::GreedyBestFitSolver solver;
  return solver.solve(scenario.instance()).assignment;
}

TEST(SimBehavior, HigherLoadMeansHigherDelay) {
  // Same seed and topology family; only the load factor differs.
  const Scenario light = make_scenario(21, 0.4);
  const Scenario heavy = make_scenario(21, 0.95);
  SimParams params;
  params.duration_s = 10.0;
  const SimResult light_result = simulate(
      light.network(), light.workload(), best_fit(light), params);
  const SimResult heavy_result = simulate(
      heavy.network(), heavy.workload(), best_fit(heavy), params);
  EXPECT_GT(heavy_result.mean_delay_ms(), light_result.mean_delay_ms());
  EXPECT_GT(heavy_result.p99_delay_ms(), light_result.p99_delay_ms());
}

TEST(SimBehavior, SmallerHeadroomMeansMoreQueueing) {
  const Scenario scenario = make_scenario(22, 0.8);
  const gap::Assignment assignment = best_fit(scenario);
  SimParams roomy;
  roomy.duration_s = 10.0;
  roomy.capacity_headroom = 0.5;  // servers twice as fast as the constraint
  SimParams tight = roomy;
  tight.capacity_headroom = 0.95;  // barely faster than offered load
  const SimResult roomy_result = simulate(scenario.network(),
                                          scenario.workload(), assignment,
                                          roomy);
  const SimResult tight_result = simulate(scenario.network(),
                                          scenario.workload(), assignment,
                                          tight);
  EXPECT_GT(tight_result.mean_delay_ms(), roomy_result.mean_delay_ms());
}

TEST(SimBehavior, BiggerMessagesTakeLonger) {
  ScenarioParams small_params;
  small_params.workload.iot_count = 60;
  small_params.workload.edge_count = 5;
  small_params.workload.message_size_mean_kb = 1.0;
  small_params.seed = 23;
  ScenarioParams big_params = small_params;
  big_params.workload.message_size_mean_kb = 64.0;

  const Scenario small_msgs = Scenario::generate(small_params);
  const Scenario big_msgs = Scenario::generate(big_params);
  SimParams params;
  params.duration_s = 8.0;
  const SimResult small_result =
      simulate(small_msgs.network(), small_msgs.workload(),
               best_fit(small_msgs), params);
  const SimResult big_result = simulate(
      big_msgs.network(), big_msgs.workload(), best_fit(big_msgs), params);
  // Transmission delay ∝ message size on every hop.
  EXPECT_GT(big_result.mean_delay_ms(), small_result.mean_delay_ms());
}

TEST(SimBehavior, MessageVolumeTracksRates) {
  ScenarioParams slow_params;
  slow_params.workload.iot_count = 50;
  slow_params.workload.edge_count = 5;
  slow_params.workload.rate_mean_hz = 5.0;
  slow_params.seed = 24;
  ScenarioParams fast_params = slow_params;
  fast_params.workload.rate_mean_hz = 20.0;

  const Scenario slow = Scenario::generate(slow_params);
  const Scenario fast = Scenario::generate(fast_params);
  SimParams params;
  params.duration_s = 5.0;
  const SimResult slow_result =
      simulate(slow.network(), slow.workload(), best_fit(slow), params);
  const SimResult fast_result =
      simulate(fast.network(), fast.workload(), best_fit(fast), params);
  // ~4x the rate → ~4x the messages (Poisson, same horizon).
  const double ratio = static_cast<double>(fast_result.messages_generated) /
                       static_cast<double>(slow_result.messages_generated);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(SimBehavior, LongerHorizonMoreSamplesSimilarMean) {
  const Scenario scenario = make_scenario(25, 0.6);
  const gap::Assignment assignment = best_fit(scenario);
  SimParams short_run;
  short_run.duration_s = 5.0;
  short_run.warmup_s = 1.0;
  SimParams long_run = short_run;
  long_run.duration_s = 25.0;
  const SimResult a = simulate(scenario.network(), scenario.workload(),
                               assignment, short_run);
  const SimResult b = simulate(scenario.network(), scenario.workload(),
                               assignment, long_run);
  EXPECT_GT(b.messages_measured, 3 * a.messages_measured);
  // Stationary process: means agree within a loose band.
  EXPECT_NEAR(a.mean_delay_ms(), b.mean_delay_ms(),
              0.25 * b.mean_delay_ms());
}

TEST(SimBehavior, FartherServerMeansLongerDelayForThatDevice) {
  // Assign device 0 to its nearest vs its farthest server; everything else
  // fixed. Its own delay must rank accordingly.
  const Scenario scenario = make_scenario(26, 0.5);
  gap::Assignment near_assignment = best_fit(scenario);
  gap::Assignment far_assignment = near_assignment;
  const auto ranked = scenario.instance().servers_by_delay(0);
  near_assignment[0] = static_cast<std::int32_t>(ranked.front());
  far_assignment[0] = static_cast<std::int32_t>(ranked.back());

  SimParams params;
  params.duration_s = 10.0;
  const SimResult far_result = simulate(
      scenario.network(), scenario.workload(), far_assignment, params);
  // Every message of device 0 pays at least its static path delay, so the
  // run's maximum observed delay must be at least the far static delay —
  // which itself strictly exceeds the near static delay.
  const double near_static = scenario.instance().delay_ms(0, ranked.front());
  const double far_static = scenario.instance().delay_ms(0, ranked.back());
  ASSERT_GT(far_static, near_static);
  EXPECT_GE(far_result.delay_ms.stats().max(), far_static);
  (void)near_assignment;
}

}  // namespace
}  // namespace tacc::sim
