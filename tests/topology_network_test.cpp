#include "topology/network.hpp"

#include <gtest/gtest.h>

#include "topology/shortest_paths.hpp"
#include "util/rng.hpp"

namespace tacc::topo {
namespace {

const LinkDelayModel kDelay;

GeoGraph two_router_line() {
  // Two routers 4 km apart.
  GeoGraph geo{Graph(2), {{0.0, 0.0}, {4.0, 0.0}}};
  geo.graph.add_edge(0, 1, kDelay.backbone_link(4.0));
  return geo;
}

TEST(DelayMatrix, ShapeAndAccess) {
  DelayMatrix m(3, 2, 1.5);
  EXPECT_EQ(m.iot_count(), 3u);
  EXPECT_EQ(m.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 1.5);
  m.set(2, 1, 9.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 9.0);
  EXPECT_THROW((void)m.at(3, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 2, 1.0), std::out_of_range);
  const auto row = m.row(2);
  EXPECT_DOUBLE_EQ(row[1], 9.0);
  EXPECT_THROW((void)m.row(5), std::out_of_range);
}

TEST(BuildNetwork, NodeBookkeeping) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.5, 0.0}, {3.5, 0.0}};
  const std::vector<Point2D> edges{{0.0, 0.5}};
  const auto net = build_network(infra, iot, edges, kDelay);
  EXPECT_EQ(net.iot_count(), 2u);
  EXPECT_EQ(net.edge_count(), 1u);
  EXPECT_EQ(net.graph.node_count(), 5u);  // 2 routers + 1 server + 2 iot
  EXPECT_EQ(net.kinds[net.iot_nodes[0]], NodeKind::kIotDevice);
  EXPECT_EQ(net.kinds[net.edge_nodes[0]], NodeKind::kEdgeServer);
  EXPECT_EQ(net.kinds[0], NodeKind::kRouter);
  EXPECT_EQ(net.iot_position(1).x, 3.5);
  EXPECT_EQ(net.edge_position(0).y, 0.5);
}

TEST(BuildNetwork, DevicesAttachToNearestRouter) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{3.9, 0.0}};
  const std::vector<Point2D> edges{{0.1, 0.0}};
  const auto net = build_network(infra, iot, edges, kDelay);
  EXPECT_TRUE(net.graph.has_edge(net.iot_nodes[0], 1));   // right router
  EXPECT_TRUE(net.graph.has_edge(net.edge_nodes[0], 0));  // left router
  EXPECT_FALSE(net.graph.has_edge(net.iot_nodes[0], 0));
}

TEST(BuildNetwork, MultiHomingAddsLinks) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{2.0, 0.0}};
  const std::vector<Point2D> edges{{2.0, 1.0}};
  AttachParams attach;
  attach.attach_count = 2;
  const auto net = build_network(infra, iot, edges, kDelay, attach);
  EXPECT_EQ(net.graph.degree(net.iot_nodes[0]), 2u);
  EXPECT_EQ(net.graph.degree(net.edge_nodes[0]), 2u);
}

TEST(BuildNetwork, InvalidInputsThrow) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> one{{0.0, 0.0}};
  EXPECT_THROW(build_network(GeoGraph{}, one, one, kDelay),
               std::invalid_argument);
  EXPECT_THROW(build_network(infra, {}, one, kDelay), std::invalid_argument);
  EXPECT_THROW(build_network(infra, one, {}, kDelay), std::invalid_argument);
}

TEST(ComputeDelayMatrix, MatchesManualDijkstra) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.5, 0.0}, {3.5, 0.0}};
  const std::vector<Point2D> edges{{0.0, 0.5}, {4.0, 0.5}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto matrix = compute_delay_matrix(net);
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    const auto tree = dijkstra(net.graph, net.edge_nodes[j]);
    for (std::size_t i = 0; i < net.iot_count(); ++i) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), tree.distance_ms[net.iot_nodes[i]]);
    }
  }
}

TEST(ComputeDelayMatrix, ParallelBuildMatchesSerialExactly) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.5, 0.0}, {3.5, 0.0}, {1.5, 0.3}};
  const std::vector<Point2D> edges{{0.0, 0.5}, {4.0, 0.5}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto serial = compute_delay_matrix(net, 1);
  const auto parallel = compute_delay_matrix(net, 4);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      EXPECT_EQ(parallel.at(i, j), serial.at(i, j)) << i << "," << j;
    }
  }
}

TEST(ComputeDelayMatrix, NearerServerIsCheaper) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.2, 0.0}};
  const std::vector<Point2D> edges{{0.0, 0.1}, {4.0, 0.1}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto matrix = compute_delay_matrix(net);
  EXPECT_LT(matrix.at(0, 0), matrix.at(0, 1));
}

TEST(ComputeDelayMatrix, AtLeastAccessLatency) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{1.0, 1.0}};
  const std::vector<Point2D> edges{{3.0, 1.0}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto matrix = compute_delay_matrix(net);
  // Any IoT→server path crosses one wireless access link.
  EXPECT_GE(matrix.at(0, 0),
            kDelay.per_hop_forwarding_ms + kDelay.wireless_access_extra_ms);
}

TEST(ComputeHopMatrix, CountsHops) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.1, 0.0}};
  const std::vector<Point2D> edges{{3.9, 0.0}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto hops = compute_hop_matrix(net);
  // iot → router0 → router1 → server = 3 hops.
  EXPECT_DOUBLE_EQ(hops.at(0, 0), 3.0);
}

TEST(ComputeEuclideanMatrix, StraightLineDistances) {
  const GeoGraph infra = two_router_line();
  const std::vector<Point2D> iot{{0.0, 0.0}};
  const std::vector<Point2D> edges{{3.0, 4.0}};
  const auto net = build_network(infra, iot, edges, kDelay);
  const auto euclid = compute_euclidean_matrix(net);
  EXPECT_DOUBLE_EQ(euclid.at(0, 0), 5.0);
}

TEST(DelayModel, AccessSlowerThanBackbone) {
  EXPECT_GT(kDelay.access_link(1.0).latency_ms,
            kDelay.backbone_link(1.0).latency_ms);
  EXPECT_LT(kDelay.access_link(1.0).bandwidth_mbps,
            kDelay.backbone_link(1.0).bandwidth_mbps);
}

TEST(DelayModel, LatencyGrowsWithDistance) {
  EXPECT_GT(kDelay.backbone_link(10.0).latency_ms,
            kDelay.backbone_link(1.0).latency_ms);
}

}  // namespace
}  // namespace tacc::topo
