#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include "tests/test_helpers.hpp"
#include "util/contracts.hpp"

namespace tacc::topo {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, AddEdgeIsUndirected) {
  Graph g(3);
  g.add_edge(0, 1, {2.0, 50.0});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, NeighborsCarryProps) {
  Graph g(2);
  g.add_edge(0, 1, {3.5, 75.0});
  const auto neighbors = g.neighbors(0);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].to, 1u);
  EXPECT_DOUBLE_EQ(neighbors[0].props.latency_ms, 3.5);
  EXPECT_DOUBLE_EQ(neighbors[0].props.bandwidth_mbps, 75.0);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, {1.0, 1.0}), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, {-1.0, 1.0}), std::invalid_argument);
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  Graph g(1);
  EXPECT_THROW((void)g.neighbors(3), std::out_of_range);
}

TEST(Graph, TotalLatencyCountsEachEdgeOnce) {
  Graph g(3);
  g.add_edge(0, 1, {2.0, 1.0});
  g.add_edge(1, 2, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(g.total_latency(), 5.0);
}

TEST(Graph, ParallelEdgesAllowedAndCounted) {
  Graph g(2);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(0, 1, {2.0, 1.0});
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, ReleaseNodeDropsIncidentEdges) {
  Graph g(4);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(1, 2, {2.0, 1.0});
  g.add_edge(2, 3, {3.0, 1.0});
  g.release_node(1);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_TRUE(g.node_released(1));
  EXPECT_EQ(g.released_node_count(), 1u);
  EXPECT_EQ(g.live_node_count(), 3u);
  EXPECT_EQ(g.node_count(), 4u);  // id space is stable
}

TEST(Graph, ReleaseNodeRemovesParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1, {1.0, 1.0});
  g.add_edge(0, 1, {2.0, 1.0});
  g.release_node(0);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, AcquireReusesReleasedIdsLifo) {
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  Graph g(3);
  g.release_node(1);
  g.release_node(2);
  g.check_invariants();
  EXPECT_EQ(g.acquire_node(), 2u);  // most recently released first
  EXPECT_EQ(g.acquire_node(), 1u);
  EXPECT_EQ(g.acquire_node(), 3u);  // free list empty: append
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.released_node_count(), 0u);
  g.check_invariants();
}

TEST(Graph, ReleasedNodesRejectEdgesAndDoubleRelease) {
  Graph g(3);
  g.release_node(0);
  EXPECT_THROW(g.add_edge(0, 1, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.release_node(0), std::invalid_argument);
  EXPECT_THROW(g.release_node(9), std::out_of_range);
  const NodeId node = g.acquire_node();
  EXPECT_EQ(node, 0u);
  g.add_edge(0, 1, {1.0, 1.0});  // usable again after reacquisition
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, ReleaseCycleKeepsTotalLatencyConsistent) {
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  Graph g(3);
  g.add_edge(0, 1, {2.0, 1.0});
  g.add_edge(1, 2, {3.0, 1.0});
  g.release_node(2);
  EXPECT_DOUBLE_EQ(g.total_latency(), 2.0);
  const NodeId node = g.acquire_node();
  g.add_edge(node, 1, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(g.total_latency(), 7.0);
  g.check_invariants();
}

TEST(KnownGraph, HelperShape) {
  const Graph g = test::known_graph();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_TRUE(g.has_edge(4, 5));
}

}  // namespace
}  // namespace tacc::topo
