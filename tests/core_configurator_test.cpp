#include "core/configurator.hpp"

#include <gtest/gtest.h>

namespace tacc {
namespace {

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  options.ucb.rollouts_per_device = 4;
  options.annealing.steps = 10'000;
  return options;
}

TEST(Configurator, ConfigureProducesConsistentView) {
  const Scenario scenario = Scenario::smart_city(60, 6, 21);
  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration conf =
      configurator.configure({Algorithm::kGreedyBestFit, cheap_options(21)});
  EXPECT_EQ(conf.algorithm(), Algorithm::kGreedyBestFit);
  EXPECT_EQ(conf.algorithm_name(), "greedy-bestfit");
  EXPECT_EQ(conf.assignment().size(), 60u);
  EXPECT_TRUE(conf.feasible());
  EXPECT_GT(conf.avg_delay_ms(), 0.0);
  EXPECT_GE(conf.max_delay_ms(), conf.avg_delay_ms());
  EXPECT_LE(conf.max_utilization(), 1.0 + 1e-9);
  EXPECT_EQ(conf.overloaded_servers(), 0u);
  EXPECT_NEAR(conf.total_cost(), conf.evaluation().total_cost, 1e-12);
  // server_of agrees with the raw assignment.
  EXPECT_EQ(conf.server_of(5),
            static_cast<std::size_t>(conf.assignment()[5]));
}

TEST(Configurator, ConfigurationCarriesScenarioFingerprint) {
  const Scenario scenario = Scenario::smart_city(40, 5, 33);
  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration conf =
      configurator.configure({Algorithm::kGreedyBestFit, cheap_options(33)});
  EXPECT_NE(conf.scenario_fingerprint(), 0u);
  EXPECT_EQ(conf.scenario_fingerprint(), scenario.fingerprint());

  // A different seed must produce a different scenario fingerprint; the same
  // seed must reproduce it exactly.
  const Scenario other = Scenario::smart_city(40, 5, 34);
  EXPECT_NE(other.fingerprint(), scenario.fingerprint());
  const Scenario twin = Scenario::smart_city(40, 5, 33);
  EXPECT_EQ(twin.fingerprint(), scenario.fingerprint());
}

TEST(Configurator, RlConfigurationIsFeasible) {
  const Scenario scenario = Scenario::smart_city(80, 8, 22);
  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration conf =
      configurator.configure({Algorithm::kQLearning, cheap_options(22)});
  EXPECT_TRUE(conf.feasible());
}

TEST(Configurator, ObliviousRealizesWorseOrEqualDelayOnAverage) {
  // Solving on straight-line distance, evaluated on true topology delay,
  // should on average lose to solving on the true metric. Aggregate over
  // seeds to avoid per-instance flakiness.
  double aware_total = 0.0;
  double oblivious_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Scenario scenario = Scenario::campus(60, 6, seed);
    const ClusterConfigurator configurator(scenario);
    aware_total += configurator
                       .configure({Algorithm::kGreedyBestFit,
                                   cheap_options(seed)})
                       .total_cost();
    oblivious_total += configurator
                           .configure({Algorithm::kGreedyBestFit,
                                       cheap_options(seed),
                                       CostModel::kEuclidean})
                           .total_cost();
  }
  EXPECT_LE(aware_total, oblivious_total);
}

TEST(Configurator, ObliviousEvaluationUsesTrueDelays) {
  const Scenario scenario = Scenario::campus(40, 5, 8);
  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration conf = configurator.configure(
      {Algorithm::kGreedyBestFit, cheap_options(8), CostModel::kEuclidean});
  // Realized avg delay must be in topology-delay units (≥ ~1 ms access
  // latency), not Euclidean km.
  EXPECT_GT(conf.avg_delay_ms(), 1.0);
  EXPECT_NEAR(conf.total_cost(), conf.evaluation().total_cost, 1e-12);
}

TEST(Configurator, ProvenOptimalOnTinyScenario) {
  const Scenario scenario = Scenario::smart_city(8, 3, 30);
  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration exact =
      configurator.configure({Algorithm::kBranchAndBound, cheap_options(30)});
  EXPECT_TRUE(exact.proven_optimal());
  const ClusterConfiguration heuristic =
      configurator.configure({Algorithm::kQLearning, cheap_options(30)});
  EXPECT_FALSE(heuristic.proven_optimal());
  if (heuristic.feasible()) {
    EXPECT_GE(heuristic.total_cost(), exact.total_cost() - 1e-9);
  }
}

// The request-based entry point is the only one (the pre-ConfigureRequest
// wrappers are gone); the same request must reproduce the same
// configuration bit for bit, per cost model.
TEST(Configurator, RepeatedRequestsAreDeterministic) {
  const Scenario scenario = Scenario::smart_city(50, 5, 41);
  const ClusterConfigurator configurator(scenario);

  const ClusterConfiguration first =
      configurator.configure({Algorithm::kGreedyBestFit, cheap_options(41)});
  const ClusterConfiguration second =
      configurator.configure({Algorithm::kGreedyBestFit, cheap_options(41)});
  EXPECT_EQ(first.assignment(), second.assignment());
  EXPECT_EQ(first.total_cost(), second.total_cost());

  const ClusterConfiguration oblivious_first = configurator.configure(
      {Algorithm::kGreedyBestFit, cheap_options(41), CostModel::kEuclidean});
  const ClusterConfiguration oblivious_second = configurator.configure(
      {Algorithm::kGreedyBestFit, cheap_options(41), CostModel::kEuclidean});
  EXPECT_EQ(oblivious_first.assignment(), oblivious_second.assignment());
  // The Euclidean cost model solves on different costs, so it must be able
  // to produce a different configuration object — same fingerprint though.
  EXPECT_EQ(oblivious_first.scenario_fingerprint(),
            first.scenario_fingerprint());
}

TEST(Configurator, DeadlinePenaltyFactorReachesTheSolver) {
  const Scenario scenario = Scenario::smart_city(50, 5, 43);
  const ClusterConfigurator configurator(scenario);
  for (const double penalty : {5.0, 10.0, 25.0}) {
    const ClusterConfiguration first = configurator.configure(
        {Algorithm::kGreedyBestFit, cheap_options(43),
         CostModel::kDeadlinePenalized, penalty});
    const ClusterConfiguration second = configurator.configure(
        {Algorithm::kGreedyBestFit, cheap_options(43),
         CostModel::kDeadlinePenalized, penalty});
    EXPECT_EQ(first.assignment(), second.assignment())
        << "penalty_factor=" << penalty;
    EXPECT_EQ(first.total_cost(), second.total_cost());
    EXPECT_EQ(first.avg_delay_ms(), second.avg_delay_ms());
    EXPECT_EQ(first.scenario_fingerprint(), second.scenario_fingerprint());
  }
}

TEST(Configurator, RequestsAreDeterministicAcrossAlgorithmsAndSeeds) {
  // Stochastic solvers exercise the seed plumbing: dropped or reordered
  // options would diverge immediately.
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    const Scenario scenario = Scenario::factory(40, 5, seed);
    const ClusterConfigurator configurator(scenario);
    for (const Algorithm algorithm :
         {Algorithm::kGreedyBestFit, Algorithm::kLocalSearch,
          Algorithm::kQLearning}) {
      const ClusterConfiguration first =
          configurator.configure({algorithm, cheap_options(seed)});
      const ClusterConfiguration second =
          configurator.configure({algorithm, cheap_options(seed)});
      EXPECT_EQ(first.assignment(), second.assignment())
          << to_string(algorithm) << " seed=" << seed;
      EXPECT_EQ(first.total_cost(), second.total_cost());

      const ClusterConfiguration oblivious_first = configurator.configure(
          {algorithm, cheap_options(seed), CostModel::kEuclidean});
      const ClusterConfiguration oblivious_second = configurator.configure(
          {algorithm, cheap_options(seed), CostModel::kEuclidean});
      EXPECT_EQ(oblivious_first.assignment(), oblivious_second.assignment())
          << to_string(algorithm) << " seed=" << seed;
    }
  }
}

TEST(Configurator, PortfolioPicksCheapestFeasible) {
  const Scenario scenario = Scenario::smart_city(60, 6, 55);
  const ClusterConfigurator configurator(scenario);
  const std::vector<ConfigureRequest> requests = {
      {Algorithm::kGreedyBestFit, cheap_options(55)},
      {Algorithm::kLocalSearch, cheap_options(55)},
      {Algorithm::kQLearning, cheap_options(55)},
  };
  const PortfolioOutcome out = configurator.configure_portfolio(requests, 2);
  ASSERT_TRUE(out.has_winner());
  ASSERT_EQ(out.configurations.size(), requests.size());
  const ClusterConfiguration& best = out.winner();
  for (const ClusterConfiguration& conf : out.configurations) {
    if (conf.feasible()) {
      EXPECT_TRUE(best.feasible());
      EXPECT_LE(best.total_cost(), conf.total_cost() + 1e-12);
    }
  }
}

}  // namespace
}  // namespace tacc
