// Golden-value regression tests: pinned outputs for fixed seeds.
//
// All randomness flows through the in-repo xoshiro256** generator and plain
// IEEE-754 double arithmetic, so these values are stable across platforms
// and compilers at default settings. If a deliberate algorithm change moves
// one, update the constant in the same commit and say why — these exist to
// catch *unintended* behavioural drift that same-seed-equality tests
// cannot see.
#include <gtest/gtest.h>

#include "core/tacc.hpp"

namespace tacc {
namespace {

constexpr double kRelTol = 1e-9;

TEST(Regression, ScenarioGenerationPinned) {
  const Scenario scenario = Scenario::smart_city(100, 8, 2026);
  EXPECT_EQ(scenario.network().graph.node_count(), 138u);
  EXPECT_NEAR(scenario.workload().load_factor(), 0.7, 1e-12);
  EXPECT_NEAR(scenario.instance().delay_ms(0, 0), 10.007339529605366,
              10.0 * kRelTol);
  EXPECT_NEAR(scenario.instance().total_capacity(), 1335.3953577761956,
              1335.0 * kRelTol);
}

TEST(Regression, GreedyBestFitPinned) {
  const Scenario scenario = Scenario::smart_city(100, 8, 2026);
  AlgorithmOptions options;
  options.apply_seed(1);
  const auto result = make_solver(Algorithm::kGreedyBestFit, options)
                          ->solve(scenario.instance());
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.total_cost, 5578.3731369861725, 5578.0 * kRelTol);
}

TEST(Regression, QLearningPinned) {
  const Scenario scenario = Scenario::smart_city(100, 8, 2026);
  AlgorithmOptions options;
  options.apply_seed(1);
  const auto result =
      make_solver(Algorithm::kQLearning, options)->solve(scenario.instance());
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.total_cost, 5502.8837192399378, 5503.0 * kRelTol);
}

TEST(Regression, LowerBoundsPinned) {
  const Scenario scenario = Scenario::smart_city(100, 8, 2026);
  const auto bounds = solvers::compute_lower_bounds(scenario.instance());
  EXPECT_NEAR(bounds.min_cost, 5139.9588955974077, 5140.0 * kRelTol);
  EXPECT_NEAR(bounds.splittable_flow, 5472.831409804262, 5473.0 * kRelTol);
}

TEST(Regression, SimulationPinned) {
  const Scenario scenario = Scenario::smart_city(100, 8, 2026);
  AlgorithmOptions options;
  options.apply_seed(1);
  const auto conf = ClusterConfigurator(scenario).configure(
      {Algorithm::kGreedyBestFit, options});
  sim::SimParams params;
  params.duration_s = 5.0;
  params.warmup_s = 1.0;
  params.seed = 2026;
  const auto sim = sim::simulate(scenario.network(), scenario.workload(),
                                 conf.assignment(), params);
  EXPECT_EQ(sim.messages_generated, 4574u);
  EXPECT_NEAR(sim.mean_delay_ms(), 14.59037395804237, 14.6 * kRelTol);
}

}  // namespace
}  // namespace tacc
