#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace tacc {
namespace {

Scenario make_scenario(std::uint64_t seed) {
  return Scenario::smart_city(40, 5, seed);
}

TEST(RunRepeated, AggregatesAcrossScenarioSeeds) {
  const AlgoStats stats =
      run_repeated(make_scenario, Algorithm::kGreedyBestFit, 4, 100);
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.algorithm, Algorithm::kGreedyBestFit);
  EXPECT_EQ(stats.total_cost.count(), 4u);
  EXPECT_GT(stats.total_cost.mean(), 0.0);
  EXPECT_EQ(stats.feasible_runs, 4u);
  EXPECT_DOUBLE_EQ(stats.feasible_fraction(), 1.0);
}

TEST(RunRepeated, DeterministicAcrossCalls) {
  const AlgoStats a =
      run_repeated(make_scenario, Algorithm::kRegretGreedy, 3, 7);
  const AlgoStats b =
      run_repeated(make_scenario, Algorithm::kRegretGreedy, 3, 7);
  EXPECT_DOUBLE_EQ(a.total_cost.mean(), b.total_cost.mean());
  EXPECT_DOUBLE_EQ(a.avg_delay_ms.mean(), b.avg_delay_ms.mean());
}

TEST(RunRepeated, ObliviousNearestAccumulatesViolations) {
  // High-load scenarios make capacity-oblivious nearest overload.
  const auto tight = [](std::uint64_t seed) {
    ScenarioParams params;
    params.workload.iot_count = 60;
    params.workload.edge_count = 5;
    params.workload.load_factor = 0.9;
    params.seed = seed;
    return Scenario::generate(params);
  };
  const AlgoStats stats =
      run_repeated(tight, Algorithm::kGreedyNearest, 3, 50);
  EXPECT_LT(stats.feasible_fraction(), 1.0);
  EXPECT_GT(stats.overload_violations, 0u);
}

TEST(RunRepeatedOnInstance, VariesOnlySolverSeed) {
  const Scenario scenario = make_scenario(1);
  AlgorithmOptions options;
  options.rl.episodes = 40;
  const AlgoStats stats = run_repeated_on_instance(
      scenario.instance(), Algorithm::kQLearning, 3, 11, options);
  EXPECT_EQ(stats.runs, 3u);
  // Different seeds may land on different local optima, but all runs share
  // the instance so delays stay in a tight band.
  EXPECT_LT(stats.avg_delay_ms.stddev(), stats.avg_delay_ms.mean());
}

TEST(MeanCi, FormatsMeanAndHalfWidth) {
  metrics::RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  const std::string text = mean_ci(stats, 1);
  EXPECT_NE(text.find("2.0"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

}  // namespace
}  // namespace tacc
