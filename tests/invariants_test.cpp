// Seeded-violation coverage for every deep check_invariants() validator:
// each test corrupts exactly one documented invariant (through a TestPeer
// friend where the state is private) and asserts the validator reports it
// through the contracts failure handler — plus healthy-state passes, so the
// validators are proven both sound and non-vacuous.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dynamic.hpp"
#include "service/engine.hpp"
#include "topology/failures.hpp"
#include "topology/incremental/cache.hpp"
#include "topology/incremental/engine.hpp"
#include "util/contracts.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace tacc::topo {

/// Friend of topo::Graph: hands tests the private containers so they can
/// seed precisely one corruption.
struct GraphTestPeer {
  static std::vector<std::vector<Adjacency>>& adjacency(Graph& graph) {
    return graph.adjacency_;
  }
  static std::vector<NodeId>& free_list(Graph& graph) {
    return graph.free_list_;
  }
  static std::vector<bool>& released(Graph& graph) {
    return graph.released_;
  }
};

namespace incr {

/// Friend of DelayMatrixCache.
struct CacheTestPeer {
  static std::vector<std::uint64_t>& row_epochs(DelayMatrixCache& cache) {
    return cache.row_epochs_;
  }
  static std::vector<std::vector<double>>& rows(DelayMatrixCache& cache) {
    return cache.rows_;
  }
};

}  // namespace incr
}  // namespace tacc::topo

namespace tacc {

/// Friend of DynamicCluster.
struct DynamicClusterTestPeer {
  static std::vector<double>& loads(DynamicCluster& cluster) {
    return cluster.loads_;
  }
  static gap::Assignment& assignment(DynamicCluster& cluster) {
    return cluster.assignment_;
  }
  static std::vector<std::size_t>& free_slots(DynamicCluster& cluster) {
    return cluster.free_slots_;
  }
};

}  // namespace tacc

namespace tacc::service {

/// Friend of service::Engine: corrupts shard 0's accounting under that
/// shard's mutex (released before the validator re-takes it).
struct ServiceEngineTestPeer {
  static void bump_accepted(Engine& engine) {
    Engine::Shard& shard = *engine.shards_.front();
    const MutexLock lock(&shard.mutex);
    ++shard.counters.accepted;
  }
};

}  // namespace tacc::service

namespace tacc {
namespace {

using contracts::ContractViolation;
using contracts::ScopedFailureHandler;

/// Every test runs with the throwing handler so a violation is an
/// assertable exception instead of a process abort.
class InvariantsTest : public testing::Test {
 protected:
  ScopedFailureHandler guard_{&contracts::throw_handler};
};

topo::EdgeProps props(double latency_ms) {
  topo::EdgeProps p;
  p.latency_ms = latency_ms;
  return p;
}

// ---- topo::Graph -----------------------------------------------------------

topo::Graph make_ring(std::size_t nodes = 6) {
  topo::Graph graph(nodes);
  for (topo::NodeId u = 0; u < nodes; ++u) {
    graph.add_edge(u, static_cast<topo::NodeId>((u + 1) % nodes),
                   props(1.0 + u));
  }
  return graph;
}

TEST_F(InvariantsTest, GraphHealthyStatePasses) {
  topo::Graph graph = make_ring();
  graph.release_node(3);
  EXPECT_NO_THROW(graph.check_invariants());
  EXPECT_EQ(graph.acquire_node(), 3u);  // recycled LIFO
  EXPECT_NO_THROW(graph.check_invariants());
}

TEST_F(InvariantsTest, GraphCatchesAsymmetricAdjacency) {
  topo::Graph graph = make_ring();
  // Drop one directional mirror entry: 0->1 survives, 1->0 vanishes.
  auto& adjacency = topo::GraphTestPeer::adjacency(graph);
  auto& row = adjacency[1];
  row.erase(row.begin());
  EXPECT_THROW(graph.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, GraphCatchesFreeListCorruption) {
  topo::Graph graph = make_ring();
  // A live node pushed onto the free list without being released: the next
  // acquire_node() would hand out an id that still has edges.
  topo::GraphTestPeer::free_list(graph).push_back(2);
  EXPECT_THROW(graph.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, GraphCatchesReleasedBitmapDrift) {
  topo::Graph graph = make_ring();
  graph.release_node(4);
  // Marked released but no longer on the free list: the id is leaked.
  topo::GraphTestPeer::free_list(graph).pop_back();
  EXPECT_THROW(graph.check_invariants(), ContractViolation);
}

// ---- topo::NetworkTopology -------------------------------------------------

const topo::LinkDelayModel kDelay;

topo::NetworkTopology make_net(std::uint64_t seed, std::size_t routers = 25,
                               std::size_t devices = 10,
                               std::size_t servers = 3) {
  util::Rng rng(seed);
  topo::GeneratorParams params;
  params.node_count = routers;
  const topo::GeoGraph infra =
      topo::generate(topo::TopologyFamily::kWaxman, params, kDelay, rng);
  std::vector<topo::Point2D> iot(devices);
  std::vector<topo::Point2D> edges(servers);
  for (auto& p : iot) {
    p = {rng.uniform(0.0, params.area_km), rng.uniform(0.0, params.area_km)};
  }
  for (auto& p : edges) {
    p = {rng.uniform(0.0, params.area_km), rng.uniform(0.0, params.area_km)};
  }
  return topo::build_network(infra, iot, edges, kDelay);
}

TEST_F(InvariantsTest, NetworkHealthyStatePasses) {
  topo::NetworkTopology net = make_net(11);
  EXPECT_NO_THROW(net.check_invariants());
  const auto live = topo::backbone_links(net);
  ASSERT_FALSE(live.empty());
  net.fail_link(live[0].first, live[0].second);
  EXPECT_NO_THROW(net.check_invariants());
  net.restore_link(live[0].first, live[0].second);
  EXPECT_NO_THROW(net.check_invariants());
}

TEST_F(InvariantsTest, NetworkCatchesFailedLinkStillLive) {
  topo::NetworkTopology net = make_net(12);
  const auto live = topo::backbone_links(net);
  ASSERT_FALSE(live.empty());
  // Record a link as failed without removing its edge: restore_link() would
  // now double the edge.
  topo::FailedLink bogus;
  bogus.u = live[0].first;
  bogus.v = live[0].second;
  bogus.props = *net.graph.edge_props(bogus.u, bogus.v);
  net.failed_links.push_back(bogus);
  EXPECT_THROW(net.check_invariants(), ContractViolation);
}

// ---- topo::incr::IncrementalDelayEngine ------------------------------------

TEST_F(InvariantsTest, EngineHealthyChurnPasses) {
  topo::NetworkTopology net = make_net(21);
  topo::incr::IncrementalDelayEngine engine(net);
  EXPECT_NO_THROW(engine.check_invariants(net.edge_count()));
  const auto live = topo::backbone_links(net);
  ASSERT_GE(live.size(), 2u);
  engine.fail_link(live[0].first, live[0].second);
  engine.set_link_latency(live[1].first, live[1].second, 9.0);
  // Spot-check every tree against a from-scratch Dijkstra.
  EXPECT_NO_THROW(engine.check_invariants(net.edge_count()));
}

TEST_F(InvariantsTest, EngineCatchesOutOfBandTopologyEdit) {
  topo::NetworkTopology net = make_net(22);
  topo::incr::IncrementalDelayEngine engine(net);
  // Mutate the graph directly, bypassing the engine: the trees now disagree
  // with a fresh Dijkstra on the live graph. Reweight device 0's access
  // link so every tree's distance to that node moves.
  const topo::NodeId device = net.iot_nodes[0];
  const auto neighbors = net.graph.neighbors(device);
  ASSERT_FALSE(neighbors.empty());
  const topo::NodeId router = neighbors[0].to;
  const double old_ms = neighbors[0].props.latency_ms;
  ASSERT_TRUE(net.graph.set_edge_latency(device, router, old_ms + 5.0));
  EXPECT_THROW(engine.check_invariants(net.edge_count()), ContractViolation);
  // rebuild() is the documented recovery hatch for out-of-band edits.
  engine.rebuild();
  EXPECT_NO_THROW(engine.check_invariants(net.edge_count()));
}

// ---- topo::incr::DelayMatrixCache ------------------------------------------

TEST_F(InvariantsTest, CacheHealthyRefreshCyclePasses) {
  topo::NetworkTopology net = make_net(31);
  topo::incr::IncrementalDelayEngine engine(net);
  topo::incr::DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }
  EXPECT_NO_THROW(cache.check_invariants());
  const auto live = topo::backbone_links(net);
  ASSERT_FALSE(live.empty());
  engine.fail_link(live[0].first, live[0].second);
  // Stale rows are excused while their nodes sit in the dirty set…
  EXPECT_NO_THROW(cache.check_invariants());
  cache.refresh();
  // …and current again after the refresh.
  EXPECT_NO_THROW(cache.check_invariants());
}

TEST_F(InvariantsTest, CacheCatchesUnexcusedStaleRow) {
  topo::NetworkTopology net = make_net(32);
  topo::incr::IncrementalDelayEngine engine(net);
  topo::incr::DelayMatrixCache cache(engine);
  cache.bind_row(0, net.iot_nodes[0]);
  // Move device 0's distances through the engine, then throw away the dirty
  // notification instead of refreshing: the cache now serves stale delays
  // it believes are current.
  const topo::NodeId device = net.iot_nodes[0];
  const topo::NodeId router = net.graph.neighbors(device)[0].to;
  const double old_ms = net.graph.neighbors(device)[0].props.latency_ms;
  engine.set_link_latency(device, router, old_ms * 3.0);
  std::vector<topo::NodeId> discarded;
  engine.drain_dirty(discarded);
  EXPECT_THROW(cache.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, CacheCatchesEpochFromTheFuture) {
  topo::NetworkTopology net = make_net(33);
  topo::incr::IncrementalDelayEngine engine(net);
  topo::incr::DelayMatrixCache cache(engine);
  cache.bind_row(0, net.iot_nodes[0]);
  // A row stamped past the engine epoch claims to have seen a mutation that
  // never happened.
  topo::incr::CacheTestPeer::row_epochs(cache)[0] = engine.epoch() + 1;
  EXPECT_THROW(cache.check_invariants(), ContractViolation);
}

// ---- DynamicCluster --------------------------------------------------------

AlgorithmOptions cheap_options(std::uint64_t seed) {
  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 60;
  return options;
}

DynamicCluster make_cluster(std::uint64_t seed, std::size_t iot = 40,
                            std::size_t edge = 5) {
  const Scenario scenario = Scenario::campus(iot, edge, seed);
  return DynamicCluster(scenario, Algorithm::kGreedyBestFit,
                        cheap_options(seed));
}

workload::IotDevice test_device(double x, double y, double rate = 10.0) {
  workload::IotDevice device;
  device.position = {x, y};
  device.request_rate_hz = rate;
  device.demand = rate;
  return device;
}

TEST_F(InvariantsTest, ClusterHealthyLifecyclePasses) {
  DynamicCluster cluster = make_cluster(41);
  DynamicCluster::InvariantOptions strict;
  strict.require_feasible = true;
  strict.forbid_failed_residents = true;
  strict.delay_spot_checks = cluster.server_count();
  EXPECT_NO_THROW(cluster.check_invariants(strict));
  const std::size_t index = cluster.join(test_device(1.0, 1.0)).device_index;
  cluster.move(index, {3.0, 2.0});
  cluster.rebalance(4);
  EXPECT_NO_THROW(cluster.check_invariants(strict));
  cluster.leave(index);
  EXPECT_NO_THROW(cluster.check_invariants(strict));
}

TEST_F(InvariantsTest, ClusterCatchesLoadAccountingDrift) {
  DynamicCluster cluster = make_cluster(42);
  DynamicClusterTestPeer::loads(cluster)[0] += 1.0;
  EXPECT_THROW(cluster.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, ClusterCatchesDanglingAssignment) {
  DynamicCluster cluster = make_cluster(43);
  // Device 0 assigned to a server index that does not exist.
  DynamicClusterTestPeer::assignment(cluster)[0] =
      static_cast<std::int32_t>(cluster.server_count());
  EXPECT_THROW(cluster.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, ClusterCatchesFreeSlotDoubleBooking) {
  DynamicCluster cluster = make_cluster(44);
  // An ACTIVE slot parked on the free list: the next join would hijack a
  // served device's slot.
  DynamicClusterTestPeer::free_slots(cluster).push_back(0);
  EXPECT_THROW(cluster.check_invariants(), ContractViolation);
}

TEST_F(InvariantsTest, ClusterFlagsDeferredDrainOnlyWhenAsked) {
  DynamicCluster cluster = make_cluster(45);
  const std::size_t failed = cluster.server_of(0);
  cluster.fail_server(failed, /*evacuate=*/false);
  // Residents parked on a failed server are a documented relaxation…
  EXPECT_NO_THROW(cluster.check_invariants());
  // …until the caller asserts the drain has happened.
  DynamicCluster::InvariantOptions strict;
  strict.forbid_failed_residents = true;
  EXPECT_THROW(cluster.check_invariants(strict), ContractViolation);
  cluster.evacuate_server(failed);
  EXPECT_NO_THROW(cluster.check_invariants(strict));
}

TEST_F(InvariantsTest, ClusterFlagsOverloadOnlyWhenAsked) {
  DynamicCluster cluster = make_cluster(46);
  const JoinResult joined = cluster.join(test_device(2.0, 2.0, 1e6));
  ASSERT_TRUE(joined.overload_fallback);
  // The overload fallback is a documented relaxation of capacity…
  EXPECT_NO_THROW(cluster.check_invariants());
  // …but a caller expecting feasibility must be told.
  DynamicCluster::InvariantOptions strict;
  strict.require_feasible = true;
  EXPECT_THROW(cluster.check_invariants(strict), ContractViolation);
  cluster.leave(joined.device_index);
  EXPECT_NO_THROW(cluster.check_invariants(strict));
}

// ---- service::Engine -------------------------------------------------------

TEST_F(InvariantsTest, ServiceEngineHealthyStatePasses) {
  service::Engine engine;
  EXPECT_NO_THROW(engine.check_invariants());
}

TEST_F(InvariantsTest, ServiceEngineCatchesAccountingDrift) {
  service::Engine engine;
  // An accepted request that is neither completed, failed, expired, nor in
  // flight: a response was dropped somewhere.
  service::ServiceEngineTestPeer::bump_accepted(engine);
  EXPECT_THROW(engine.check_invariants(), ContractViolation);
}

}  // namespace
}  // namespace tacc
