// Local search and simulated annealing.
#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/constructive.hpp"
#include "solvers/local_search.hpp"
#include "solvers/simulated_annealing.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::solvers {
namespace {

TEST(LocalSearch, NeverWorsensSeed) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.7);
    GreedyBestFitSolver seed_solver;
    const SolveResult seeded = seed_solver.solve(inst);
    gap::Assignment assignment = seeded.assignment;
    LocalSearchOptions options;
    options.seed = seed;
    (void)local_search_improve(inst, assignment, options);
    EXPECT_LE(gap::evaluate(inst, assignment).total_cost,
              seeded.total_cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(LocalSearch, PreservesFeasibility) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.85);
    LocalSearchSolver solver({.seed = seed});
    const SolveResult result = solver.solve(inst);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
  }
}

TEST(LocalSearch, ReachesLocalOptimumOnTrap) {
  const auto trap = gap::crafted_greedy_trap();
  // Start from the greedy (bad) configuration that is at least feasible:
  // device 0 on server 0, device 1 on server 1 — cost 101. The swap
  // neighborhood reaches the optimum (7).
  gap::Assignment assignment{0, 1};
  LocalSearchOptions options;
  (void)local_search_improve(trap.instance, assignment, options);
  EXPECT_DOUBLE_EQ(gap::evaluate(trap.instance, assignment).total_cost,
                   trap.optimal_cost);
}

TEST(LocalSearch, RespectsImprovementBudget) {
  const gap::Instance inst = test::small_instance(9, 60, 8, 0.6);
  RandomSolver random(9);
  gap::Assignment assignment = random.solve(inst).assignment;
  LocalSearchOptions options;
  options.max_improvements = 3;
  EXPECT_LE(local_search_improve(inst, assignment, options), 3u);
}

TEST(LocalSearch, CandidateRestrictionStillImproves) {
  const gap::Instance inst = test::small_instance(10, 60, 8, 0.6);
  RandomSolver random(10);
  const SolveResult seeded = random.solve(inst);
  gap::Assignment assignment = seeded.assignment;
  LocalSearchOptions options;
  options.candidate_servers = 2;
  (void)local_search_improve(inst, assignment, options);
  EXPECT_LT(gap::evaluate(inst, assignment).total_cost, seeded.total_cost);
}

TEST(LocalSearch, NoSwapsOptionWorks) {
  const gap::Instance inst = test::small_instance(11, 30, 5, 0.5);
  RandomSolver random(11);
  const SolveResult seeded = random.solve(inst);
  gap::Assignment assignment = seeded.assignment;
  LocalSearchOptions options;
  options.use_swaps = false;
  (void)local_search_improve(inst, assignment, options);
  EXPECT_LE(gap::evaluate(inst, assignment).total_cost,
            seeded.total_cost + 1e-9);
}

TEST(LocalSearch, SolverInterfaceReportsSteps) {
  const gap::Instance inst = test::small_instance(12, 40, 6, 0.7);
  LocalSearchSolver solver;
  const SolveResult result = solver.solve(inst);
  EXPECT_EQ(solver.name(), "local-search");
  // Iterations counts improving steps; wall time recorded.
  EXPECT_GE(result.wall_ms, 0.0);
}

TEST(SimulatedAnnealing, FeasibleAndNoWorseThanSeedAtModerateLoad) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.75);
    GreedyBestFitSolver greedy;
    const double greedy_cost = greedy.solve(inst).total_cost;
    SimulatedAnnealingOptions options;
    options.seed = seed;
    options.steps = 50'000;
    SimulatedAnnealingSolver solver(options);
    const SolveResult result = solver.solve(inst);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_LE(result.total_cost, greedy_cost + 1e-9) << "seed " << seed;
  }
}

TEST(SimulatedAnnealing, FindsTrapOptimum) {
  const auto trap = gap::crafted_greedy_trap();
  SimulatedAnnealingOptions options;
  options.steps = 20'000;
  SimulatedAnnealingSolver solver(options);
  const SolveResult result = solver.solve(trap.instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cost, trap.optimal_cost);
}

TEST(SimulatedAnnealing, DeterministicPerSeed) {
  const gap::Instance inst = test::small_instance(5, 30, 5, 0.7);
  SimulatedAnnealingOptions options;
  options.seed = 77;
  options.steps = 10'000;
  SimulatedAnnealingSolver a(options);
  SimulatedAnnealingSolver b(options);
  EXPECT_EQ(a.solve(inst).assignment, b.solve(inst).assignment);
}

TEST(SimulatedAnnealing, IterationBudgetHonored) {
  const gap::Instance inst = test::small_instance(6, 20, 4, 0.6);
  SimulatedAnnealingOptions options;
  options.steps = 1234;
  SimulatedAnnealingSolver solver(options);
  EXPECT_EQ(solver.solve(inst).iterations, 1234u);
}

}  // namespace
}  // namespace tacc::solvers
