// Policy persistence and cross-instance transfer.
#include "rl/policy.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/scenario.hpp"
#include "solvers/constructive.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::rl {
namespace {

RlOptions fast_options(std::uint64_t seed) {
  RlOptions options;
  options.episodes = 200;
  options.seed = seed;
  return options;
}

TEST(TrainPolicy, ReturnsPopulatedTable) {
  const gap::Instance inst = test::small_instance(1, 40, 6, 0.7);
  const TrainedPolicy policy =
      train_policy(inst, fast_options(1), TdVariant::kQLearning);
  EXPECT_GT(policy.table.state_count(), 0u);
  EXPECT_EQ(policy.table.action_count(),
            std::min<std::size_t>(policy.env.candidate_count, 6));
  // Training must have touched the table.
  bool any_nonzero = false;
  for (std::size_t s = 0; s < policy.table.state_count() && !any_nonzero;
       ++s) {
    for (std::size_t a = 0; a < policy.table.action_count(); ++a) {
      if (policy.table.get(s, a) != 0.0) {
        any_nonzero = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(TrainWithTableOut, MatchesPlainTrain) {
  const gap::Instance inst = test::small_instance(2, 30, 5, 0.7);
  QTable table(0, 0);
  const TrainResult with_out =
      train(inst, fast_options(5), TdVariant::kQLearning, &table);
  const TrainResult without =
      train(inst, fast_options(5), TdVariant::kQLearning);
  EXPECT_EQ(with_out.best_assignment, without.best_assignment);
  EXPECT_GT(table.state_count(), 0u);
}

TEST(ApplyPolicy, SameInstanceIsFeasibleAndGood) {
  const gap::Instance inst = test::small_instance(3, 50, 6, 0.75);
  const TrainedPolicy policy =
      train_policy(inst, fast_options(3), TdVariant::kQLearning);
  const auto result = apply_policy(inst, policy, {.seed = 3});
  EXPECT_TRUE(result.feasible);
  solvers::RandomSolver random(3);
  EXPECT_LT(result.total_cost, random.solve(inst).total_cost);
}

TEST(ApplyPolicy, TransfersAcrossSeeds) {
  // Train on one scenario, apply to four fresh ones of the same character.
  const Scenario train_scenario = Scenario::smart_city(80, 8, 100);
  const TrainedPolicy policy = train_policy(
      train_scenario.instance(), fast_options(100), TdVariant::kQLearning);
  for (std::uint64_t seed = 201; seed <= 204; ++seed) {
    const Scenario target = Scenario::smart_city(80, 8, seed);
    const auto result =
        apply_policy(target.instance(), policy, {.seed = seed});
    EXPECT_TRUE(result.feasible) << "seed " << seed;
  }
}

TEST(ApplyPolicy, MuchFasterThanRetraining) {
  const Scenario train_scenario = Scenario::smart_city(100, 8, 50);
  RlOptions options = fast_options(50);
  options.episodes = 400;
  const TrainedPolicy policy = train_policy(
      train_scenario.instance(), options, TdVariant::kQLearning);
  const Scenario target = Scenario::smart_city(100, 8, 51);

  const auto transferred =
      apply_policy(target.instance(), policy, {.seed = 51});
  QLearningSolver fresh(options);
  const auto retrained = fresh.solve(target.instance());
  EXPECT_LT(transferred.wall_ms, retrained.wall_ms);
}

TEST(ApplyPolicy, RejectsEmptyOrMismatchedPolicies) {
  const gap::Instance inst = test::small_instance(4, 20, 5, 0.6);
  TrainedPolicy empty;
  EXPECT_THROW((void)apply_policy(inst, empty, {}), std::invalid_argument);

  TrainedPolicy policy =
      train_policy(inst, fast_options(4), TdVariant::kQLearning);
  // An instance with fewer servers than the policy's candidate count makes
  // the env clamp K → action-count mismatch.
  const gap::Instance narrow = test::small_instance(4, 20, 2, 0.6);
  EXPECT_THROW((void)apply_policy(narrow, policy, {}),
               std::invalid_argument);
}

TEST(PolicyIo, RoundTripExact) {
  const gap::Instance inst = test::small_instance(5, 30, 5, 0.7);
  const TrainedPolicy original =
      train_policy(inst, fast_options(5), TdVariant::kSarsa);
  std::stringstream buffer;
  save_policy(original, buffer);
  const TrainedPolicy loaded = load_policy(buffer);
  ASSERT_EQ(loaded.table.state_count(), original.table.state_count());
  ASSERT_EQ(loaded.table.action_count(), original.table.action_count());
  for (std::size_t s = 0; s < original.table.state_count(); ++s) {
    for (std::size_t a = 0; a < original.table.action_count(); ++a) {
      EXPECT_EQ(loaded.table.get(s, a), original.table.get(s, a));
    }
  }
  EXPECT_EQ(loaded.env.candidate_count, original.env.candidate_count);
  EXPECT_EQ(loaded.env.load_buckets, original.env.load_buckets);
  EXPECT_EQ(loaded.env.overload_penalty, original.env.overload_penalty);
}

TEST(PolicyIo, LoadedPolicyBehavesIdentically) {
  const gap::Instance inst = test::small_instance(6, 40, 5, 0.7);
  const TrainedPolicy original =
      train_policy(inst, fast_options(6), TdVariant::kQLearning);
  std::stringstream buffer;
  save_policy(original, buffer);
  const TrainedPolicy loaded = load_policy(buffer);
  const auto a = apply_policy(inst, original, {.seed = 9});
  const auto b = apply_policy(inst, loaded, {.seed = 9});
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(PolicyIo, MalformedInputsThrow) {
  std::stringstream bad_magic("nope\n");
  EXPECT_THROW((void)load_policy(bad_magic), std::runtime_error);
  std::stringstream no_env("tacc-policy v1\ntable,1,1\n0\n");
  EXPECT_THROW((void)load_policy(no_env), std::runtime_error);
  std::stringstream truncated("tacc-policy v1\nenv,4,4,3,3,8,1\ntable,4,2\n0\n");
  EXPECT_THROW((void)load_policy(truncated), std::runtime_error);
  std::stringstream zero_shape("tacc-policy v1\nenv,4,4,3,3,8,1\ntable,0,2\n");
  EXPECT_THROW((void)load_policy(zero_shape), std::runtime_error);
}

TEST(PolicyIo, FileRoundTrip) {
  const gap::Instance inst = test::small_instance(7, 20, 4, 0.6);
  const TrainedPolicy original =
      train_policy(inst, fast_options(7), TdVariant::kQLearning);
  const std::string path = ::testing::TempDir() + "/tacc_policy_test.pol";
  save_policy_file(original, path);
  const TrainedPolicy loaded = load_policy_file(path);
  EXPECT_EQ(loaded.table.state_count(), original.table.state_count());
  std::remove(path.c_str());
  EXPECT_THROW((void)load_policy_file("/nonexistent/p.pol"),
               std::runtime_error);
}

}  // namespace
}  // namespace tacc::rl
