// Socket-level tests for the taccd server: real Unix-domain/TCP clients
// driving malformed lines, oversized lines, mid-request disconnects,
// SHUTDOWN with work in flight, and admission-queue overflow.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace tacc::service {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/tacc_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Blocking line-oriented test client over an already-connected fd.
class LineClient {
 public:
  explicit LineClient(int fd) : fd_(fd) {}
  ~LineClient() { close(); }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  static LineClient connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0)
        << path << ": " << std::strerror(errno);
    return LineClient(fd);
  }

  static LineClient connect_tcp(int port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0)
        << "port " << port << ": " << std::strerror(errno);
    return LineClient(fd);
  }

  bool send_raw(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Reads one response line; false on EOF/error.
  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// One request, one response; fails the test on connection loss.
  std::string roundtrip(const std::string& request) {
    EXPECT_TRUE(send_line(request));
    std::string response;
    EXPECT_TRUE(read_line(response)) << "no response to: " << request;
    return response;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Boots a server on a fresh Unix socket and tears it down with the test.
class ServerFixture {
 public:
  explicit ServerFixture(ServerOptions options = {}) {
    if (options.unix_path.empty() && options.tcp_port < 0) {
      options.unix_path = unique_socket_path();
    }
    options.engine.threads =
        options.engine.threads == 0 ? 2 : options.engine.threads;
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::jthread([this] { server_->run(); });
  }

  ~ServerFixture() { stop(); }

  void stop() {
    if (server_ && thread_.joinable()) {
      server_->request_shutdown();
      thread_.join();
    }
  }

  /// Blocks until run() returns (e.g. after a SHUTDOWN verb).
  void wait_stopped() {
    if (thread_.joinable()) thread_.join();
  }

  Server& server() { return *server_; }
  LineClient client() {
    return LineClient::connect_unix(server_->unix_path());
  }

 private:
  std::unique_ptr<Server> server_;
  std::jthread thread_;
};

TEST(Server, PingConfigureJoinOverUnixSocket) {
  ServerFixture fixture;
  LineClient client = fixture.client();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
  EXPECT_EQ(client.roundtrip("CONFIGURE u 20 3 seed=5").rfind("OK", 0), 0u);
  EXPECT_EQ(client.roundtrip("JOIN u 1.0 1.0").rfind("OK", 0), 0u);
  EXPECT_EQ(client.roundtrip("STATS u").rfind("OK", 0), 0u);
  EXPECT_EQ(fixture.server().connections_accepted(), 1u);
}

TEST(Server, PingOverEphemeralTcpPort) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral; unix listener disabled
  ServerFixture fixture(std::move(options));
  ASSERT_GT(fixture.server().tcp_port(), 0);
  LineClient client = LineClient::connect_tcp(fixture.server().tcp_port());
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
  EXPECT_EQ(client.roundtrip("FROB x").rfind("ERR BAD_REQUEST", 0), 0u);
}

TEST(Server, MalformedLinesAnswerBadRequestAndKeepTheConnection) {
  ServerFixture fixture;
  LineClient client = fixture.client();
  EXPECT_EQ(client.roundtrip("NOT A VERB").rfind("ERR BAD_REQUEST", 0), 0u);
  EXPECT_EQ(client.roundtrip("JOIN").rfind("ERR BAD_REQUEST", 0), 0u);
  EXPECT_EQ(client.roundtrip("MOVE s abc 1 2").rfind("ERR BAD_REQUEST", 0),
            0u);
  // The connection survives garbage: a valid request still works.
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
}

TEST(Server, OversizedLineAnswersBadRequestThenCloses) {
  ServerOptions options;
  options.max_line = 64;
  ServerFixture fixture(std::move(options));
  LineClient client = fixture.client();

  ASSERT_TRUE(client.send_line(std::string(500, 'A')));
  std::string response;
  ASSERT_TRUE(client.read_line(response));
  EXPECT_EQ(response.rfind("ERR BAD_REQUEST", 0), 0u) << response;
  EXPECT_NE(response.find("exceeds"), std::string::npos);
  // The server cannot resynchronize inside an oversized line, so the
  // connection must close (clean EOF, not a hang).
  EXPECT_FALSE(client.read_line(response));

  // The server itself stays healthy for new connections.
  LineClient second = fixture.client();
  EXPECT_EQ(second.roundtrip("PING"), "OK pong");
}

TEST(Server, ClientDisconnectMidRequestLeavesServerHealthy) {
  ServerFixture fixture;
  {
    LineClient client = fixture.client();
    ASSERT_EQ(client.roundtrip("CONFIGURE gone 20 3 seed=2").rfind("OK", 0),
              0u);
    // Fire a slow request and vanish without reading the response.
    ASSERT_TRUE(client.send_line("SLEEP gone 200"));
    client.close();
  }
  // The orphaned request still executes; its response write is dropped.
  LineClient client = fixture.client();
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
  // Poll until the orphaned SLEEP completes; its slot must be reclaimed.
  std::string stats;
  for (int i = 0; i < 100; ++i) {
    stats = client.roundtrip("STATS");
    if (stats.find("completed=2") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(stats.find("completed=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("queue_depth=0"), std::string::npos) << stats;
}

TEST(Server, PartialLineWithoutNewlineIsNotARequest) {
  ServerFixture fixture;
  LineClient client = fixture.client();
  // No newline: the server must wait, not parse a partial request.
  ASSERT_TRUE(client.send_raw("PI"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.send_raw("NG\n"));
  std::string response;
  ASSERT_TRUE(client.read_line(response));
  EXPECT_EQ(response, "OK pong");
}

TEST(Server, ShutdownVerbDrainsInFlightWorkFirst) {
  ServerFixture fixture;
  LineClient client = fixture.client();
  ASSERT_EQ(client.roundtrip("CONFIGURE s 20 3 seed=3").rfind("OK", 0), 0u);

  // Pipeline: a slow request, then SHUTDOWN. Responses flush in request
  // order, so the SLEEP's real response must arrive before the shutdown
  // acknowledgement — in-flight work is never abandoned.
  ASSERT_TRUE(client.send_raw("SLEEP s 300\nSHUTDOWN\n"));
  std::string response;
  ASSERT_TRUE(client.read_line(response));
  EXPECT_EQ(response.rfind("OK slept_ms=", 0), 0u) << response;
  ASSERT_TRUE(client.read_line(response));
  EXPECT_EQ(response.rfind("OK draining", 0), 0u) << response;
  // Then the server cuts the connection and run() returns.
  EXPECT_FALSE(client.read_line(response));
  fixture.wait_stopped();
}

TEST(Server, AdmissionOverflowAnswersOverloadedForEveryRequest) {
  ServerOptions options;
  options.engine.max_queue = 2;
  options.engine.default_timeout_ms = 5'000.0;
  ServerFixture fixture(std::move(options));
  LineClient client = fixture.client();
  ASSERT_EQ(client.roundtrip("CONFIGURE o 20 3 seed=4").rfind("OK", 0), 0u);

  // One SLEEP to occupy the session plus 5 JOINs against a 2-deep queue:
  // every request must get a response, and at least one must be OVERLOADED.
  ASSERT_TRUE(client.send_raw(
      "SLEEP o 400\nJOIN o 1 1\nJOIN o 1 2\nJOIN o 2 1\nJOIN o 2 2\n"
      "JOIN o 3 3\n"));
  std::vector<std::string> responses(6);
  std::size_t overloaded = 0;
  for (std::string& response : responses) {
    ASSERT_TRUE(client.read_line(response)) << "response dropped";
    if (response.rfind("ERR OVERLOADED", 0) == 0) ++overloaded;
  }
  EXPECT_EQ(responses.front().rfind("OK slept_ms=", 0), 0u)
      << responses.front();
  EXPECT_GE(overloaded, 1u);
  // No silent drops: the connection is still in sync afterwards.
  EXPECT_EQ(client.roundtrip("PING"), "OK pong");
}

TEST(Server, ResponsesFlushInRequestOrderAcrossSessions) {
  ServerFixture fixture;
  LineClient client = fixture.client();
  ASSERT_EQ(client.roundtrip("CONFIGURE slow 20 3 seed=6").rfind("OK", 0),
            0u);
  ASSERT_EQ(client.roundtrip("CONFIGURE fast 20 3 seed=7").rfind("OK", 0),
            0u);

  // The fast session's MOVE completes long before the slow session's SLEEP,
  // but the sequencer must still deliver responses in request order.
  ASSERT_TRUE(client.send_raw("SLEEP slow 250\nMOVE fast 0 1.0 1.0\n"));
  std::string first;
  std::string second;
  ASSERT_TRUE(client.read_line(first));
  ASSERT_TRUE(client.read_line(second));
  EXPECT_EQ(first.rfind("OK slept_ms=", 0), 0u) << first;
  EXPECT_EQ(second.rfind("OK device=0", 0), 0u) << second;
}

TEST(Server, PipelinedRepliesStayOrderedAcrossShards) {
  ServerOptions options;
  options.engine.shards = 4;
  options.engine.threads = 4;
  ServerFixture fixture(std::move(options));
  Engine& engine = fixture.server().engine();
  ASSERT_EQ(engine.shard_count(), 4u);

  // One session per shard, so the pipelined batch below completes on four
  // different worker pools concurrently.
  std::vector<std::string> names(4);
  std::size_t covered = 0;
  for (int i = 0; covered < 4; ++i) {
    std::string name = "probe" + std::to_string(i);
    const std::size_t shard = engine.shard_of(name);
    if (names[shard].empty()) {
      names[shard] = std::move(name);
      ++covered;
    }
  }

  LineClient client = fixture.client();
  for (const std::string& name : names) {
    ASSERT_EQ(client.roundtrip("CONFIGURE " + name + " 20 3 seed=8")
                  .rfind("OK", 0),
              0u);
  }

  // Pipeline sleeps whose completion order inverts request order (the
  // longest is first, on shard 0; the shortest last, on shard 3). Shard
  // parallelism means they finish roughly in reverse; the connection
  // sequencer must still reply strictly in request order, with each reply
  // carrying its own request's duration.
  const double sleeps[4] = {150.0, 30.0, 10.0, 1.0};
  std::string batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch += "SLEEP " + names[i] + " " + std::to_string(sleeps[i]) + "\n";
  }
  ASSERT_TRUE(client.send_raw(batch));
  for (const double expected : sleeps) {
    std::string response;
    ASSERT_TRUE(client.read_line(response));
    ASSERT_EQ(response.rfind("OK slept_ms=", 0), 0u) << response;
    EXPECT_DOUBLE_EQ(std::stod(response.substr(12)), expected) << response;
  }
}

TEST(Server, SocketFileIsUnlinkedOnShutdown) {
  const std::string path = unique_socket_path();
  {
    ServerOptions options;
    options.unix_path = path;
    ServerFixture fixture(std::move(options));
    LineClient client = fixture.client();
    EXPECT_EQ(client.roundtrip("PING"), "OK pong");
    fixture.stop();
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0) << path << " left behind";
}

}  // namespace
}  // namespace tacc::service
