// Bottleneck (min-max-delay) solver.
#include "solvers/bottleneck.hpp"

#include <gtest/gtest.h>

#include "gap/testgen.hpp"
#include "solvers/constructive.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::solvers {
namespace {

/// Brute-force minimum achievable max delay over all feasible assignments.
double brute_force_bottleneck(const gap::Instance& instance) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(n, 0);
  while (true) {
    std::vector<double> loads(m, 0.0);
    double max_delay = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      loads[choice[i]] += instance.demand(i, choice[i]);
      max_delay = std::max(max_delay, instance.delay_ms(i, choice[i]));
      if (loads[choice[i]] > instance.capacity(choice[i]) + 1e-9) {
        feasible = false;
      }
    }
    if (feasible) best = std::min(best, max_delay);
    std::size_t d = 0;
    while (d < n && ++choice[d] == m) {
      choice[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return best;
}

TEST(Bottleneck, OptimalOnCraftedTrap) {
  const auto trap = gap::crafted_greedy_trap();
  const BottleneckResult result = solve_bottleneck(trap.instance);
  // Feasible assignments: {s1,s0} max=5 or {s0,s1} max=100 → optimum 5.
  EXPECT_TRUE(result.solve_result.feasible);
  EXPECT_DOUBLE_EQ(result.max_delay_ms, 5.0);
  EXPECT_LE(result.lower_bound_ms, result.max_delay_ms + 1e-9);
}

// Property: matches brute force on tiny instances (uniform unit demands
// make the splittable bound tight, so the search is exact there; with
// heterogeneous demands the result may exceed the bound but must bracket).
class BottleneckEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BottleneckEquivalence, BracketsBruteForce) {
  const gap::Instance inst = test::tiny_instance(GetParam(), 7, 3, 0.7);
  const double brute = brute_force_bottleneck(inst);
  ASSERT_TRUE(std::isfinite(brute));
  const BottleneckResult result = solve_bottleneck(inst);
  EXPECT_TRUE(result.solve_result.feasible);
  // Lower bound ≤ true optimum ≤ achieved.
  EXPECT_LE(result.lower_bound_ms, brute + 1e-9);
  EXPECT_GE(result.max_delay_ms, brute - 1e-9);
  // Achieved value must equal the evaluation's max delay.
  EXPECT_NEAR(result.max_delay_ms,
              gap::evaluate(inst, result.solve_result.assignment).max_delay_ms,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BottleneckEquivalence,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

TEST(Bottleneck, BeatsCostGreedyOnMaxDelay) {
  // The min-total-cost greedy may sacrifice one device's delay; the
  // bottleneck solver must never realize a larger max delay than best-fit.
  int wins_or_ties = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 40, 6, 0.8);
    GreedyBestFitSolver greedy;
    const double greedy_max =
        gap::evaluate(inst, greedy.solve(inst).assignment).max_delay_ms;
    const BottleneckResult result = solve_bottleneck(inst);
    if (result.max_delay_ms <= greedy_max + 1e-9) ++wins_or_ties;
  }
  EXPECT_GE(wins_or_ties, 7);
}

TEST(Bottleneck, FeasibleAtHighLoad) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.9);
    const BottleneckResult result = solve_bottleneck(inst);
    EXPECT_TRUE(result.solve_result.feasible) << "seed " << seed;
  }
}

TEST(Bottleneck, GeneralDemandFallbackStillCompletes) {
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 2.0);
  delay.set(1, 0, 3.0);
  delay.set(1, 1, 4.0);
  topo::DelayMatrix demand(2, 2, 1.0);
  const gap::Instance inst = gap::Instance::with_demand_matrix(
      std::move(delay), {}, std::move(demand), {2.0, 2.0});
  const BottleneckResult result = solve_bottleneck(inst);
  EXPECT_TRUE(result.solve_result.feasible);
}

TEST(Bottleneck, SolverInterfaceName) {
  EXPECT_EQ(BottleneckSolver().name(), "bottleneck");
  const gap::Instance inst = test::small_instance(9, 20, 4, 0.6);
  BottleneckSolver solver;
  EXPECT_TRUE(solver.solve(inst).feasible);
}

TEST(Bottleneck, InfeasibleInstanceBestEffort) {
  topo::DelayMatrix delay(3, 1, 2.0);
  const gap::Instance inst(std::move(delay), {},
                           std::vector<double>{1.0, 1.0, 1.0},
                           std::vector<double>{2.0});
  const BottleneckResult result = solve_bottleneck(inst);
  EXPECT_FALSE(result.solve_result.feasible);
  ASSERT_EQ(result.solve_result.assignment.size(), 3u);
}

}  // namespace
}  // namespace tacc::solvers
