// Branch-and-bound and the lower-bound machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "gap/testgen.hpp"
#include "solvers/branch_and_bound.hpp"
#include "solvers/constructive.hpp"
#include "solvers/flow_based.hpp"
#include "tests/test_helpers.hpp"

namespace tacc::solvers {
namespace {

TEST(BranchAndBound, SolvesCraftedOptima) {
  BranchAndBoundSolver solver;
  const auto trap = gap::crafted_greedy_trap();
  const SolveResult trap_result = solver.solve(trap.instance);
  EXPECT_TRUE(trap_result.proven_optimal);
  EXPECT_TRUE(trap_result.feasible);
  EXPECT_DOUBLE_EQ(trap_result.total_cost, trap.optimal_cost);

  const auto squeeze = gap::crafted_capacity_squeeze();
  const SolveResult squeeze_result = solver.solve(squeeze.instance);
  EXPECT_TRUE(squeeze_result.proven_optimal);
  EXPECT_DOUBLE_EQ(squeeze_result.total_cost, squeeze.optimal_cost);
}

// Property: B&B equals exhaustive enumeration on tiny instances.
class ExactEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactEquivalence, MatchesBruteForce) {
  const gap::Instance inst = test::tiny_instance(GetParam());
  const double brute = test::brute_force_optimum(inst);
  BranchAndBoundSolver solver;
  const SolveResult result = solver.solve(inst);
  ASSERT_TRUE(std::isfinite(brute));
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.total_cost, brute, 1e-9);
}

TEST_P(ExactEquivalence, LowerBoundsBracketOptimum) {
  const gap::Instance inst = test::tiny_instance(GetParam());
  const double brute = test::brute_force_optimum(inst);
  const LowerBounds bounds = compute_lower_bounds(inst);
  EXPECT_LE(bounds.min_cost, bounds.splittable_flow + 1e-9);
  EXPECT_LE(bounds.splittable_flow, brute + 1e-6);
  EXPECT_TRUE(bounds.flow_bound_valid);
}

TEST_P(ExactEquivalence, NoHeuristicBeatsExact) {
  const gap::Instance inst = test::tiny_instance(GetParam());
  BranchAndBoundSolver exact;
  const double optimum = exact.solve(inst).total_cost;
  GreedyBestFitSolver bestfit;
  RegretGreedySolver regret;
  FlowRelaxRepairSolver flow;
  for (Solver* heuristic :
       std::initializer_list<Solver*>{&bestfit, &regret, &flow}) {
    const SolveResult result = heuristic->solve(inst);
    if (result.feasible) {
      EXPECT_GE(result.total_cost, optimum - 1e-9) << heuristic->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

TEST(BranchAndBound, NodeBudgetReportsNotProven) {
  const gap::Instance inst = test::small_instance(50, 40, 6, 0.8);
  BranchAndBoundOptions options;
  options.max_nodes = 50;  // far too small for n=40
  BranchAndBoundSolver solver(options);
  const SolveResult result = solver.solve(inst);
  EXPECT_FALSE(result.proven_optimal);
  // Still returns the warm-start incumbent: complete and feasible.
  EXPECT_TRUE(result.feasible);
}

TEST(BranchAndBound, InfeasibleInstanceFallsBack) {
  // Total demand 3 > total capacity 2: nothing feasible exists.
  topo::DelayMatrix delay(3, 1, 1.0);
  const gap::Instance inst(std::move(delay), {},
                           std::vector<double>{1.0, 1.0, 1.0},
                           std::vector<double>{2.0});
  BranchAndBoundSolver solver;
  const SolveResult result = solver.solve(inst);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.proven_optimal);
  ASSERT_EQ(result.assignment.size(), 3u);
  for (std::int32_t x : result.assignment) EXPECT_EQ(x, 0);
}

TEST(LowerBounds, MinCostIsPerDeviceMinimum) {
  const auto trap = gap::crafted_greedy_trap();
  const LowerBounds bounds = compute_lower_bounds(trap.instance);
  EXPECT_DOUBLE_EQ(bounds.min_cost, 1.0 + 2.0);
  // Splittable optimum: device 0 splits? caps {1,2}: put d1 on s0 (cost 2)
  // and d0 on s1 (5)? or split d0: 1 unit total each. LP optimum is 7
  // minus nothing — integral here: 7. Must be > min_cost and ≤ 7.
  EXPECT_GE(bounds.splittable_flow, bounds.min_cost);
  EXPECT_LE(bounds.splittable_flow, trap.optimal_cost + 1e-9);
}

TEST(LowerBounds, LooseCapacityMakesBoundsEqual) {
  // With abundant capacity the splittable optimum is the per-device min.
  const gap::Instance inst = test::small_instance(60, 20, 4, 0.1);
  const LowerBounds bounds = compute_lower_bounds(inst);
  EXPECT_NEAR(bounds.splittable_flow, bounds.min_cost, 1e-6);
}

TEST(FlowRelaxRepair, FeasibleAtModerateLoad) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 50, 6, 0.8);
    FlowRelaxRepairSolver solver;
    const SolveResult result = solver.solve(inst);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
    const LowerBounds bounds = compute_lower_bounds(inst);
    EXPECT_GE(result.total_cost, bounds.splittable_flow - 1e-6);
  }
}

TEST(FlowRelaxRepair, NearOptimalOnAverage) {
  double total_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const gap::Instance inst = test::small_instance(seed, 60, 8, 0.7);
    FlowRelaxRepairSolver solver;
    const SolveResult result = solver.solve(inst);
    const LowerBounds bounds = compute_lower_bounds(inst);
    total_gap += result.total_cost / bounds.splittable_flow - 1.0;
  }
  EXPECT_LT(total_gap / 5.0, 0.10);  // ≤10% mean gap to the splittable LB
}

TEST(FlowRelaxRepair, HandlesGeneralDemandMatrix) {
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 2.0);
  delay.set(1, 0, 1.0);
  delay.set(1, 1, 2.0);
  topo::DelayMatrix demand(2, 2);
  demand.set(0, 0, 2.0);
  demand.set(0, 1, 1.0);
  demand.set(1, 0, 2.0);
  demand.set(1, 1, 1.0);
  const gap::Instance inst = gap::Instance::with_demand_matrix(
      std::move(delay), {}, std::move(demand), std::vector<double>{2.0, 2.0});
  FlowRelaxRepairSolver solver;
  const SolveResult result = solver.solve(inst);
  EXPECT_TRUE(result.feasible);
}

}  // namespace
}  // namespace tacc::solvers
