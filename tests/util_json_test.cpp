#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace tacc::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("steady"), "steady");
  EXPECT_EQ(json_escape(""), "");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(json_escape("caf\xC3\xA9"), "caf\xC3\xA9");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(-2.25), "-2.25");
  EXPECT_EQ(json_number(33600.0), "33600");
  // 0.1 round-trips to the shortest representation, not 0.10000000000000001.
  EXPECT_EQ(json_number(0.1), "0.1");
  // The shortest form must parse back to the exact same double.
  const double tricky = 1260.4567890123457;
  EXPECT_EQ(std::stod(json_number(tricky)), tricky);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, FlatObject) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object()
      .field("bench", "m2_churn")
      .field("seed", std::uint64_t{1000})
      .field("quick", true)
      .field("p50_us", 12.5)
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"bench\": \"m2_churn\",\n"
            "  \"seed\": 1000,\n"
            "  \"quick\": true,\n"
            "  \"p50_us\": 12.5\n"
            "}\n");
}

TEST(JsonWriter, NestedContainersAndCommas) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("gates").begin_array();
  w.begin_object().field("name", "flat_latency").field("passed", true)
      .end_object();
  w.begin_object().field("name", "zero_leak").field("passed", false)
      .end_object();
  w.end_array();
  w.key("metrics").begin_object().field("throughput_per_s", 33600.0)
      .end_object();
  w.key("empty").begin_object().end_object();
  w.key("none").null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"gates\": [\n"
            "    {\n"
            "      \"name\": \"flat_latency\",\n"
            "      \"passed\": true\n"
            "    },\n"
            "    {\n"
            "      \"name\": \"zero_leak\",\n"
            "      \"passed\": false\n"
            "    }\n"
            "  ],\n"
            "  \"metrics\": {\n"
            "    \"throughput_per_s\": 33600\n"
            "  },\n"
            "  \"empty\": {},\n"
            "  \"none\": null\n"
            "}\n");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object().field("we\"ird", "a\\b\nc").end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"we\\\"ird\": \"a\\\\b\\nc\"\n"
            "}\n");
}

TEST(JsonWriter, NonFiniteValueBecomesNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object()
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .end_object();
  EXPECT_EQ(out.str(), "{\n  \"nan\": null\n}\n");
}

TEST(JsonWriter, MisuseThrows) {
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // member without a key
  }
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object().key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);  // key after key
  }
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_array();
    EXPECT_THROW(w.key("a"), std::logic_error);  // key inside array
    EXPECT_THROW(w.end_object(), std::logic_error);  // mismatched close
  }
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.value("done");
    EXPECT_TRUE(w.complete());
    EXPECT_THROW(w.value("again"), std::logic_error);  // second document
  }
}

TEST(JsonWriter, TopLevelScalarIsAValidDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  EXPECT_FALSE(w.complete());
  w.value(std::int64_t{-7});
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(), "-7\n");
}

}  // namespace
}  // namespace tacc::util
