// Wire-protocol unit tests: parse_request over every verb, the malformed
// lines a hostile or buggy client can send, and the response formatters.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tacc::service {
namespace {

Request parse_ok(const std::string& line) {
  const ParseResult result = parse_request(line);
  EXPECT_TRUE(result.ok()) << "'" << line << "': " << result.error;
  return result.request.value_or(Request{});
}

std::string parse_error(const std::string& line) {
  const ParseResult result = parse_request(line);
  EXPECT_FALSE(result.ok()) << "'" << line << "' parsed unexpectedly";
  EXPECT_FALSE(result.error.empty());
  return result.error;
}

// ---- Happy paths -----------------------------------------------------------

TEST(Protocol, ConfigureDefaults) {
  const Request r = parse_ok("CONFIGURE city 200 10");
  EXPECT_EQ(r.verb, Verb::kConfigure);
  EXPECT_EQ(r.session, "city");
  EXPECT_EQ(r.iot, 200u);
  EXPECT_EQ(r.edge, 10u);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_EQ(r.algorithm, Algorithm::kGreedyBestFit);
  EXPECT_EQ(r.preset, ScenarioPreset::kSmartCity);
  EXPECT_FALSE(r.timeout_ms.has_value());
}

TEST(Protocol, ConfigureWithAllOptions) {
  const Request r = parse_ok(
      "CONFIGURE f1 50 5 seed=42 algo=local-search preset=factory "
      "timeout_ms=250");
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.algorithm, Algorithm::kLocalSearch);
  EXPECT_EQ(r.preset, ScenarioPreset::kFactory);
  ASSERT_TRUE(r.timeout_ms.has_value());
  EXPECT_DOUBLE_EQ(*r.timeout_ms, 250.0);
}

TEST(Protocol, JoinParsesCoordinatesAndLoad) {
  const Request r = parse_ok("JOIN city 1.5 -2.25 demand=2.5 rate=10");
  EXPECT_EQ(r.verb, Verb::kJoin);
  EXPECT_DOUBLE_EQ(r.x, 1.5);
  EXPECT_DOUBLE_EQ(r.y, -2.25);
  EXPECT_DOUBLE_EQ(r.demand, 2.5);
  EXPECT_DOUBLE_EQ(r.rate_hz, 10.0);
}

TEST(Protocol, MoveParsesDeviceAndPinned) {
  const Request r = parse_ok("MOVE city 17 3.0 4.0 pinned=1");
  EXPECT_EQ(r.verb, Verb::kMove);
  EXPECT_EQ(r.index, 17u);
  EXPECT_TRUE(r.pinned);
  EXPECT_FALSE(parse_ok("MOVE city 17 3.0 4.0").pinned);
}

TEST(Protocol, ServerVerbsParseIndex) {
  EXPECT_EQ(parse_ok("LEAVE s 3").verb, Verb::kLeave);
  EXPECT_EQ(parse_ok("FAIL s 2").verb, Verb::kFail);
  EXPECT_TRUE(parse_ok("FAIL s 2").evacuate);  // evacuation is the default
  EXPECT_FALSE(parse_ok("FAIL s 2 evacuate=0").evacuate);
  EXPECT_EQ(parse_ok("RECOVER s 2").verb, Verb::kRecover);
  EXPECT_EQ(parse_ok("EVACUATE s 2").verb, Verb::kEvacuate);
  EXPECT_EQ(parse_ok("EVACUATE s 2").index, 2u);
}

TEST(Protocol, LinkVerbsParseEndpoints) {
  const Request failed = parse_ok("LINK_FAIL s 12 34");
  EXPECT_EQ(failed.verb, Verb::kLinkFail);
  EXPECT_EQ(failed.link_u, 12u);
  EXPECT_EQ(failed.link_v, 34u);
  EXPECT_EQ(parse_ok("LINK_RESTORE s 12 34").verb, Verb::kLinkRestore);

  const Request set = parse_ok("LINK_SET s 12 34 7.5 timeout_ms=100");
  EXPECT_EQ(set.verb, Verb::kLinkSet);
  EXPECT_DOUBLE_EQ(set.latency_ms, 7.5);
  ASSERT_TRUE(set.timeout_ms.has_value());
  EXPECT_DOUBLE_EQ(*set.timeout_ms, 100.0);

  EXPECT_EQ(parse_ok("LINKS s").verb, Verb::kLinks);
  EXPECT_EQ(parse_ok("LINKS s").limit, 16u);  // default
  EXPECT_EQ(parse_ok("LINKS s limit=3").limit, 3u);
}

TEST(Protocol, LinkVerbsRejectMalformedArguments) {
  parse_error("LINK_FAIL s 12");          // missing endpoint
  parse_error("LINK_FAIL s a b");         // non-numeric endpoints
  parse_error("LINK_RESTORE s -1 2");     // negative endpoint
  parse_error("LINK_SET s 1 2");          // missing latency
  parse_error("LINK_SET s 1 2 0");        // latency must be positive
  parse_error("LINK_SET s 1 2 -3.5");
  parse_error("LINK_FAIL s 1 2 limit=4");  // limit is LINKS-only
  parse_error("LINKS s limit=0");
  parse_error("LINKS s 5");  // bare token, not key=value
}

TEST(Protocol, SleepStatsPingShutdown) {
  const Request sleep = parse_ok("SLEEP s 250");
  EXPECT_EQ(sleep.verb, Verb::kSleep);
  EXPECT_DOUBLE_EQ(sleep.sleep_ms, 250.0);

  EXPECT_EQ(parse_ok("STATS").session, "");
  EXPECT_EQ(parse_ok("STATS city").session, "city");
  EXPECT_EQ(parse_ok("PING").verb, Verb::kPing);
  EXPECT_EQ(parse_ok("SHUTDOWN").verb, Verb::kShutdown);
}

TEST(Protocol, StatsPerShardOption) {
  EXPECT_FALSE(parse_ok("STATS").per_shard);
  EXPECT_FALSE(parse_ok("STATS city").per_shard);
  EXPECT_FALSE(parse_ok("STATS shards=0").per_shard);

  const Request global = parse_ok("STATS shards=1");
  EXPECT_TRUE(global.per_shard);
  EXPECT_EQ(global.session, "");

  const Request scoped = parse_ok("STATS city shards=1");
  EXPECT_TRUE(scoped.per_shard);
  EXPECT_EQ(scoped.session, "city");

  parse_error("STATS shards=maybe");
  parse_error("STATS city limit=4");  // limit is LINKS-only
  parse_error("STATS shards=1 city");  // session must precede options
}

TEST(Protocol, ToleratesWhitespaceAndCarriageReturn) {
  const Request r = parse_ok("  JOIN \t city   1.0  2.0 \r");
  EXPECT_EQ(r.verb, Verb::kJoin);
  EXPECT_EQ(r.session, "city");
}

TEST(Protocol, SessionNameAcceptsFullAlphabet) {
  EXPECT_EQ(parse_ok("STATS a-b_c.d:e9").session, "a-b_c.d:e9");
  EXPECT_EQ(parse_ok("STATS " + std::string(64, 'x')).session,
            std::string(64, 'x'));
}

// ---- Malformed requests ----------------------------------------------------

TEST(Protocol, RejectsEmptyAndUnknown) {
  parse_error("");
  parse_error("   ");
  EXPECT_NE(parse_error("FROBNICATE x").find("unknown verb"),
            std::string::npos);
  parse_error("configure city 10 2");  // verbs are case-sensitive
}

TEST(Protocol, RejectsMissingAndNonNumericArguments) {
  parse_error("CONFIGURE");
  parse_error("CONFIGURE city");
  parse_error("CONFIGURE city 10");
  parse_error("CONFIGURE city ten 2");
  parse_error("CONFIGURE city 0 5");  // zero-sized scenario
  parse_error("CONFIGURE city 5 0");
  parse_error("JOIN city 1.0");
  parse_error("JOIN city abc 2.0");
  parse_error("MOVE city 1 2.0");
  parse_error("MOVE city -1 2.0 3.0");  // negative index
  parse_error("LEAVE city");
  parse_error("FAIL city x");
}

TEST(Protocol, RejectsBadSessionNames) {
  parse_error("STATS bad/name");
  parse_error("STATS " + std::string(65, 'x'));
  parse_error("JOIN 'quoted' 1 2");
}

TEST(Protocol, RejectsBadOptions) {
  // Unknown key, valid key on the wrong verb, malformed value, bare token.
  EXPECT_NE(parse_error("JOIN city 1 2 bogus=1").find("unknown option"),
            std::string::npos);
  parse_error("JOIN city 1 2 seed=7");  // seed is CONFIGURE-only
  parse_error("CONFIGURE city 10 2 algo=does-not-exist");
  parse_error("CONFIGURE city 10 2 preset=moonbase");
  parse_error("CONFIGURE city 10 2 seed=abc");
  parse_error("JOIN city 1 2 demand=-1");
  parse_error("JOIN city 1 2 rate=0");
  parse_error("MOVE city 1 2 3 pinned=maybe");
  parse_error("JOIN city 1 2 =5");
  parse_error("JOIN city 1 2 trailing");
  parse_error("JOIN city 1 2 timeout_ms=0");  // deadline must be positive
  parse_error("JOIN city 1 2 timeout_ms=-5");
}

TEST(Protocol, RejectsArgumentsOnArgumentlessVerbs) {
  parse_error("PING now");
  parse_error("SHUTDOWN please");
  parse_error("STATS one two");
  parse_error("SLEEP s 250 extra");
}

TEST(Protocol, SleepRangeIsBounded) {
  parse_error("SLEEP s -1");
  parse_error("SLEEP s 10001");
  EXPECT_DOUBLE_EQ(parse_ok("SLEEP s 10000").sleep_ms, 10'000.0);
  EXPECT_DOUBLE_EQ(parse_ok("SLEEP s 0").sleep_ms, 0.0);
}

// ---- Response formatting ---------------------------------------------------

TEST(Protocol, ErrLineFormat) {
  EXPECT_EQ(err_line(ErrorCode::kOverloaded, "queue full"),
            "ERR OVERLOADED queue full");
  EXPECT_EQ(err_line(ErrorCode::kBadRequest, ""), "ERR BAD_REQUEST");
  EXPECT_EQ(err_line(ErrorCode::kDeadlineExceeded, "expired"),
            "ERR DEADLINE_EXCEEDED expired");
}

TEST(Protocol, OkLineFormatsEveryFieldType) {
  const std::string line = OkLine()
                               .field("name", "city")
                               .field("count", std::size_t{42})
                               .field("delay", 5.25)
                               .field("feasible", true)
                               .field("pinned", false)
                               .str();
  EXPECT_EQ(line, "OK name=city count=42 delay=5.25 feasible=1 pinned=0");
}

TEST(Protocol, OkLineDoublesUseCompactPrecision) {
  // %.6g keeps lines short and round-trippable to ~6 significant digits.
  EXPECT_EQ(OkLine().field("v", 0.000125).str(), "OK v=0.000125");
  EXPECT_EQ(OkLine().field("v", 1234567.0).str(), "OK v=1.23457e+06");
}

TEST(ReoptProtocol, StartParsesBudgetOverrides) {
  const Request r = parse_ok(
      "REOPT_START city moves=8 device_moves=2 window_s=0.5 interval_ms=10 "
      "timeout_ms=250");
  EXPECT_EQ(r.verb, Verb::kReoptStart);
  EXPECT_EQ(r.session, "city");
  EXPECT_EQ(r.reopt_moves, 8u);
  EXPECT_EQ(r.reopt_device_moves, 2u);
  EXPECT_DOUBLE_EQ(r.reopt_window_s, 0.5);
  EXPECT_DOUBLE_EQ(r.reopt_interval_ms, 10.0);
  ASSERT_TRUE(r.timeout_ms.has_value());
  EXPECT_DOUBLE_EQ(*r.timeout_ms, 250.0);
}

TEST(ReoptProtocol, StartDefaultsKeepEngineTuning) {
  const Request r = parse_ok("REOPT_START city");
  // Zero means "keep the engine default" for every budget knob.
  EXPECT_EQ(r.reopt_moves, 0u);
  EXPECT_EQ(r.reopt_device_moves, 0u);
  EXPECT_DOUBLE_EQ(r.reopt_window_s, 0.0);
  EXPECT_DOUBLE_EQ(r.reopt_interval_ms, 0.0);
}

TEST(ReoptProtocol, StopAndStatsParse) {
  EXPECT_EQ(parse_ok("REOPT_STOP city").verb, Verb::kReoptStop);
  EXPECT_EQ(parse_ok("REOPT_STATS city timeout_ms=50").verb,
            Verb::kReoptStats);
}

TEST(ReoptProtocol, RejectsMalformedRequests) {
  parse_error("REOPT_START");                    // missing session
  parse_error("REOPT_START city moves=abc");     // non-numeric option
  parse_error("REOPT_START city budget=5");      // unknown option
  parse_error("REOPT_STOP city moves=5");        // option not valid here
  parse_error("REOPT_STATS");                    // missing session
}

TEST(ReoptProtocol, VerbNamesRoundTrip) {
  EXPECT_EQ(to_string(Verb::kReoptStart), "REOPT_START");
  EXPECT_EQ(to_string(Verb::kReoptStop), "REOPT_STOP");
  EXPECT_EQ(to_string(Verb::kReoptStats), "REOPT_STATS");
}

TEST(OracleProtocol, ConfigureStoresValidatedSpec) {
  const Request r =
      parse_ok("CONFIGURE city 50 5 oracle=landmark,k=4,eps=0.2");
  EXPECT_EQ(r.oracle, "landmark,k=4,eps=0.2");
  // Absent option leaves the spec empty (engine applies its default).
  EXPECT_TRUE(parse_ok("CONFIGURE city 50 5").oracle.empty());
  EXPECT_EQ(parse_ok("CONFIGURE city 50 5 oracle=exact,compress=1").oracle,
            "exact,compress=1");
}

TEST(OracleProtocol, RejectsMalformedSpecsEagerly) {
  // A typo'd spec must fail at parse time, not at CONFIGURE apply time.
  EXPECT_NE(parse_error("CONFIGURE city 50 5 oracle=alt")
                .find("bad value for option 'oracle'"),
            std::string::npos);
  parse_error("CONFIGURE city 50 5 oracle=landmark,k=0");
  parse_error("CONFIGURE city 50 5 oracle=exact,k=4");  // k is landmark-only
  parse_error("CONFIGURE city 50 5 oracle=landmark,eps=-1");
  parse_error("JOIN city 1 2 oracle=exact");  // CONFIGURE-only option
}

TEST(OracleProtocol, StatsParsesAndRoundTrips) {
  const Request r = parse_ok("ORACLE_STATS city timeout_ms=50");
  EXPECT_EQ(r.verb, Verb::kOracleStats);
  EXPECT_EQ(r.session, "city");
  ASSERT_TRUE(r.timeout_ms.has_value());
  EXPECT_DOUBLE_EQ(*r.timeout_ms, 50.0);
  parse_error("ORACLE_STATS");             // missing session
  parse_error("ORACLE_STATS city k=4");    // unknown option
  EXPECT_EQ(to_string(Verb::kOracleStats), "ORACLE_STATS");
}

TEST(Protocol, EnumNamesRoundTrip) {
  EXPECT_EQ(to_string(Verb::kConfigure), "CONFIGURE");
  EXPECT_EQ(to_string(Verb::kShutdown), "SHUTDOWN");
  EXPECT_EQ(to_string(ErrorCode::kShuttingDown), "SHUTTING_DOWN");
  EXPECT_EQ(to_string(ScenarioPreset::kCampus), "campus");
}

}  // namespace
}  // namespace tacc::service
