// Correctness of the incremental delay engine: randomized churn sequences
// must keep every per-server tree bit-identical to a from-scratch Dijkstra
// (and within tolerance of Floyd–Warshall) at every step.
#include "topology/incremental/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/failures.hpp"
#include "topology/incremental/cache.hpp"
#include "topology/shortest_paths.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc::topo::incr {
namespace {

const LinkDelayModel kDelay;

/// Router backbone + a few devices/servers over the given family.
NetworkTopology make_net(TopologyFamily family, std::uint64_t seed,
                         std::size_t routers = 49, std::size_t devices = 24,
                         std::size_t servers = 4) {
  util::Rng rng(seed);
  GeneratorParams params;
  params.node_count = routers;
  const GeoGraph infra = generate(family, params, kDelay, rng);
  std::vector<Point2D> iot(devices);
  std::vector<Point2D> edges(servers);
  for (auto& p : iot) p = {rng.uniform(0.0, params.area_km),
                           rng.uniform(0.0, params.area_km)};
  for (auto& p : edges) p = {rng.uniform(0.0, params.area_km),
                             rng.uniform(0.0, params.area_km)};
  return build_network(infra, iot, edges, kDelay);
}

/// True iff every tree distance equals the from-scratch Dijkstra value
/// bitwise (inf compares equal to inf).
testing::AssertionResult trees_match_rebuild(
    const IncrementalDelayEngine& engine, const NetworkTopology& net) {
  const auto fresh = dijkstra_fan_out(net.graph, net.edge_nodes);
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    const auto& incremental = engine.tree(j).distances();
    for (NodeId node = 0; node < net.graph.node_count(); ++node) {
      const double expect = fresh[j].distance_ms[node];
      const double got = incremental[node];
      if (!(expect == got || (std::isinf(expect) && std::isinf(got)))) {
        return testing::AssertionFailure()
               << "server " << j << " node " << node << ": incremental "
               << got << " vs rebuild " << expect;
      }
    }
  }
  return testing::AssertionSuccess();
}

class IncrementalEquivalence
    : public testing::TestWithParam<TopologyFamily> {};

// The acceptance gate: 1000 randomized fail/restore/reweight events per
// family, exact agreement with a full recompute after every single event.
TEST_P(IncrementalEquivalence, ThousandEventChurnMatchesFromScratch) {
  NetworkTopology net = make_net(GetParam(), 0xC0FFEE);
  IncrementalDelayEngine engine(net);
  util::Rng rng(0xBEEF);

  std::size_t fails = 0, restores = 0, reweights = 0;
  for (std::size_t event = 0; event < 1000; ++event) {
    const auto live = backbone_links(net);
    const double roll = rng.uniform();
    if (!net.failed_links.empty() && (roll < 0.35 || live.empty())) {
      const FailedLink& pick =
          net.failed_links[rng.index(net.failed_links.size())];
      engine.restore_link(pick.u, pick.v);
      ++restores;
    } else if (roll < 0.70 && !live.empty()) {
      // Failing freely may disconnect devices — unreachable (inf) rows are
      // part of the contract, not an error.
      const auto [u, v] = live[rng.index(live.size())];
      engine.fail_link(u, v);
      ++fails;
    } else if (!live.empty()) {
      const auto [u, v] = live[rng.index(live.size())];
      const double old_ms = net.graph.edge_props(u, v)->latency_ms;
      engine.set_link_latency(u, v, old_ms * rng.uniform(0.5, 2.0));
      ++reweights;
    }
    ASSERT_TRUE(trees_match_rebuild(engine, net))
        << "family " << to_string(GetParam()) << " event " << event
        << " (fails " << fails << " restores " << restores << " reweights "
        << reweights << ")";
  }
  // The mix must actually exercise all three verbs.
  EXPECT_GT(fails, 100u);
  EXPECT_GT(restores, 100u);
  EXPECT_GT(reweights, 100u);
  EXPECT_EQ(engine.stats().link_updates, fails + restores + reweights);
  EXPECT_EQ(engine.epoch(), engine.stats().link_updates);

  // The deep validator agrees: dirty bookkeeping sound, every tree
  // bit-identical to a from-scratch Dijkstra.
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants(net.edge_count());

  // Cross-check the final state against the O(V^3) reference as well
  // (tolerance: Floyd–Warshall associates sums differently).
  const auto reference = floyd_warshall(net.graph);
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    const auto& row = reference[net.edge_nodes[j]];
    for (NodeId node = 0; node < net.graph.node_count(); ++node) {
      const double got = engine.delay_ms(j, node);
      if (std::isinf(row[node])) {
        EXPECT_TRUE(std::isinf(got));
      } else {
        EXPECT_NEAR(got, row[node], 1e-9 * (1.0 + row[node]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, IncrementalEquivalence,
                         testing::Values(TopologyFamily::kGrid,
                                         TopologyFamily::kHierarchical,
                                         TopologyFamily::kRandomGeometric),
                         [](const auto& suite_info) {
                           return std::string(to_string(suite_info.param));
                         });

TEST(IncrementalDelayEngine, DisconnectionAndRestoreRoundTrip) {
  // Line: server — r0 — r1 — device. Failing r0–r1 strands the device.
  GeoGraph infra{Graph(2), {{0.0, 0.0}, {2.0, 0.0}}};
  infra.graph.add_edge(0, 1, kDelay.backbone_link(2.0));
  const std::vector<Point2D> iot{{2.5, 0.0}};
  const std::vector<Point2D> edges{{0.0, 0.5}};
  NetworkTopology net = build_network(infra, iot, edges, kDelay);
  IncrementalDelayEngine engine(net);

  const double before = engine.delay_ms(0, net.iot_nodes[0]);
  EXPECT_TRUE(std::isfinite(before));
  engine.fail_link(0, 1);
  EXPECT_TRUE(std::isinf(engine.delay_ms(0, net.iot_nodes[0])));
  EXPECT_TRUE(trees_match_rebuild(engine, net));
  engine.restore_link(0, 1);
  EXPECT_EQ(engine.delay_ms(0, net.iot_nodes[0]), before);
  EXPECT_TRUE(trees_match_rebuild(engine, net));
}

TEST(IncrementalDelayEngine, DeviceChurnKeepsTreesExact) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 77);
  IncrementalDelayEngine engine(net);
  util::Rng rng(5);

  std::vector<NodeId> added;
  for (std::size_t step = 0; step < 50; ++step) {
    if (added.empty() || rng.uniform() < 0.6) {
      const Point2D pos{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
      const NodeId node = engine.acquire_node(pos, NodeKind::kIotDevice);
      const NodeId router = static_cast<NodeId>(rng.index(49));
      engine.add_link(node, router, kDelay.access_link(1.0));
      added.push_back(node);
    } else {
      const std::size_t k = rng.index(added.size());
      engine.release_node(added[k]);
      added.erase(added.begin() + static_cast<std::ptrdiff_t>(k));
    }
    ASSERT_TRUE(trees_match_rebuild(engine, net)) << "step " << step;
  }
  const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
  engine.check_invariants(net.edge_count());
}

TEST(IncrementalDelayEngine, DirtyNodesDrainOnceAndCoverChanges) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 3);
  IncrementalDelayEngine engine(net);
  const auto links = backbone_links(net);
  ASSERT_FALSE(links.empty());

  const auto before = dijkstra_fan_out(net.graph, net.edge_nodes);
  engine.fail_link(links[0].first, links[0].second);
  const auto after = dijkstra_fan_out(net.graph, net.edge_nodes);

  std::vector<NodeId> dirty;
  EXPECT_EQ(engine.drain_dirty(dirty), dirty.size());
  std::vector<bool> is_dirty(net.graph.node_count(), false);
  for (const NodeId node : dirty) {
    EXPECT_FALSE(is_dirty[node]) << "duplicate dirty node " << node;
    is_dirty[node] = true;
  }
  // Every node whose distance to some server moved must be in the set.
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    for (NodeId node = 0; node < net.graph.node_count(); ++node) {
      const double a = before[j].distance_ms[node];
      const double b = after[j].distance_ms[node];
      if (a != b && !(std::isinf(a) && std::isinf(b))) {
        EXPECT_TRUE(is_dirty[node]) << "node " << node << " changed but "
                                    << "was not reported dirty";
      }
    }
  }
  // A second drain yields nothing.
  std::vector<NodeId> again;
  EXPECT_EQ(engine.drain_dirty(again), 0u);
  EXPECT_TRUE(again.empty());
}

TEST(IncrementalDelayEngine, StatsTrackSavings) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 9);
  IncrementalDelayEngine engine(net);
  const auto links = backbone_links(net);
  engine.fail_link(links[0].first, links[0].second);
  engine.restore_link(links[0].first, links[0].second);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.link_updates, 2u);
  EXPECT_EQ(stats.epoch, 2u);
  // Affected regions are bounded by a full recompute's node visits.
  const std::uint64_t full = 2ull * net.edge_count() *
                             net.graph.live_node_count();
  EXPECT_LE(stats.nodes_affected, full);
  EXPECT_EQ(stats.nodes_saved, full - stats.nodes_affected);
}

TEST(DelayMatrixCache, RefreshRewritesExactlyTheDirtyBoundRows) {
  NetworkTopology net = make_net(TopologyFamily::kRandomGeometric, 21);
  IncrementalDelayEngine engine(net);
  DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }
  EXPECT_EQ(cache.bound_count(), net.iot_count());

  // Bound rows start identical to the batch precomputation.
  const DelayMatrix expected = compute_delay_matrix(net);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      EXPECT_EQ(cache.row(i)[j], expected.at(i, j));
    }
  }

  const auto links = backbone_links(net);
  engine.fail_link(links[0].first, links[0].second);
  const std::size_t refreshed = cache.refresh();
  EXPECT_LE(refreshed, cache.bound_count());
  EXPECT_EQ(cache.rows_refreshed(), refreshed);
  EXPECT_EQ(cache.rows_saved(), cache.bound_count() - refreshed);
  {
    // Post-refresh the cache must be provably current (dirty-set empty, all
    // bound rows equal to the engine's trees).
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    cache.check_invariants();
  }

  const DelayMatrix degraded = compute_delay_matrix(net);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      const double want = degraded.at(i, j);
      if (std::isinf(want)) {
        EXPECT_TRUE(std::isinf(cache.row(i)[j]));
      } else {
        EXPECT_EQ(cache.row(i)[j], want);
      }
    }
  }
  // Untouched rows keep their epoch; refreshed rows carry the new one.
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    EXPECT_TRUE(cache.row_epoch(i) == 0 ||
                cache.row_epoch(i) == engine.epoch());
  }
  EXPECT_EQ(cache.materialize().iot_count(), net.iot_count());
}

TEST(DelayMatrixCache, FingerprintTracksEpochAcrossRoundTrips) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 31);
  IncrementalDelayEngine engine(net);
  DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }
  const std::uint64_t fp0 = cache.fingerprint();
  EXPECT_EQ(fp0, cache.fingerprint());  // pure

  const auto links = backbone_links(net);
  engine.fail_link(links[0].first, links[0].second);
  cache.refresh();
  const std::uint64_t fp1 = cache.fingerprint();
  EXPECT_NE(fp0, fp1);

  engine.restore_link(links[0].first, links[0].second);
  cache.refresh();
  // Values returned to the start state, but the epoch distinguishes the
  // mutation history — stale consumers keyed on the fingerprint must see a
  // change for each reconfiguration they slept through.
  EXPECT_NE(cache.fingerprint(), fp0);
  EXPECT_NE(cache.fingerprint(), fp1);
}

TEST(DelayMatrixCache, UnbindAndRebindRecyclesRows) {
  NetworkTopology net = make_net(TopologyFamily::kGrid, 41);
  IncrementalDelayEngine engine(net);
  DelayMatrixCache cache(engine);
  cache.bind_row(0, net.iot_nodes[0]);
  cache.bind_row(1, net.iot_nodes[1]);
  cache.unbind_row(0);
  EXPECT_EQ(cache.bound_count(), 1u);
  EXPECT_EQ(cache.row_node(0), kInvalidNode);
  cache.bind_row(0, net.iot_nodes[2]);  // slot reuse, different node
  EXPECT_EQ(cache.bound_count(), 2u);
  const auto tree = dijkstra(net.graph, net.edge_nodes[0]);
  EXPECT_EQ(cache.row(0)[0], tree.distance_ms[net.iot_nodes[2]]);
}

TEST(DelayMatrixCache, RefreshAllRecoversAfterOutOfBandRebuild) {
  NetworkTopology net = make_net(TopologyFamily::kRandomGeometric, 61);
  IncrementalDelayEngine engine(net);
  DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }
  const std::uint64_t refreshed_before = cache.rows_refreshed();

  // Out-of-band topology edit the engine never saw: the cache's rows are
  // now silently stale, and only the rebuild() + refresh_all() recovery
  // hatch brings them back.
  const auto links = backbone_links(net);
  net.graph.remove_edge(links[0].first, links[0].second);
  engine.rebuild();
  cache.refresh_all();

  // refresh_all() counts every bound row toward rows_refreshed, exactly
  // once, regardless of how many actually changed value.
  EXPECT_EQ(cache.rows_refreshed(), refreshed_before + cache.bound_count());
  EXPECT_EQ(cache.rows_saved(), 0u);

  const DelayMatrix expected = compute_delay_matrix(net);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    EXPECT_EQ(cache.row_epoch(i), engine.epoch());
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      const double want = expected.at(i, j);
      if (std::isinf(want)) {
        EXPECT_TRUE(std::isinf(cache.row(i)[j]));
      } else {
        EXPECT_EQ(cache.row(i)[j], want);
      }
    }
  }
  {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    cache.check_invariants();
  }

  // A second refresh_all keeps accounting linear (no double counting of
  // rows that were already current).
  cache.refresh_all();
  EXPECT_EQ(cache.rows_refreshed(),
            refreshed_before + 2 * cache.bound_count());
}

TEST(IncrementalDelayEngine, RebuildDirtiesEverythingAndMatches) {
  NetworkTopology net = make_net(TopologyFamily::kHierarchical, 51);
  IncrementalDelayEngine engine(net);
  // Out-of-band edit the engine did not see, then recover via rebuild().
  const auto links = backbone_links(net);
  net.graph.remove_edge(links[0].first, links[0].second);
  engine.rebuild();
  EXPECT_TRUE(trees_match_rebuild(engine, net));
  std::vector<NodeId> dirty;
  engine.drain_dirty(dirty);
  EXPECT_EQ(dirty.size(), net.graph.node_count());
}

}  // namespace
}  // namespace tacc::topo::incr
