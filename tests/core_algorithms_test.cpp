#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "tests/test_helpers.hpp"

namespace tacc {
namespace {

TEST(AlgorithmNames, RoundTripAll) {
  for (Algorithm a : all_algorithms()) {
    EXPECT_EQ(algorithm_from_string(to_string(a)), a);
  }
  EXPECT_THROW((void)algorithm_from_string("definitely-not"),
               std::invalid_argument);
}

TEST(AlgorithmNames, RoundTripIsCaseInsensitive) {
  // Exhaustive: every algorithm must parse back from its upper-cased and
  // alternating-cased spellings, not just the canonical lowercase one.
  for (Algorithm a : all_algorithms()) {
    std::string upper(to_string(a));
    for (char& c : upper) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    EXPECT_EQ(algorithm_from_string(upper), a) << upper;

    std::string mixed(to_string(a));
    for (std::size_t i = 0; i < mixed.size(); i += 2) {
      mixed[i] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(mixed[i])));
    }
    EXPECT_EQ(algorithm_from_string(mixed), a) << mixed;
  }
  EXPECT_EQ(algorithm_from_string("Q-Learning"), Algorithm::kQLearning);
  // Case folding must not widen what parses: near-misses still throw.
  EXPECT_THROW((void)algorithm_from_string("Q LEARNING"),
               std::invalid_argument);
}

TEST(AlgorithmNames, AreUnique) {
  std::set<std::string_view> names;
  for (Algorithm a : all_algorithms()) names.insert(to_string(a));
  EXPECT_EQ(names.size(), all_algorithms().size());
}

TEST(AlgorithmLists, ComparisonIsSubsetWithoutExactAndFloor) {
  const auto all = all_algorithms();
  const std::set<Algorithm> all_set(all.begin(), all.end());
  for (Algorithm a : comparison_algorithms()) {
    EXPECT_TRUE(all_set.contains(a));
    EXPECT_NE(a, Algorithm::kBranchAndBound);
    EXPECT_NE(a, Algorithm::kRandom);
    EXPECT_NE(a, Algorithm::kRoundRobin);
  }
}

TEST(AlgorithmLists, RlTriad) {
  const auto rl = rl_algorithms();
  ASSERT_EQ(rl.size(), 3u);
  EXPECT_EQ(rl[0], Algorithm::kQLearning);
}

TEST(MakeSolver, NamesMatchEnum) {
  AlgorithmOptions options;
  options.rl.episodes = 5;  // keep RL construction cheap
  for (Algorithm a : all_algorithms()) {
    const auto solver = make_solver(a, options);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->name(), to_string(a));
  }
}

TEST(MakeSolver, EverySolverSolvesSmallInstance) {
  const gap::Instance inst = test::small_instance(3, 12, 3, 0.6);
  AlgorithmOptions options;
  options.rl.episodes = 40;
  options.ucb.rollouts_per_device = 4;
  options.annealing.steps = 5000;
  for (Algorithm a : all_algorithms()) {
    const auto result = make_solver(a, options)->solve(inst);
    ASSERT_EQ(result.assignment.size(), 12u) << to_string(a);
    for (std::int32_t x : result.assignment) {
      EXPECT_NE(x, gap::kUnassigned) << to_string(a);
    }
  }
}

TEST(AlgorithmOptions, ApplySeedPropagates) {
  AlgorithmOptions options;
  options.apply_seed(321);
  EXPECT_EQ(options.seed, 321u);
  EXPECT_EQ(options.rl.seed, 321u);
  EXPECT_EQ(options.ucb.seed, 321u);
  EXPECT_EQ(options.local_search.seed, 321u);
  EXPECT_EQ(options.annealing.seed, 321u);
}

}  // namespace
}  // namespace tacc
