#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "topology/shortest_paths.hpp"

namespace tacc {
namespace {

TEST(Scenario, GenerateProducesConsistentShapes) {
  ScenarioParams params;
  params.workload.iot_count = 50;
  params.workload.edge_count = 6;
  params.seed = 1;
  const Scenario scenario = Scenario::generate(params);
  EXPECT_EQ(scenario.network().iot_count(), 50u);
  EXPECT_EQ(scenario.network().edge_count(), 6u);
  EXPECT_EQ(scenario.workload().iot.size(), 50u);
  EXPECT_EQ(scenario.instance().device_count(), 50u);
  EXPECT_EQ(scenario.instance().server_count(), 6u);
}

TEST(Scenario, DeterministicForSeed) {
  ScenarioParams params;
  params.workload.iot_count = 30;
  params.workload.edge_count = 4;
  params.seed = 9;
  const Scenario a = Scenario::generate(params);
  const Scenario b = Scenario::generate(params);
  EXPECT_EQ(a.instance().delay_ms(3, 1), b.instance().delay_ms(3, 1));
  EXPECT_EQ(a.workload().iot[7].demand, b.workload().iot[7].demand);
  params.seed = 10;
  const Scenario c = Scenario::generate(params);
  EXPECT_NE(a.instance().delay_ms(3, 1), c.instance().delay_ms(3, 1));
}

TEST(Scenario, ParallelDelayMatrixBuildIsBitIdentical) {
  ScenarioParams params;
  params.workload.iot_count = 40;
  params.workload.edge_count = 5;
  params.seed = 12;
  const Scenario serial = Scenario::generate(params);
  params.build_threads = 4;
  const Scenario parallel = Scenario::generate(params);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(serial.instance().delay_ms(i, j),
                parallel.instance().delay_ms(i, j))
          << i << "," << j;
    }
  }
  // build_threads is a build knob, not a scenario parameter: the fingerprint
  // must not change with it.
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
}

TEST(Scenario, NetworkIsConnected) {
  const Scenario scenario = Scenario::smart_city(40, 5, 3);
  EXPECT_TRUE(topo::is_connected(scenario.network().graph));
}

TEST(Scenario, InstanceDelaysAreFiniteAndPositive) {
  const Scenario scenario = Scenario::smart_city(40, 5, 4);
  const auto& inst = scenario.instance();
  for (std::size_t i = 0; i < inst.device_count(); ++i) {
    for (std::size_t j = 0; j < inst.server_count(); ++j) {
      EXPECT_GT(inst.delay_ms(i, j), 0.0);
      EXPECT_LT(inst.delay_ms(i, j), 1e6);
    }
  }
}

TEST(Scenario, ObliviousInstanceUsesEuclideanCosts) {
  const Scenario scenario = Scenario::smart_city(30, 4, 5);
  const auto& aware = scenario.instance();
  const auto& oblivious = scenario.oblivious_instance();
  ASSERT_EQ(oblivious.device_count(), aware.device_count());
  // Euclidean km values are much smaller than path-delay ms values and not
  // equal in general.
  bool any_different = false;
  for (std::size_t i = 0; i < aware.device_count() && !any_different; ++i) {
    if (aware.delay_ms(i, 0) != oblivious.delay_ms(i, 0)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
  // Same demands/capacities though.
  EXPECT_EQ(oblivious.capacity(0), aware.capacity(0));
  EXPECT_EQ(oblivious.demand(3, 0), aware.demand(3, 0));
}

TEST(Scenario, PresetsCoverDistinctFamilies) {
  EXPECT_EQ(Scenario::smart_city(20, 3, 1).params().family,
            topo::TopologyFamily::kWaxman);
  EXPECT_EQ(Scenario::factory(20, 3, 1).params().family,
            topo::TopologyFamily::kRandomGeometric);
  EXPECT_EQ(Scenario::campus(20, 3, 1).params().family,
            topo::TopologyFamily::kHierarchical);
}

TEST(Scenario, FactoryPresetHasTightDeadlinesAndLoad) {
  const Scenario scenario = Scenario::factory(30, 4, 2);
  EXPECT_NEAR(scenario.workload().load_factor(), 0.85, 1e-9);
  for (const auto& device : scenario.workload().iot) {
    EXPECT_LE(device.deadline_ms, 15.0);
  }
}

TEST(Scenario, WeightsComeFromRequestRates) {
  const Scenario scenario = Scenario::smart_city(25, 4, 6);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(scenario.instance().traffic_weight(i),
                     scenario.workload().iot[i].request_rate_hz);
  }
}

}  // namespace
}  // namespace tacc
