// Metamorphic properties: transformations of the instance with known
// effects on the solution. These catch subtle scaling/indexing bugs that
// point tests cannot.
#include <gtest/gtest.h>

#include <numeric>

#include "core/algorithms.hpp"
#include "gap/testgen.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace tacc {
namespace {

gap::Instance scaled_delays(const gap::Instance& original, double factor) {
  const std::size_t n = original.device_count();
  const std::size_t m = original.server_count();
  topo::DelayMatrix delay(n, m);
  std::vector<double> weights(n), demands(n), capacities(m);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = original.traffic_weight(i);
    demands[i] = original.demand(i, 0);
    for (std::size_t j = 0; j < m; ++j) {
      delay.set(i, j, factor * original.delay_ms(i, j));
    }
  }
  for (std::size_t j = 0; j < m; ++j) capacities[j] = original.capacity(j);
  return gap::Instance(std::move(delay), std::move(weights),
                       std::move(demands), std::move(capacities));
}

/// Instance with server columns permuted: new column j is old perm[j].
gap::Instance permuted_servers(const gap::Instance& original,
                               const std::vector<std::size_t>& perm) {
  const std::size_t n = original.device_count();
  const std::size_t m = original.server_count();
  topo::DelayMatrix delay(n, m);
  std::vector<double> weights(n), demands(n), capacities(m);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = original.traffic_weight(i);
    demands[i] = original.demand(i, 0);
    for (std::size_t j = 0; j < m; ++j) {
      delay.set(i, j, original.delay_ms(i, perm[j]));
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    capacities[j] = original.capacity(perm[j]);
  }
  return gap::Instance(std::move(delay), std::move(weights),
                       std::move(demands), std::move(capacities));
}

// ---- Scale invariance -----------------------------------------------------
// Multiplying every delay by a positive constant must not change any
// solver's *decisions* (costs scale linearly). Every solver either works on
// cost comparisons (greedy/regret/B&B/local search), on normalized rewards
// (Q-learning, UCB), or on auto-scaled temperatures/penalties (SA), so the
// returned assignment must be identical.

class ScaleInvariance
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {
};

TEST_P(ScaleInvariance, AssignmentUnchangedUnderDelayScaling) {
  const auto [algorithm, seed] = GetParam();
  const gap::Instance base = test::small_instance(seed, 30, 5, 0.75);
  const gap::Instance scaled = scaled_delays(base, 3.5);

  AlgorithmOptions options;
  options.apply_seed(seed);
  options.rl.episodes = 80;
  options.ucb.rollouts_per_device = 6;
  options.annealing.steps = 20'000;
  const auto original = make_solver(algorithm, options)->solve(base);
  const auto rescaled = make_solver(algorithm, options)->solve(scaled);
  EXPECT_EQ(original.assignment, rescaled.assignment) << to_string(algorithm);
  EXPECT_NEAR(rescaled.total_cost, 3.5 * original.total_cost,
              1e-6 * rescaled.total_cost);
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, ScaleInvariance,
    ::testing::Combine(
        ::testing::Values(Algorithm::kGreedyNearest,
                          Algorithm::kGreedyBestFit, Algorithm::kRegretGreedy,
                          Algorithm::kLocalSearch,
                          Algorithm::kSimulatedAnnealing,
                          Algorithm::kFlowRelaxRepair,
                          Algorithm::kBranchAndBound, Algorithm::kQLearning,
                          Algorithm::kSarsa, Algorithm::kUcbRollout,
                          Algorithm::kGrasp, Algorithm::kTabu),
        ::testing::Values(401u, 402u)));

// ---- Server-permutation equivariance ---------------------------------------
// Relabeling the servers must relabel the solution and nothing else. Only
// solvers whose internal randomness never draws on raw server indices
// qualify (SA picks random server indices, so its trajectory legitimately
// differs under relabeling).

class PermutationEquivariance
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {
};

TEST_P(PermutationEquivariance, SolutionPermutesWithServers) {
  const auto [algorithm, seed] = GetParam();
  const gap::Instance base = test::small_instance(seed, 25, 5, 0.7);
  util::Rng rng(seed * 13 + 5);
  std::vector<std::size_t> perm(base.server_count());
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  const gap::Instance permuted = permuted_servers(base, perm);

  AlgorithmOptions options;
  options.apply_seed(seed);
  const auto original = make_solver(algorithm, options)->solve(base);
  const auto relabeled = make_solver(algorithm, options)->solve(permuted);

  // relabeled assignment j' must satisfy perm[j'] == original j.
  ASSERT_EQ(relabeled.assignment.size(), original.assignment.size());
  for (std::size_t i = 0; i < original.assignment.size(); ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(
                  perm[static_cast<std::size_t>(relabeled.assignment[i])]),
              original.assignment[i])
        << to_string(algorithm) << " device " << i;
  }
  EXPECT_NEAR(relabeled.total_cost, original.total_cost,
              1e-9 * (1.0 + original.total_cost));
}

INSTANTIATE_TEST_SUITE_P(
    DeterministicSolvers, PermutationEquivariance,
    ::testing::Combine(::testing::Values(Algorithm::kGreedyNearest,
                                         Algorithm::kGreedyBestFit,
                                         Algorithm::kRegretGreedy,
                                         Algorithm::kBranchAndBound),
                       ::testing::Values(411u, 412u, 413u)));

// ---- Weight scaling ----------------------------------------------------------
// Scaling every traffic weight by a constant scales total cost linearly and
// leaves the assignment unchanged for cost-comparison solvers.

TEST(WeightScaling, GreedyFamilyInvariant) {
  const gap::Instance base = [&] {
    gap::RandomInstanceParams params;
    params.device_count = 30;
    params.server_count = 5;
    params.rate_weighted = true;
    util::Rng rng(42);
    return gap::random_instance(params, rng);
  }();
  const std::size_t n = base.device_count();
  const std::size_t m = base.server_count();
  topo::DelayMatrix delay(n, m);
  std::vector<double> weights(n), demands(n), capacities(m);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 7.0 * base.traffic_weight(i);
    demands[i] = base.demand(i, 0);
    for (std::size_t j = 0; j < m; ++j) delay.set(i, j, base.delay_ms(i, j));
  }
  for (std::size_t j = 0; j < m; ++j) capacities[j] = base.capacity(j);
  const gap::Instance scaled(std::move(delay), std::move(weights),
                             std::move(demands), std::move(capacities));

  for (Algorithm algorithm :
       {Algorithm::kGreedyBestFit, Algorithm::kRegretGreedy}) {
    AlgorithmOptions options;
    const auto a = make_solver(algorithm, options)->solve(base);
    const auto b = make_solver(algorithm, options)->solve(scaled);
    EXPECT_EQ(a.assignment, b.assignment) << to_string(algorithm);
    EXPECT_NEAR(b.total_cost, 7.0 * a.total_cost, 1e-6 * b.total_cost);
  }
}

}  // namespace
}  // namespace tacc
