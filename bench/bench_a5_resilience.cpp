// A5 (extension): resilience to infrastructure failures. Configure the
// cluster, fail a growing fraction of backbone links, and measure (a) the
// realized delay of the ORIGINAL assignment on the degraded topology and
// (b) the delay after reconfiguring on the degraded topology — i.e. what a
// failure costs and how much reconfiguration claws back. Also: edge-server
// failures handled by DynamicCluster evacuation.
//
// Failures are injected in place (fail_links/restore_links) on one working
// copy per repeat; the scenario and its pre-failure configuration are
// computed once per seed and shared across fail fractions.
#include <array>

#include "bench/bench_common.hpp"
#include "gap/builder.hpp"
#include "topology/failures.hpp"

namespace {

using namespace tacc;

struct FractionAgg {
  metrics::RunningStats healthy, stale, reconfigured;
  std::size_t total_disconnected = 0;
  /// Buffered CSV cells so rows stay grouped by fraction in the output.
  std::vector<std::array<double, 5>> rows;
};

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const auto config = bench::BenchConfig::from_flags(flags);
  const auto iot = static_cast<std::size_t>(
      flags.get_int("iot", config.quick ? 200 : 400));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 16));

  bench::CsvFile csv(flags, "a5_resilience");
  csv.writer().header({"fail_fraction", "seed", "healthy_delay_ms",
                       "degraded_same_assignment_ms",
                       "degraded_reconfigured_ms"});

  const std::vector<double> fractions =
      config.quick ? std::vector<double>{0.1, 0.3}
                   : std::vector<double>{0.05, 0.1, 0.2, 0.3};
  std::vector<FractionAgg> aggs(fractions.size());

  for (std::size_t r = 0; r < config.repeats; ++r) {
    const std::uint64_t seed = config.base_seed + r;
    const Scenario scenario = Scenario::smart_city(iot, edge, seed);
    AlgorithmOptions options = bench::experiment_options(config.quick);
    options.apply_seed(seed);

    const ClusterConfigurator configurator(scenario);
    const auto conf =
        configurator.configure({Algorithm::kQLearning, options});

    // One mutable copy per seed; each fraction fails its sampled links in
    // place and restores them afterwards (delays are a function of the edge
    // set, so the restored copy is equivalent to a fresh one).
    topo::NetworkTopology net = scenario.network();
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const double fraction = fractions[f];
      FractionAgg& agg = aggs[f];
      agg.healthy.add(conf.avg_delay_ms());

      util::Rng rng(seed * 7 + 1);
      const auto failed_links =
          topo::sample_failable_links(scenario.network(), fraction, rng);
      topo::fail_links(net, failed_links);
      gap::BuilderOptions builder_options;
      builder_options.unreachable_delay_ms = 1e5;  // finite "disconnected"
      const gap::Instance degraded_instance =
          gap::build_instance(net, scenario.workload(), builder_options);
      topo::restore_links(net, failed_links);

      // (a) keep the pre-failure assignment on the degraded topology —
      // averaged over devices that can still reach their old server;
      // devices cut off entirely are counted separately.
      double stale_sum = 0.0;
      std::size_t stale_connected = 0;
      std::size_t disconnected = 0;
      for (std::size_t i = 0; i < iot; ++i) {
        const double d = degraded_instance.delay_ms(
            i, static_cast<std::size_t>(conf.assignment()[i]));
        if (d >= 1e5) {
          ++disconnected;
        } else {
          stale_sum += d;
          ++stale_connected;
        }
      }
      agg.stale.add(stale_connected
                        ? stale_sum / static_cast<double>(stale_connected)
                        : 0.0);
      agg.total_disconnected += disconnected;
      // (b) …vs reconfiguring against the degraded delays.
      const auto fresh = make_solver(Algorithm::kQLearning, options)
                             ->solve(degraded_instance);
      const auto fresh_ev = gap::evaluate(degraded_instance,
                                          fresh.assignment);
      agg.reconfigured.add(fresh_ev.avg_delay_ms);
      agg.rows.push_back({fraction, static_cast<double>(seed),
                          agg.healthy.max(), agg.stale.max(),
                          fresh_ev.avg_delay_ms});
    }
  }

  util::ConsoleTable table({"fail fraction", "healthy (ms)",
                            "same assignment (ms)", "reconfigured (ms)",
                            "recovered", "disconnected"});
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    const FractionAgg& agg = aggs[f];
    for (const auto& row : agg.rows) {
      csv.writer().row(row[0], static_cast<std::uint64_t>(row[1]), row[2],
                       row[3], row[4]);
    }
    const double recovered =
        agg.stale.mean() > agg.healthy.mean()
            ? (agg.stale.mean() - agg.reconfigured.mean()) /
                  (agg.stale.mean() - agg.healthy.mean())
            : 0.0;
    table.add_row({util::format_double(fractions[f], 2),
                   util::format_double(agg.healthy.mean(), 2),
                   util::format_double(agg.stale.mean(), 2),
                   util::format_double(agg.reconfigured.mean(), 2),
                   util::format_double(recovered * 100.0, 0) + "%",
                   std::to_string(agg.total_disconnected)});
  }
  std::cout << table.to_string(
                   "A5 — backbone-link failures (q-learning config, n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   "):")
            << "\nExpected shape: the stale assignment degrades as failures "
               "grow; reconfiguring\non the degraded topology recovers most "
               "of the gap back toward healthy delay.\n";
  bench::check_unused_flags(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
