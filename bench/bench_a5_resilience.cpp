// A5 (extension): resilience to infrastructure failures. Configure the
// cluster, inject a correlated regional backbone outage (all links within a
// radius of an epicenter, from the regional_link_failure workload
// provider), and measure (a) the realized delay of the ORIGINAL assignment
// on the degraded topology and (b) the delay after reconfiguring on the
// degraded topology — i.e. what a failure costs and how much
// reconfiguration claws back. The sweep grows the outage radius instead of
// an i.i.d. link fraction: geographically correlated failures (backhoe
// cuts, power loss) are the case the paper's topology-awareness actually
// faces, and they can strand whole neighborhoods, which independent
// sampling never does.
//
// Failures are injected in place (fail_links/restore_links) on one working
// copy per repeat; the scenario and its pre-failure configuration are
// computed once per seed and shared across radii. --workload overrides the
// outage provider spec (radius_km is appended per sweep point).
#include <array>

#include "bench/bench_common.hpp"
#include "gap/builder.hpp"
#include "topology/failures.hpp"

namespace {

using namespace tacc;

struct RadiusAgg {
  metrics::RunningStats healthy, stale, reconfigured;
  std::size_t total_disconnected = 0;
  std::size_t total_failed_links = 0;
  /// Buffered CSV cells so rows stay grouped by radius in the output.
  std::vector<std::array<double, 6>> rows;
};

/// Steps `provider` until its first regional outage and returns the failed
/// links as endpoint pairs (empty if the region covers no link).
std::vector<topo::LinkEndpoints> first_outage(
    workload::WorkloadProvider& provider,
    const workload::ProviderContext& ctx) {
  std::vector<topo::LinkEndpoints> links;
  for (int step = 0; step < 64; ++step) {
    for (const workload::Event& event : provider.step(5.0)) {
      if (event.kind == workload::EventKind::kLinkFail) {
        links.push_back(ctx.links[event.link]);
      }
    }
    if (!links.empty()) break;
  }
  return links;
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));
  const std::string base_spec = config.workload_or(
      "regional_link_failure,outage_every_s=5,outage_s=1000,reweight_rate=0");

  bench::BenchReport report(config, "a5_resilience");
  report.set_provider(base_spec);
  bench::CsvFile csv(config, "a5_resilience");
  csv.writer().header({"radius_km", "seed", "healthy_delay_ms",
                       "degraded_same_assignment_ms",
                       "degraded_reconfigured_ms", "failed_links"});

  const std::vector<double> radii =
      config.quick ? std::vector<double>{1.0, 3.0}
                   : std::vector<double>{0.5, 1.0, 2.0, 3.0};
  std::vector<RadiusAgg> aggs(radii.size());

  for (std::size_t r = 0; r < config.repeats; ++r) {
    const std::uint64_t seed = config.base_seed + r;
    const Scenario scenario = Scenario::smart_city(iot, edge, seed);
    AlgorithmOptions options = bench::experiment_options(config.quick);
    options.apply_seed(seed);

    const ClusterConfigurator configurator(scenario);
    const auto conf =
        configurator.configure({Algorithm::kQLearning, options});
    const workload::ProviderContext ctx =
        bench::provider_context(scenario, seed);

    // One mutable copy per seed; each radius fails its outage links in
    // place and restores them afterwards (delays are a function of the edge
    // set, so the restored copy is equivalent to a fresh one).
    topo::NetworkTopology net = scenario.network();
    for (std::size_t f = 0; f < radii.size(); ++f) {
      const double radius = radii[f];
      RadiusAgg& agg = aggs[f];
      const double healthy_ms = conf.avg_delay_ms();
      agg.healthy.add(healthy_ms);

      auto provider = workload::make_provider(
          base_spec + ",radius_km=" + util::format_double(radius, 3), ctx);
      const auto failed_links = first_outage(*provider, ctx);
      agg.total_failed_links += failed_links.size();
      topo::fail_links(net, failed_links);
      gap::BuilderOptions builder_options;
      builder_options.unreachable_delay_ms = 1e5;  // finite "disconnected"
      const gap::Instance degraded_instance =
          gap::build_instance(net, scenario.workload(), builder_options);
      topo::restore_links(net, failed_links);

      // (a) keep the pre-failure assignment on the degraded topology —
      // averaged over devices that can still reach their old server;
      // devices cut off entirely are counted separately.
      double stale_sum = 0.0;
      std::size_t stale_connected = 0;
      std::size_t disconnected = 0;
      for (std::size_t i = 0; i < iot; ++i) {
        const double d = degraded_instance.delay_ms(
            i, static_cast<std::size_t>(conf.assignment()[i]));
        if (d >= 1e5) {
          ++disconnected;
        } else {
          stale_sum += d;
          ++stale_connected;
        }
      }
      const double stale_avg =
          stale_connected ? stale_sum / static_cast<double>(stale_connected)
                          : 0.0;
      agg.stale.add(stale_avg);
      agg.total_disconnected += disconnected;
      // (b) …vs reconfiguring against the degraded delays. Averaged over
      // the same population as (a): devices with at least one reachable
      // server. Truly stranded devices are unfixable by reassignment, so
      // folding their 1e5 sentinel into the mean would only measure the
      // sentinel, not the reconfiguration.
      const auto fresh = make_solver(Algorithm::kQLearning, options)
                             ->solve(degraded_instance);
      double fresh_sum = 0.0;
      std::size_t fresh_connected = 0;
      for (std::size_t i = 0; i < iot; ++i) {
        const double d = degraded_instance.delay_ms(
            i, static_cast<std::size_t>(fresh.assignment[i]));
        if (d < 1e5) {
          fresh_sum += d;
          ++fresh_connected;
        }
      }
      const double fresh_avg =
          fresh_connected ? fresh_sum / static_cast<double>(fresh_connected)
                          : 0.0;
      agg.reconfigured.add(fresh_avg);
      agg.rows.push_back({radius, static_cast<double>(seed), healthy_ms,
                          stale_avg, fresh_avg,
                          static_cast<double>(failed_links.size())});
    }
  }

  util::ConsoleTable table({"radius (km)", "failed links", "healthy (ms)",
                            "same assignment (ms)", "reconfigured (ms)",
                            "recovered", "disconnected"});
  for (std::size_t f = 0; f < radii.size(); ++f) {
    const RadiusAgg& agg = aggs[f];
    for (const auto& row : agg.rows) {
      csv.writer().row(row[0], static_cast<std::uint64_t>(row[1]), row[2],
                       row[3], row[4],
                       static_cast<std::uint64_t>(row[5]));
    }
    const double recovered =
        agg.stale.mean() > agg.healthy.mean()
            ? (agg.stale.mean() - agg.reconfigured.mean()) /
                  (agg.stale.mean() - agg.healthy.mean())
            : 0.0;
    table.add_row({util::format_double(radii[f], 2),
                   std::to_string(agg.total_failed_links),
                   util::format_double(agg.healthy.mean(), 2),
                   util::format_double(agg.stale.mean(), 2),
                   util::format_double(agg.reconfigured.mean(), 2),
                   util::format_double(recovered * 100.0, 0) + "%",
                   std::to_string(agg.total_disconnected)});
    report.metric("stale_delay_ms_r" + util::format_double(radii[f], 1),
                  agg.stale.mean());
    report.metric("reconfigured_delay_ms_r" +
                      util::format_double(radii[f], 1),
                  agg.reconfigured.mean());
  }
  report.write();
  std::cout << table.to_string(
                   "A5 — regional backbone outages (q-learning config, n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   "):")
            << "\nExpected shape: the stale assignment degrades as the "
               "outage radius grows;\nreconfiguring on the degraded topology "
               "recovers most of the gap back toward\nhealthy delay.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
