// M3: closed-loop load benchmark for the taccd service stack.
//
// Boots a service::Server (Unix-domain socket) in-process, CONFIGUREs one
// warm session, then drives it with N concurrent closed-loop connections
// (each waits for its response before sending the next request). The request
// mix comes from a WorkloadProvider fork per connection (--workload=SPEC,
// default "steady"): kJoin -> JOIN (the wire-assigned index is learned from
// the response), kLeave -> LEAVE of a device this connection joined,
// kMove -> MOVE on a base device, everything else -> STATS. Provider ids
// cannot be predicted across concurrently interleaved connections, so the
// mix — not the indices — is what the provider supplies here; single-stream
// index-exact replay is bench_m2_churn's WireAdapter job. Reports
// throughput, p50/p99/p999 client-side latency, and the rejection rate, then
// HARD-GATES the serving contract:
//   1. Accounting: every submitted request receives exactly one terminal
//      response (OK, OVERLOADED, or DEADLINE_EXCEEDED) — no silent drops,
//      no unexpected protocol errors.
//   2. Throughput: sustained rate >= --min-rps (default 10000) against the
//      warm session.
//   3. Graceful drain: SIGTERM under load lets every in-flight request
//      finish, closes every connection cleanly, and the process exits 0.
//   4. Shard scaling: an engine-direct (no sockets) closed loop measures
//      throughput at 1/2/4/8 engine shards — one worker and one
//      driver-session per shard — and gates rps(8 shards) / rps(1 shard)
//      against --min-shard-scaling. The default floor is hardware-aware:
//      3.0 with >= 8 cores, derated below that (a 1-core CI runner cannot
//      exhibit parallel speedup), 0.3 under --quick. Every shard count
//      must also keep zero-loss accounting and pass check_invariants().
//      The full curve lands in BENCH_m3_serve.json as rps_shards_<k>.
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
//   ./bench_m3_serve [--connections=8] [--requests=5000] [--iot=120]
//                    [--edge=10] [--shards=0] [--threads=0] [--max-queue=512]
//                    [--timeout-ms=2000] [--min-rps=10000] [--no-sigterm]
//                    [--scale-requests=20000] [--min-shard-scaling=X]
//                    [--workload=SPEC]
//   --quick shrinks the request count for sanitizer/CI runs.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <deque>
#include <future>
#include <thread>

#include "util/contracts.hpp"

#include "bench/bench_common.hpp"
#include "metrics/stats.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"
#include "workload/wire.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

/// Minimal blocking line client for the bench's closed loop.
class Client {
 public:
  explicit Client(const std::string& unix_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      throw std::runtime_error("bench_m3_serve: cannot connect to " +
                               unix_path);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and blocks for its response. Returns false on
  /// connection loss (only legitimate during the SIGTERM drain phase).
  bool roundtrip(const std::string& request, std::string& response) {
    std::string out = request;
    out += '\n';
    std::string_view data = out;
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        response = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Extracts an integer field ("device=42") from an OK response line.
std::size_t parse_field(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find(key + "=");
  if (pos == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::strtoull(line.c_str() + pos + key.size() + 1, nullptr, 10));
}

struct ConnStats {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::size_t deadline = 0;
  std::size_t shutting_down = 0;
  std::size_t unexpected_err = 0;  // BAD_REQUEST/NOT_FOUND/INTERNAL — a bug
  std::size_t lost = 0;            // sent but the connection dropped
  std::vector<double> latency_us;

  [[nodiscard]] std::size_t responses() const {
    return ok + overloaded + deadline + shutting_down + unexpected_err;
  }
  void classify(const std::string& response) {
    if (response.rfind("OK", 0) == 0) {
      ++ok;
    } else if (response.find("OVERLOADED") != std::string::npos) {
      ++overloaded;
    } else if (response.find("DEADLINE_EXCEEDED") != std::string::npos) {
      ++deadline;
    } else if (response.find("SHUTTING_DOWN") != std::string::npos) {
      ++shutting_down;
    } else {
      ++unexpected_err;
    }
  }
};

/// One closed-loop worker: `requests` rounds of a provider-generated mix
/// against the warm session. The provider fork is seeded per connection, so
/// the mix each connection sends is deterministic even though the server-side
/// interleaving across connections is not.
ConnStats drive_connection(const std::string& unix_path,
                           const std::string& session,
                           const std::string& workload_spec,
                           workload::ProviderContext ctx,
                           std::size_t requests, std::size_t base_iot,
                           std::uint64_t seed) {
  Client client(unix_path);
  ctx.seed = seed;
  auto provider = workload::make_provider(workload_spec, ctx);
  std::deque<workload::Event> pending;
  ConnStats stats;
  stats.latency_us.reserve(requests);
  std::vector<std::size_t> owned;  // wire indices this connection joined
  std::string request;
  std::string response;
  for (std::size_t i = 0; i < requests; ++i) {
    while (pending.empty()) {
      for (workload::Event& event : provider->step(1.0)) {
        pending.push_back(std::move(event));
      }
    }
    const workload::Event event = std::move(pending.front());
    pending.pop_front();
    bool joined = false;
    switch (event.kind) {
      case workload::EventKind::kJoin:
        request = "JOIN " + session + " " +
                  workload::wire_double(event.position.x) + " " +
                  workload::wire_double(event.position.y);
        joined = true;
        break;
      case workload::EventKind::kLeave:
        // LEAVE only what this connection joined; nothing owned yet -> the
        // event degrades to a STATS probe so the closed loop keeps its beat.
        if (!owned.empty()) {
          request = "LEAVE " + session + " " + std::to_string(owned.back());
          owned.pop_back();
        } else {
          request = "STATS " + session;
        }
        break;
      case workload::EventKind::kMove:
        // Move a base device: base ids exist for every connection, while the
        // provider's minted ids only map to wire indices via `owned`.
        request = "MOVE " + session + " " +
                  std::to_string(event.device % base_iot) + " " +
                  workload::wire_double(event.position.x) + " " +
                  workload::wire_double(event.position.y);
        break;
      default:
        // Demand pulses and link events would race across connections (link
        // preconditions are global); they become read-only STATS probes.
        request = "STATS " + session;
        break;
    }
    util::WallTimer timer;
    ++stats.sent;
    if (!client.roundtrip(request, response)) {
      ++stats.lost;
      break;
    }
    stats.latency_us.push_back(timer.elapsed_ms() * 1e3);
    stats.classify(response);
    if (joined && response.rfind("OK", 0) == 0) {
      owned.push_back(parse_field(response, "device"));
    }
  }
  return stats;
}

/// One point of the shard-scaling curve: a fresh engine with `shards`
/// shards, one worker and one driver-session per shard, driven engine-direct
/// (no sockets — the socket phase above is syscall-bound and cannot expose
/// admission-path scaling). Each driver keeps a small window of requests in
/// flight so micro-batching engages. Returns the measured rps;
/// `accounting_ok` demands exactly one OK response per submitted request,
/// zero rejections, and a clean check_invariants() at the end.
double scale_point(std::size_t shards, std::size_t requests_per_driver,
                   std::uint64_t seed, bool& accounting_ok) {
  service::EngineOptions options;
  options.shards = shards;
  options.threads = shards;  // one worker per shard
  options.max_queue = 128 * shards;
  options.default_timeout_ms = 60'000.0;
  service::Engine engine(options);

  // One session per shard, discovered by probing the stable routing hash.
  std::vector<std::string> names(shards);
  std::size_t covered = 0;
  for (int i = 0; covered < shards; ++i) {
    std::string name = "scale" + std::to_string(i);
    const std::size_t shard = engine.shard_of(name);
    if (names[shard].empty()) {
      names[shard] = std::move(name);
      ++covered;
    }
  }

  constexpr std::size_t kIot = 40;
  for (const std::string& name : names) {
    const service::ParseResult parsed = service::parse_request(
        "CONFIGURE " + name + " " + std::to_string(kIot) + " 4 seed=" +
        std::to_string(seed) + " timeout_ms=60000");
    std::promise<std::string> configured;
    std::future<std::string> future = configured.get_future();
    engine.submit(*parsed.request, [&configured](std::string response) {
      configured.set_value(std::move(response));
    });
    if (future.get().rfind("OK", 0) != 0) accounting_ok = false;
  }
  engine.drain();

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> err{0};
  util::WallTimer timer;
  {
    std::vector<std::jthread> drivers;
    drivers.reserve(names.size());
    for (const std::string& name : names) {
      drivers.emplace_back([&, name] {
        constexpr std::size_t kWindow = 16;  // in-flight per driver
        util::Rng rng(seed * 31 + engine.shard_of(name));
        service::Request move = *service::parse_request(
            "MOVE " + name + " 0 1.0 1.0 timeout_ms=60000").request;
        std::atomic<std::size_t> responded{0};
        std::size_t sent = 0;
        while (sent < requests_per_driver) {
          while (sent - responded.load(std::memory_order_acquire) >=
                 kWindow) {
            std::this_thread::yield();
          }
          move.index = rng.index(kIot);
          move.x = rng.uniform(0.0, 5.0);
          move.y = rng.uniform(0.0, 5.0);
          engine.submit(move, [&ok, &err, &responded](
                                  const std::string& response) {
            (response.rfind("OK", 0) == 0 ? ok : err).fetch_add(1);
            responded.fetch_add(1, std::memory_order_release);
          });
          ++sent;
        }
        while (responded.load(std::memory_order_acquire) < sent) {
          std::this_thread::yield();
        }
      });
    }
  }
  const double seconds = timer.elapsed_seconds();
  engine.begin_shutdown();
  engine.drain();

  const std::size_t sent = names.size() * requests_per_driver;
  if (ok.load() != sent || err.load() != 0) {
    std::cerr << "scaling accounting at " << shards << " shards: ok="
              << ok.load() << " err=" << err.load() << " sent=" << sent
              << "\n";
    accounting_ok = false;
  }
  const service::EngineCounters counters = engine.counters();
  if (counters.rejected_overload != 0 || counters.rejected_deadline != 0 ||
      counters.accepted != counters.completed) {
    std::cerr << "scaling ledger at " << shards
              << " shards: accepted=" << counters.accepted
              << " completed=" << counters.completed
              << " rejected_overload=" << counters.rejected_overload
              << " rejected_deadline=" << counters.rejected_deadline << "\n";
    accounting_ok = false;
  }
  try {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    engine.check_invariants();
  } catch (const std::exception& violation) {
    std::cerr << "check_invariants at " << shards << " shards: "
              << violation.what() << "\n";
    accounting_ok = false;
  }
  return static_cast<double>(sent) / seconds;
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto connections = static_cast<std::size_t>(
      config.flags.get_int("connections", 8));
  const auto requests = static_cast<std::size_t>(
      config.flags.get_int("requests", config.quick ? 1'500 : 5'000));
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 80 : 120));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 10));
  // --quick is a machinery smoke for small CI runners; the full 10k req/s
  // acceptance gate applies to the default run.
  const double min_rps =
      config.flags.get_double("min-rps", config.quick ? 2'000.0 : 10'000.0);
  const bool sigterm_phase = !config.flags.get_bool("no-sigterm", false);
  const std::string workload_spec = config.workload_or("steady");

  service::ServerOptions options;
  options.unix_path = "/tmp/tacc_m3_serve_" + std::to_string(::getpid()) +
                      ".sock";
  options.engine.threads =
      static_cast<std::size_t>(config.flags.get_int("threads", 0));
  options.engine.shards =
      static_cast<std::size_t>(config.flags.get_int("shards", 0));
  options.engine.max_queue =
      static_cast<std::size_t>(config.flags.get_int("max-queue", 512));
  options.engine.default_timeout_ms =
      config.flags.get_double("timeout-ms", 2000.0);

  service::Server server(std::move(options));
  server.install_signal_handlers();
  std::jthread server_thread([&server] { server.run(); });

  const std::string session = "m3";
  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  const workload::ProviderContext ctx =
      bench::provider_context(scenario, config.base_seed);
  bench::BenchReport report(config, "m3_serve");
  report.set_provider(workload_spec);

  {
    // Warm the session: CONFIGURE builds the topology, delay matrix, and
    // the initial assignment once; the load phase reuses them.
    Client warm(server.unix_path());
    std::string response;
    const std::string configure =
        "CONFIGURE " + session + " " + std::to_string(iot) + " " +
        std::to_string(edge) + " seed=" + std::to_string(config.base_seed) +
        " timeout_ms=60000";
    if (!warm.roundtrip(configure, response) ||
        response.rfind("OK", 0) != 0) {
      std::cerr << "GATE FAILED: CONFIGURE failed: " << response << "\n";
      report.gate("configure", false);
      server.request_shutdown();
      return 1;
    }
    std::cout << "warm session: " << response << "\n";
  }

  // ---- Steady closed-loop phase --------------------------------------------
  std::vector<ConnStats> per_conn(connections);
  util::WallTimer phase_timer;
  {
    std::vector<std::jthread> workers;
    workers.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      workers.emplace_back([&, c] {
        per_conn[c] = drive_connection(server.unix_path(), session,
                                       workload_spec, ctx, requests, iot,
                                       config.base_seed * 1'000 + c);
      });
    }
  }
  const double steady_s = phase_timer.elapsed_seconds();

  ConnStats total;
  std::vector<double> all_latencies;
  for (const ConnStats& c : per_conn) {
    total.sent += c.sent;
    total.ok += c.ok;
    total.overloaded += c.overloaded;
    total.deadline += c.deadline;
    total.shutting_down += c.shutting_down;
    total.unexpected_err += c.unexpected_err;
    total.lost += c.lost;
    all_latencies.insert(all_latencies.end(), c.latency_us.begin(),
                         c.latency_us.end());
  }
  const double rps = static_cast<double>(total.responses()) / steady_s;
  const double p50 = metrics::percentile(all_latencies, 0.50);
  const double p99 = metrics::percentile(all_latencies, 0.99);
  const double p999 = metrics::percentile(all_latencies, 0.999);
  const double rejection_rate =
      total.sent == 0
          ? 0.0
          : static_cast<double>(total.overloaded + total.deadline) /
                static_cast<double>(total.sent);

  util::ConsoleTable table({"connections", "requests", "responses", "rps",
                            "p50 (us)", "p99 (us)", "p999 (us)",
                            "rejected"});
  table.add_row({std::to_string(connections),
                 std::to_string(total.sent),
                 std::to_string(total.responses()),
                 util::format_double(rps, 0),
                 util::format_double(p50, 1), util::format_double(p99, 1),
                 util::format_double(p999, 1),
                 util::format_double(rejection_rate * 100.0, 3) + "%"});
  std::cout << table.to_string("M3 — taccd closed-loop serve (" +
                               std::to_string(iot) + " base devices, " +
                               std::to_string(edge) + " servers, provider " +
                               workload_spec + "):");

  bench::CsvFile csv(config, "m3_serve");
  csv.writer().header({"connections", "requests", "responses", "ok",
                       "overloaded", "deadline", "rps", "p50_us", "p99_us",
                       "p999_us", "rejection_rate"});
  csv.writer().row(connections, total.sent, total.responses(), total.ok,
                   total.overloaded, total.deadline, rps, p50, p99, p999,
                   rejection_rate);

  // ---- Gate 1: exactly one terminal response per submitted request. --------
  const bool accounting_ok =
      total.lost == 0 && total.responses() == total.sent &&
      total.unexpected_err == 0 && total.shutting_down == 0;
  if (!accounting_ok) {
    std::cerr << "response accounting (sent=" << total.sent
              << " responses=" << total.responses() << " lost=" << total.lost
              << " unexpected_err=" << total.unexpected_err
              << " shutting_down=" << total.shutting_down << ")\n";
  }
  report.gate("response_accounting", accounting_ok);

  // ---- Gate 2: sustained throughput. ---------------------------------------
  if (rps < min_rps) {
    std::cerr << "throughput " << util::format_double(rps, 0)
              << " rps < required " << util::format_double(min_rps, 0)
              << "\n";
  }
  report.gate("min_throughput", rps >= min_rps);

  // ---- Gate 3: SIGTERM under load drains cleanly. --------------------------
  if (sigterm_phase) {
    std::atomic<std::size_t> drain_sent{0};
    std::atomic<std::size_t> drain_responded{0};
    std::atomic<bool> drain_anomaly{false};
    {
      std::vector<std::jthread> workers;
      for (std::size_t c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
          try {
            Client client(server.unix_path());
            util::Rng rng(config.base_seed * 7'000 + c);
            std::string response;
            // Loop until the drain cuts the connection; 60s safety cap so a
            // wedged shutdown fails the gate instead of hanging the bench.
            util::WallTimer guard;
            while (guard.elapsed_seconds() < 60.0) {
              const std::string request =
                  "MOVE m3 " + std::to_string(rng.index(iot)) + " " +
                  std::to_string(rng.uniform(0.0, ctx.area_km)) + " " +
                  std::to_string(rng.uniform(0.0, ctx.area_km));
              drain_sent.fetch_add(1);
              if (!client.roundtrip(request, response)) return;
              drain_responded.fetch_add(1);
            }
            drain_anomaly.store(true);  // never saw the shutdown cut
          } catch (const std::exception&) {
            drain_anomaly.store(true);
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ::raise(SIGTERM);
      server_thread.join();  // run() returns only after a full drain
    }
    const std::size_t unanswered =
        drain_sent.load() - drain_responded.load();
    std::cout << "\nSIGTERM drain: " << drain_responded.load() << "/"
              << drain_sent.load() << " requests answered during shutdown ("
              << unanswered << " cut at the final socket close)\n";
    // Each connection may lose at most its single in-flight request to the
    // post-drain socket close; more means requests vanished while admitted.
    const bool drain_ok =
        !drain_anomaly.load() && unanswered <= connections;
    if (!drain_ok) {
      std::cerr << "SIGTERM drain (anomaly=" << drain_anomaly.load()
                << ", unanswered=" << unanswered
                << " > connections=" << connections << ")\n";
    }
    report.gate("sigterm_drain", drain_ok);
  } else {
    server.request_shutdown();
    server_thread.join();
  }

  // ---- Gate 4: shard-count scaling curve (engine-direct). ------------------
  const auto scale_requests = static_cast<std::size_t>(config.flags.get_int(
      "scale-requests", config.quick ? 2'000 : 20'000));
  const auto hardware =
      static_cast<double>(std::thread::hardware_concurrency());
  // The acceptance bar (>= 3x at 8 shards vs 1) presumes >= 8-way hardware;
  // smaller runners get a derated floor because the curve physically cannot
  // show parallel speedup beyond the core count.
  const double default_min_scaling =
      config.quick ? 0.3
      : hardware >= 8.0 ? 3.0
                        : std::max(0.3, 0.35 * hardware);
  const double min_scaling =
      config.flags.get_double("min-shard-scaling", default_min_scaling);

  bool scaling_accounting = true;
  const std::size_t curve[] = {1, 2, 4, 8};
  std::vector<double> curve_rps;
  util::ConsoleTable scale_table({"shards", "requests", "rps", "speedup"});
  for (const std::size_t k : curve) {
    const double point_rps =
        scale_point(k, scale_requests, config.base_seed, scaling_accounting);
    curve_rps.push_back(point_rps);
    scale_table.add_row({std::to_string(k),
                         std::to_string(k * scale_requests),
                         util::format_double(point_rps, 0),
                         util::format_double(point_rps / curve_rps.front(), 2) +
                             "x"});
    report.metric("rps_shards_" + std::to_string(k), point_rps);
  }
  const double shard_scaling = curve_rps.back() / curve_rps.front();
  std::cout << "\n"
            << scale_table.to_string(
                   "M3 — engine-direct shard scaling (" +
                   std::to_string(scale_requests) + " req/driver, " +
                   util::format_double(hardware, 0) + " hw threads):");
  report.metric("shard_scaling", shard_scaling);
  report.gate("scaling_accounting", scaling_accounting);
  if (shard_scaling < min_scaling) {
    std::cerr << "shard scaling " << util::format_double(shard_scaling, 2)
              << "x (8 vs 1 shards) < required "
              << util::format_double(min_scaling, 2) << "x\n";
  }
  report.gate("shard_scaling", shard_scaling >= min_scaling);

  report.metric("rps", rps);
  report.metric("p50_us", p50);
  report.metric("p99_us", p99);
  report.metric("p999_us", p999);
  report.metric("rejection_rate", rejection_rate);
  report.metric("requests", static_cast<double>(total.sent));
  report.metric("shards", static_cast<double>(server.engine().shard_count()));
  report.write();

  const bool ok = report.all_gates_passed();
  if (ok) {
    std::cout << "All serve gates passed: full response accounting, "
              << util::format_double(rps, 0) << " rps >= "
              << util::format_double(min_rps, 0)
              << (sigterm_phase ? ", graceful SIGTERM drain.\n" : ".\n");
  }
  config.check_unused();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
