// F2 (reconstructed): average communication delay vs the number of edge
// servers at fixed device population — the provisioning figure.
#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));

  bench::CsvFile csv(config, "f2_delay_vs_edge");
  csv.writer().header({"edge_count", "algorithm", "mean_avg_delay_ms",
                       "ci95", "feasible_fraction"});

  const std::vector<std::size_t> edge_counts =
      config.quick ? std::vector<std::size_t>{5, 20}
                   : std::vector<std::size_t>{5, 10, 20, 30, 40};
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kFlowRelaxRepair,
      Algorithm::kQLearning,     Algorithm::kUcbRollout};

  util::ConsoleTable table({"m", "algorithm", "avg delay (ms)", "feasible"});
  for (std::size_t m : edge_counts) {
    for (Algorithm algorithm : algorithms) {
      const AlgoStats stats = run_repeated(
          [&](std::uint64_t seed) {
            return Scenario::smart_city(iot, m, seed);
          },
          algorithm, config.repeats, config.base_seed,
          bench::experiment_options(config.quick));
      csv.writer().row(m, to_string(algorithm), stats.avg_delay_ms.mean(),
                       metrics::ci95_half_width(stats.avg_delay_ms),
                       stats.feasible_fraction());
      table.add_row({std::to_string(m), std::string(to_string(algorithm)),
                     mean_ci(stats.avg_delay_ms, 2),
                     util::format_double(stats.feasible_fraction(), 2)});
    }
  }
  std::cout << table.to_string(
                   "F2 — avg delay vs #edge servers (n=" +
                   std::to_string(iot) + ", rho=0.7):")
            << "\nExpected shape: delay falls as servers densify; RL keeps "
               "its lead; with\nabundant servers all capacity-aware methods "
               "converge toward the nearest policy.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
