// A2 (ablation): which RL design choices carry the weight? Sweeps polish
// on/off, infeasible-action masking, candidate count K, load-bucket
// resolution, and overload-penalty strength, reporting the gap to the
// splittable lower bound.
#include "bench/bench_common.hpp"
#include "rl/qlearning.hpp"
#include "solvers/flow_based.hpp"

namespace {

using namespace tacc;

struct Variant {
  std::string name;
  rl::RlOptions options;
};

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));
  const double rho = config.flags.get_double("rho", 0.9);  // tight: make the
                                                    // feasibility machinery
                                                    // earn its keep

  bench::CsvFile csv(config, "a2_rl_ablation");
  csv.writer().header({"variant", "seed", "gap_pct", "feasible", "wall_ms"});

  std::vector<Variant> variants;
  {
    rl::RlOptions base;
    if (config.quick) base.episodes = 150;
    variants.push_back({"full (default)", base});

    rl::RlOptions v = base;
    v.polish = false;
    variants.push_back({"no local-search polish", v});

    v = base;
    v.greedy_eval_episodes = 0;
    variants.push_back({"no greedy-eval replay", v});

    v = base;
    v.mask_infeasible = false;
    variants.push_back({"no feasibility masking", v});

    v = base;
    v.env.overload_penalty = 0.0;
    variants.push_back({"no overload penalty", v});

    for (std::size_t k : {2u, 8u}) {
      v = base;
      v.env.candidate_count = k;
      variants.push_back({"K=" + std::to_string(k) + " candidates", v});
    }
    for (std::size_t b : {2u, 8u}) {
      v = base;
      v.env.load_buckets = b;
      variants.push_back({"B=" + std::to_string(b) + " load buckets", v});
    }
    v = base;
    v.epsilon0 = 0.0;
    v.epsilon_min = 0.0;
    variants.push_back({"no exploration (eps=0)", v});
  }

  util::ConsoleTable table(
      {"variant", "mean gap vs LB", "feasible fraction", "wall (ms)"});
  for (const Variant& variant : variants) {
    metrics::RunningStats gap_stats;
    metrics::RunningStats wall_stats;
    std::size_t feasible = 0;
    for (std::size_t r = 0; r < config.repeats; ++r) {
      const std::uint64_t seed = config.base_seed + r;
      ScenarioParams params;
      params.workload.iot_count = iot;
      params.workload.edge_count = edge;
      params.workload.load_factor = rho;
      params.seed = seed;
      const Scenario scenario = Scenario::generate(params);
      const auto bounds =
          solvers::compute_lower_bounds(scenario.instance());
      rl::RlOptions options = variant.options;
      options.seed = seed;
      rl::QLearningSolver solver(options);
      const auto result = solver.solve(scenario.instance());
      const double gap_pct =
          (result.total_cost / bounds.splittable_flow - 1.0) * 100.0;
      csv.writer().row(variant.name, seed, gap_pct,
                       result.feasible ? 1 : 0, result.wall_ms);
      gap_stats.add(gap_pct);
      wall_stats.add(result.wall_ms);
      if (result.feasible) ++feasible;
    }
    table.add_row({variant.name,
                   mean_ci(gap_stats, 2) + "%",
                   util::format_double(static_cast<double>(feasible) /
                                           static_cast<double>(config.repeats),
                                       2),
                   util::format_double(wall_stats.mean(), 1)});
  }
  std::cout << table.to_string(
                   "A2 — RL design ablation (q-learning, n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   ", rho=" + util::format_double(rho, 2) +
                   ", gap vs splittable LB):")
            << "\nExpected shape: polish and masking each reduce the gap; "
               "removing the\noverload penalty or exploration hurts "
               "feasibility/quality; K and B show\ndiminishing returns "
               "beyond the defaults.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
