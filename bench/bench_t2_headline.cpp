// T2 (reconstructed): the head-to-head comparison at the default
// configuration — the paper's "our algorithm outperforms the
// state-of-the-art" table. Means ± 95% CI over regenerated scenarios.
//
// The per-scenario algorithm sweep runs through the portfolio runtime:
// --parallel=N fans the whole comparison set over N workers. All reported
// numbers are bit-identical for any N; only total wall time changes.
#include "bench/bench_common.hpp"
#include "runtime/portfolio.hpp"
#include "solvers/flow_based.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));
  const auto parallel = static_cast<std::size_t>(
      std::max<std::int64_t>(0, config.flags.get_int("parallel", 1)));

  bench::CsvFile csv(config, "t2_headline");
  csv.writer().header({"algorithm", "mean_cost", "ci95_cost",
                       "mean_avg_delay_ms", "mean_max_util",
                       "feasible_fraction", "mean_wall_ms", "mean_lb_gap_pct"});

  const auto make_scenario = [&](std::uint64_t seed) {
    return Scenario::smart_city(iot, edge, seed);
  };

  // The scenarios are pure functions of their seed; generate them once and
  // reuse across the lower-bound pass and every algorithm's batch.
  runtime::PortfolioRunner runner(parallel);
  std::vector<Scenario> scenarios;
  scenarios.reserve(config.repeats);
  for (std::size_t r = 0; r < config.repeats; ++r) {
    scenarios.push_back(make_scenario(config.base_seed + r));
  }

  // Splittable lower bound per scenario seed, for gap reporting.
  metrics::RunningStats lb_stats;
  std::vector<double> lower_bounds;
  for (const Scenario& scenario : scenarios) {
    const auto bounds = solvers::compute_lower_bounds(scenario.instance());
    lower_bounds.push_back(bounds.splittable_flow);
    lb_stats.add(bounds.splittable_flow);
  }

  util::ConsoleTable table({"algorithm", "total cost", "avg delay (ms)",
                            "max util", "feasible", "LB gap", "solve (ms)"});
  std::vector<Algorithm> algorithms = comparison_algorithms();
  algorithms.insert(algorithms.begin(), Algorithm::kRoundRobin);

  for (Algorithm algorithm : algorithms) {
    // Same seed schedule as the serial harness: solver seed (base + r)*1000+1
    // per repeat, so the batch below reproduces the serial loop bit for bit.
    std::vector<ConfigureRequest> requests(config.repeats);
    for (std::size_t r = 0; r < config.repeats; ++r) {
      requests[r].algorithm = algorithm;
      requests[r].options = bench::experiment_options(config.quick);
      requests[r].options.apply_seed((config.base_seed + r) * 1000 + 1);
    }
    const std::vector<ClusterConfiguration> configurations =
        runner.run_batch(scenarios, requests);

    metrics::RunningStats gap_stats;
    AlgoStats stats;
    stats.algorithm = algorithm;
    for (std::size_t r = 0; r < config.repeats; ++r) {
      const gap::Evaluation& ev = configurations[r].evaluation();
      stats.total_cost.add(ev.total_cost);
      stats.avg_delay_ms.add(ev.avg_delay_ms);
      stats.max_utilization.add(ev.max_utilization);
      stats.wall_ms.add(configurations[r].solve_wall_ms());
      if (ev.feasible) ++stats.feasible_runs;
      ++stats.runs;
      gap_stats.add((ev.total_cost / lower_bounds[r] - 1.0) * 100.0);
    }
    csv.writer().row(to_string(algorithm), stats.total_cost.mean(),
                     metrics::ci95_half_width(stats.total_cost),
                     stats.avg_delay_ms.mean(), stats.max_utilization.mean(),
                     stats.feasible_fraction(), stats.wall_ms.mean(),
                     gap_stats.mean());
    table.add_row({std::string(to_string(algorithm)),
                   mean_ci(stats.total_cost, 0),
                   mean_ci(stats.avg_delay_ms, 2),
                   util::format_double(stats.max_utilization.mean(), 2),
                   util::format_double(stats.feasible_fraction(), 2),
                   util::format_double(gap_stats.mean(), 1) + "%",
                   util::format_double(stats.wall_ms.mean(), 1)});
  }
  std::cout << table.to_string(
                   "T2 — head-to-head at the default configuration (n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   ", Waxman, rho=0.7, " + std::to_string(config.repeats) +
                   " seeds; LB = splittable flow, mean " +
                   util::format_double(lb_stats.mean(), 0) + "):")
            << "\nExpected shape: RL heuristics feasible with the lowest "
               "delay among\nfeasible methods; oblivious nearest overloads "
               "(max util > 1, feasible 0).\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
