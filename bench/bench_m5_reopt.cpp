// M5: background re-optimizer soak — budgeted incremental repair vs
// periodic from-scratch re-solves.
//
// Two phases, two contracts:
//
// Phase 1 (convergence + cost): drives provider-generated device churn
// (diurnal, then hotspot_adversary, both with reopt_pause quiet windows)
// against a DynamicCluster whose assignments start greedy, running one
// synchronous opt::Reoptimizer pass per simulated second. At the end of
// each quiet window — demand frozen, optimizer drained to a fixpoint,
// i.e. the steady state the reopt_pause parameter exists to expose — a
// from-scratch portfolio re-solve (greedy-bestfit + local search over the
// live delay rows) is built and CPU-timed; the answer is measured, never
// adopted. HARD-GATES:
//   1. reopt_gap: steady-state (second half of each segment) mean total
//      cost stays within 5% of the portfolio re-solve.
//   2. reopt_cpu: one optimizer pass costs < 20% of the CPU of one
//      from-scratch re-solve — the equal-cadence comparison against the
//      strategy the subsystem replaces (skipped under --quick: sanitizer
//      timing).
//
// Phase 2 (liveness + safety): an engine-direct soak at >= 2 shards with
// --reopt semantics (auto_reopt, validate=true so every applied plan is
// bracketed by DynamicCluster::check_invariants) under closed-loop MOVE
// churn. HARD-GATES:
//   3. soak_accounting: zero-loss request accounting across the soak.
//   4. reopt_invariants: engine + cluster invariants stay clean with the
//      optimizer racing the serving path (any violation aborts or throws).
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
//   ./bench_m5_reopt [--events=100000] [--iot=150] [--edge=10]
//                    [--shards=2] [--samples=20] [--seed=...]
//                    [--reopt-moves=128] [--reopt-window-s=0.005]
//   --quick shrinks both phases and drops the CPU-ratio gate.
#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/dynamic.hpp"
#include "gap/instance.hpp"
#include "metrics/stats.hpp"
#include "optimize/reoptimizer.hpp"
#include "service/engine.hpp"
#include "util/contracts.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

/// One phase-1 segment: fresh cluster + provider, per-step optimizer
/// passes, sampled re-solves. Accumulates into the caller's ledgers.
struct SegmentResult {
  std::vector<double> gap_pct;         ///< sampled gaps, in time order
  double optimizer_ms = 0.0;           ///< Σ run_pass wall time
  double resolve_ms = 0.0;             ///< Σ portfolio re-solve wall time
  opt::ReoptStats stats;               ///< optimizer ledger at segment end
  std::size_t events = 0;
};

/// From-scratch portfolio re-solve over the live cluster state: the delay
/// rows, demands and rates the optimizer itself sees become a gap::Instance
/// solved by greedy-bestfit + local search; the best complete assignment's
/// cost is the "what a full reconfiguration would buy" baseline.
double portfolio_resolve(const DynamicCluster& cluster,
                         const AlgorithmOptions& options) {
  std::vector<std::size_t> slots;
  slots.reserve(cluster.active_count());
  for (std::size_t i = 0; i < cluster.device_slot_count(); ++i) {
    if (cluster.is_active(i)) slots.push_back(i);
  }
  const std::size_t servers = cluster.server_count();
  topo::DelayMatrix delay(slots.size(), servers);
  std::vector<double> weights(slots.size());
  std::vector<double> demands(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::vector<double>& row = cluster.delay_row(slots[i]);
    for (std::size_t j = 0; j < servers; ++j) delay.set(i, j, row[j]);
    weights[i] = cluster.device(slots[i]).request_rate_hz;
    demands[i] = cluster.device(slots[i]).demand;
  }
  const gap::Instance instance(std::move(delay), std::move(weights),
                               std::move(demands), cluster.capacities());
  // Best FEASIBLE portfolio answer; only when no solver finds a feasible
  // assignment (population over capacity) does the cheapest infeasible one
  // stand in — comparing the optimizer's capacity-respecting moves against
  // an infeasible "solution" would manufacture a gap no repair can close.
  double best_feasible = -1.0;
  double best_any = -1.0;
  for (const Algorithm algorithm :
       {Algorithm::kGreedyBestFit, Algorithm::kLocalSearch}) {
    const solvers::SolveResult result =
        make_solver(algorithm, options)->solve(instance);
    if (best_any < 0.0 || result.total_cost < best_any) {
      best_any = result.total_cost;
    }
    if (result.feasible &&
        (best_feasible < 0.0 || result.total_cost < best_feasible)) {
      best_feasible = result.total_cost;
    }
  }
  return best_feasible >= 0.0 ? best_feasible : best_any;
}

SegmentResult run_segment(const std::string& workload_spec, std::size_t iot,
                          std::size_t edge, std::size_t events,
                          std::size_t samples, double active_s,
                          double pause_s, std::uint64_t seed,
                          const opt::ReoptOptions& reopt_options,
                          const AlgorithmOptions& solve_options,
                          util::CsvWriter& csv) {
  const Scenario scenario = Scenario::smart_city(iot, edge, seed);
  AlgorithmOptions options = solve_options;
  options.apply_seed(seed);
  // Greedy start: the segment measures how far budgeted repair closes the
  // gap, so the initial assignment must not already be locally optimal.
  DynamicCluster cluster(scenario,
                         ConfigureRequest(Algorithm::kGreedyBestFit, options));
  tacc::Mutex cluster_mutex;
  opt::Reoptimizer reopt(cluster, cluster_mutex, reopt_options);

  const workload::ProviderContext ctx = workload::make_context(
      scenario.network(), scenario.workload(),
      scenario.params().workload.area_km, seed);
  auto provider = workload::make_provider(workload_spec, ctx);

  // Provider id -> live cluster slot (base ids start at their own index).
  std::vector<std::size_t> slot_of(iot);
  for (std::size_t i = 0; i < iot; ++i) slot_of[i] = i;

  SegmentResult segment;
  const std::size_t sample_every = std::max<std::size_t>(1, events / samples);
  std::size_t next_sample = sample_every;
  const double cycle_s = active_s + pause_s;

  while (segment.events < events) {
    const double step_start_s = provider->now_s();
    for (const workload::Event& event : provider->step(1.0)) {
      if (segment.events >= events) break;
      switch (event.kind) {
        case workload::EventKind::kJoin: {
          workload::IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          slot_of.push_back(cluster.join(device).device_index);
          break;
        }
        case workload::EventKind::kLeave:
          cluster.leave(slot_of[event.device]);
          break;
        case workload::EventKind::kMove:
          (void)cluster.move(slot_of[event.device], event.position);
          break;
        case workload::EventKind::kDemandPulse: {
          // In-place demand change rendered the way the wire replays it:
          // leave + rejoin into the same LIFO-recycled slot.
          const std::size_t slot = slot_of[event.device];
          workload::IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          cluster.leave(slot);
          slot_of[event.device] = cluster.join(device).device_index;
          break;
        }
        default:
          continue;  // diurnal/hotspot emit no link events
      }
      ++segment.events;
    }

    // One synchronous optimizer pass per simulated second — the same
    // proposal -> budget filter -> atomic apply -> ledger path the
    // background thread runs, minus the thread.
    util::WallTimer timer;
    reopt.run_pass();
    segment.optimizer_ms += timer.elapsed_ms();

    // Steady-state sampling point. With reopt_pause quiet windows, that is
    // the end of each cycle's quiet tail (the step just completed was the
    // cycle's last quiet second): demand has been frozen for pause_s, so
    // what remains after the convergence drain below is the optimizer's
    // genuine residual, not churn it has not seen yet. Without quiet
    // windows (custom --workload), fall back to an event-count cadence.
    const bool sample_now =
        (pause_s > 0.0
             ? std::fmod(step_start_s, cycle_s) >= cycle_s - 1.0 - 1e-9
             : segment.events >= next_sample) ||
        segment.events >= events;

    if (sample_now) {
      next_sample += sample_every;
      // Convergence drain: across a real quiet window the background
      // thread would run ~pause_s / interval_ms passes; the simulated
      // clock advances instantly, so emulate them here until a pass
      // applies nothing (or the migration budget runs dry).
      for (int drain = 0; drain < 64; ++drain) {
        timer.reset();
        const std::size_t applied = reopt.run_pass();
        segment.optimizer_ms += timer.elapsed_ms();
        if (applied == 0) break;
      }
      timer.reset();
      const double resolved = portfolio_resolve(cluster, options);
      const double resolve_ms = timer.elapsed_ms();
      segment.resolve_ms += resolve_ms;
      const double live = cluster.total_cost();
      const double gap_pct =
          resolved > 0.0
              ? std::max(0.0, (live - resolved) / resolved * 100.0)
              : 0.0;
      segment.gap_pct.push_back(gap_pct);
      csv.row(workload_spec, segment.events, live, resolved, gap_pct,
              segment.optimizer_ms, segment.resolve_ms);
      // Deep validation at every sample: cluster structure plus the
      // optimizer's own ledger identities. The default abort handler makes
      // any violation a hard bench failure.
      cluster.check_invariants();
      reopt.check_invariants();
    }
  }
  segment.stats = reopt.stats();
  return segment;
}

/// Phase 2: engine-direct soak with auto-attached, validating optimizers
/// racing closed-loop MOVE churn on every session. Returns false on any
/// accounting or invariant failure.
bool engine_soak(std::size_t shards, std::size_t events_total,
                 std::uint64_t seed, const opt::ReoptOptions& reopt_options,
                 double& applied_moves, double& optimizer_passes) {
  service::EngineOptions options;
  options.shards = shards;
  options.threads = shards;
  options.max_queue = 128 * shards;
  options.default_timeout_ms = 120'000.0;
  options.auto_reopt = true;
  options.reopt = reopt_options;
  options.reopt.validate = true;  // bracket every applied plan
  service::Engine engine(options);

  // One session per shard, discovered by probing the stable routing hash.
  std::vector<std::string> names(shards);
  std::size_t covered = 0;
  for (int i = 0; covered < shards; ++i) {
    std::string name = "reopt" + std::to_string(i);
    const std::size_t shard = engine.shard_of(name);
    if (names[shard].empty()) {
      names[shard] = std::move(name);
      ++covered;
    }
  }

  bool ok = true;
  constexpr std::size_t kIot = 60;
  for (const std::string& name : names) {
    const service::ParseResult parsed = service::parse_request(
        "CONFIGURE " + name + " " + std::to_string(kIot) + " 6 seed=" +
        std::to_string(seed) + " timeout_ms=120000");
    std::promise<std::string> configured;
    std::future<std::string> future = configured.get_future();
    engine.submit(*parsed.request, [&configured](std::string response) {
      configured.set_value(std::move(response));
    });
    if (future.get().rfind("OK", 0) != 0) ok = false;
  }
  engine.drain();

  const std::size_t per_driver = std::max<std::size_t>(
      1, events_total / std::max<std::size_t>(1, names.size()));
  std::atomic<std::size_t> responded_ok{0};
  std::atomic<std::size_t> responded_err{0};
  {
    std::vector<std::jthread> drivers;
    drivers.reserve(names.size());
    for (const std::string& name : names) {
      drivers.emplace_back([&, name] {
        constexpr std::size_t kWindow = 16;  // in-flight per driver
        util::Rng rng(seed * 31 + engine.shard_of(name));
        service::Request move = *service::parse_request(
            "MOVE " + name + " 0 1.0 1.0 timeout_ms=120000").request;
        std::atomic<std::size_t> responded{0};
        std::size_t sent = 0;
        while (sent < per_driver) {
          while (sent - responded.load(std::memory_order_acquire) >=
                 kWindow) {
            std::this_thread::yield();
          }
          move.index = rng.index(kIot);
          move.x = rng.uniform(0.0, 5.0);
          move.y = rng.uniform(0.0, 5.0);
          engine.submit(move, [&responded_ok, &responded_err, &responded](
                                  const std::string& response) {
            (response.rfind("OK", 0) == 0 ? responded_ok : responded_err)
                .fetch_add(1);
            responded.fetch_add(1, std::memory_order_release);
          });
          ++sent;
        }
        while (responded.load(std::memory_order_acquire) < sent) {
          std::this_thread::yield();
        }
      });
    }
    // Accounting invariants are checked live while the optimizer threads
    // race the drain tasks, not just after the dust settles.
    for (int i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      engine.check_invariants();
    }
  }
  engine.drain();

  // Pull the optimizer ledgers out through the wire verb the way an
  // operator would (before shutdown — admission closes after it); the
  // counters feed metrics, not gates, since whether the optimizer wins its
  // try_locks depends on scheduling.
  for (const std::string& name : names) {
    const service::ParseResult parsed =
        service::parse_request("REOPT_STATS " + name);
    std::promise<std::string> answered;
    std::future<std::string> future = answered.get_future();
    engine.submit(*parsed.request, [&answered](std::string response) {
      answered.set_value(std::move(response));
    });
    const std::string line = future.get();
    if (line.rfind("OK", 0) != 0) {
      std::cerr << "REOPT_STATS failed: " << line << "\n";
      ok = false;
      continue;
    }
    const auto field = [&line](const std::string& key) {
      const std::size_t pos = line.find(key + "=");
      if (pos == std::string::npos) return 0.0;
      return std::strtod(line.c_str() + pos + key.size() + 1, nullptr);
    };
    applied_moves += field("applied");
    optimizer_passes += field("passes");
  }
  engine.begin_shutdown();
  engine.drain();

  const std::size_t sent = names.size() * per_driver;
  if (responded_ok.load() != sent || responded_err.load() != 0) {
    std::cerr << "soak accounting: ok=" << responded_ok.load() << " err="
              << responded_err.load() << " sent=" << sent << "\n";
    ok = false;
  }
  const service::EngineCounters counters = engine.counters();
  // CONFIGUREs are counted too, hence >=; the identity itself must hold.
  if (counters.accepted != counters.completed ||
      counters.rejected_overload != 0 || counters.rejected_deadline != 0) {
    std::cerr << "soak ledger: accepted=" << counters.accepted
              << " completed=" << counters.completed
              << " rejected_overload=" << counters.rejected_overload
              << " rejected_deadline=" << counters.rejected_deadline << "\n";
    ok = false;
  }
  try {
    const contracts::ScopedFailureHandler guard(&contracts::throw_handler);
    engine.check_invariants();
  } catch (const std::exception& violation) {
    std::cerr << "soak check_invariants: " << violation.what() << "\n";
    ok = false;
  }

  return ok;
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 100 : 150));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 10));
  const auto events = static_cast<std::size_t>(
      config.flags.get_int("events", config.quick ? 10'000 : 100'000));
  const auto shards = static_cast<std::size_t>(
      config.flags.get_int("shards", 2));
  const auto samples = static_cast<std::size_t>(
      config.flags.get_int("samples", 20));

  // Bench budget: short wall-clock windows so a seconds-scale run spans
  // many of them — the ledger's roll/charge/reject paths all get exercised
  // without starving convergence the way the daemon's 10 s default would.
  opt::ReoptOptions reopt_options;
  reopt_options.budget.max_moves_per_window = static_cast<std::size_t>(
      config.flags.get_int("reopt-moves", 128));
  reopt_options.budget.max_device_moves_per_window = static_cast<std::size_t>(
      config.flags.get_int("reopt-device-moves", 4));
  reopt_options.budget.window_s =
      config.flags.get_double("reopt-window-s", 0.005);
  reopt_options.interval_ms = 1.0;
  reopt_options.seed = config.base_seed;

  bench::BenchReport report(config, "m5_reopt");
  bench::CsvFile csv(config, "m5_reopt");
  csv.writer().header({"provider", "event", "live_cost", "resolve_cost",
                       "gap_pct", "optimizer_ms", "resolve_ms"});

  // ---- Phase 1: convergence vs periodic re-solve ---------------------------
  // reopt_pause carves quiet windows into both streams (5 s active / 2 s
  // quiet at dt=1): convergence is measured against demand the optimizer
  // had a deterministic chance to catch up with.
  constexpr double kActiveS = 5.0;
  constexpr double kPauseS = 2.0;
  const std::string quiet = ",reopt_pause=2,reopt_active_s=5";
  const std::string specs[] = {config.workload_or("diurnal" + quiet),
                               "hotspot_adversary" + quiet};
  const AlgorithmOptions solve_options = bench::experiment_options(config.quick);

  double steady_gap_sum = 0.0;
  std::size_t steady_gap_count = 0;
  double optimizer_ms = 0.0;
  double resolve_ms = 0.0;
  std::size_t resolves = 0;
  opt::ReoptStats totals;
  util::ConsoleTable table({"provider", "events", "steady gap (%)",
                            "proposed", "applied", "rejected",
                            "optimizer (ms)", "resolve (ms)"});
  for (const std::string& spec : specs) {
    // A custom --workload without the quiet suffix falls back to
    // event-count sampling inside run_segment (pause_s = 0).
    const bool has_quiet = spec.find(quiet) != std::string::npos;
    const SegmentResult segment = run_segment(
        spec, iot, edge, events / 2, samples, has_quiet ? kActiveS : 0.0,
        has_quiet ? kPauseS : 0.0, config.base_seed, reopt_options,
        solve_options, csv.writer());
    // Steady state: the second half of the segment's samples — the early
    // samples measure the transient the optimizer is still draining.
    const std::size_t half = segment.gap_pct.size() / 2;
    double segment_gap = 0.0;
    for (std::size_t i = half; i < segment.gap_pct.size(); ++i) {
      segment_gap += segment.gap_pct[i];
      steady_gap_sum += segment.gap_pct[i];
      ++steady_gap_count;
    }
    const std::size_t steady_n = segment.gap_pct.size() - half;
    optimizer_ms += segment.optimizer_ms;
    resolve_ms += segment.resolve_ms;
    resolves += segment.gap_pct.size();
    totals.passes += segment.stats.passes;
    totals.moves_proposed += segment.stats.moves_proposed;
    totals.moves_applied += segment.stats.moves_applied;
    table.add_row({spec.substr(0, spec.find(',')),
                   std::to_string(segment.events),
                   util::format_double(
                       steady_n > 0
                           ? segment_gap / static_cast<double>(steady_n)
                           : 0.0, 2),
                   std::to_string(segment.stats.moves_proposed),
                   std::to_string(segment.stats.moves_applied),
                   std::to_string(segment.stats.rejected()),
                   util::format_double(segment.optimizer_ms, 1),
                   util::format_double(segment.resolve_ms, 1)});
  }

  const double reopt_gap_pct =
      steady_gap_count > 0
          ? steady_gap_sum / static_cast<double>(steady_gap_count)
          : 0.0;
  // Per-activation CPU: what one optimizer pass costs vs what one
  // from-scratch re-solve costs. The alternative to the re-optimizer is
  // re-solving at the same cadence, so equal-cadence CPU is the fair
  // comparison — totals would just compare how often each side happened to
  // run in this bench.
  const double pass_ms =
      totals.passes > 0 ? optimizer_ms / static_cast<double>(totals.passes)
                        : 0.0;
  const double per_resolve_ms =
      resolves > 0 ? resolve_ms / static_cast<double>(resolves) : 0.0;
  const double reopt_cpu_ratio =
      per_resolve_ms > 0.0 ? pass_ms / per_resolve_ms : 0.0;
  std::cout << table.to_string(
      "M5 — budgeted re-optimizer vs from-scratch portfolio re-solve (" +
      std::to_string(iot) + " base devices, " + std::to_string(edge) +
      " servers):");
  std::cout << "\nSteady-state gap " << util::format_double(reopt_gap_pct, 2)
            << "% of re-solve; optimizer pass CPU "
            << util::format_double(reopt_cpu_ratio * 100.0, 1)
            << "% of a re-solve (" << util::format_double(pass_ms * 1e3, 1)
            << " us vs " << util::format_double(per_resolve_ms * 1e3, 1)
            << " us)\n";

  // ---- Gate 1: steady-state cost within 5% of the re-solve. ----------------
  const bool gap_ok = reopt_gap_pct <= 5.0;
  if (!gap_ok) {
    std::cerr << "steady-state gap " << reopt_gap_pct
              << "% exceeds the 5% ceiling\n";
  }
  report.gate("reopt_gap", gap_ok);

  // ---- Gate 2: < 20% of the re-solve CPU (timing gates are meaningless
  // under sanitizers, so --quick only reports the ratio). --------------------
  if (!config.quick) {
    const bool cpu_ok = reopt_cpu_ratio < 0.2;
    if (!cpu_ok) {
      std::cerr << "optimizer CPU ratio " << reopt_cpu_ratio
                << " is above the 0.2 ceiling (" << pass_ms << " ms/pass vs "
                << per_resolve_ms << " ms/re-solve)\n";
    }
    report.gate("reopt_cpu", cpu_ok);
  }

  // ---- Phase 2: concurrent engine soak -------------------------------------
  double soak_applied = 0.0;
  double soak_passes = 0.0;
  const bool soak_ok =
      engine_soak(std::max<std::size_t>(shards, 2), events,
                  config.base_seed, reopt_options, soak_applied,
                  soak_passes);
  std::cout << "\nEngine soak (" << std::max<std::size_t>(shards, 2)
            << " shards, " << events << " events): optimizer passes "
            << util::format_double(soak_passes, 0) << ", applied moves "
            << util::format_double(soak_applied, 0)
            << (soak_ok ? ", clean accounting + invariants\n" : ", FAILED\n");
  report.gate("soak_accounting", soak_ok);
  // validate=true bracketed every applied plan with check_invariants under
  // the default abort handler — reaching this line with soak_ok means zero
  // violations were observed across the soak.
  report.gate("reopt_invariants", soak_ok);

  report.metric("events", static_cast<double>(events));
  report.metric("reopt_gap_pct", reopt_gap_pct);
  report.metric("reopt_cpu_ratio", reopt_cpu_ratio);
  report.metric("optimizer_ms", optimizer_ms);
  report.metric("resolve_ms", resolve_ms);
  report.metric("passes", static_cast<double>(totals.passes));
  report.metric("moves_proposed", static_cast<double>(totals.moves_proposed));
  report.metric("moves_applied", static_cast<double>(totals.moves_applied));
  report.metric("soak_passes", soak_passes);
  report.metric("soak_applied", soak_applied);
  report.metric("shards", static_cast<double>(std::max<std::size_t>(shards, 2)));
  report.write();

  const bool ok = report.all_gates_passed();
  if (ok) {
    std::cout << "All re-optimizer gates passed: steady-state gap "
              << util::format_double(reopt_gap_pct, 2) << "% <= 5%, "
              << (config.quick ? "CPU gate skipped (--quick), "
                               : "optimizer CPU < 20% of re-solve, ")
              << "clean concurrent soak.\n";
  }
  config.check_unused();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
