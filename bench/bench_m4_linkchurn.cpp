// M4: backbone link churn vs the incremental delay engine.
//
// Drives provider-generated link events (correlated regional outages plus
// background reweights by default — fail when live, restore when failed,
// reweight live links) against an IncrementalDelayEngine + DelayMatrixCache
// and HARD-GATES the three properties the engine exists for:
//   1. Exactness: at sampled epochs the engine's per-server distances are
//      bit-identical to a from-scratch dijkstra_fan_out on the same graph.
//   2. Speed: the median incremental update (engine + cache refresh) beats
//      the median full recompute (fan-out + rebuilding every device row) by
//      at least 10x. Skipped under --quick: sanitizers skew timings.
//   3. Flat memory: engine + cache scratch stays flat across the whole run
//      (100k link events by default) — repairs must reuse epoch-marked
//      scratch, not allocate per event.
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
// The event stream comes from a pluggable WorkloadProvider
// (--workload=NAME[,k=v...]); the default spec densifies
// regional_link_failure so the target event count arrives in a reasonable
// number of simulated seconds. Providers guarantee link-op legality (fail
// only live, restore only failed), so any spec that emits link events is a
// valid driver. Non-link events are ignored — this bench stresses the delay
// engine, not the cluster.
//
//   ./bench_m4_linkchurn [--events=100000] [--iot=200] [--edge=10]
//                        [--workload=SPEC] [--seed=...]
//   --quick shrinks to 10k events and drops the timing gate.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"
#include "topology/incremental/cache.hpp"
#include "topology/shortest_paths.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

constexpr const char* kDefaultWorkload =
    "regional_link_failure,outage_every_s=4,outage_s=2,radius_km=3,"
    "reweight_rate=10";

/// One full recompute, the baseline the engine replaces: fan-out Dijkstra
/// from every server plus rewriting every device row. Returns the trees so
/// the equivalence gate can reuse them.
std::vector<topo::ShortestPathTree> full_recompute(
    const topo::NetworkTopology& net, std::vector<std::vector<double>>& rows) {
  std::vector<topo::ShortestPathTree> trees =
      topo::dijkstra_fan_out(net.graph, net.edge_nodes);
  for (std::size_t i = 0; i < net.iot_nodes.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      rows[i][j] = trees[j].distance_ms[net.iot_nodes[i]];
    }
  }
  return trees;
}

bool trees_match(const topo::incr::IncrementalDelayEngine& engine,
                 const std::vector<topo::ShortestPathTree>& reference,
                 std::size_t node_count) {
  for (std::size_t j = 0; j < reference.size(); ++j) {
    for (topo::NodeId n = 0; n < node_count; ++n) {
      const double expected = reference[j].distance_ms[n];
      const double actual = engine.tree(j).distance_ms(n);
      // Bitwise agreement, except both-unreachable compares equal.
      if (actual != expected &&
          !(actual == topo::kUnreachable && expected == topo::kUnreachable)) {
        return false;
      }
    }
  }
  return true;
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 120 : 200));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 10));
  const auto events = static_cast<std::size_t>(
      config.flags.get_int("events", config.quick ? 10'000 : 100'000));
  const std::string workload_spec = config.workload_or(kDefaultWorkload);

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  topo::NetworkTopology net = scenario.network();
  topo::incr::IncrementalDelayEngine engine(net);
  topo::incr::DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_nodes.size(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }

  const workload::ProviderContext ctx =
      bench::provider_context(scenario, config.base_seed);
  auto provider = workload::make_provider(workload_spec, ctx);

  bench::BenchReport report(config, "m4_linkchurn");
  report.set_provider(workload_spec);
  bench::CsvFile csv(config, "m4_linkchurn");
  csv.writer().header({"event", "kind", "inc_us", "scratch_bytes",
                       "dirty_rows"});

  std::vector<double> inc_us;
  inc_us.reserve(events);
  std::vector<double> full_us;
  std::vector<std::vector<double>> reference_rows(
      iot, std::vector<double>(edge, 0.0));
  // ~50 full-recompute samples paired with equivalence checks.
  const std::size_t sample_every = std::max<std::size_t>(1, events / 50);
  std::size_t scratch_early = 0;
  std::size_t scratch_peak = 0;
  std::uint64_t equivalence_checks = 0;
  bool exact = true;
  std::size_t event_count = 0;

  while (event_count < events && exact) {
    for (const workload::Event& event : provider->step(1.0)) {
      if (event_count >= events || !exact) break;
      const char* kind;
      util::WallTimer timer;
      switch (event.kind) {
        case workload::EventKind::kLinkFail: {
          const auto& [u, v] = ctx.links[event.link];
          kind = "fail";
          timer.reset();
          engine.fail_link(u, v);
          break;
        }
        case workload::EventKind::kLinkRestore: {
          const auto& [u, v] = ctx.links[event.link];
          kind = "restore";
          timer.reset();
          engine.restore_link(u, v);
          break;
        }
        case workload::EventKind::kLinkSetLatency: {
          const auto& [u, v] = ctx.links[event.link];
          kind = "reweight";
          timer.reset();
          engine.set_link_latency(u, v, event.latency_ms);
          break;
        }
        default:
          continue;  // device churn is out of scope here
      }
      const std::size_t refreshed = cache.refresh();
      inc_us.push_back(timer.elapsed_ms() * 1e3);
      const std::size_t event_index = event_count++;

      const std::size_t scratch = engine.scratch_bytes();
      scratch_peak = std::max(scratch_peak, scratch);
      // "Early" is the peak over the first quarter: regional outages size
      // the scratch arenas to the affected region, so the baseline must
      // have seen a representative set of epicenters, not just the first
      // few events.
      if (event_index < events / 4) {
        scratch_early = std::max(scratch_early, scratch);
      }

      if (event_index % sample_every == 0 || event_index + 1 == events) {
        csv.writer().row(event_index, kind, inc_us.back(), scratch,
                         refreshed);
        timer.reset();
        const auto reference = full_recompute(net, reference_rows);
        full_us.push_back(timer.elapsed_ms() * 1e3);
        ++equivalence_checks;
        if (!trees_match(engine, reference, net.graph.node_count())) {
          std::cerr << "engine diverged from full recompute at event "
                    << event_index << " (" << kind << ")\n";
          exact = false;
          break;
        }
        for (std::size_t i = 0; i < iot; ++i) {
          if (cache.row(i) != reference_rows[i]) {
            std::cerr << "cached delay row " << i << " diverged at event "
                      << event_index << "\n";
            exact = false;
            break;
          }
        }
        if (!exact) break;
        // Deep validators at the same sampled epochs: dirty-set bookkeeping,
        // row-epoch coherence, and dirty-set soundness of the cache. Spot
        // checks are 0 here — the gate above already compared every tree
        // against the fresh fan-out. The default abort handler makes any
        // violation a hard bench failure.
        engine.check_invariants(/*spot_check_trees=*/0);
        cache.check_invariants();
      }
    }
  }
  report.gate("bit_exact_vs_recompute", exact);

  const double inc_median = metrics::percentile(inc_us, 0.5);
  const double full_median = metrics::percentile(full_us, 0.5);
  const double speedup = inc_median > 0.0 ? full_median / inc_median : 0.0;
  const auto& stats = engine.stats();

  util::ConsoleTable table({"metric", "value"});
  table.add_row({"link events", std::to_string(stats.link_updates)});
  table.add_row({"workload", workload_spec});
  table.add_row({"median incremental (us)",
                 util::format_double(inc_median, 2)});
  table.add_row({"median full recompute (us)",
                 util::format_double(full_median, 2)});
  table.add_row({"speedup", util::format_double(speedup, 1) + "x"});
  table.add_row({"nodes affected",
                 std::to_string(stats.nodes_affected)});
  table.add_row({"node visits saved", std::to_string(stats.nodes_saved)});
  table.add_row({"rows refreshed",
                 std::to_string(cache.rows_refreshed())});
  table.add_row({"rows saved", std::to_string(cache.rows_saved())});
  table.add_row({"scratch bytes (early/peak)",
                 std::to_string(scratch_early) + " / " +
                     std::to_string(scratch_peak)});
  table.add_row({"equivalence checks", std::to_string(equivalence_checks)});
  std::cout << table.to_string(
      "M4 — incremental engine vs full recompute (" +
      std::to_string(event_count) + " link events, " + std::to_string(iot) +
      " devices, " + std::to_string(edge) + " servers):");

  // ---- Gate 2: >=10x median speedup (timing gates are meaningless under
  // sanitizers, so --quick only reports the number). --------------------------
  if (!config.quick) {
    const bool fast_enough = speedup >= 10.0;
    if (!fast_enough) {
      std::cerr << "incremental speedup " << speedup
                << "x is below the 10x floor (" << inc_median << " us vs "
                << full_median << " us)\n";
    }
    report.gate("incremental_speedup_10x", fast_enough);
  }

  // ---- Gate 3: flat scratch memory across the run. -------------------------
  // Node count never changes during link churn, so scratch must not grow
  // beyond its first-quarter peak (small slack for lazily-grown heap
  // storage).
  const bool scratch_flat =
      !(scratch_early > 0 &&
        scratch_peak > scratch_early + scratch_early / 4);
  if (!scratch_flat) {
    std::cerr << "engine scratch grew from " << scratch_early << " to "
              << scratch_peak << " bytes during link churn\n";
  }
  report.gate("flat_scratch", scratch_flat);

  report.metric("events", static_cast<double>(event_count));
  report.metric("median_incremental_us", inc_median);
  report.metric("median_full_recompute_us", full_median);
  report.metric("speedup", speedup);
  report.metric("p50_us", inc_median);
  report.metric("p99_us", metrics::percentile(inc_us, 0.99));
  report.metric("scratch_early_bytes", static_cast<double>(scratch_early));
  report.metric("scratch_peak_bytes", static_cast<double>(scratch_peak));
  report.metric("equivalence_checks",
                static_cast<double>(equivalence_checks));
  report.write();

  const bool ok = report.all_gates_passed();
  if (ok) {
    std::cout << "All link-churn gates passed: bit-exact vs recompute, "
              << (config.quick ? "timing gate skipped (--quick), "
                               : "10x+ median speedup, ")
              << "flat scratch memory.\n";
  }
  config.check_unused();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
