// M4: backbone link churn vs the incremental delay engine.
//
// Flaps a small set of backbone links (5% by default — fail when live,
// restore when failed, occasionally reweight) against an
// IncrementalDelayEngine + DelayMatrixCache and HARD-GATES the three
// properties the engine exists for:
//   1. Exactness: at sampled epochs the engine's per-server distances are
//      bit-identical to a from-scratch dijkstra_fan_out on the same graph.
//   2. Speed: the median incremental update (engine + cache refresh) beats
//      the median full recompute (fan-out + rebuilding every device row) by
//      at least 10x. Skipped under --quick: sanitizers skew timings.
//   3. Flat memory: engine + cache scratch stays flat across the whole run
//      (100k link events by default) — repairs must reuse epoch-marked
//      scratch, not allocate per event.
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
//   ./bench_m4_linkchurn [--events=100000] [--iot=200] [--edge=10]
//                        [--flap=0.05] [--seed=...]
//   --quick shrinks to 10k events and drops the timing gate.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"
#include "topology/failures.hpp"
#include "topology/incremental/cache.hpp"
#include "topology/shortest_paths.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

/// One full recompute, the baseline the engine replaces: fan-out Dijkstra
/// from every server plus rewriting every device row. Returns the trees so
/// the equivalence gate can reuse them.
std::vector<topo::ShortestPathTree> full_recompute(
    const topo::NetworkTopology& net, std::vector<std::vector<double>>& rows) {
  std::vector<topo::ShortestPathTree> trees =
      topo::dijkstra_fan_out(net.graph, net.edge_nodes);
  for (std::size_t i = 0; i < net.iot_nodes.size(); ++i) {
    for (std::size_t j = 0; j < trees.size(); ++j) {
      rows[i][j] = trees[j].distance_ms[net.iot_nodes[i]];
    }
  }
  return trees;
}

bool trees_match(const topo::incr::IncrementalDelayEngine& engine,
                 const std::vector<topo::ShortestPathTree>& reference,
                 std::size_t node_count) {
  for (std::size_t j = 0; j < reference.size(); ++j) {
    for (topo::NodeId n = 0; n < node_count; ++n) {
      const double expected = reference[j].distance_ms[n];
      const double actual = engine.tree(j).distance_ms(n);
      // Bitwise agreement, except both-unreachable compares equal.
      if (actual != expected &&
          !(actual == topo::kUnreachable && expected == topo::kUnreachable)) {
        return false;
      }
    }
  }
  return true;
}

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const auto config = bench::BenchConfig::from_flags(flags);
  const auto iot = static_cast<std::size_t>(
      flags.get_int("iot", config.quick ? 120 : 200));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 10));
  const auto events = static_cast<std::size_t>(
      flags.get_int("events", config.quick ? 10'000 : 100'000));
  const double flap_fraction = flags.get_double("flap", 0.05);

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  topo::NetworkTopology net = scenario.network();
  topo::incr::IncrementalDelayEngine engine(net);
  topo::incr::DelayMatrixCache cache(engine);
  for (std::size_t i = 0; i < net.iot_nodes.size(); ++i) {
    cache.bind_row(i, net.iot_nodes[i]);
  }

  // The flap set: a fixed random sample of the backbone. Links toggle
  // between live and failed; a third of the toggles reweight instead.
  const auto backbone = topo::backbone_links(net);
  util::Rng rng(config.base_seed * 11 + 3);
  std::vector<std::size_t> order(backbone.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t flap_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(flap_fraction *
                                  static_cast<double>(backbone.size())));
  std::vector<topo::LinkEndpoints> flapping;
  std::vector<bool> failed(flap_count, false);
  for (std::size_t i = 0; i < flap_count; ++i) {
    flapping.push_back(backbone[order[i]]);
  }

  bench::CsvFile csv(flags, "m4_linkchurn");
  csv.writer().header({"event", "kind", "inc_us", "scratch_bytes",
                       "dirty_rows"});

  std::vector<double> inc_us;
  inc_us.reserve(events);
  std::vector<double> full_us;
  std::vector<std::vector<double>> reference_rows(
      iot, std::vector<double>(edge, 0.0));
  // ~50 full-recompute samples paired with equivalence checks.
  const std::size_t sample_every = std::max<std::size_t>(1, events / 50);
  std::size_t scratch_early = 0;
  std::size_t scratch_peak = 0;
  std::uint64_t equivalence_checks = 0;
  bool ok = true;

  for (std::size_t event = 0; event < events; ++event) {
    const std::size_t pick = rng.index(flapping.size());
    const auto [u, v] = flapping[pick];
    const char* kind;
    util::WallTimer timer;
    if (failed[pick]) {
      kind = "restore";
      timer.reset();
      engine.restore_link(u, v);
      failed[pick] = false;
    } else if (rng.bernoulli(1.0 / 3.0)) {
      kind = "reweight";
      const double latency =
          net.graph.edge_props(u, v)->latency_ms * rng.uniform(0.5, 2.0);
      timer.reset();
      engine.set_link_latency(u, v, latency);
    } else {
      kind = "fail";
      timer.reset();
      engine.fail_link(u, v);
      failed[pick] = true;
    }
    const std::size_t refreshed = cache.refresh();
    inc_us.push_back(timer.elapsed_ms() * 1e3);

    const std::size_t scratch = engine.scratch_bytes();
    scratch_peak = std::max(scratch_peak, scratch);
    if (event == events / 100) scratch_early = scratch;

    if (event % sample_every == 0 || event + 1 == events) {
      csv.writer().row(event, kind, inc_us.back(), scratch, refreshed);
      timer.reset();
      const auto reference = full_recompute(net, reference_rows);
      full_us.push_back(timer.elapsed_ms() * 1e3);
      ++equivalence_checks;
      if (!trees_match(engine, reference, net.graph.node_count())) {
        std::cerr << "GATE FAILED: engine diverged from full recompute at "
                  << "event " << event << " (" << kind << " " << u << "-" << v
                  << ")\n";
        ok = false;
        break;
      }
      for (std::size_t i = 0; i < iot; ++i) {
        if (cache.row(i) != reference_rows[i]) {
          std::cerr << "GATE FAILED: cached delay row " << i
                    << " diverged at event " << event << "\n";
          ok = false;
          break;
        }
      }
      if (!ok) break;
      // Deep validators at the same sampled epochs: dirty-set bookkeeping,
      // row-epoch coherence, and dirty-set soundness of the cache. Spot
      // checks are 0 here — the gate above already compared every tree
      // against the fresh fan-out. The default abort handler makes any
      // violation a hard bench failure.
      engine.check_invariants(/*spot_check_trees=*/0);
      cache.check_invariants();
    }
  }

  const double inc_median = metrics::percentile(inc_us, 0.5);
  const double full_median = metrics::percentile(full_us, 0.5);
  const double speedup = inc_median > 0.0 ? full_median / inc_median : 0.0;
  const auto& stats = engine.stats();

  util::ConsoleTable table({"metric", "value"});
  table.add_row({"link events", std::to_string(stats.link_updates)});
  table.add_row({"flapping links",
                 std::to_string(flap_count) + " / " +
                     std::to_string(backbone.size())});
  table.add_row({"median incremental (us)",
                 util::format_double(inc_median, 2)});
  table.add_row({"median full recompute (us)",
                 util::format_double(full_median, 2)});
  table.add_row({"speedup", util::format_double(speedup, 1) + "x"});
  table.add_row({"nodes affected",
                 std::to_string(stats.nodes_affected)});
  table.add_row({"node visits saved", std::to_string(stats.nodes_saved)});
  table.add_row({"rows refreshed",
                 std::to_string(cache.rows_refreshed())});
  table.add_row({"rows saved", std::to_string(cache.rows_saved())});
  table.add_row({"scratch bytes (early/peak)",
                 std::to_string(scratch_early) + " / " +
                     std::to_string(scratch_peak)});
  table.add_row({"equivalence checks", std::to_string(equivalence_checks)});
  std::cout << table.to_string(
      "M4 — incremental engine vs full recompute (" +
      std::to_string(events) + " link events, " + std::to_string(iot) +
      " devices, " + std::to_string(edge) + " servers):");

  // ---- Gate 2: >=10x median speedup (timing gates are meaningless under
  // sanitizers, so --quick only reports the number). --------------------------
  if (!config.quick && speedup < 10.0) {
    std::cerr << "GATE FAILED: incremental speedup " << speedup
              << "x is below the 10x floor (" << inc_median << " us vs "
              << full_median << " us)\n";
    ok = false;
  }

  // ---- Gate 3: flat scratch memory across the run. -------------------------
  // Node count never changes during link churn, so scratch must not grow
  // beyond its early size (small slack for lazily-grown heap storage).
  if (scratch_early > 0 &&
      scratch_peak > scratch_early + scratch_early / 4) {
    std::cerr << "GATE FAILED: engine scratch grew from " << scratch_early
              << " to " << scratch_peak << " bytes during link churn\n";
    ok = false;
  }

  if (ok) {
    std::cout << "All link-churn gates passed: bit-exact vs recompute, "
              << (config.quick ? "timing gate skipped (--quick), "
                               : "10x+ median speedup, ")
              << "flat scratch memory.\n";
  }
  bench::check_unused_flags(flags);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
