// A3: google-benchmark microbenchmarks of the library's hot substrates —
// Dijkstra, delay-matrix construction, static evaluation, incremental moves,
// min-cost flow, one RL training episode, and a short packet simulation.
#include <benchmark/benchmark.h>

#include "core/tacc.hpp"
#include "flow/min_cost_flow.hpp"
#include "gap/testgen.hpp"
#include "rl/environment.hpp"
#include "topology/shortest_paths.hpp"

namespace {

using namespace tacc;

const topo::LinkDelayModel kDelay;

topo::GeoGraph make_waxman(std::size_t nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  topo::GeneratorParams params;
  params.node_count = nodes;
  return topo::generate(topo::TopologyFamily::kWaxman, params, kDelay, rng);
}

void BM_Dijkstra(benchmark::State& state) {
  const auto geo = make_waxman(static_cast<std::size_t>(state.range(0)), 1);
  topo::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::dijkstra(geo.graph, source));
    source = static_cast<topo::NodeId>((source + 1) %
                                       geo.graph.node_count());
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(400)->Arg(1600);

void BM_DelayMatrix(benchmark::State& state) {
  const Scenario scenario = Scenario::smart_city(
      static_cast<std::size_t>(state.range(0)), 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::compute_delay_matrix(scenario.network()));
  }
}
BENCHMARK(BM_DelayMatrix)->Arg(200)->Arg(1000);

void BM_Evaluate(benchmark::State& state) {
  util::Rng rng(3);
  gap::RandomInstanceParams params;
  params.device_count = static_cast<std::size_t>(state.range(0));
  params.server_count = 20;
  const gap::Instance inst = gap::random_instance(params, rng);
  gap::Assignment assignment(inst.device_count());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<std::int32_t>(i % 20);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gap::evaluate(inst, assignment));
  }
}
BENCHMARK(BM_Evaluate)->Arg(500)->Arg(5000);

void BM_IncrementalMove(benchmark::State& state) {
  util::Rng rng(4);
  gap::RandomInstanceParams params;
  params.device_count = 1000;
  params.server_count = 20;
  const gap::Instance inst = gap::random_instance(params, rng);
  gap::Assignment assignment(inst.device_count());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<std::int32_t>(i % 20);
  }
  gap::IncrementalEvaluator eval(inst, assignment);
  std::size_t device = 0;
  for (auto _ : state) {
    eval.apply_move(device, (device + 7) % 20);
    benchmark::DoNotOptimize(eval.total_cost());
    device = (device + 1) % 1000;
  }
}
BENCHMARK(BM_IncrementalMove);

void BM_MinCostFlow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 20;
  util::Rng rng(5);
  gap::RandomInstanceParams params;
  params.device_count = n;
  params.server_count = m;
  const gap::Instance inst = gap::random_instance(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solvers::compute_lower_bounds(inst));
  }
}
BENCHMARK(BM_MinCostFlow)->Arg(200)->Arg(1000);

void BM_RlEpisode(benchmark::State& state) {
  util::Rng rng(6);
  gap::RandomInstanceParams params;
  params.device_count = static_cast<std::size_t>(state.range(0));
  params.server_count = 20;
  const gap::Instance inst = gap::random_instance(params, rng);
  rl::AssignmentEnv env(inst, {}, 1);
  for (auto _ : state) {
    env.reset();
    double reward = 0.0;
    while (!env.done()) reward += env.step(0);
    benchmark::DoNotOptimize(reward);
  }
}
BENCHMARK(BM_RlEpisode)->Arg(500)->Arg(2000);

void BM_Simulation(benchmark::State& state) {
  const Scenario scenario = Scenario::smart_city(100, 8, 7);
  AlgorithmOptions options;
  const auto conf = ClusterConfigurator(scenario).configure(
      {Algorithm::kGreedyBestFit, options});
  sim::SimParams params;
  params.duration_s = 1.0;
  params.warmup_s = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(), params));
  }
}
BENCHMARK(BM_Simulation);

}  // namespace

BENCHMARK_MAIN();
