// F5 (reconstructed): CDF of realized per-message delay under packet-level
// simulation at the default configuration — the tail-latency figure.
#include "bench/bench_common.hpp"
#include "metrics/histogram.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));
  const double duration_s =
      config.flags.get_double("duration", config.quick ? 8.0 : 20.0);

  bench::CsvFile csv(config, "f5_delay_cdf");
  csv.writer().header({"algorithm", "delay_ms", "cdf"});

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  const ClusterConfigurator configurator(scenario);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kQLearning,
      Algorithm::kUcbRollout};

  util::ConsoleTable table({"algorithm", "mean (ms)", "p50", "p95", "p99",
                            "max", "messages"});
  for (Algorithm algorithm : algorithms) {
    AlgorithmOptions options = bench::experiment_options(config.quick);
    options.apply_seed(config.base_seed);
    const ClusterConfiguration conf =
        configurator.configure({algorithm, options});
    sim::SimParams sim_params;
    sim_params.duration_s = duration_s;
    sim_params.warmup_s = duration_s / 10.0;
    sim_params.seed = config.base_seed;
    const sim::SimResult sim = sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(),
        sim_params);

    // Thinned CDF (≤ 200 points per algorithm) for plotting.
    const auto cdf = metrics::empirical_cdf(sim.delay_ms.values());
    const std::size_t stride = std::max<std::size_t>(1, cdf.size() / 200);
    for (std::size_t k = 0; k < cdf.size(); k += stride) {
      csv.writer().row(to_string(algorithm), cdf[k].x, cdf[k].fraction);
    }
    if (!cdf.empty()) {
      csv.writer().row(to_string(algorithm), cdf.back().x,
                       cdf.back().fraction);
    }

    table.add_row({std::string(to_string(algorithm)),
                   util::format_double(sim.mean_delay_ms(), 2),
                   util::format_double(sim.delay_ms.percentile(0.50), 2),
                   util::format_double(sim.delay_ms.percentile(0.95), 2),
                   util::format_double(sim.p99_delay_ms(), 2),
                   util::format_double(sim.delay_ms.stats().max(), 2),
                   std::to_string(sim.messages_measured)});
  }
  std::cout << table.to_string(
                   "F5 — simulated delay distribution (n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   ", " + util::format_double(duration_s, 0) + "s):")
            << "\nExpected shape: the RL configuration's CDF sits left of "
               "the baselines,\nwith the gap largest in the tail (p99); "
               "oblivious nearest explodes (overloaded queues).\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
