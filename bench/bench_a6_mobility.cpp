// A6 (extension): device mobility vs reconfiguration policy. Devices follow
// a mobility workload provider (random-waypoint trace by default); three
// handover policies are compared over the same event stream:
//   pinned      — devices keep their original server (static assignment)
//   handover    — each mover is reassigned to its cheapest feasible server
//   handover+rb — handover plus a bounded rebalance pass per epoch
//
// One provider instance drives all three policies, so every policy sees the
// byte-identical move sequence (--workload=SPEC overrides the trace, e.g.
// hotspot_adversary to measure policies under adversarial drift).
#include <memory>

#include "bench/bench_common.hpp"
#include "core/dynamic.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 100 : 200));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 10));
  const auto epochs = static_cast<std::size_t>(
      config.flags.get_int("epochs", config.quick ? 6 : 15));
  const double epoch_s = config.flags.get_double("epoch_s", 60.0);
  const std::string workload_spec =
      config.workload_or("mobility_trace,mobile_fraction=0.6");

  bench::BenchReport report(config, "a6_mobility");
  report.set_provider(workload_spec);
  bench::CsvFile csv(config, "a6_mobility");
  csv.writer().header({"epoch", "policy", "avg_delay_ms", "max_util",
                       "moves"});

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  AlgorithmOptions options = bench::experiment_options(config.quick);
  options.apply_seed(config.base_seed);

  struct Policy {
    const char* name;
    // Heap-allocated: DynamicCluster is pinned to one address (its delay
    // engine points into its own topology copy).
    std::unique_ptr<DynamicCluster> cluster;
    std::vector<std::size_t> ids;
    bool handover;
    bool rebalance;
  };
  std::vector<Policy> policies;
  for (const auto& [name, handover, rebalance] :
       {std::tuple{"pinned", false, false},
        std::tuple{"handover", true, false},
        std::tuple{"handover+rebalance", true, true}}) {
    Policy policy{name,
                  std::make_unique<DynamicCluster>(
                      scenario, Algorithm::kQLearning, options),
                  std::vector<std::size_t>(iot),
                  handover,
                  rebalance};
    for (std::size_t i = 0; i < iot; ++i) policy.ids[i] = i;
    policies.push_back(std::move(policy));
  }

  auto provider = workload::make_provider(
      workload_spec, bench::provider_context(scenario, config.base_seed));

  util::ConsoleTable table(
      {"epoch", "policy", "avg delay (ms)", "max util", "moves"});
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    const std::vector<workload::Event> events = provider->step(epoch_s);
    for (Policy& policy : policies) {
      std::size_t moves = 0;
      for (const workload::Event& event : events) {
        if (event.kind != workload::EventKind::kMove) continue;
        policy.ids[event.device] =
            policy.handover
                ? policy.cluster->move(policy.ids[event.device],
                                       event.position)
                      .device_index
                : policy.cluster
                      ->move_pinned(policy.ids[event.device], event.position)
                      .device_index;
      }
      if (policy.rebalance) moves = policy.cluster->rebalance(64);
      csv.writer().row(epoch, policy.name, policy.cluster->avg_delay_ms(),
                       policy.cluster->max_utilization(), moves);
      if (epoch == 1 || epoch == epochs || epoch % 5 == 0) {
        table.add_row({std::to_string(epoch), policy.name,
                       util::format_double(policy.cluster->avg_delay_ms(), 2),
                       util::format_double(
                           policy.cluster->max_utilization(), 2),
                       std::to_string(moves)});
      }
      if (epoch == epochs) {
        report.metric(std::string(policy.name == std::string("handover+rebalance")
                                      ? "final_delay_ms_handover_rb"
                                      : std::string("final_delay_ms_") +
                                            policy.name),
                      policy.cluster->avg_delay_ms());
      }
    }
  }
  report.write();
  std::cout << table.to_string(
                   "A6 — mobility (provider " + workload_spec + ", " +
                   std::to_string(epochs) + " epochs x " +
                   util::format_double(epoch_s, 0) + "s):")
            << "\nExpected shape: pinned delay drifts upward epoch over "
               "epoch; handover keeps\nit near the initial level; rebalance "
               "adds a further small improvement.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
