// F4 (reconstructed): RL learning curves — episode reward rising to a
// plateau and the best-so-far objective monotonically improving, on three
// topology families.
#include "bench/bench_common.hpp"
#include "rl/qlearning.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 150 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));
  const auto episodes = static_cast<std::size_t>(
      config.flags.get_int("episodes", config.quick ? 200 : 600));

  bench::CsvFile csv(config, "f4_convergence");
  csv.writer().header({"scenario", "variant", "episode", "total_reward",
                       "episode_cost", "best_cost", "epsilon", "feasible"});

  struct Case {
    const char* name;
    Scenario scenario;
  };
  const std::vector<Case> cases = {
      {"smart-city", Scenario::smart_city(iot, edge, config.base_seed)},
      {"factory", Scenario::factory(iot, edge, config.base_seed)},
      {"campus", Scenario::campus(iot, edge, config.base_seed)},
  };

  util::ConsoleTable table({"scenario", "variant", "reward (early)", "reward (late)",
                            "episode cost (early)", "episode cost (late)",
                            "feasible"});
  for (const Case& c : cases) {
    for (rl::TdVariant variant :
         {rl::TdVariant::kQLearning, rl::TdVariant::kSarsa}) {
      const char* variant_name =
          variant == rl::TdVariant::kQLearning ? "q-learning" : "sarsa";
      rl::RlOptions options;
      options.episodes = episodes;
      options.seed = config.base_seed;
      options.polish = false;   // show the raw learning signal
      options.epsilon0 = 1.0;   // start fully exploratory so the curve is
                                // visible from a cold start
      const rl::TrainResult result =
          rl::train(c.scenario.instance(), options, variant);

      for (const rl::EpisodeStats& e : result.trace) {
        // Thin the CSV: every 5th episode plus the first/last.
        if (e.episode % 5 != 0 && e.episode != episodes - 1) continue;
        csv.writer().row(c.name, variant_name, e.episode, e.total_reward,
                         e.episode_cost, e.best_cost_so_far, e.epsilon,
                         e.feasible ? 1 : 0);
      }
      // Mean episode cost over the first and last 10% of training — the
      // visible convergence signal.
      const std::size_t window = std::max<std::size_t>(1, episodes / 10);
      metrics::RunningStats early_cost, late_cost, early_reward, late_reward;
      for (std::size_t e = 0; e < window; ++e) {
        early_cost.add(result.trace[e].episode_cost);
        early_reward.add(result.trace[e].total_reward);
        late_cost.add(result.trace[result.trace.size() - 1 - e].episode_cost);
        late_reward.add(
            result.trace[result.trace.size() - 1 - e].total_reward);
      }
      table.add_row({c.name, variant_name,
                     util::format_double(early_reward.mean(), 1),
                     util::format_double(late_reward.mean(), 1),
                     util::format_double(early_cost.mean(), 0),
                     util::format_double(late_cost.mean(), 0),
                     result.best_feasible ? "yes" : "NO"});
    }
  }
  std::cout << table.to_string("F4 — RL convergence (polish disabled):")
            << "\nExpected shape: episode reward rises then plateaus as "
               "epsilon decays;\nbest-so-far cost is monotone "
               "non-increasing on every scenario.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
