// T1 (reconstructed): optimality gap versus the exact optimum on small
// instances — the quantitative backing for the abstract's "near-optimal"
// claim. Branch-and-bound provides OPT; each heuristic's gap is
// (cost − OPT) / OPT over feasible runs.
#include <map>

#include "bench/bench_common.hpp"
#include "solvers/flow_based.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  bench::CsvFile csv(config, "t1_optimality_gap");
  csv.writer().header({"n", "m", "seed", "algorithm", "cost", "opt",
                       "gap_pct", "feasible"});

  const std::vector<std::size_t> device_counts =
      config.quick ? std::vector<std::size_t>{8, 12}
                   : std::vector<std::size_t>{8, 10, 12, 14, 16};
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kLocalSearch,
      Algorithm::kFlowRelaxRepair, Algorithm::kQLearning,
      Algorithm::kSarsa,         Algorithm::kUcbRollout};

  std::map<Algorithm, metrics::RunningStats> gaps;
  std::map<Algorithm, std::size_t> infeasible;

  for (std::size_t n : device_counts) {
    for (std::size_t m : {3u, 4u}) {
      for (std::size_t r = 0; r < config.repeats; ++r) {
        const std::uint64_t seed = config.base_seed + r;
        ScenarioParams params;
        params.workload.iot_count = n;
        params.workload.edge_count = m;
        params.workload.load_factor = 0.8;  // tight: greedy must pay
        params.seed = seed;
        const Scenario scenario = Scenario::generate(params);

        AlgorithmOptions options = bench::experiment_options(config.quick);
        options.apply_seed(seed);
        const auto exact =
            make_solver(Algorithm::kBranchAndBound, options)
                ->solve(scenario.instance());
        if (!exact.proven_optimal || !exact.feasible) continue;

        for (Algorithm algorithm : algorithms) {
          const auto result = make_solver(algorithm, options)
                                  ->solve(scenario.instance());
          const double gap_pct =
              (result.total_cost / exact.total_cost - 1.0) * 100.0;
          csv.writer().row(n, m, seed, to_string(algorithm),
                           result.total_cost, exact.total_cost, gap_pct,
                           result.feasible ? 1 : 0);
          if (result.feasible) {
            gaps[algorithm].add(gap_pct);
          } else {
            ++infeasible[algorithm];
          }
        }
      }
    }
  }

  util::ConsoleTable table({"algorithm", "mean gap vs OPT", "max gap",
                            "feasible runs", "infeasible runs"});
  for (Algorithm algorithm : algorithms) {
    const auto& stats = gaps[algorithm];
    table.add_row({std::string(to_string(algorithm)),
                   util::format_double(stats.mean(), 2) + "%",
                   util::format_double(stats.count() ? stats.max() : 0.0, 2) +
                       "%",
                   std::to_string(stats.count()),
                   std::to_string(infeasible[algorithm])});
  }
  std::cout << table.to_string(
      "T1 — optimality gap vs branch-and-bound (small instances, rho=0.8):")
            << "\nExpected shape: RL heuristics within a few percent of OPT;"
               "\ncapacity-oblivious nearest is infeasible on tight "
               "instances.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
