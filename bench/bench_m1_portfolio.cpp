// M1: portfolio runtime measurement — serial vs parallel portfolio solve
// over the comparison set, with a hard bit-identity check between the two.
//
// Reports per-task wall time, queue latency, total wall, and the observed
// speedup (sum of task times / elapsed). On a single-core container the
// speedup hovers near 1; with 4+ cores the portfolio fan-out lands >= 2x.
#include <cmath>

#include "bench/bench_common.hpp"
#include "runtime/portfolio.hpp"

namespace {

using namespace tacc;

/// Two configurations are bit-identical when every assignment entry and the
/// evaluated cost match exactly (no tolerance: determinism is exact).
bool identical(const ClusterConfiguration& a, const ClusterConfiguration& b) {
  return a.assignment() == b.assignment() &&
         a.total_cost() == b.total_cost() && a.feasible() == b.feasible() &&
         a.scenario_fingerprint() == b.scenario_fingerprint();
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 150 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));
  // <= 0 picks the hardware concurrency.
  const auto parallel = static_cast<std::size_t>(
      std::max<std::int64_t>(0, config.flags.get_int("parallel", 0)));

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  const ClusterConfigurator configurator(scenario);

  // One request per comparison algorithm, deterministically seeded the same
  // way in both runs (run_seeded derives per-task seeds from base_seed).
  std::vector<ConfigureRequest> requests;
  for (Algorithm algorithm : comparison_algorithms()) {
    ConfigureRequest request;
    request.algorithm = algorithm;
    request.options = bench::experiment_options(config.quick);
    requests.push_back(std::move(request));
  }

  runtime::PortfolioRunner serial(1);
  const PortfolioOutcome serial_out =
      serial.run_seeded(configurator, requests, config.base_seed);

  runtime::PortfolioRunner fanned(parallel);
  const PortfolioOutcome parallel_out =
      fanned.run_seeded(configurator, requests, config.base_seed);

  // Hard determinism gate: the parallel portfolio must reproduce the serial
  // one bit for bit (same winner, same assignments, same costs).
  bool bit_identical =
      serial_out.winner_index == parallel_out.winner_index &&
      serial_out.configurations.size() == parallel_out.configurations.size();
  for (std::size_t i = 0; bit_identical && i < requests.size(); ++i) {
    bit_identical = identical(serial_out.configurations[i],
                              parallel_out.configurations[i]);
  }
  if (!bit_identical) {
    std::cerr << "FAIL: parallel portfolio diverged from serial run\n";
    return 1;
  }

  bench::CsvFile csv(config, "m1_portfolio");
  csv.writer().header({"algorithm", "cost", "feasible", "task_wall_ms",
                       "queue_ms_parallel"});
  util::ConsoleTable table(
      {"algorithm", "cost", "feasible", "wall (ms)", "queue (ms)"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ClusterConfiguration& conf = parallel_out.configurations[i];
    csv.writer().row(to_string(requests[i].algorithm), conf.total_cost(),
                     conf.feasible() ? 1 : 0,
                     parallel_out.stats.per_task[i].wall_ms,
                     parallel_out.stats.per_task[i].queue_ms);
    table.add_row(
        {std::string(to_string(requests[i].algorithm)),
         util::format_double(conf.total_cost(), 0),
         conf.feasible() ? "yes" : "no",
         util::format_double(parallel_out.stats.per_task[i].wall_ms, 1),
         util::format_double(parallel_out.stats.per_task[i].queue_ms, 2)});
  }

  const double speedup = serial_out.stats.total_wall_ms /
                         std::max(parallel_out.stats.total_wall_ms, 1e-9);
  std::cout << table.to_string(
                   "M1 — portfolio over comparison set (n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) + "):")
            << "winner:   "
            << to_string(requests[parallel_out.winner_index].algorithm)
            << " (cost "
            << util::format_double(parallel_out.winner().total_cost(), 0)
            << ")\n"
            << "serial:   " << util::format_double(
                                   serial_out.stats.total_wall_ms, 1)
            << " ms on 1 thread\n"
            << "parallel: " << util::format_double(
                                   parallel_out.stats.total_wall_ms, 1)
            << " ms on " << parallel_out.stats.threads
            << " threads (pool speedup "
            << util::format_double(parallel_out.stats.parallel_speedup(), 2)
            << "x, vs-serial " << util::format_double(speedup, 2)
            << "x, mean queue "
            << util::format_double(parallel_out.stats.mean_queue_ms(), 2)
            << " ms)\n"
            << "bit-identity: serial and parallel portfolios match exactly\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
