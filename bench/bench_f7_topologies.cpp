// F7 (reconstructed): sensitivity to the topology family — does the RL
// advantage hold across Waxman / BA / ER / geometric / grid / hierarchical
// infrastructures?
#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  // Size precedence: shared --devices/--servers override, then the legacy
  // per-bench --iot/--edge spellings, then the defaults.
  const auto iot = config.devices > 0
                       ? config.devices
                       : static_cast<std::size_t>(config.flags.get_int(
                             "iot", config.quick ? 150 : 400));
  const auto edge = config.servers > 0
                        ? config.servers
                        : static_cast<std::size_t>(
                              config.flags.get_int("edge", 16));

  bench::CsvFile csv(config, "f7_topologies");
  csv.writer().header({"family", "algorithm", "mean_avg_delay_ms", "ci95",
                       "feasible_fraction"});

  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kQLearning,
      Algorithm::kUcbRollout};

  util::ConsoleTable table(
      {"family", "algorithm", "avg delay (ms)", "feasible"});
  for (topo::TopologyFamily family : topo::all_topology_families()) {
    const auto make_scenario = [&](std::uint64_t seed) {
      ScenarioParams params;
      params.family = family;
      params.topology.node_count = std::max<std::size_t>(40, edge * 3);
      params.workload.iot_count = iot;
      params.workload.edge_count = edge;
      params.workload.load_factor = 0.75;
      params.seed = seed;
      return Scenario::generate(params);
    };
    for (Algorithm algorithm : algorithms) {
      const AlgoStats stats =
          run_repeated(make_scenario, algorithm, config.repeats,
                       config.base_seed,
                       bench::experiment_options(config.quick));
      csv.writer().row(topo::to_string(family), to_string(algorithm),
                       stats.avg_delay_ms.mean(),
                       metrics::ci95_half_width(stats.avg_delay_ms),
                       stats.feasible_fraction());
      table.add_row({std::string(topo::to_string(family)),
                     std::string(to_string(algorithm)),
                     mean_ci(stats.avg_delay_ms, 2),
                     util::format_double(stats.feasible_fraction(), 2)});
    }
  }
  std::cout << table.to_string(
                   "F7 — topology-family sensitivity (n=" +
                   std::to_string(iot) + ", m=" + std::to_string(edge) +
                   ", rho=0.75):")
            << "\nExpected shape: the RL heuristic leads on every family; "
               "the margin over\ngeometric-nearest is largest on "
               "hierarchical/BA topologies where hop count\nand straight-line "
               "distance diverge most.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
