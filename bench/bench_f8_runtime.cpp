// F8 (reconstructed): solver wall-clock time vs instance size — the
// scalability figure, plus branch-and-bound blow-up on a small prefix.
//
// --parallel=N fans the repeated runs (scenario generation + solve) over the
// portfolio runtime's worker pool; per-solver wall times and all aggregated
// statistics are bit-identical to the serial loop.
#include "bench/bench_common.hpp"
#include "runtime/portfolio.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto parallel = static_cast<std::size_t>(
      std::max<std::int64_t>(0, config.flags.get_int("parallel", 1)));
  runtime::PortfolioRunner runner(parallel);

  // Serial and parallel paths share the seed schedule, so the CSV is
  // identical either way; only this bench's own wall clock changes.
  const auto repeated = [&](const std::function<Scenario(std::uint64_t)>& gen,
                            Algorithm algorithm, std::size_t repeats,
                            const AlgorithmOptions& options) {
    return runner.threads() > 1
               ? runtime::run_repeated_parallel(gen, algorithm, repeats,
                                                config.base_seed, options,
                                                runner)
               : run_repeated(gen, algorithm, repeats, config.base_seed,
                              options);
  };

  bench::CsvFile csv(config, "f8_runtime");
  csv.writer().header({"iot_count", "edge_count", "algorithm",
                       "mean_wall_ms", "ci95"});

  const std::vector<std::size_t> sizes =
      config.quick ? std::vector<std::size_t>{100, 1000}
                   : std::vector<std::size_t>{100, 500, 1000, 2000, 5000};
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kLocalSearch,
      Algorithm::kSimulatedAnnealing, Algorithm::kFlowRelaxRepair,
      Algorithm::kQLearning,     Algorithm::kSarsa,
      Algorithm::kUcbRollout};

  util::ConsoleTable table({"n", "m", "algorithm", "wall (ms)"});
  for (std::size_t n : sizes) {
    const std::size_t m = std::max<std::size_t>(5, n / 25);
    for (Algorithm algorithm : algorithms) {
      // Regret greedy is O(n²m), UCB is O(n²·R), and the flow relaxation
      // runs n augmentations over an n·m-arc network: cap their sizes so
      // the bench finishes; the CSV simply lacks those points (as the
      // paper's figures would).
      if ((algorithm == Algorithm::kRegretGreedy ||
           algorithm == Algorithm::kUcbRollout ||
           algorithm == Algorithm::kFlowRelaxRepair) &&
          n > 2000) {
        continue;
      }
      const AlgoStats stats = repeated(
          [&](std::uint64_t seed) {
            return Scenario::smart_city(n, m, seed);
          },
          algorithm, std::max<std::size_t>(2, config.repeats / 2),
          bench::experiment_options(config.quick));
      csv.writer().row(n, m, to_string(algorithm), stats.wall_ms.mean(),
                       metrics::ci95_half_width(stats.wall_ms));
      table.add_row({std::to_string(n), std::to_string(m),
                     std::string(to_string(algorithm)),
                     util::format_double(stats.wall_ms.mean(), 1)});
    }
  }

  // Branch-and-bound blow-up on a small prefix (exponential worst case).
  for (std::size_t n : {8u, 12u, 16u, 20u}) {
    const AlgoStats stats = repeated(
        [&](std::uint64_t seed) {
          ScenarioParams params;
          params.workload.iot_count = n;
          params.workload.edge_count = 4;
          params.workload.load_factor = 0.8;
          params.seed = seed;
          return Scenario::generate(params);
        },
        Algorithm::kBranchAndBound, 3,
        bench::experiment_options(config.quick));
    csv.writer().row(n, 4, "branch-and-bound", stats.wall_ms.mean(),
                     metrics::ci95_half_width(stats.wall_ms));
    table.add_row({std::to_string(n), "4", "branch-and-bound",
                   util::format_double(stats.wall_ms.mean(), 1)});
  }

  std::cout << table.to_string("F8 — solver runtime vs instance size:")
            << "\nExpected shape: constructive heuristics ms-scale and "
               "near-linear; RL seconds-scale,\nlinear in n·episodes; "
               "branch-and-bound explodes beyond ~16 devices.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
