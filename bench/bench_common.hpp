// Shared glue for the experiment binaries in bench/: unified CLI parsing,
// CSV emission into the --out directory, workload-provider wiring, and the
// machine-readable BENCH_<name>.json perf reports.
//
// Every bench prints a paper-style table to stdout AND writes the raw series
// to <out>/<name>.csv so results can be re-plotted without re-running.
// Gated benches additionally write <out>/BENCH_<name>.json (schema below)
// so the perf trajectory — throughput, tail latency, gate outcomes — can be
// tracked across PRs without scraping console tables.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/tacc.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/provider.hpp"

namespace tacc::bench {

/// The one bench CLI entry point: every bench parses argc/argv through
/// BenchConfig::parse and reads its extra flags off `flags`. Shared flags:
///   --quick           shrink sizes/repeats so the suite stays minutes-scale
///   --seed=N          base seed (default 1000)
///   --repeats=N       per-experiment repeats (default 5, 2 under --quick)
///   --out=DIR         output directory for CSVs/JSON (default results/)
///   --workload=SPEC   WorkloadProvider spec "NAME[,k=v...]" for the
///                     event-driven benches (each has its own default)
///   --devices=N       topology-size override for benches that sweep or fix
///   --servers=N       device/server counts; 0 keeps the bench's defaults
struct BenchConfig {
  bool quick = false;
  std::uint64_t base_seed = 1000;
  std::size_t repeats = 5;
  std::string out_dir = "results";
  std::string workload_spec;  ///< empty => the bench's default provider
  std::size_t devices = 0;    ///< 0 => the bench's default device count
  std::size_t servers = 0;    ///< 0 => the bench's default server count
  util::Flags flags;          ///< for bench-specific flags

  static BenchConfig parse(int argc, const char* const* argv) {
    BenchConfig config;
    config.flags = util::Flags::parse(argc, argv);
    config.quick = config.flags.get_bool("quick", false);
    config.base_seed =
        static_cast<std::uint64_t>(config.flags.get_int("seed", 1000));
    config.repeats = static_cast<std::size_t>(
        config.flags.get_int("repeats", config.quick ? 2 : 5));
    config.out_dir = config.flags.get_string("out", "results");
    config.workload_spec = config.flags.get_string("workload", "");
    config.devices =
        static_cast<std::size_t>(config.flags.get_int("devices", 0));
    config.servers =
        static_cast<std::size_t>(config.flags.get_int("servers", 0));
    return config;
  }

  /// The provider spec this run uses: --workload, or the bench's default.
  [[nodiscard]] std::string workload_or(std::string_view fallback) const {
    return workload_spec.empty() ? std::string(fallback) : workload_spec;
  }

  /// Warn about mistyped flags (call at the end of main).
  void check_unused() const {
    for (const std::string& name : flags.unused()) {
      std::cerr << "warning: unknown flag --" << name << " ignored\n";
    }
  }
};

/// ProviderContext for a scenario, seeded with the bench's base seed. The
/// helper lives here (not in workload/) because Scenario sits above the
/// workload library in the dependency order.
inline workload::ProviderContext provider_context(const Scenario& scenario,
                                                  std::uint64_t seed) {
  return workload::make_context(scenario.network(), scenario.workload(),
                                scenario.params().workload.area_km, seed);
}

/// Opens <out>/<name>.csv (creating the directory if needed) and announces
/// it on stdout.
class CsvFile {
 public:
  CsvFile(const BenchConfig& config, const std::string& name)
      : path_((std::filesystem::path(config.out_dir) / (name + ".csv"))
                  .string()) {
    const std::filesystem::path dir =
        std::filesystem::path(path_).parent_path();
    if (!dir.empty()) std::filesystem::create_directories(dir);
    stream_.open(path_);
    if (!stream_) {
      throw std::runtime_error("cannot open " + path_ + " for writing");
    }
    std::cout << "[csv] writing " << path_ << "\n";
  }
  ~CsvFile() { std::cout << "[csv] wrote " << path_ << "\n"; }

  CsvFile(const CsvFile&) = delete;
  CsvFile& operator=(const CsvFile&) = delete;

  [[nodiscard]] util::CsvWriter& writer() { return writer_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream stream_;
  util::CsvWriter writer_{stream_};
};

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git is unavailable — stamps BENCH_*.json so artifact series line up with
/// commits.
inline std::string git_describe() {
  std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128];
  std::string out;
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

/// Machine-readable per-bench report, written to <out>/BENCH_<name>.json.
/// Schema (schema_version 1, validated by tools/check_bench_json.py):
///   {
///     "schema_version": 1,
///     "bench": "m2_churn",            // bench name, matches the file name
///     "provider": "steady",           // workload spec, "" for static benches
///     "seed": 1000, "quick": true,
///     "git_describe": "ee1494f",
///     "metrics": { "<key>": <number>, ... },
///     "gates": [ {"name": "...", "passed": true}, ... ]
///   }
/// Metrics keys are bench-specific (throughput_per_s, p50_us, p99_us, ...);
/// insertion order is preserved. The destructor writes the file if write()
/// was never called, so early-return paths still leave an artifact behind.
class BenchReport {
 public:
  BenchReport(const BenchConfig& config, std::string name)
      : name_(std::move(name)),
        out_dir_(config.out_dir),
        seed_(config.base_seed),
        quick_(config.quick) {}

  ~BenchReport() {
    if (!written_) {
      try {
        write();
      } catch (const std::exception& e) {
        std::cerr << "BENCH_" << name_ << ".json: " << e.what() << "\n";
      }
    }
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void set_provider(std::string spec) { provider_ = std::move(spec); }

  void metric(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }

  void gate(std::string gate_name, bool passed) {
    gates_.emplace_back(std::move(gate_name), passed);
    if (!passed) {
      std::cerr << "GATE FAILED: " << gates_.back().first << "\n";
    }
  }

  [[nodiscard]] bool all_gates_passed() const {
    for (const auto& [unused_name, passed] : gates_) {
      if (!passed) return false;
    }
    return true;
  }

  /// Writes the JSON artifact and announces it; returns the path. Idempotent
  /// (later calls rewrite with the then-current contents).
  std::string write() {
    const std::filesystem::path path =
        std::filesystem::path(out_dir_) / ("BENCH_" + name_ + ".json");
    if (!path.parent_path().empty()) {
      std::filesystem::create_directories(path.parent_path());
    }
    std::ofstream stream(path);
    if (!stream) {
      throw std::runtime_error("cannot open " + path.string() +
                               " for writing");
    }
    util::JsonWriter json(stream);
    json.begin_object()
        .field("schema_version", 1)
        .field("bench", name_)
        .field("provider", provider_)
        .field("seed", static_cast<std::uint64_t>(seed_))
        .field("quick", quick_)
        .field("git_describe", git_describe());
    json.key("metrics").begin_object();
    for (const auto& [key, value] : metrics_) json.field(key, value);
    json.end_object();
    json.key("gates").begin_array();
    for (const auto& [gate_name, passed] : gates_) {
      json.begin_object()
          .field("name", gate_name)
          .field("passed", passed)
          .end_object();
    }
    json.end_array().end_object();
    stream << "\n";
    written_ = true;
    std::cout << "[json] wrote " << path.string() << "\n";
    return path.string();
  }

 private:
  std::string name_;
  std::string out_dir_;
  std::uint64_t seed_;
  bool quick_;
  std::string provider_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, bool>> gates_;
  bool written_ = false;
};

/// Default AlgorithmOptions for experiments (tuned per DESIGN.md; the seed
/// is applied per run by the harness).
inline AlgorithmOptions experiment_options(bool quick) {
  AlgorithmOptions options;
  if (quick) {
    options.rl.episodes = 150;
    options.ucb.rollouts_per_device = 6;
    options.annealing.steps = 50'000;
  }
  return options;
}

}  // namespace tacc::bench
