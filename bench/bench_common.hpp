// Shared glue for the experiment binaries in bench/: CSV emission beside the
// process working directory, standard flag handling, and algorithm labels.
//
// Every bench prints a paper-style table to stdout AND writes the raw series
// to <name>.csv so results can be re-plotted without re-running.
#pragma once

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/tacc.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace tacc::bench {

/// Opens <name>.csv in the working directory and announces it on stdout.
class CsvFile {
 public:
  explicit CsvFile(const std::string& name) : path_(name + ".csv"),
                                              stream_(path_) {
    if (!stream_) {
      throw std::runtime_error("cannot open " + path_ + " for writing");
    }
    std::cout << "[csv] writing " << path_ << "\n";
  }
  ~CsvFile() { std::cout << "[csv] wrote " << path_ << "\n"; }

  CsvFile(const CsvFile&) = delete;
  CsvFile& operator=(const CsvFile&) = delete;

  [[nodiscard]] util::CsvWriter& writer() { return writer_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream stream_;
  util::CsvWriter writer_{stream_};
};

/// Shared "fast mode" knob: `--quick` shrinks repeats/sizes so the whole
/// bench suite stays minutes-scale; default parameters match DESIGN.md.
struct BenchConfig {
  bool quick = false;
  std::uint64_t base_seed = 1000;
  std::size_t repeats = 5;

  static BenchConfig from_flags(const util::Flags& flags) {
    BenchConfig config;
    config.quick = flags.get_bool("quick", false);
    config.base_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1000));
    config.repeats = static_cast<std::size_t>(
        flags.get_int("repeats", config.quick ? 2 : 5));
    return config;
  }
};

/// Warn about mistyped flags (call at the end of main).
inline void check_unused_flags(const util::Flags& flags) {
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
}

/// Default AlgorithmOptions for experiments (tuned per DESIGN.md; the seed
/// is applied per run by the harness).
inline AlgorithmOptions experiment_options(bool quick) {
  AlgorithmOptions options;
  if (quick) {
    options.rl.episodes = 150;
    options.ucb.rollouts_per_device = 6;
    options.annealing.steps = 50'000;
  }
  return options;
}

}  // namespace tacc::bench
