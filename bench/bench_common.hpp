// Shared glue for the experiment binaries in bench/: CSV emission into the
// --out directory, standard flag handling, and algorithm labels.
//
// Every bench prints a paper-style table to stdout AND writes the raw series
// to <out>/<name>.csv so results can be re-plotted without re-running.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/tacc.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace tacc::bench {

/// Output directory for generated CSVs: --out=DIR, defaulting to results/
/// (relative to the working directory) so runs from the repo root land next
/// to the committed experiment outputs instead of littering the root.
inline std::string csv_out_dir(const util::Flags& flags) {
  return flags.get_string("out", "results");
}

/// Opens <out>/<name>.csv (creating the directory if needed) and announces
/// it on stdout.
class CsvFile {
 public:
  CsvFile(const util::Flags& flags, const std::string& name)
      : path_((std::filesystem::path(csv_out_dir(flags)) / (name + ".csv"))
                  .string()) {
    const std::filesystem::path dir =
        std::filesystem::path(path_).parent_path();
    if (!dir.empty()) std::filesystem::create_directories(dir);
    stream_.open(path_);
    if (!stream_) {
      throw std::runtime_error("cannot open " + path_ + " for writing");
    }
    std::cout << "[csv] writing " << path_ << "\n";
  }
  ~CsvFile() { std::cout << "[csv] wrote " << path_ << "\n"; }

  CsvFile(const CsvFile&) = delete;
  CsvFile& operator=(const CsvFile&) = delete;

  [[nodiscard]] util::CsvWriter& writer() { return writer_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream stream_;
  util::CsvWriter writer_{stream_};
};

/// Shared "fast mode" knob: `--quick` shrinks repeats/sizes so the whole
/// bench suite stays minutes-scale; default parameters match DESIGN.md.
struct BenchConfig {
  bool quick = false;
  std::uint64_t base_seed = 1000;
  std::size_t repeats = 5;

  static BenchConfig from_flags(const util::Flags& flags) {
    BenchConfig config;
    config.quick = flags.get_bool("quick", false);
    config.base_seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 1000));
    config.repeats = static_cast<std::size_t>(
        flags.get_int("repeats", config.quick ? 2 : 5));
    return config;
  }
};

/// Warn about mistyped flags (call at the end of main).
inline void check_unused_flags(const util::Flags& flags) {
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
}

/// Default AlgorithmOptions for experiments (tuned per DESIGN.md; the seed
/// is applied per run by the harness).
inline AlgorithmOptions experiment_options(bool quick) {
  AlgorithmOptions options;
  if (quick) {
    options.rl.episodes = 150;
    options.ucb.rollouts_per_device = 6;
    options.annealing.steps = 50'000;
  }
  return options;
}

}  // namespace tacc::bench
