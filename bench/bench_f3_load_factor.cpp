// F3 (reconstructed): overload behaviour vs system load factor ρ — the
// figure backing "none of the edge devices are overloaded".
#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));

  bench::CsvFile csv(config, "f3_load_factor");
  csv.writer().header({"load_factor", "algorithm", "feasible_fraction",
                       "mean_max_util", "mean_overloaded_servers",
                       "mean_avg_delay_ms"});

  const std::vector<double> load_factors =
      config.quick ? std::vector<double>{0.6, 0.9}
                   : std::vector<double>{0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kQLearning,
      Algorithm::kSarsa,         Algorithm::kUcbRollout};

  util::ConsoleTable table({"rho", "algorithm", "feasible", "max util",
                            "overloaded srv", "avg delay (ms)"});
  for (double rho : load_factors) {
    const auto make_scenario = [&](std::uint64_t seed) {
      ScenarioParams params;
      params.workload.iot_count = iot;
      params.workload.edge_count = edge;
      params.workload.load_factor = rho;
      params.seed = seed;
      return Scenario::generate(params);
    };
    for (Algorithm algorithm : algorithms) {
      AlgoStats stats =
          run_repeated(make_scenario, algorithm, config.repeats,
                       config.base_seed,
                       bench::experiment_options(config.quick));
      const double mean_overloaded =
          static_cast<double>(stats.overload_violations) /
          static_cast<double>(stats.runs);
      csv.writer().row(rho, to_string(algorithm), stats.feasible_fraction(),
                       stats.max_utilization.mean(), mean_overloaded,
                       stats.avg_delay_ms.mean());
      table.add_row({util::format_double(rho, 2),
                     std::string(to_string(algorithm)),
                     util::format_double(stats.feasible_fraction(), 2),
                     util::format_double(stats.max_utilization.mean(), 2),
                     util::format_double(mean_overloaded, 2),
                     util::format_double(stats.avg_delay_ms.mean(), 2)});
    }
  }
  std::cout << table.to_string(
                   "F3 — overload vs load factor (n=" + std::to_string(iot) +
                   ", m=" + std::to_string(edge) + "):")
            << "\nExpected shape: capacity-aware methods stay feasible up to "
               "rho=0.95 while\ntheir delay rises; oblivious nearest "
               "overloads more servers as rho grows.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
