// M2: long-horizon churn soak for the dynamic reconfiguration engine.
//
// Drives O(100k) join/move/move_pinned/leave/fail/recover events against a
// random-waypoint mobility trace and HARD-GATES the two properties that make
// sustained churn viable:
//   1. Zero net growth: graph node count and device-slot (delay-row) storage
//      return exactly to baseline across move cycles — the engine recycles
//      departed nodes/slots instead of leaking one per event.
//   2. Flat per-event latency: the mean event latency late in the run stays
//      within a small factor of the early mean (a leak shows up here too —
//      every Dijkstra pays for dead nodes).
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
//   ./bench_m2_churn [--events=100000] [--iot=200] [--edge=10] [--seed=...]
//   --quick shrinks to 20k events for sanitizer/CI runs.
#include <cstdint>

#include "bench/bench_common.hpp"
#include "core/dynamic.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/mobility.hpp"

namespace {

using namespace tacc;

double mean(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += v[i];
  return hi > lo ? sum / static_cast<double>(hi - lo) : 0.0;
}

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const auto config = bench::BenchConfig::from_flags(flags);
  const auto iot = static_cast<std::size_t>(
      flags.get_int("iot", config.quick ? 120 : 200));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 10));
  const auto events = static_cast<std::size_t>(
      flags.get_int("events", config.quick ? 20'000 : 100'000));

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  AlgorithmOptions options = bench::experiment_options(config.quick);
  options.apply_seed(config.base_seed);
  // Greedy keeps startup cheap; the soak exercises the dynamic path, not
  // the initial configuration.
  DynamicCluster cluster(scenario, Algorithm::kGreedyBestFit, options);

  workload::MobilityParams mobility;
  mobility.area_km = scenario.params().workload.area_km;
  mobility.mobile_fraction = 0.8;
  workload::RandomWaypointModel model(scenario.workload().iot, mobility,
                                      util::Rng(config.base_seed * 3 + 1));
  util::Rng rng(config.base_seed * 7 + 5);
  const double area = scenario.params().workload.area_km;

  bench::CsvFile csv(flags, "m2_churn");
  csv.writer().header({"event", "event_type", "window_mean_us",
                       "graph_nodes", "device_slots", "active",
                       "avg_delay_ms"});

  // ---- Gate 1a: a pure move cycle must not grow anything. ------------------
  const std::size_t baseline_nodes = cluster.graph_node_count();
  const std::size_t baseline_slots = cluster.device_slot_count();
  for (int cycle = 0; cycle < 1'000; ++cycle) {
    for (const std::size_t mover : model.advance(5.0)) {
      (void)cluster.move(mover, model.position(mover));
    }
    if (cluster.graph_node_count() != baseline_nodes ||
        cluster.device_slot_count() != baseline_slots) {
      std::cerr << "GATE FAILED: move cycle " << cycle << " grew storage ("
                << cluster.graph_node_count() << " nodes vs "
                << baseline_nodes << ", " << cluster.device_slot_count()
                << " slots vs " << baseline_slots << ")\n";
      return 1;
    }
  }

  // ---- Mixed soak ----------------------------------------------------------
  std::vector<std::size_t> extra;        // devices joined on top of the base
  std::size_t peak_extra = 0;
  std::vector<double> latency_us;
  latency_us.reserve(events);
  std::vector<const char*> types;
  types.reserve(events);

  const auto record = [&](const char* type, double us) {
    latency_us.push_back(us);
    types.push_back(type);
  };

  util::ConsoleTable table({"events", "window mean (us)", "graph nodes",
                            "device slots", "active", "avg delay (ms)"});
  const std::size_t window = std::max<std::size_t>(events / 20, 1);
  std::size_t next_emit = window;
  std::size_t emitted = 0;

  while (latency_us.size() < events) {
    const double roll = rng.uniform(0.0, 1.0);
    util::WallTimer timer;
    if (roll < 0.12) {
      workload::IotDevice device;
      device.position = {rng.uniform(0.0, area), rng.uniform(0.0, area)};
      device.request_rate_hz = rng.uniform(2.0, 10.0);
      device.demand = device.request_rate_hz;
      timer.reset();
      const JoinResult joined = cluster.join(device);
      record("join", timer.elapsed_ms() * 1e3);
      extra.push_back(joined.device_index);
      peak_extra = std::max(peak_extra, extra.size());
    } else if (roll < 0.24 && !extra.empty()) {
      const std::size_t pick = rng.index(extra.size());
      timer.reset();
      cluster.leave(extra[pick]);
      record("leave", timer.elapsed_ms() * 1e3);
      extra[pick] = extra.back();
      extra.pop_back();
    } else if (roll < 0.26) {
      if (cluster.healthy_server_count() > 2) {
        std::size_t j = rng.index(cluster.server_count());
        while (cluster.server_failed(j)) j = rng.index(cluster.server_count());
        timer.reset();
        (void)cluster.fail_server(j, /*evacuate=*/rng.bernoulli(0.5));
        record("fail", timer.elapsed_ms() * 1e3);
      } else {
        for (std::size_t j = 0; j < cluster.server_count(); ++j) {
          if (cluster.server_failed(j)) {
            timer.reset();
            (void)cluster.evacuate_server(j);
            cluster.recover_server(j);
            record("recover", timer.elapsed_ms() * 1e3);
            break;
          }
        }
      }
    } else if (roll < 0.28) {
      timer.reset();
      (void)cluster.repair(16);
      (void)cluster.rebalance(16);
      record("rebalance", timer.elapsed_ms() * 1e3);
    } else {
      // Mobility burst: every mover is one handover event (10% pinned).
      for (const std::size_t mover : model.advance(5.0)) {
        if (latency_us.size() >= events) break;
        const auto p = model.position(mover);
        const bool pinned =
            rng.bernoulli(0.1) &&
            !cluster.server_failed(cluster.server_of(mover));
        timer.reset();
        if (pinned) {
          (void)cluster.move_pinned(mover, p);
        } else {
          (void)cluster.move(mover, p);
        }
        record(pinned ? "move_pinned" : "move", timer.elapsed_ms() * 1e3);
      }
    }

    // Emit one CSV/table row per completed window (bursts may cross a
    // boundary mid-iteration, so catch up here).
    const std::size_t done = latency_us.size();
    if (done >= next_emit || done == events) {
      // Deep invariant sweep once per window: slot/row/load accounting, node
      // recycling, and one shortest-path tree spot-checked against a fresh
      // Dijkstra (rotating through servers across windows). The default
      // abort handler makes any violation a hard bench failure.
      cluster.check_invariants();
      const std::size_t lo = done > window ? done - window : 0;
      const double window_mean = mean(latency_us, lo, done);
      csv.writer().row(done, types.back(), window_mean,
                       cluster.graph_node_count(),
                       cluster.device_slot_count(), cluster.active_count(),
                       cluster.avg_delay_ms());
      if (emitted % 4 == 0 || done == events) {
        table.add_row({std::to_string(done),
                       util::format_double(window_mean, 2),
                       std::to_string(cluster.graph_node_count()),
                       std::to_string(cluster.device_slot_count()),
                       std::to_string(cluster.active_count()),
                       util::format_double(cluster.avg_delay_ms(), 2)});
      }
      ++emitted;
      while (next_emit <= done) next_emit += window;
    }
  }

  std::cout << table.to_string(
      "M2 — churn soak (" + std::to_string(events) + " events, " +
      std::to_string(iot) + " base devices, " + std::to_string(edge) +
      " servers):");

  // ---- Gate 1b: storage tracks peak population, not cumulative events. -----
  const std::size_t expected_slots = iot + peak_extra;
  const std::size_t expected_nodes = baseline_nodes + peak_extra;
  bool ok = true;
  if (cluster.device_slot_count() != expected_slots ||
      cluster.graph_node_count() != expected_nodes) {
    std::cerr << "GATE FAILED: storage grew past peak population ("
              << cluster.device_slot_count() << " slots, expected "
              << expected_slots << "; " << cluster.graph_node_count()
              << " nodes, expected " << expected_nodes << ")\n";
    ok = false;
  }

  // ---- Gate 2: flat per-event latency (early decile vs late decile). -------
  // Skip the first decile entirely: allocator warm-up makes it artificially
  // cheap or noisy depending on the platform.
  const std::size_t decile = events / 10;
  const double early = mean(latency_us, decile, 2 * decile);
  const double late = mean(latency_us, events - decile, events);
  std::cout << "\nPer-event latency: early mean "
            << util::format_double(early, 2) << " us, late mean "
            << util::format_double(late, 2) << " us\n";
  if (late > early * 2.0 + 1.0) {
    std::cerr << "GATE FAILED: per-event latency drifted (" << late
              << " us late vs " << early << " us early)\n";
    ok = false;
  }

  if (ok) {
    std::cout << "All churn gates passed: zero net storage growth, flat "
                 "latency.\n";
  }
  bench::check_unused_flags(flags);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
