// M2: long-horizon churn soak for the dynamic reconfiguration engine.
//
// Drives O(100k) workload-provider events (join/leave/move/demand-pulse,
// plus backbone link churn if the provider emits it) against a
// DynamicCluster, interleaved with bench-local server fail/recover/rebalance
// stress, and HARD-GATES the properties that make sustained churn viable:
//   1. Zero net growth: graph node count and device-slot (delay-row) storage
//      return exactly to baseline across move cycles, and track the *peak*
//      live population across the soak — the engine recycles departed
//      nodes/slots instead of leaking one per event.
//   2. Flat per-event latency: the mean event latency late in the run stays
//      within a small factor of the early mean (a leak shows up here too —
//      every Dijkstra pays for dead nodes).
// Exit code 1 if a gate fails, so CI can run it as a regression check.
//
// The event stream comes from a pluggable WorkloadProvider
// (--workload=NAME[,k=v...], default "steady"); --stream-out=FILE dumps the
// exact taccd wire rendering of the stream (byte-identical across runs with
// the same seed and spec) for replay via `tacc_client --stdin`. The soak
// applies every event through the same WireAdapter slot mapping the replay
// uses, so in-process and replayed runs agree on device indices by
// construction (demand pulses are applied as leave+join for the same
// reason — the wire has no in-place demand verb).
//
//   ./bench_m2_churn [--events=100000] [--iot=200] [--edge=10] [--seed=...]
//                    [--workload=steady] [--stream-out=FILE]
//   --quick shrinks to 20k events for sanitizer/CI runs.
#include <cstdint>
#include <fstream>

#include "bench/bench_common.hpp"
#include "core/dynamic.hpp"
#include "metrics/stats.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/wire.hpp"

namespace {

using namespace tacc;

double mean(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += v[i];
  return hi > lo ? sum / static_cast<double>(hi - lo) : 0.0;
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 120 : 200));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 10));
  const auto events = static_cast<std::size_t>(
      config.flags.get_int("events", config.quick ? 20'000 : 100'000));
  const std::string workload_spec = config.workload_or("steady");
  const std::string stream_out = config.flags.get_string("stream-out", "");

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  AlgorithmOptions options = bench::experiment_options(config.quick);
  options.apply_seed(config.base_seed);
  // Greedy keeps startup cheap; the soak exercises the dynamic path, not
  // the initial configuration.
  DynamicCluster cluster(scenario, Algorithm::kGreedyBestFit, options);

  const workload::ProviderContext ctx =
      bench::provider_context(scenario, config.base_seed);
  // Bench-local stress (server failures, rebalance, pinned handovers) uses
  // its own rng so the provider stream stays replay-identical.
  util::Rng rng(config.base_seed * 7 + 5);

  bench::BenchReport report(config, "m2_churn");
  report.set_provider(workload_spec);
  bench::CsvFile csv(config, "m2_churn");
  csv.writer().header({"event", "event_type", "window_mean_us",
                       "graph_nodes", "device_slots", "active",
                       "avg_delay_ms"});

  std::ofstream stream_file;
  if (!stream_out.empty()) {
    stream_file.open(stream_out);
    if (!stream_file) {
      std::cerr << "cannot open " << stream_out << " for writing\n";
      return 1;
    }
  }

  // ---- Gate 1a: a pure move cycle must not grow anything. ------------------
  // A dedicated mobility_trace provider walks only the base devices, whose
  // provider ids coincide with their cluster indices.
  const std::size_t baseline_nodes = cluster.graph_node_count();
  const std::size_t baseline_slots = cluster.device_slot_count();
  {
    auto mobility = workload::make_provider("mobility_trace", ctx);
    bool grew = false;
    for (int cycle = 0; cycle < 1'000 && !grew; ++cycle) {
      for (const workload::Event& event : mobility->step(5.0)) {
        (void)cluster.move(event.device, event.position);
      }
      if (cluster.graph_node_count() != baseline_nodes ||
          cluster.device_slot_count() != baseline_slots) {
        std::cerr << "move cycle " << cycle << " grew storage ("
                  << cluster.graph_node_count() << " nodes vs "
                  << baseline_nodes << ", " << cluster.device_slot_count()
                  << " slots vs " << baseline_slots << ")\n";
        grew = true;
      }
    }
    report.gate("move_cycle_zero_growth", !grew);
    if (grew) return 1;
  }

  // ---- Mixed soak ----------------------------------------------------------
  auto provider = workload::make_provider(workload_spec, ctx);
  workload::WireAdapter adapter(ctx, "m2");
  if (stream_file.is_open()) {
    stream_file << adapter.configure_line(iot, edge, config.base_seed,
                                          "greedy-bestfit", "smart_city")
                << "\n";
  }

  std::size_t peak_active = cluster.active_count();
  std::vector<double> latency_us;
  latency_us.reserve(events);
  std::vector<const char*> types;
  types.reserve(events);
  bool index_parity = true;

  const auto record = [&](const char* type, double us) {
    latency_us.push_back(us);
    types.push_back(type);
    peak_active = std::max(peak_active, cluster.active_count());
  };

  util::ConsoleTable table({"events", "window mean (us)", "graph nodes",
                            "device slots", "active", "avg delay (ms)"});
  const std::size_t window = std::max<std::size_t>(events / 20, 1);
  std::size_t next_emit = window;
  std::size_t emitted = 0;
  util::WallTimer soak_timer;

  while (latency_us.size() < events && index_parity) {
    for (const workload::Event& event : provider->step(1.0)) {
      if (latency_us.size() >= events) break;
      // A LEAVE retires the device inside the adapter, so its slot has to be
      // read before rendering.
      const std::size_t leave_slot =
          event.kind == workload::EventKind::kLeave
              ? adapter.slot_of(event.device)
              : 0;
      // Render first: the adapter predicts the slot the cluster is about to
      // assign, and the dump must contain every event the cluster sees.
      if (stream_file.is_open()) {
        for (const std::string& line : adapter.render(event)) {
          stream_file << line << "\n";
        }
      } else {
        (void)adapter.render(event);
      }
      util::WallTimer timer;
      switch (event.kind) {
        case workload::EventKind::kJoin: {
          workload::IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          timer.reset();
          const JoinResult joined = cluster.join(device);
          record("join", timer.elapsed_ms() * 1e3);
          if (joined.device_index != adapter.slot_of(event.device)) {
            std::cerr << "wire adapter predicted slot "
                      << adapter.slot_of(event.device) << " but join got "
                      << joined.device_index << "\n";
            index_parity = false;
          }
          break;
        }
        case workload::EventKind::kLeave: {
          timer.reset();
          cluster.leave(leave_slot);
          record("leave", timer.elapsed_ms() * 1e3);
          break;
        }
        case workload::EventKind::kMove: {
          const std::size_t slot = adapter.slot_of(event.device);
          const bool pinned =
              rng.bernoulli(0.1) &&
              !cluster.server_failed(cluster.server_of(slot));
          timer.reset();
          if (pinned) {
            (void)cluster.move_pinned(slot, event.position);
          } else {
            (void)cluster.move(slot, event.position);
          }
          record(pinned ? "move_pinned" : "move", timer.elapsed_ms() * 1e3);
          break;
        }
        case workload::EventKind::kDemandPulse: {
          // Applied exactly as the wire replays it: leave + join back into
          // the same (LIFO-recycled) slot with the new demand.
          const std::size_t slot = adapter.slot_of(event.device);
          workload::IotDevice device;
          device.position = event.position;
          device.request_rate_hz = event.rate_hz;
          device.demand = event.demand;
          timer.reset();
          cluster.leave(slot);
          const JoinResult rejoined = cluster.join(device);
          record("demand_pulse", timer.elapsed_ms() * 1e3);
          if (rejoined.device_index != slot) {
            std::cerr << "demand pulse left slot " << slot
                      << " but rejoined at " << rejoined.device_index << "\n";
            index_parity = false;
          }
          break;
        }
        case workload::EventKind::kLinkFail: {
          const auto& [u, v] = ctx.links[event.link];
          timer.reset();
          (void)cluster.fail_link(u, v);
          record("link_fail", timer.elapsed_ms() * 1e3);
          break;
        }
        case workload::EventKind::kLinkRestore: {
          const auto& [u, v] = ctx.links[event.link];
          timer.reset();
          (void)cluster.restore_link(u, v);
          record("link_restore", timer.elapsed_ms() * 1e3);
          break;
        }
        case workload::EventKind::kLinkSetLatency: {
          const auto& [u, v] = ctx.links[event.link];
          timer.reset();
          (void)cluster.set_link_latency(u, v, event.latency_ms);
          record("link_set", timer.elapsed_ms() * 1e3);
          break;
        }
      }
    }

    // Bench-local stress, outside the replayable stream: occasional server
    // failures and a bounded repair/rebalance pass.
    if (rng.bernoulli(0.10)) {
      if (cluster.healthy_server_count() > 2) {
        std::size_t j = rng.index(cluster.server_count());
        while (cluster.server_failed(j)) j = rng.index(cluster.server_count());
        (void)cluster.fail_server(j, /*evacuate=*/rng.bernoulli(0.5));
      } else {
        for (std::size_t j = 0; j < cluster.server_count(); ++j) {
          if (cluster.server_failed(j)) {
            (void)cluster.evacuate_server(j);
            cluster.recover_server(j);
            break;
          }
        }
      }
    }
    if (rng.bernoulli(0.10)) {
      (void)cluster.repair(16);
      (void)cluster.rebalance(16);
    }

    // Emit one CSV/table row per completed window (steps may cross a
    // boundary mid-iteration, so catch up here).
    const std::size_t done = latency_us.size();
    if (done > 0 && (done >= next_emit || done == events)) {
      // Deep invariant sweep once per window: slot/row/load accounting, node
      // recycling, and one shortest-path tree spot-checked against a fresh
      // Dijkstra (rotating through servers across windows). The default
      // abort handler makes any violation a hard bench failure.
      cluster.check_invariants();
      const std::size_t lo = done > window ? done - window : 0;
      const double window_mean = mean(latency_us, lo, done);
      csv.writer().row(done, types.back(), window_mean,
                       cluster.graph_node_count(),
                       cluster.device_slot_count(), cluster.active_count(),
                       cluster.avg_delay_ms());
      if (emitted % 4 == 0 || done == events) {
        table.add_row({std::to_string(done),
                       util::format_double(window_mean, 2),
                       std::to_string(cluster.graph_node_count()),
                       std::to_string(cluster.device_slot_count()),
                       std::to_string(cluster.active_count()),
                       util::format_double(cluster.avg_delay_ms(), 2)});
      }
      ++emitted;
      while (next_emit <= done) next_emit += window;
    }
  }
  const double soak_s = soak_timer.elapsed_seconds();

  std::cout << table.to_string(
      "M2 — churn soak (" + std::to_string(events) + " events, provider " +
      workload_spec + ", " + std::to_string(iot) + " base devices, " +
      std::to_string(edge) + " servers):");

  report.gate("wire_index_parity", index_parity);

  // ---- Gate 1b: storage tracks peak population, not cumulative events. -----
  const std::size_t expected_slots = peak_active;
  const std::size_t expected_nodes = baseline_nodes + (peak_active - iot);
  const bool storage_ok = cluster.device_slot_count() == expected_slots &&
                          cluster.graph_node_count() == expected_nodes;
  if (!storage_ok) {
    std::cerr << "storage grew past peak population ("
              << cluster.device_slot_count() << " slots, expected "
              << expected_slots << "; " << cluster.graph_node_count()
              << " nodes, expected " << expected_nodes << ")\n";
  }
  report.gate("storage_tracks_peak", storage_ok);

  // ---- Gate 2: flat per-event latency (early decile vs late decile). -------
  // Skip the first decile entirely: allocator warm-up makes it artificially
  // cheap or noisy depending on the platform.
  const std::size_t decile = events / 10;
  const double early = mean(latency_us, decile, 2 * decile);
  const double late = mean(latency_us, events - decile, events);
  std::cout << "\nPer-event latency: early mean "
            << util::format_double(early, 2) << " us, late mean "
            << util::format_double(late, 2) << " us\n";
  const bool latency_ok = !(late > early * 2.0 + 1.0);
  if (!latency_ok) {
    std::cerr << "per-event latency drifted (" << late << " us late vs "
              << early << " us early)\n";
  }
  report.gate("flat_latency", latency_ok);

  report.metric("events", static_cast<double>(latency_us.size()));
  report.metric("throughput_per_s",
                soak_s > 0.0 ? static_cast<double>(latency_us.size()) / soak_s
                             : 0.0);
  report.metric("early_mean_us", early);
  report.metric("late_mean_us", late);
  report.metric("p50_us", metrics::percentile(latency_us, 0.5));
  report.metric("p99_us", metrics::percentile(latency_us, 0.99));
  report.metric("peak_active", static_cast<double>(peak_active));
  report.metric("device_slots",
                static_cast<double>(cluster.device_slot_count()));
  report.metric("graph_nodes", static_cast<double>(cluster.graph_node_count()));
  report.write();

  const bool ok = report.all_gates_passed();
  if (ok) {
    std::cout << "All churn gates passed: zero net storage growth, wire "
                 "index parity, flat latency.\n";
  }
  if (stream_file.is_open()) {
    std::cout << "[wire] wrote " << stream_out << "\n";
  }
  config.check_unused();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
