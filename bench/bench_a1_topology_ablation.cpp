// A1 (ablation): topology-aware vs topology-oblivious cost metric — the
// paper's core premise. Each algorithm solves twice: on shortest-path delay
// costs and on straight-line-distance costs; both assignments are evaluated
// on the TRUE delay metric. The ratio quantifies what topology awareness is
// worth per family.
#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 150 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));

  bench::CsvFile csv(config, "a1_topology_ablation");
  csv.writer().header({"family", "algorithm", "aware_avg_delay_ms",
                       "oblivious_avg_delay_ms", "penalty_pct"});

  const std::vector<Algorithm> algorithms = {Algorithm::kGreedyBestFit,
                                             Algorithm::kRegretGreedy,
                                             Algorithm::kQLearning};

  util::ConsoleTable table({"family", "algorithm", "aware (ms)",
                            "oblivious (ms)", "oblivious penalty"});
  for (topo::TopologyFamily family : topo::all_topology_families()) {
    for (Algorithm algorithm : algorithms) {
      metrics::RunningStats aware_stats;
      metrics::RunningStats oblivious_stats;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        const std::uint64_t seed = config.base_seed + r;
        ScenarioParams params;
        params.family = family;
        params.topology.node_count = std::max<std::size_t>(40, edge * 3);
        params.workload.iot_count = iot;
        params.workload.edge_count = edge;
        params.workload.load_factor = 0.75;
        params.seed = seed;
        const Scenario scenario = Scenario::generate(params);
        const ClusterConfigurator configurator(scenario);
        AlgorithmOptions options = bench::experiment_options(config.quick);
        options.apply_seed(seed);
        aware_stats.add(
            configurator.configure({algorithm, options}).avg_delay_ms());
        oblivious_stats.add(
            configurator
                .configure({algorithm, options, CostModel::kEuclidean})
                .avg_delay_ms());
      }
      const double penalty_pct =
          (oblivious_stats.mean() / aware_stats.mean() - 1.0) * 100.0;
      csv.writer().row(topo::to_string(family), to_string(algorithm),
                       aware_stats.mean(), oblivious_stats.mean(),
                       penalty_pct);
      table.add_row({std::string(topo::to_string(family)),
                     std::string(to_string(algorithm)),
                     util::format_double(aware_stats.mean(), 2),
                     util::format_double(oblivious_stats.mean(), 2),
                     util::format_double(penalty_pct, 1) + "%"});
    }
  }
  std::cout << table.to_string(
                   "A1 — topology-aware vs Euclidean-oblivious costs "
                   "(realized delay on the true topology):")
            << "\nExpected shape: solving on straight-line distance realizes "
               "strictly worse\ndelay everywhere; the penalty is largest on "
               "hierarchical and BA families.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
