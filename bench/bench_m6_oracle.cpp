// M6: the pluggable DelayOracle — landmark/ALT approximation vs exact.
//
// Two phases, one report (BENCH_m6_oracle.json):
//
// Phase 1 — quality (moderate smart-city scenario). Two DynamicClusters,
// one on the exact oracle and one on --oracle=landmark, consume the SAME
// provider-generated link-churn stream and rebalance on the same cadence.
// Gates:
//   * solve_gap: the landmark cluster's assignment, re-priced with EXACT
//     delays, is within the certified eps of the exact cluster's average.
//   * envelope_containment: at every sampled epoch, for sampled
//     (device, server) pairs the exact delay lies inside the oracle's
//     [lo, hi] envelope and the served value within (1+eps)*exact (plus
//     quantization slack from the cold-row store).
// Phase 2 — scale (standalone landmark oracle, no engine, no dense rows).
// A generated topology with --devices IoT nodes (default 1M, 100k under
// --quick) and --servers edge servers; link churn is mirrored through
// apply_mutation(). Gates:
//   * memory_reduction: resident bytes are >= 10x below the exact
//     equivalent (per-server trees + dense device rows).
//   * incremental_invalidation: zero landmark rebuilds across the run —
//     churn must be absorbed by incremental tree repair.
//
//   ./bench_m6_oracle [--iot=400] [--edge=16] [--events=4000]
//                     [--devices=1000000] [--servers=256] [--landmarks=8]
//                     [--eps=0.1] [--workload=SPEC] [--seed=...] [--quick]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/dynamic.hpp"
#include "core/scenario.hpp"
#include "topology/failures.hpp"
#include "topology/generators.hpp"
#include "topology/network.hpp"
#include "topology/oracle/landmark.hpp"
#include "topology/oracle/oracle.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

constexpr const char* kDefaultWorkload =
    "regional_link_failure,outage_every_s=4,outage_s=2,radius_km=3,"
    "reweight_rate=10";

double max_finite(const std::vector<double>& row) {
  double best = 0.0;
  for (const double v : row) {
    if (v != topo::kUnreachable) best = std::max(best, v);
  }
  return best;
}

struct QualityResult {
  bool containment = true;
  double worst_gap = 0.0;
  double exact_fallback_rate = 0.0;
  std::uint64_t samples = 0;
};

/// Phase 1: exact and landmark clusters ride the same churn stream; the
/// landmark cluster's decisions are re-priced with exact delays.
QualityResult run_quality(const bench::BenchConfig& config,
                          bench::BenchReport& report, double eps,
                          std::size_t landmarks) {
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 150 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));
  const auto events = static_cast<std::size_t>(
      config.flags.get_int("events", config.quick ? 800 : 4'000));
  const std::string workload_spec = config.workload_or(kDefaultWorkload);

  const Scenario scenario = Scenario::smart_city(iot, edge, config.base_seed);
  AlgorithmOptions algorithm_options;
  algorithm_options.apply_seed(config.base_seed);

  ConfigureRequest exact_request(Algorithm::kGreedyBestFit, algorithm_options);
  ConfigureRequest landmark_request = exact_request;
  landmark_request.oracle.backend = topo::oracle::OracleBackend::kLandmark;
  landmark_request.oracle.landmarks = landmarks;
  landmark_request.oracle.max_rel_error = eps;
  landmark_request.oracle.seed = config.base_seed;

  DynamicCluster exact_cluster(scenario, exact_request);
  DynamicCluster landmark_cluster(scenario, landmark_request);

  const workload::ProviderContext ctx =
      bench::provider_context(scenario, config.base_seed);
  auto provider = workload::make_provider(workload_spec, ctx);

  bench::CsvFile csv(config, "m6_oracle");
  csv.writer().header({"event", "exact_avg_ms", "landmark_true_avg_ms",
                       "gap_rel", "bound_hits", "exact_fallbacks"});

  QualityResult result;
  const std::size_t sample_every = std::max<std::size_t>(1, events / 25);
  util::Rng sample_rng(config.base_seed ^ 0x6E6Eu);
  std::size_t event_count = 0;

  while (event_count < events && result.containment) {
    for (const workload::Event& event : provider->step(1.0)) {
      if (event_count >= events || !result.containment) break;
      const auto& [u, v] = ctx.links[event.link];
      switch (event.kind) {
        case workload::EventKind::kLinkFail:
          exact_cluster.fail_link(u, v);
          landmark_cluster.fail_link(u, v);
          break;
        case workload::EventKind::kLinkRestore:
          exact_cluster.restore_link(u, v);
          landmark_cluster.restore_link(u, v);
          break;
        case workload::EventKind::kLinkSetLatency:
          exact_cluster.set_link_latency(u, v, event.latency_ms);
          landmark_cluster.set_link_latency(u, v, event.latency_ms);
          break;
        default:
          continue;  // device churn is out of scope here
      }
      const std::size_t event_index = event_count++;
      if (event_index % sample_every != 0 && event_index + 1 != events) {
        continue;
      }

      // Same repair budget on both sides: the landmark cluster rebalances
      // on approximate costs, the exact one on the truth.
      exact_cluster.rebalance(32);
      landmark_cluster.rebalance(32);

      // Re-price the landmark cluster's assignment with EXACT delays (both
      // networks saw the identical mutation stream, so the exact cluster's
      // rows are ground truth for any (device, server) pair).
      double exact_sum = 0.0;
      double landmark_true_sum = 0.0;
      std::size_t reachable = 0;
      for (std::size_t i = 0; i < iot; ++i) {
        const std::vector<double>& truth = exact_cluster.delay_row(i);
        const double exact_delay = truth[exact_cluster.server_of(i)];
        const double landmark_delay = truth[landmark_cluster.server_of(i)];
        if (exact_delay == topo::kUnreachable ||
            landmark_delay == topo::kUnreachable) {
          continue;  // outage islands price as inf on both sides
        }
        exact_sum += exact_delay;
        landmark_true_sum += landmark_delay;
        ++reachable;
      }
      const double gap_rel =
          exact_sum > 0.0 ? (landmark_true_sum - exact_sum) / exact_sum : 0.0;
      result.worst_gap = std::max(result.worst_gap, gap_rel);

      // Envelope containment + served-value bound on sampled pairs.
      const topo::oracle::DelayOracle& oracle =
          landmark_cluster.delay_oracle();
      for (std::size_t s = 0; s < 16 && result.containment; ++s) {
        const std::size_t i = sample_rng.index(iot);
        const std::size_t j = sample_rng.index(edge);
        const double exact_delay = exact_cluster.delay_row(i)[j];
        const topo::oracle::DelayBounds bounds = oracle.bounds_ms(i, j);
        const std::vector<double>& served_row = oracle.row(i);
        // Quantized cold rows decode within one scale step above the stored
        // value; allow that on top of the certified envelope.
        const double q_slack = max_finite(served_row) / 65534.0 + 1e-6;
        const double served = served_row[j];
        ++result.samples;
        if (exact_delay == topo::kUnreachable) {
          if (served != topo::kUnreachable) result.containment = false;
          continue;
        }
        const double fp_slack = 1e-9 * (1.0 + exact_delay);
        if (bounds.lo_ms > exact_delay + fp_slack ||
            (bounds.hi_ms != topo::kUnreachable &&
             bounds.hi_ms + fp_slack < exact_delay)) {
          std::cerr << "envelope [" << bounds.lo_ms << ", " << bounds.hi_ms
                    << "] excludes exact " << exact_delay << " at (" << i
                    << ", " << j << ")\n";
          result.containment = false;
        }
        if (served + fp_slack < exact_delay - q_slack ||
            served > (1.0 + eps) * exact_delay + fp_slack + q_slack) {
          std::cerr << "served " << served << " outside (1+eps) of exact "
                    << exact_delay << " at (" << i << ", " << j << ")\n";
          result.containment = false;
        }
      }
      landmark_cluster.check_invariants();

      const topo::oracle::OracleStats& stats = oracle.stats();
      const auto denom =
          static_cast<double>(std::max<std::size_t>(1, reachable));
      csv.writer().row(event_index, exact_sum / denom,
                       landmark_true_sum / denom, gap_rel,
                       static_cast<double>(stats.bound_hits),
                       static_cast<double>(stats.exact_fallbacks));
    }
  }

  const topo::oracle::OracleStats& stats =
      landmark_cluster.delay_oracle().stats();
  const std::uint64_t answered = stats.bound_hits + stats.exact_fallbacks;
  result.exact_fallback_rate =
      answered > 0 ? static_cast<double>(stats.exact_fallbacks) /
                         static_cast<double>(answered)
                   : 0.0;

  report.metric("quality_events", static_cast<double>(event_count));
  report.metric("solve_gap_rel", result.worst_gap);
  report.metric("exact_fallback_rate", result.exact_fallback_rate);
  report.metric("containment_samples", static_cast<double>(result.samples));
  report.gate("solve_gap", result.worst_gap <= eps + 1e-9);
  report.gate("envelope_containment", result.containment);
  return result;
}

/// Phase 2: standalone landmark oracle on a ~100x-larger topology than
/// bench_f7 ever touches. No engine, no dense rows — the point is that
/// resident memory stays k trees + a bounded row store.
void run_scale(const bench::BenchConfig& config, bench::BenchReport& report,
               std::size_t landmarks) {
  const std::size_t devices =
      config.devices > 0 ? config.devices : (config.quick ? 100'000 : 1'000'000);
  // Server count stays at 256 even under --quick: the exact-equivalent
  // footprint scales with it while the landmark side's barely moves, so
  // shrinking it would make the memory gate measure the wrong thing.
  const std::size_t servers = config.servers > 0 ? config.servers : 256;
  const std::size_t routers = config.quick ? 256 : 512;
  const std::size_t rounds = config.quick ? 32 : 64;

  util::Rng rng(config.base_seed ^ 0x5CA1Eu);
  topo::LinkDelayModel delay_model;
  topo::GeneratorParams params;
  params.node_count = routers;
  params.area_km = 50.0;
  const topo::GeoGraph infra =
      topo::generate(topo::TopologyFamily::kWaxman, params, delay_model, rng);

  std::vector<topo::Point2D> iot_positions(devices);
  std::vector<topo::Point2D> edge_positions(servers);
  for (auto& p : iot_positions) {
    p = {rng.uniform(0.0, params.area_km), rng.uniform(0.0, params.area_km)};
  }
  for (auto& p : edge_positions) {
    p = {rng.uniform(0.0, params.area_km), rng.uniform(0.0, params.area_km)};
  }
  util::WallTimer timer;
  topo::NetworkTopology net = topo::build_network(
      infra, iot_positions, edge_positions, delay_model);
  const double build_ms = timer.elapsed_ms();

  topo::oracle::OracleConfig oracle_config;
  oracle_config.backend = topo::oracle::OracleBackend::kLandmark;
  oracle_config.landmarks = landmarks;
  // Looser than phase 1: at this scale the gate is memory and incremental
  // repair; fallbacks are counted, not gated.
  oracle_config.max_rel_error = 0.25;
  oracle_config.seed = config.base_seed;
  timer.reset();
  topo::oracle::LandmarkOracle oracle(net, oracle_config);
  for (std::size_t i = 0; i < devices; ++i) {
    oracle.bind_row(i, net.iot_nodes[i]);
  }
  const double select_ms = timer.elapsed_ms();

  const auto links = topo::backbone_links(net);
  timer.reset();
  for (std::size_t round = 0; round < rounds; ++round) {
    // Reweight a random backbone link, mirrored into the oracle exactly
    // the way the engine's MutationListener would deliver it.
    const auto& [u, v] = links[rng.index(links.size())];
    const double new_ms = rng.uniform(0.5, 8.0);
    const topo::EdgeProps old_props = net.set_link_latency(u, v, new_ms);
    oracle.apply_mutation(/*kind=*/2, u, v, old_props.latency_ms, new_ms);
    oracle.refresh();
    for (std::size_t q = 0; q < 4; ++q) {
      (void)oracle.row(rng.index(devices));
    }
    if (round % (rounds / 4) == 0) oracle.check_invariants();
  }
  const double churn_ms = timer.elapsed_ms();

  const std::size_t graph_nodes = net.graph.node_count();
  // What the exact backend would hold at this size: one shortest-path tree
  // per server (8B distance + 4B parent per node) plus a dense 8B row entry
  // per (device, server).
  const double exact_equiv_bytes =
      static_cast<double>(servers) * static_cast<double>(graph_nodes) * 12.0 +
      static_cast<double>(devices) * static_cast<double>(servers) * 8.0;
  const double resident = static_cast<double>(oracle.resident_bytes());
  const double memory_ratio = resident > 0.0 ? exact_equiv_bytes / resident
                                             : 0.0;
  const topo::oracle::OracleStats& stats = oracle.stats();

  util::ConsoleTable table({"metric", "value"});
  table.add_row({"devices", std::to_string(devices)});
  table.add_row({"servers", std::to_string(servers)});
  table.add_row({"landmarks", std::to_string(oracle.landmark_nodes().size())});
  table.add_row({"build network (ms)", util::format_double(build_ms, 1)});
  table.add_row({"landmark selection (ms)",
                 util::format_double(select_ms, 1)});
  table.add_row({"churn+queries (ms)", util::format_double(churn_ms, 1)});
  table.add_row({"resident bytes", util::format_double(resident, 0)});
  table.add_row({"exact-equivalent bytes",
                 util::format_double(exact_equiv_bytes, 0)});
  table.add_row({"memory ratio", util::format_double(memory_ratio, 1) + "x"});
  table.add_row({"landmark rebuilds", std::to_string(stats.rebuilds)});
  table.add_row({"row fills", std::to_string(stats.row_fills)});
  std::cout << table.to_string("M6 phase 2 — standalone landmark oracle at "
                               "scale:");

  report.metric("devices", static_cast<double>(devices));
  report.metric("servers", static_cast<double>(servers));
  report.metric("landmarks",
                static_cast<double>(oracle.landmark_nodes().size()));
  report.metric("memory_ratio", memory_ratio);
  report.metric("resident_bytes", resident);
  report.metric("exact_equiv_bytes", exact_equiv_bytes);
  report.metric("scale_rebuilds", static_cast<double>(stats.rebuilds));

  const bool memory_ok = memory_ratio >= 10.0;
  if (!memory_ok) {
    std::cerr << "memory ratio " << memory_ratio
              << "x is below the 10x floor\n";
  }
  report.gate("memory_reduction", memory_ok);
  const bool incremental = stats.rebuilds == 0;
  if (!incremental) {
    std::cerr << stats.rebuilds << " full landmark rebuilds mid-run\n";
  }
  report.gate("incremental_invalidation", incremental);
}

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const double eps = config.flags.get_double("eps", 0.1);
  const auto landmarks =
      static_cast<std::size_t>(config.flags.get_int("landmarks", 8));

  bench::BenchReport report(config, "m6_oracle");
  report.set_provider(config.workload_or(kDefaultWorkload));
  report.metric("certified_eps", eps);

  const QualityResult quality = run_quality(config, report, eps, landmarks);
  run_scale(config, report, landmarks);

  report.write();
  const bool ok = report.all_gates_passed();
  if (ok) {
    std::cout << "All oracle gates passed: solve gap "
              << util::format_double(quality.worst_gap, 4) << " <= eps " << eps
              << ", envelopes contain exact, 10x+ memory reduction, "
                 "incremental invalidation.\n";
  }
  config.check_unused();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
