// F1 (reconstructed): average communication delay vs the number of IoT
// devices at fixed cluster size — the load-scaling figure.
#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));

  bench::CsvFile csv(config, "f1_delay_vs_iot");
  csv.writer().header({"iot_count", "algorithm", "mean_avg_delay_ms",
                       "ci95", "feasible_fraction"});

  const std::vector<std::size_t> iot_counts =
      config.quick ? std::vector<std::size_t>{100, 400}
                   : std::vector<std::size_t>{100, 250, 500, 750, 1000};
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kFlowRelaxRepair,
      Algorithm::kQLearning,     Algorithm::kUcbRollout};

  util::ConsoleTable table({"n", "algorithm", "avg delay (ms)", "feasible"});
  for (std::size_t n : iot_counts) {
    for (Algorithm algorithm : algorithms) {
      const AlgoStats stats = run_repeated(
          [&](std::uint64_t seed) {
            return Scenario::smart_city(n, edge, seed);
          },
          algorithm, config.repeats, config.base_seed,
          bench::experiment_options(config.quick));
      csv.writer().row(n, to_string(algorithm), stats.avg_delay_ms.mean(),
                       metrics::ci95_half_width(stats.avg_delay_ms),
                       stats.feasible_fraction());
      table.add_row({std::to_string(n), std::string(to_string(algorithm)),
                     mean_ci(stats.avg_delay_ms, 2),
                     util::format_double(stats.feasible_fraction(), 2)});
    }
  }
  std::cout << table.to_string(
                   "F1 — avg delay vs #IoT devices (m=" +
                   std::to_string(edge) + ", rho=0.7):")
            << "\nExpected shape: delay grows with n for capacity-aware "
               "methods as servers\nfill; RL stays lowest among feasible; "
               "oblivious nearest is flat but infeasible.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
