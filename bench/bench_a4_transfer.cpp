// A4 (extension): transfer learning — train the Q-policy once, apply it to
// fresh scenarios of the same character with zero training, and compare
// against (a) training from scratch on every scenario and (b) the greedy
// baseline. The state abstraction is instance-independent, so this measures
// how much of what the agent learns is *reusable structure* vs instance
// memorization.
#include "bench/bench_common.hpp"
#include "rl/policy.hpp"
#include "util/timer.hpp"
#include "solvers/flow_based.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 500));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 20));
  const std::size_t targets = config.quick ? 3 : 8;

  bench::CsvFile csv(config, "a4_transfer");
  csv.writer().header({"target_seed", "method", "gap_pct", "feasible",
                       "wall_ms"});

  // Train once on a scenario the targets never see.
  rl::RlOptions train_options;
  if (config.quick) train_options.episodes = 200;
  train_options.seed = config.base_seed;
  const Scenario nursery = Scenario::smart_city(iot, edge, config.base_seed);
  util::WallTimer train_timer;
  const rl::TrainedPolicy policy = rl::train_policy(
      nursery.instance(), train_options, rl::TdVariant::kQLearning);
  const double train_ms = train_timer.elapsed_ms();

  struct MethodStats {
    metrics::RunningStats gap;
    metrics::RunningStats wall;
    std::size_t feasible = 0;
  };
  MethodStats transfer, scratch, greedy;

  for (std::size_t t = 1; t <= targets; ++t) {
    const std::uint64_t seed = config.base_seed + 1000 + t;
    const Scenario target = Scenario::smart_city(iot, edge, seed);
    const auto bounds = solvers::compute_lower_bounds(target.instance());
    const auto record = [&](MethodStats& stats, const char* name,
                            const solvers::SolveResult& result) {
      const double gap_pct =
          (result.total_cost / bounds.splittable_flow - 1.0) * 100.0;
      csv.writer().row(seed, name, gap_pct, result.feasible ? 1 : 0,
                       result.wall_ms);
      stats.gap.add(gap_pct);
      stats.wall.add(result.wall_ms);
      if (result.feasible) ++stats.feasible;
    };

    record(transfer, "transfer (apply trained policy)",
           rl::apply_policy(target.instance(), policy, {.seed = seed}));
    rl::RlOptions fresh = train_options;
    fresh.seed = seed;
    rl::QLearningSolver fresh_solver(fresh);
    record(scratch, "scratch (train per scenario)",
           fresh_solver.solve(target.instance()));
    AlgorithmOptions options;
    options.apply_seed(seed);
    record(greedy, "greedy-bestfit",
           make_solver(Algorithm::kGreedyBestFit, options)
               ->solve(target.instance()));
  }

  util::ConsoleTable table(
      {"method", "mean gap vs LB", "feasible", "wall per target (ms)"});
  const auto row = [&](const char* name, const MethodStats& stats) {
    table.add_row({name, mean_ci(stats.gap, 2) + "%",
                   util::format_double(static_cast<double>(stats.feasible) /
                                           static_cast<double>(targets),
                                       2),
                   util::format_double(stats.wall.mean(), 1)});
  };
  row("transfer (apply trained policy)", transfer);
  row("scratch (train per scenario)", scratch);
  row("greedy-bestfit", greedy);
  std::cout << table.to_string(
                   "A4 — policy transfer across scenarios (one-time training "
                   "cost " + util::format_double(train_ms, 0) + " ms, " +
                   std::to_string(targets) + " unseen targets):")
            << "\nExpected shape: transfer lands between greedy and "
               "per-scenario training in\nquality at a fraction of the "
               "per-target cost — the state abstraction carries.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
