// A7 (extension): validation of the analytic (M/D/1) delay predictor
// against the packet-level simulator, per algorithm. The predictor is
// ~1000× faster; this bench quantifies what accuracy that buys.
#include "bench/bench_common.hpp"
#include "sim/analytic.hpp"
#include "util/timer.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 150 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 16));
  const double duration_s =
      config.flags.get_double("duration", config.quick ? 8.0 : 20.0);

  bench::CsvFile csv(config, "a7_analytic");
  csv.writer().header({"algorithm", "seed", "analytic_ms", "simulated_ms",
                       "error_pct", "analytic_wall_ms", "sim_wall_ms"});

  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyBestFit, Algorithm::kRegretGreedy,
      Algorithm::kQLearning, Algorithm::kUcbRollout};

  util::ConsoleTable table({"algorithm", "analytic (ms)", "simulated (ms)",
                            "error", "speedup"});
  for (Algorithm algorithm : algorithms) {
    metrics::RunningStats analytic_stats, sim_stats, error_stats;
    metrics::RunningStats analytic_wall, sim_wall;
    for (std::size_t r = 0; r < config.repeats; ++r) {
      const std::uint64_t seed = config.base_seed + r;
      const Scenario scenario = Scenario::smart_city(iot, edge, seed);
      AlgorithmOptions options = bench::experiment_options(config.quick);
      options.apply_seed(seed);
      const auto conf =
          ClusterConfigurator(scenario).configure({algorithm, options});

      util::WallTimer analytic_timer;
      const sim::AnalyticResult analytic = sim::predict_delays(
          scenario.network(), scenario.workload(), conf.assignment());
      analytic_wall.add(analytic_timer.elapsed_ms());

      util::WallTimer sim_timer;
      sim::SimParams sim_params;
      sim_params.duration_s = duration_s;
      sim_params.warmup_s = duration_s / 5.0;
      sim_params.seed = seed;
      const sim::SimResult sim = sim::simulate(
          scenario.network(), scenario.workload(), conf.assignment(),
          sim_params);
      sim_wall.add(sim_timer.elapsed_ms());

      const double error_pct =
          (analytic.mean_delay_ms / sim.mean_delay_ms() - 1.0) * 100.0;
      csv.writer().row(to_string(algorithm), seed, analytic.mean_delay_ms,
                       sim.mean_delay_ms(), error_pct,
                       analytic_wall.max(), sim_wall.max());
      analytic_stats.add(analytic.mean_delay_ms);
      sim_stats.add(sim.mean_delay_ms());
      error_stats.add(error_pct);
    }
    table.add_row({std::string(to_string(algorithm)),
                   util::format_double(analytic_stats.mean(), 2),
                   util::format_double(sim_stats.mean(), 2),
                   mean_ci(error_stats, 1) + "%",
                   util::format_double(sim_wall.mean() /
                                           std::max(1e-6,
                                                    analytic_wall.mean()),
                                       0) + "x"});
  }
  std::cout << table.to_string(
                   "A7 — analytic M/D/1 predictor vs packet simulation "
                   "(n=" + std::to_string(iot) + ", m=" +
                   std::to_string(edge) + "):")
            << "\nExpected shape: analytic mean within ~10% of simulated "
               "(slight underestimate:\nlink queueing ignored) at a "
               "hundreds-to-thousands-fold speedup.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
