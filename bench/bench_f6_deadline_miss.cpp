// F6 (reconstructed): deadline-miss rate vs deadline stringency — the
// "real-time applications working under stringent deadlines" figure.
//
// One simulation per algorithm produces the full per-message delay sample;
// the miss rate at deadline d is then the empirical fraction of delays > d
// (equivalent to re-running with uniform deadline d, far cheaper).
#include <algorithm>

#include "bench/bench_common.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(
      config.flags.get_int("iot", config.quick ? 200 : 400));
  const auto edge = static_cast<std::size_t>(config.flags.get_int("edge", 12));
  const double duration_s =
      config.flags.get_double("duration", config.quick ? 8.0 : 20.0);

  bench::CsvFile csv(config, "f6_deadline_miss");
  csv.writer().header({"deadline_ms", "algorithm", "miss_rate"});

  // Factory preset: tight capacity, small area — the stringent regime.
  const Scenario scenario = Scenario::factory(iot, edge, config.base_seed);
  const ClusterConfigurator configurator(scenario);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kGreedyNearest, Algorithm::kGreedyBestFit,
      Algorithm::kRegretGreedy,  Algorithm::kQLearning,
      Algorithm::kUcbRollout};
  const std::vector<double> deadlines = {5.0,  7.5,  10.0, 15.0,
                                         20.0, 30.0, 50.0};

  util::ConsoleTable table({"algorithm", "miss@5ms", "miss@10ms", "miss@20ms",
                            "miss@50ms"});
  for (Algorithm algorithm : algorithms) {
    AlgorithmOptions options = bench::experiment_options(config.quick);
    options.apply_seed(config.base_seed);
    const ClusterConfiguration conf =
        configurator.configure({algorithm, options});
    sim::SimParams sim_params;
    sim_params.duration_s = duration_s;
    sim_params.warmup_s = duration_s / 10.0;
    sim_params.seed = config.base_seed;
    const sim::SimResult sim = sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(),
        sim_params);

    std::vector<double> sorted = sim.delay_ms.values();
    std::sort(sorted.begin(), sorted.end());
    const auto miss_rate = [&](double deadline) {
      const auto it =
          std::upper_bound(sorted.begin(), sorted.end(), deadline);
      return 1.0 - static_cast<double>(it - sorted.begin()) /
                       static_cast<double>(sorted.size());
    };
    std::vector<std::string> row{std::string(to_string(algorithm))};
    for (double d : deadlines) {
      csv.writer().row(d, to_string(algorithm), miss_rate(d));
    }
    for (double d : {5.0, 10.0, 20.0, 50.0}) {
      row.push_back(util::format_double(miss_rate(d), 4));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string(
                   "F6 — deadline-miss rate vs deadline (factory preset, "
                   "n=" + std::to_string(iot) + ", m=" +
                   std::to_string(edge) + "):")
            << "\nExpected shape: RL lowest miss rate at every deadline; "
               "the advantage is\nlargest at the most stringent deadlines; "
               "oblivious nearest misses nearly always.\n";
  config.check_unused();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
