// Streaming and batch statistics used across experiments.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace tacc::metrics {

/// Welford streaming moments: O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantile of a sample by linear interpolation between order
/// statistics (the "linear" / type-7 definition). q in [0,1]; the input is
/// copied and sorted. NaN for an empty sample.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Batch convenience summary.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// 95% confidence half-width for the mean (normal approximation);
/// 0 for fewer than two samples.
[[nodiscard]] double ci95_half_width(const RunningStats& stats) noexcept;

/// Collects raw samples for percentile/CDF extraction while also exposing
/// streaming moments. Used for per-message delays in the simulator.
class SampleSet {
 public:
  void add(double value) {
    values_.push_back(value);
    stats_.add(value);
  }

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double percentile(double q) const {
    return metrics::percentile(values_, q);
  }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

 private:
  std::vector<double> values_;
  RunningStats stats_;
};

}  // namespace tacc::metrics
