#include "metrics/fairness.hpp"

#include <algorithm>
#include <cmath>

namespace tacc::metrics {

double jain_fairness(std::span<const double> loads) noexcept {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : loads) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(loads.size()) * sum_sq);
}

double imbalance_ratio(std::span<const double> loads) noexcept {
  if (loads.empty()) return 0.0;
  double sum = 0.0;
  double peak = -std::numeric_limits<double>::infinity();
  for (double x : loads) {
    sum += x;
    peak = std::max(peak, x);
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean == 0.0 ? 0.0 : peak / mean;
}

double coefficient_of_variation(std::span<const double> loads) noexcept {
  if (loads.empty()) return 0.0;
  double sum = 0.0;
  for (double x : loads) sum += x;
  const double mean = sum / static_cast<double>(loads.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (double x : loads) var += (x - mean) * (x - mean);
  var /= static_cast<double>(loads.size());
  return std::sqrt(var) / mean;
}

}  // namespace tacc::metrics
