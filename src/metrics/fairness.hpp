// Load-distribution metrics for edge-server utilization.
#pragma once

#include <span>

namespace tacc::metrics {

/// Jain's fairness index: (Σx)² / (n·Σx²) ∈ (0, 1]; 1 means perfectly even.
/// Returns 1.0 for an empty or all-zero input (vacuously fair).
[[nodiscard]] double jain_fairness(std::span<const double> loads) noexcept;

/// max(x) / mean(x); 1 means perfectly balanced. 0 for empty input.
[[nodiscard]] double imbalance_ratio(std::span<const double> loads) noexcept;

/// Coefficient of variation: stddev/mean (population stddev). 0 if mean==0.
[[nodiscard]] double coefficient_of_variation(
    std::span<const double> loads) noexcept;

}  // namespace tacc::metrics
