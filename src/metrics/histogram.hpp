// Fixed-bin histogram and empirical CDF extraction for delay distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tacc::metrics {

/// Equal-width bins over [lo, hi); finite samples outside (and ±inf) are
/// clamped to the boundary bins so no observation is silently dropped. NaN
/// has no meaningful bin: it is excluded from total() and reported via
/// nan_count() instead.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// NaN samples seen by add(); they land in no bin.
  [[nodiscard]] std::size_t nan_count() const noexcept { return nan_; }
  [[nodiscard]] std::size_t count_at(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] double bin_lower(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_upper(std::size_t bin) const noexcept;

  /// Cumulative fraction of samples with value < bin_upper(bin).
  [[nodiscard]] double cdf_at(std::size_t bin) const noexcept;

  /// Approximate q-quantile (q in [0,1]) from the binned counts, linearly
  /// interpolated within the bin that crosses the target rank — resolution
  /// is one bin width. NaN for an empty histogram; q is clamped to [0,1].
  /// Lets long-running services report p50/p99/p999 from O(bins) memory
  /// instead of retaining every sample.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// ASCII rendering for example programs ("#" bars, one bin per line).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

/// (x, F(x)) points of the empirical CDF of `values` evaluated at each
/// distinct sample, suitable for CSV plotting. Sorted by x.
struct CdfPoint {
  double x;
  double fraction;
};
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> values);

}  // namespace tacc::metrics
