#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tacc::metrics {

void RunningStats::add(double value) noexcept {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  RunningStats stats;
  for (double v : values) stats.add(v);
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.count() ? stats.min() : 0.0;
  s.max = stats.count() ? stats.max() : 0.0;
  if (!values.empty()) {
    s.p50 = percentile(values, 0.50);
    s.p95 = percentile(values, 0.95);
    s.p99 = percentile(values, 0.99);
  }
  return s;
}

double ci95_half_width(const RunningStats& stats) noexcept {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

}  // namespace tacc::metrics
