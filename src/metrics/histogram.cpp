#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tacc::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram requires lo < hi and bins > 0");
  }
}

void Histogram::add(double value) noexcept {
  if (std::isnan(value)) {
    // Casting floor(NaN) to an integer is UB; NaN has no bin — count it
    // aside so callers can still detect poisoned series.
    ++nan_;
    return;
  }
  // Compare before casting: ±inf (also UB to cast) clamps to the boundary
  // bins like any other out-of-range sample.
  std::size_t bin = 0;
  if (value >= hi_) {
    bin = counts_.size() - 1;
  } else if (value > lo_) {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    bin = std::min(static_cast<std::size_t>((value - lo_) / width),
                   counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const noexcept {
  return bin_lower(bin + 1);
}

double Histogram::cdf_at(std::size_t bin) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b <= bin && b < counts_.size(); ++b) {
    cumulative += counts_[b];
  }
  return static_cast<double>(cumulative) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) >= target) {
      // Interpolate the crossing point inside this bin.
      const double inside =
          counts_[b] == 0 ? 0.0
                          : (target - before) / static_cast<double>(counts_[b]);
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return bin_lower(b) + std::clamp(inside, 0.0, 1.0) * width;
    }
  }
  return bin_upper(counts_.size() - 1);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << '[' << bin_lower(b) << ", " << bin_upper(b) << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> points;
  points.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values to a single point at the run's end.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    points.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return points;
}

}  // namespace tacc::metrics
