// UCB1-rollout heuristic: the third "RL based" algorithm.
//
// Devices are committed one at a time (largest demand first). For the device
// in hand, each of its K candidate servers is an arm; pulling an arm plays
// the tentative assignment and completes the remaining devices with a
// randomized greedy rollout, observing the final (penalty-adjusted) episode
// cost. UCB1 spends the per-device rollout budget on the most promising
// arms; the arm with the best mean is committed. A Monte-Carlo tree search
// of depth one — far cheaper than Q-learning, no training phase, and
// markedly better look-ahead than pure greedy.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::rl {

struct UcbRolloutOptions {
  std::size_t candidate_count = 4;   ///< arms per device (K nearest)
  std::size_t rollouts_per_device = 12;  ///< total pulls across arms
  double exploration = 1.2;          ///< UCB1 exploration constant
  double overload_penalty_factor = 4.0;  ///< × max cost entry per violation
  std::uint64_t seed = 1;
};

class UcbRolloutSolver final : public solvers::Solver {
 public:
  explicit UcbRolloutSolver(UcbRolloutOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ucb-rollout";
  }
  [[nodiscard]] solvers::SolveResult solve(
      const gap::Instance& instance) override;

 private:
  UcbRolloutOptions options_;
};

}  // namespace tacc::rl
