// Trained-policy reuse: persistence and cross-instance transfer.
//
// Because the environment's state abstraction is device- and
// instance-independent (buckets of demand, delay spread and residual
// capacity — never raw ids), a Q-table learned on one scenario can steer
// assignment on *another* scenario of similar character with zero training:
// replay the greedy policy over a few shuffled orders and polish. This is
// the "train once, configure many clusters" mode of operation, and the A4
// experiment quantifies what it trades against training from scratch.
#pragma once

#include <iosfwd>
#include <string>

#include "rl/qlearning.hpp"

namespace tacc::rl {

/// A learned policy: the Q-table plus the env options it was trained under
/// (the state encoding must match exactly when the policy is applied).
struct TrainedPolicy {
  EnvOptions env;
  QTable table{0, 0};
};

/// Trains on `instance` and returns the policy (same loop as train()).
[[nodiscard]] TrainedPolicy train_policy(const gap::Instance& instance,
                                         const RlOptions& options,
                                         TdVariant variant);

struct ApplyOptions {
  /// Greedy episodes over shuffled device orders; best one is kept.
  std::size_t eval_episodes = 16;
  bool polish = true;
  std::uint64_t seed = 1;
};

/// Applies a trained policy to a (possibly different) instance with no
/// learning: greedy action selection under the feasibility mask. The
/// instance must have at least as many servers as the policy's candidate
/// count expects (the env clamps K otherwise). Throws std::invalid_argument
/// if the table is empty or its shape cannot serve the env options.
[[nodiscard]] solvers::SolveResult apply_policy(const gap::Instance& instance,
                                                const TrainedPolicy& policy,
                                                const ApplyOptions& options);

// ---- Persistence -----------------------------------------------------------
// Line-oriented text format ("tacc-policy v1"): env options, table shape,
// then one Q value per line. Exact round trip (max-precision doubles).

void save_policy(const TrainedPolicy& policy, std::ostream& out);
[[nodiscard]] TrainedPolicy load_policy(std::istream& in);
void save_policy_file(const TrainedPolicy& policy, const std::string& path);
[[nodiscard]] TrainedPolicy load_policy_file(const std::string& path);

}  // namespace tacc::rl
