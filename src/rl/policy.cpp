#include "rl/policy.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/timer.hpp"

namespace tacc::rl {

TrainedPolicy train_policy(const gap::Instance& instance,
                           const RlOptions& options, TdVariant variant) {
  TrainedPolicy policy;
  policy.env = options.env;
  (void)train(instance, options, variant, &policy.table);
  return policy;
}

solvers::SolveResult apply_policy(const gap::Instance& instance,
                                  const TrainedPolicy& policy,
                                  const ApplyOptions& options) {
  if (policy.table.state_count() == 0 || policy.table.action_count() == 0) {
    throw std::invalid_argument("apply_policy: empty policy table");
  }
  util::WallTimer timer;
  AssignmentEnv env(instance, policy.env, options.seed);
  if (env.state_count() != policy.table.state_count() ||
      env.action_count() != policy.table.action_count()) {
    throw std::invalid_argument(
        "apply_policy: policy table shape does not match the environment "
        "induced by its env options on this instance (server count below "
        "the policy's candidate count?)");
  }

  gap::Assignment best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool best_feasible = false;
  std::size_t steps = 0;
  const std::size_t episodes = std::max<std::size_t>(1, options.eval_episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    env.reset();
    while (!env.done()) {
      (void)env.step(policy.table.best_action(env.state(),
                                              env.feasible_mask()));
      ++steps;
    }
    const bool feasible = env.episode_feasible();
    const double cost = env.episode_cost();
    const bool better = (feasible && !best_feasible) ||
                        (feasible == best_feasible && cost < best_cost);
    if (better) {
      best = env.assignment();
      best_cost = cost;
      best_feasible = feasible;
    }
  }
  if (options.polish) {
    solvers::LocalSearchOptions polish_options;
    polish_options.seed = options.seed + 17;
    steps += local_search_improve(instance, best, polish_options);
  }
  return solvers::detail::finish(instance, std::move(best),
                                 timer.elapsed_ms(), steps);
}

void save_policy(const TrainedPolicy& policy, std::ostream& out) {
  out << "tacc-policy v1\n";
  out << "env," << policy.env.candidate_count << ','
      << policy.env.load_buckets << ',' << policy.env.demand_buckets << ','
      << policy.env.spread_buckets << ','
      << std::setprecision(17) << policy.env.overload_penalty << ','
      << (policy.env.shuffle_order ? 1 : 0) << '\n';
  out << "table," << policy.table.state_count() << ','
      << policy.table.action_count() << '\n';
  for (std::size_t s = 0; s < policy.table.state_count(); ++s) {
    for (std::size_t a = 0; a < policy.table.action_count(); ++a) {
      out << policy.table.get(s, a) << '\n';
    }
  }
}

TrainedPolicy load_policy(std::istream& in) {
  const auto fail = [](const std::string& what) -> TrainedPolicy {
    throw std::runtime_error("tacc-policy: " + what);
  };
  std::string line;
  if (!std::getline(in, line) || line != "tacc-policy v1") {
    return fail("bad magic line");
  }
  TrainedPolicy policy;
  if (!std::getline(in, line) || !line.starts_with("env,")) {
    return fail("expected env line");
  }
  {
    std::istringstream fields(line.substr(4));
    char comma;
    int shuffle = 1;
    if (!(fields >> policy.env.candidate_count >> comma >>
          policy.env.load_buckets >> comma >> policy.env.demand_buckets >>
          comma >> policy.env.spread_buckets >> comma >>
          policy.env.overload_penalty >> comma >> shuffle)) {
      return fail("malformed env line");
    }
    policy.env.shuffle_order = shuffle != 0;
  }
  if (!std::getline(in, line) || !line.starts_with("table,")) {
    return fail("expected table line");
  }
  std::size_t states = 0;
  std::size_t actions = 0;
  {
    std::istringstream fields(line.substr(6));
    char comma;
    if (!(fields >> states >> comma >> actions) || states == 0 ||
        actions == 0) {
      return fail("malformed table shape");
    }
  }
  policy.table = QTable(states, actions);
  for (std::size_t s = 0; s < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      double value = 0.0;
      if (!(in >> value)) return fail("truncated Q values");
      policy.table.set(s, a, value);
    }
  }
  return policy;
}

void save_policy_file(const TrainedPolicy& policy, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_policy(policy, out);
}

TrainedPolicy load_policy_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_policy(in);
}

}  // namespace tacc::rl
