#include "rl/environment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tacc::rl {

namespace {
constexpr double kEps = 1e-9;

/// Index of `value` among sorted `thresholds` (bucket 0..thresholds.size()).
[[nodiscard]] std::uint8_t bucket_of(double value,
                                     const std::vector<double>& thresholds) {
  std::uint8_t b = 0;
  for (double t : thresholds) {
    if (value <= t) break;
    ++b;
  }
  return b;
}

/// Quantile thresholds splitting `values` into `buckets` equal-count bins.
[[nodiscard]] std::vector<double> quantile_thresholds(
    std::vector<double> values, std::size_t buckets) {
  std::vector<double> thresholds;
  if (buckets <= 1 || values.empty()) return thresholds;
  std::sort(values.begin(), values.end());
  for (std::size_t b = 1; b < buckets; ++b) {
    const std::size_t idx =
        std::min(values.size() - 1, b * values.size() / buckets);
    thresholds.push_back(values[idx]);
  }
  return thresholds;
}

}  // namespace

AssignmentEnv::AssignmentEnv(const gap::Instance& instance, EnvOptions options,
                             std::uint64_t seed)
    : instance_(&instance),
      options_(options),
      k_(std::min(options.candidate_count, instance.server_count())),
      rng_(seed) {
  if (k_ == 0) {
    throw std::invalid_argument("AssignmentEnv: candidate_count must be > 0");
  }
  options_.load_buckets = std::max<std::size_t>(1, options_.load_buckets);
  options_.demand_buckets = std::max<std::size_t>(1, options_.demand_buckets);
  options_.spread_buckets = std::max<std::size_t>(1, options_.spread_buckets);

  const std::size_t n = instance.device_count();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);

  // Reward normalizer: mean per-device minimum cost.
  double total_min_cost = 0.0;
  std::vector<double> demands(n);
  std::vector<double> spreads(n);
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    const auto ranked = instance.servers_by_delay(i);
    double lo = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < instance.server_count(); ++j) {
      lo = std::min(lo, instance.cost(i, j));
    }
    total_min_cost += lo;
    demands[i] = instance.demand(i, ranked[0]);
    const double d0 = instance.delay_ms(i, ranked[0]);
    const double d1 = instance.delay_ms(i, ranked[std::min<std::size_t>(
                                                1, ranked.size() - 1)]);
    spreads[i] = d0 > kEps ? (d1 - d0) / d0 : 0.0;
  }
  cost_scale_ = std::max(kEps, total_min_cost / static_cast<double>(n));

  const auto demand_thresholds =
      quantile_thresholds(demands, options_.demand_buckets);
  const auto spread_thresholds =
      quantile_thresholds(spreads, options_.spread_buckets);
  demand_bucket_.resize(n);
  spread_bucket_.resize(n);
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    demand_bucket_[i] = bucket_of(demands[i], demand_thresholds);
    spread_bucket_[i] = bucket_of(spreads[i], spread_thresholds);
  }
  reset();
}

std::size_t AssignmentEnv::state_count() const noexcept {
  std::size_t load_states = 1;
  for (std::size_t a = 0; a < k_; ++a) load_states *= options_.load_buckets;
  return options_.demand_buckets * options_.spread_buckets * load_states;
}

void AssignmentEnv::reset() {
  if (options_.shuffle_order) rng_.shuffle(order_);
  step_ = 0;
  assignment_.assign(instance_->device_count(), gap::kUnassigned);
  loads_.assign(instance_->server_count(), 0.0);
  episode_cost_ = 0.0;
  violations_ = 0;
}

std::size_t AssignmentEnv::bucket_residual(gap::ServerIndex j) const {
  const double residual_fraction =
      std::clamp(1.0 - loads_[j] / instance_->capacity(j), 0.0, 1.0);
  const auto b = static_cast<std::size_t>(
      residual_fraction * static_cast<double>(options_.load_buckets));
  return std::min(b, options_.load_buckets - 1);
}

std::size_t AssignmentEnv::state() const {
  if (done()) throw std::logic_error("AssignmentEnv::state: episode done");
  const gap::DeviceIndex device = current_device();
  const auto ranked = instance_->servers_by_delay(device);
  std::size_t code = 0;
  for (std::size_t a = k_; a-- > 0;) {
    code = code * options_.load_buckets + bucket_residual(ranked[a]);
  }
  code = code * options_.spread_buckets + spread_bucket_[device];
  code = code * options_.demand_buckets + demand_bucket_[device];
  return code;
}

std::uint64_t AssignmentEnv::feasible_mask() const {
  if (done()) return 0;
  const gap::DeviceIndex device = current_device();
  const auto ranked = instance_->servers_by_delay(device);
  std::uint64_t mask = 0;
  for (std::size_t a = 0; a < k_; ++a) {
    const gap::ServerIndex j = ranked[a];
    if (loads_[j] + instance_->demand(device, j) <=
        instance_->capacity(j) + kEps) {
      mask |= std::uint64_t{1} << a;
    }
  }
  return mask;
}

gap::ServerIndex AssignmentEnv::action_server(std::size_t a) const {
  if (done()) throw std::logic_error("AssignmentEnv: episode done");
  if (a >= k_) throw std::out_of_range("AssignmentEnv: bad action");
  return instance_->servers_by_delay(current_device())[a];
}

double AssignmentEnv::step(std::size_t action) {
  if (done()) throw std::logic_error("AssignmentEnv::step: episode done");
  if (action >= k_) throw std::out_of_range("AssignmentEnv::step: action");
  const gap::DeviceIndex device = current_device();
  gap::ServerIndex j = action_server(action);

  double reward = 0.0;
  const auto fits = [&](gap::ServerIndex server) {
    return loads_[server] + instance_->demand(device, server) <=
           instance_->capacity(server) + kEps;
  };
  if (!fits(j)) {
    // Redirect to the cheapest feasible server anywhere in the cluster;
    // half penalty — the agent wasted its pick but no constraint breaks.
    gap::ServerIndex redirect = instance_->server_count();
    double redirect_cost = std::numeric_limits<double>::infinity();
    gap::ServerIndex least_loaded = 0;
    double least_utilization = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex s = 0; s < instance_->server_count(); ++s) {
      const double utilization =
          (loads_[s] + instance_->demand(device, s)) /
          instance_->capacity(s);
      if (utilization < least_utilization) {
        least_utilization = utilization;
        least_loaded = s;
      }
      if (fits(s) && instance_->cost(device, s) < redirect_cost) {
        redirect_cost = instance_->cost(device, s);
        redirect = s;
      }
    }
    if (redirect != instance_->server_count()) {
      j = redirect;
      reward -= options_.overload_penalty / 2.0;
    } else {
      j = least_loaded;
      reward -= options_.overload_penalty;
      ++violations_;
    }
  }

  const double cost = instance_->cost(device, j);
  reward -= cost / cost_scale_;
  loads_[j] += instance_->demand(device, j);
  assignment_[device] = static_cast<std::int32_t>(j);
  episode_cost_ += cost;
  ++step_;
  return reward;
}

}  // namespace tacc::rl
