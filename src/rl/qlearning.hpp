// Tabular temporal-difference learning on the assignment MDP: the paper's
// "RL based heuristics".
//
// Two variants share one trainer:
//   Q-learning — off-policy (max over next actions),
//   SARSA      — on-policy (the action actually taken next).
// The learner runs E episodes with ε-greedy exploration (ε and α decay per
// episode), keeps the best feasible assignment seen, and optionally polishes
// it with local search before returning.
#pragma once

#include <vector>

#include "rl/environment.hpp"
#include "solvers/local_search.hpp"
#include "solvers/solver.hpp"

namespace tacc::rl {

struct RlOptions {
  EnvOptions env;
  std::size_t episodes = 600;
  double gamma = 0.97;         ///< discount within an episode
  double alpha0 = 0.25;        ///< initial learning rate
  double alpha_decay = 0.01;   ///< α_e = α0 / (1 + decay·e)
  double epsilon0 = 0.4;       ///< initial exploration rate
  double epsilon_min = 0.02;
  double epsilon_decay = 0.985;  ///< multiplicative per episode
  /// Restrict ε-greedy choices to capacity-feasible candidates when any
  /// exist (the agent still learns penalties for the rest via fallback).
  bool mask_infeasible = true;
  /// Local-search polish on the best episode's assignment (A2 ablation).
  bool polish = true;
  /// After training, replay the learned policy greedily (ε = 0) over this
  /// many shuffled device orders and keep the best run — training's "best
  /// episode" still contains exploration noise; the greedy policy does not.
  std::size_t greedy_eval_episodes = 16;
  std::uint64_t seed = 1;
};

/// Per-episode learning trace — the F4 convergence experiment's series.
struct EpisodeStats {
  std::size_t episode = 0;
  double total_reward = 0.0;
  double episode_cost = 0.0;
  bool feasible = false;
  double best_cost_so_far = 0.0;
  double epsilon = 0.0;
};

struct TrainResult {
  gap::Assignment best_assignment;
  double best_cost = 0.0;
  bool best_feasible = false;
  std::vector<EpisodeStats> trace;
  std::size_t total_steps = 0;
};

/// Dense Q-table over (state, action).
class QTable {
 public:
  QTable(std::size_t states, std::size_t actions)
      : actions_(actions), values_(states * actions, 0.0) {}

  [[nodiscard]] double get(std::size_t state, std::size_t action) const {
    return values_.at(state * actions_ + action);
  }
  void set(std::size_t state, std::size_t action, double value) {
    values_.at(state * actions_ + action) = value;
  }
  /// Argmax over actions, restricted to `mask` when nonzero.
  [[nodiscard]] std::size_t best_action(std::size_t state,
                                        std::uint64_t mask) const;
  [[nodiscard]] double max_value(std::size_t state, std::uint64_t mask) const;
  [[nodiscard]] std::size_t state_count() const noexcept {
    return actions_ ? values_.size() / actions_ : 0;
  }
  [[nodiscard]] std::size_t action_count() const noexcept { return actions_; }

 private:
  std::size_t actions_;
  std::vector<double> values_;
};

enum class TdVariant { kQLearning, kSarsa };

/// Runs the full training loop on `instance`; the returned assignment is the
/// best feasible episode (polished if configured), falling back to the best
/// infeasible one if feasibility was never reached. If `table_out` is
/// non-null it receives the learned Q-table (see rl/policy.hpp for reuse).
[[nodiscard]] TrainResult train(const gap::Instance& instance,
                                const RlOptions& options, TdVariant variant,
                                QTable* table_out = nullptr);

class QLearningSolver final : public solvers::Solver {
 public:
  explicit QLearningSolver(RlOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "q-learning";
  }
  [[nodiscard]] solvers::SolveResult solve(
      const gap::Instance& instance) override;

 private:
  RlOptions options_;
};

class SarsaSolver final : public solvers::Solver {
 public:
  explicit SarsaSolver(RlOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sarsa";
  }
  [[nodiscard]] solvers::SolveResult solve(
      const gap::Instance& instance) override;

 private:
  RlOptions options_;
};

}  // namespace tacc::rl
