#include "rl/ucb_rollout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::rl {

namespace {
constexpr double kEps = 1e-9;

/// Completes `assignment` greedily over `remaining` (shuffled by caller):
/// each device goes to its cheapest currently-feasible server, else the
/// least-utilized one. Returns (cost added, violations incurred).
struct RolloutOutcome {
  double cost = 0.0;
  std::size_t violations = 0;
};

RolloutOutcome rollout_complete(const gap::Instance& instance,
                                std::vector<double>& loads,
                                const std::vector<gap::DeviceIndex>& remaining,
                                std::size_t from_index) {
  RolloutOutcome outcome;
  const std::size_t m = instance.server_count();
  for (std::size_t r = from_index; r < remaining.size(); ++r) {
    const gap::DeviceIndex i = remaining[r];
    gap::ServerIndex best_feasible = m;
    double best_feasible_cost = 0.0;
    gap::ServerIndex least_loaded = 0;
    double least_utilization = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < m; ++j) {
      const double new_load = loads[j] + instance.demand(i, j);
      const double cost = instance.cost(i, j);
      if (new_load <= instance.capacity(j) + kEps) {
        if (best_feasible == m || cost < best_feasible_cost) {
          best_feasible = j;
          best_feasible_cost = cost;
        }
      }
      const double utilization = new_load / instance.capacity(j);
      if (utilization < least_utilization) {
        least_utilization = utilization;
        least_loaded = j;
      }
    }
    const gap::ServerIndex j =
        best_feasible != m ? best_feasible : least_loaded;
    if (best_feasible == m) ++outcome.violations;
    loads[j] += instance.demand(i, j);
    outcome.cost += instance.cost(i, j);
  }
  return outcome;
}

}  // namespace

solvers::SolveResult UcbRolloutSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  util::Rng rng(options_.seed);
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  const std::size_t k = std::min(options_.candidate_count, m);

  double max_cost = 0.0;
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    for (gap::ServerIndex j = 0; j < m; ++j) {
      max_cost = std::max(max_cost, instance.cost(i, j));
    }
  }
  const double penalty = options_.overload_penalty_factor * max_cost + 1.0;

  // Commitment order: heavy devices first.
  std::vector<gap::DeviceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](gap::DeviceIndex a, gap::DeviceIndex b) {
              const double da = instance.demand(a, 0);
              const double db = instance.demand(b, 0);
              return da != db ? da > db : a < b;
            });

  gap::Assignment assignment(n, gap::kUnassigned);
  std::vector<double> loads(m, 0.0);
  std::size_t iterations = 0;

  std::vector<double> scratch_loads;
  std::vector<gap::DeviceIndex> scratch_order(order);

  for (std::size_t t = 0; t < n; ++t) {
    const gap::DeviceIndex device = order[t];
    const auto ranked = instance.servers_by_delay(device);

    std::vector<double> mean_value(k, 0.0);
    std::vector<std::size_t> pulls(k, 0);

    const std::size_t budget = std::max(options_.rollouts_per_device, k);
    for (std::size_t pull = 0; pull < budget; ++pull) {
      // Arm selection: each once, then UCB1 (rewards are negative costs, so
      // we maximize mean + c·sqrt(ln N / n_a)).
      std::size_t arm = k;
      for (std::size_t a = 0; a < k; ++a) {
        if (pulls[a] == 0) {
          arm = a;
          break;
        }
      }
      if (arm == k) {
        double best_ucb = -std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < k; ++a) {
          const double bonus =
              options_.exploration *
              std::sqrt(std::log(static_cast<double>(pull + 1)) /
                        static_cast<double>(pulls[a]));
          const double ucb = mean_value[a] + bonus;
          if (ucb > best_ucb) {
            best_ucb = ucb;
            arm = a;
          }
        }
      }

      // Play the arm: tentative assignment + randomized-order completion.
      const gap::ServerIndex j = ranked[arm];
      scratch_loads = loads;
      double episode_cost = instance.cost(device, j);
      std::size_t violations = 0;
      if (scratch_loads[j] + instance.demand(device, j) >
          instance.capacity(j) + kEps) {
        ++violations;
      }
      scratch_loads[j] += instance.demand(device, j);

      // Shuffle the tail of the remaining devices for rollout diversity.
      rng.shuffle(std::span<gap::DeviceIndex>(scratch_order)
                      .subspan(t + 1));
      const RolloutOutcome outcome = rollout_complete(
          instance, scratch_loads, scratch_order, t + 1);
      episode_cost += outcome.cost;
      violations += outcome.violations;

      const double value =
          -(episode_cost + penalty * static_cast<double>(violations)) /
          (max_cost * static_cast<double>(n) + 1.0);
      ++pulls[arm];
      mean_value[arm] +=
          (value - mean_value[arm]) / static_cast<double>(pulls[arm]);
      ++iterations;
    }

    // Commit the best-mean arm, preferring feasible ones.
    std::size_t best_arm = 0;
    double best_mean = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < k; ++a) {
      const gap::ServerIndex j = ranked[a];
      const bool fits = loads[j] + instance.demand(device, j) <=
                        instance.capacity(j) + kEps;
      // Heavily discount arms that violate immediately.
      const double adjusted = mean_value[a] - (fits ? 0.0 : 1e6);
      if (adjusted > best_mean) {
        best_mean = adjusted;
        best_arm = a;
      }
    }
    gap::ServerIndex chosen = ranked[best_arm];
    if (loads[chosen] + instance.demand(device, chosen) >
        instance.capacity(chosen) + kEps) {
      chosen = solvers::detail::best_feasible_or_least_loaded(instance,
                                                              device, loads);
    }
    loads[chosen] += instance.demand(device, chosen);
    assignment[device] = static_cast<std::int32_t>(chosen);

    // Keep scratch_order's committed prefix aligned with `order`.
    scratch_order = order;
  }

  return solvers::detail::finish(instance, std::move(assignment),
                                 timer.elapsed_ms(), iterations);
}

}  // namespace tacc::rl
