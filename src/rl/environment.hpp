// The assignment-construction MDP that the paper's RL heuristics learn on.
//
// An episode assigns every IoT device in a (per-episode shuffled) order.
// At each step the agent observes a compact, device-independent state built
// from topology-aware features of the K lowest-delay candidate servers and
// picks one of them. Keeping the state abstract — buckets, not raw ids — is
// what lets tabular learning generalize across devices and episodes:
//
//   state = demand bucket of the device
//         × delay-spread bucket (is the nearest server much better than #2?)
//         × residual-capacity bucket of each of the K candidates
//
// Reward is the negative normalized assignment cost, with a penalty whenever
// the agent's choice (or the forced fallback) violates capacity, so the
// learned policy keeps slack on well-connected servers for the devices that
// have no alternative — the foresight greedy lacks.
#pragma once

#include <cstdint>
#include <vector>

#include "gap/instance.hpp"
#include "gap/solution.hpp"
#include "util/rng.hpp"

namespace tacc::rl {

struct EnvOptions {
  std::size_t candidate_count = 4;  ///< K lowest-delay servers offered
  std::size_t load_buckets = 4;     ///< residual-capacity quantization B
  std::size_t demand_buckets = 3;
  std::size_t spread_buckets = 3;
  /// Penalty (in normalized cost units) added when a step overloads.
  double overload_penalty = 8.0;
  /// Shuffle device order each episode (exploration across orders).
  bool shuffle_order = true;
};

class AssignmentEnv {
 public:
  AssignmentEnv(const gap::Instance& instance, EnvOptions options,
                std::uint64_t seed);

  [[nodiscard]] std::size_t state_count() const noexcept;
  [[nodiscard]] std::size_t action_count() const noexcept { return k_; }

  /// Starts a new episode; device order is reshuffled if configured.
  void reset();

  [[nodiscard]] bool done() const noexcept {
    return step_ >= order_.size();
  }
  /// Encoded state for the device about to be assigned. Precondition: !done.
  [[nodiscard]] std::size_t state() const;
  /// Bitmask over action ranks: bit a set iff candidate a fits its server.
  [[nodiscard]] std::uint64_t feasible_mask() const;

  /// Assigns the current device to candidate `action` (rank into its
  /// delay-sorted server list). If that server cannot fit the device, the
  /// env redirects to the cheapest server anywhere that still fits —
  /// charging the redirect penalty so the policy learns to keep its
  /// candidates viable — and only genuinely overloads (the least-utilized
  /// server, full penalty) when no server in the cluster fits. Returns the
  /// step reward. Precondition: !done.
  double step(std::size_t action);

  /// Complete after done(); partial before.
  [[nodiscard]] const gap::Assignment& assignment() const noexcept {
    return assignment_;
  }
  [[nodiscard]] double episode_cost() const noexcept { return episode_cost_; }
  [[nodiscard]] bool episode_feasible() const noexcept {
    return violations_ == 0;
  }
  [[nodiscard]] std::size_t violations() const noexcept { return violations_; }

  /// Mean over devices of their minimum cost — the reward normalizer; a
  /// per-step reward near -1 means "as good as the unconstrained optimum".
  [[nodiscard]] double cost_scale() const noexcept { return cost_scale_; }

  /// Server index behind action rank `a` for the *current* device.
  [[nodiscard]] gap::ServerIndex action_server(std::size_t a) const;

  [[nodiscard]] const gap::Instance& instance() const noexcept {
    return *instance_;
  }

 private:
  [[nodiscard]] std::size_t bucket_residual(gap::ServerIndex j) const;
  [[nodiscard]] gap::DeviceIndex current_device() const {
    return order_[step_];
  }

  const gap::Instance* instance_;
  EnvOptions options_;
  std::size_t k_;
  util::Rng rng_;

  std::vector<gap::DeviceIndex> order_;
  std::size_t step_ = 0;
  gap::Assignment assignment_;
  std::vector<double> loads_;
  double episode_cost_ = 0.0;
  std::size_t violations_ = 0;

  double cost_scale_ = 1.0;
  std::vector<std::uint8_t> demand_bucket_;  ///< per device, precomputed
  std::vector<std::uint8_t> spread_bucket_;  ///< per device, precomputed
};

}  // namespace tacc::rl
