#include "rl/qlearning.hpp"

#include <algorithm>
#include <limits>

#include "util/timer.hpp"

namespace tacc::rl {

std::size_t QTable::best_action(std::size_t state, std::uint64_t mask) const {
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t a = 0; a < actions_; ++a) {
    if (mask != 0 && ((mask >> a) & 1u) == 0) continue;
    const double v = get(state, a);
    if (!any || v > best_value) {
      best_value = v;
      best = a;
      any = true;
    }
  }
  return best;
}

double QTable::max_value(std::size_t state, std::uint64_t mask) const {
  return get(state, best_action(state, mask));
}

namespace {

/// ε-greedy among mask-permitted actions (all actions if mask is 0).
[[nodiscard]] std::size_t choose_action(const QTable& table, std::size_t state,
                                        std::uint64_t mask, double epsilon,
                                        std::size_t action_count,
                                        util::Rng& rng) {
  if (rng.uniform() < epsilon) {
    if (mask == 0) return rng.index(action_count);
    std::size_t permitted[64];
    std::size_t count = 0;
    for (std::size_t a = 0; a < action_count; ++a) {
      if ((mask >> a) & 1u) permitted[count++] = a;
    }
    return permitted[rng.index(count)];
  }
  return table.best_action(state, mask);
}

}  // namespace

TrainResult train(const gap::Instance& instance, const RlOptions& options,
                  TdVariant variant, QTable* table_out) {
  AssignmentEnv env(instance, options.env, options.seed);
  QTable table(env.state_count(), env.action_count());
  util::Rng rng(options.seed ^ 0xA5A5A5A5A5A5A5A5ULL);

  TrainResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  result.trace.reserve(options.episodes);

  double epsilon = options.epsilon0;
  for (std::size_t episode = 0; episode < options.episodes; ++episode) {
    const double alpha =
        options.alpha0 /
        (1.0 + options.alpha_decay * static_cast<double>(episode));
    env.reset();
    double total_reward = 0.0;

    std::size_t state = env.done() ? 0 : env.state();
    std::uint64_t mask =
        options.mask_infeasible ? env.feasible_mask() : 0;
    std::size_t action =
        env.done() ? 0
                   : choose_action(table, state, mask, epsilon,
                                   env.action_count(), rng);

    while (!env.done()) {
      const double reward = env.step(action);
      total_reward += reward;
      ++result.total_steps;

      double target = reward;
      std::size_t next_state = 0;
      std::uint64_t next_mask = 0;
      std::size_t next_action = 0;
      if (!env.done()) {
        next_state = env.state();
        next_mask = options.mask_infeasible ? env.feasible_mask() : 0;
        next_action = choose_action(table, next_state, next_mask, epsilon,
                                    env.action_count(), rng);
        const double bootstrap =
            variant == TdVariant::kQLearning
                ? table.max_value(next_state, next_mask)
                : table.get(next_state, next_action);
        target += options.gamma * bootstrap;
      }
      const double old_q = table.get(state, action);
      table.set(state, action, old_q + alpha * (target - old_q));

      state = next_state;
      action = next_action;
    }

    const bool feasible = env.episode_feasible();
    const double cost = env.episode_cost();
    // Prefer feasible episodes outright; among equals, lower cost wins.
    const bool better =
        (feasible && !result.best_feasible) ||
        (feasible == result.best_feasible && cost < result.best_cost);
    if (better) {
      result.best_cost = cost;
      result.best_feasible = feasible;
      result.best_assignment = env.assignment();
    }
    result.trace.push_back({episode, total_reward, cost, feasible,
                            result.best_cost, epsilon});
    epsilon = std::max(options.epsilon_min, epsilon * options.epsilon_decay);
  }

  // Greedy-policy evaluation: exploit what was learned, noise-free.
  for (std::size_t g = 0; g < options.greedy_eval_episodes; ++g) {
    env.reset();
    while (!env.done()) {
      const std::size_t state = env.state();
      const std::uint64_t mask =
          options.mask_infeasible ? env.feasible_mask() : 0;
      (void)env.step(table.best_action(state, mask));
      ++result.total_steps;
    }
    const bool feasible = env.episode_feasible();
    const double cost = env.episode_cost();
    const bool better =
        (feasible && !result.best_feasible) ||
        (feasible == result.best_feasible && cost < result.best_cost);
    if (better) {
      result.best_cost = cost;
      result.best_feasible = feasible;
      result.best_assignment = env.assignment();
    }
  }

  if (table_out != nullptr) *table_out = table;

  if (options.polish && !result.best_assignment.empty()) {
    solvers::LocalSearchOptions polish_options;
    polish_options.seed = options.seed + 17;
    local_search_improve(instance, result.best_assignment, polish_options);
    const gap::Evaluation ev = evaluate(instance, result.best_assignment);
    result.best_cost = ev.total_cost;
    result.best_feasible = ev.feasible;
  }
  return result;
}

namespace {

[[nodiscard]] solvers::SolveResult run_solver(const gap::Instance& instance,
                                              const RlOptions& options,
                                              TdVariant variant) {
  util::WallTimer timer;
  TrainResult trained = train(instance, options, variant);
  solvers::SolveResult result = solvers::detail::finish(
      instance, std::move(trained.best_assignment), timer.elapsed_ms(),
      trained.total_steps);
  return result;
}

}  // namespace

solvers::SolveResult QLearningSolver::solve(const gap::Instance& instance) {
  return run_solver(instance, options_, TdVariant::kQLearning);
}

solvers::SolveResult SarsaSolver::solve(const gap::Instance& instance) {
  return run_solver(instance, options_, TdVariant::kSarsa);
}

}  // namespace tacc::rl
