#include "service/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "topology/oracle/config.hpp"

namespace tacc::service {

namespace {

/// Splits on runs of spaces/tabs; no empty tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::optional<double> parse_double(std::string_view token) {
  double value = 0.0;
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::size_t> parse_size(std::string_view token) {
  std::size_t value = 0;
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view token) {
  if (token == "1" || token == "true") return true;
  if (token == "0" || token == "false") return false;
  return std::nullopt;
}

bool valid_session_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == '-' || c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

ParseResult fail(std::string message) {
  return ParseResult{std::nullopt, std::move(message)};
}

/// Applies one key=value option token to `request`. Keys not in `allowed`
/// (a space-separated list) are rejected so typos surface immediately.
bool apply_option(Request& request, std::string_view key,
                  std::string_view value, std::string_view allowed,
                  std::string& error) {
  const auto permitted = [&](std::string_view k) {
    // Exact-word containment in the allowed list.
    std::size_t pos = 0;
    while (pos <= allowed.size()) {
      const std::size_t next = allowed.find(' ', pos);
      const std::string_view word =
          allowed.substr(pos, next == std::string_view::npos ? allowed.size() - pos
                                                             : next - pos);
      if (word == k) return true;
      if (next == std::string_view::npos) break;
      pos = next + 1;
    }
    return false;
  };
  if (!permitted(key)) {
    error = "unknown option '" + std::string(key) + "' for this verb";
    return false;
  }

  const auto bad_value = [&] {
    error = "bad value for option '" + std::string(key) + "'";
    return false;
  };
  if (key == "timeout_ms") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) return bad_value();
    request.timeout_ms = *v;
  } else if (key == "seed") {
    const auto v = parse_size(value);
    if (!v) return bad_value();
    request.seed = *v;
  } else if (key == "algo") {
    try {
      request.algorithm = algorithm_from_string(value);
    } catch (const std::invalid_argument&) {
      return bad_value();
    }
  } else if (key == "oracle") {
    // Validate eagerly so a typo'd spec is a parse error, not a session
    // failure later; the engine re-parses the stored string at CONFIGURE.
    try {
      (void)topo::oracle::parse_oracle_spec(value);
    } catch (const std::invalid_argument& e) {
      error = "bad value for option 'oracle': ";
      error += e.what();
      return false;
    }
    request.oracle = std::string(value);
  } else if (key == "preset") {
    if (value == "smart_city") {
      request.preset = ScenarioPreset::kSmartCity;
    } else if (value == "factory") {
      request.preset = ScenarioPreset::kFactory;
    } else if (value == "campus") {
      request.preset = ScenarioPreset::kCampus;
    } else {
      return bad_value();
    }
  } else if (key == "demand") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) return bad_value();
    request.demand = *v;
  } else if (key == "rate") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) return bad_value();
    request.rate_hz = *v;
  } else if (key == "pinned") {
    const auto v = parse_bool(value);
    if (!v) return bad_value();
    request.pinned = *v;
  } else if (key == "evacuate") {
    const auto v = parse_bool(value);
    if (!v) return bad_value();
    request.evacuate = *v;
  } else if (key == "limit") {
    const auto v = parse_size(value);
    if (!v || *v == 0) return bad_value();
    request.limit = *v;
  } else if (key == "shards") {
    const auto v = parse_bool(value);
    if (!v) return bad_value();
    request.per_shard = *v;
  } else if (key == "moves") {
    const auto v = parse_size(value);
    if (!v || *v == 0) return bad_value();
    request.reopt_moves = *v;
  } else if (key == "device_moves") {
    const auto v = parse_size(value);
    if (!v || *v == 0) return bad_value();
    request.reopt_device_moves = *v;
  } else if (key == "window_s") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) return bad_value();
    request.reopt_window_s = *v;
  } else if (key == "interval_ms") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) return bad_value();
    request.reopt_interval_ms = *v;
  } else {
    error = "unhandled option '" + std::string(key) + "'";
    return false;
  }
  return true;
}

/// Consumes trailing key=value tokens starting at `first`.
bool apply_options(Request& request,
                   const std::vector<std::string_view>& tokens,
                   std::size_t first, std::string_view allowed,
                   std::string& error) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "expected key=value option, got '" + std::string(token) + "'";
      return false;
    }
    if (!apply_option(request, token.substr(0, eq), token.substr(eq + 1),
                      allowed, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view to_string(Verb verb) noexcept {
  switch (verb) {
    case Verb::kConfigure: return "CONFIGURE";
    case Verb::kJoin: return "JOIN";
    case Verb::kMove: return "MOVE";
    case Verb::kLeave: return "LEAVE";
    case Verb::kFail: return "FAIL";
    case Verb::kRecover: return "RECOVER";
    case Verb::kEvacuate: return "EVACUATE";
    case Verb::kLinkFail: return "LINK_FAIL";
    case Verb::kLinkRestore: return "LINK_RESTORE";
    case Verb::kLinkSet: return "LINK_SET";
    case Verb::kLinks: return "LINKS";
    case Verb::kReoptStart: return "REOPT_START";
    case Verb::kReoptStop: return "REOPT_STOP";
    case Verb::kReoptStats: return "REOPT_STATS";
    case Verb::kOracleStats: return "ORACLE_STATS";
    case Verb::kSleep: return "SLEEP";
    case Verb::kStats: return "STATS";
    case Verb::kPing: return "PING";
    case Verb::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "BAD_REQUEST";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "?";
}

std::string_view to_string(ScenarioPreset preset) noexcept {
  switch (preset) {
    case ScenarioPreset::kSmartCity: return "smart_city";
    case ScenarioPreset::kFactory: return "factory";
    case ScenarioPreset::kCampus: return "campus";
  }
  return "?";
}

ParseResult parse_request(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) return fail("empty request");

  Request request;
  std::string error;
  const std::string_view verb = tokens[0];

  const auto session_at = [&](std::size_t i) {
    if (i >= tokens.size()) {
      error = "missing session name";
      return false;
    }
    if (!valid_session_name(tokens[i])) {
      error = "bad session name '" + std::string(tokens[i]) +
              "' (1-64 chars of [A-Za-z0-9_.:-])";
      return false;
    }
    request.session = std::string(tokens[i]);
    return true;
  };
  const auto double_at = [&](std::size_t i, double& out,
                             std::string_view what) {
    if (i >= tokens.size()) {
      error = "missing " + std::string(what);
      return false;
    }
    const auto v = parse_double(tokens[i]);
    if (!v) {
      error = "bad " + std::string(what) + " '" + std::string(tokens[i]) + "'";
      return false;
    }
    out = *v;
    return true;
  };
  const auto size_at = [&](std::size_t i, std::size_t& out,
                           std::string_view what) {
    if (i >= tokens.size()) {
      error = "missing " + std::string(what);
      return false;
    }
    const auto v = parse_size(tokens[i]);
    if (!v) {
      error = "bad " + std::string(what) + " '" + std::string(tokens[i]) + "'";
      return false;
    }
    out = *v;
    return true;
  };
  const auto options_from = [&](std::size_t first, std::string_view allowed) {
    return apply_options(request, tokens, first, allowed, error);
  };
  const auto done = [&]() -> ParseResult {
    return ParseResult{std::move(request), {}};
  };

  if (verb == "CONFIGURE") {
    request.verb = Verb::kConfigure;
    if (!session_at(1) || !size_at(2, request.iot, "iot count") ||
        !size_at(3, request.edge, "edge count") ||
        !options_from(4, "seed algo preset oracle timeout_ms")) {
      return fail(std::move(error));
    }
    if (request.iot == 0 || request.edge == 0) {
      return fail("iot and edge counts must be positive");
    }
    return done();
  }
  if (verb == "JOIN") {
    request.verb = Verb::kJoin;
    if (!session_at(1) || !double_at(2, request.x, "x coordinate") ||
        !double_at(3, request.y, "y coordinate") ||
        !options_from(4, "demand rate timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "MOVE") {
    request.verb = Verb::kMove;
    if (!session_at(1) || !size_at(2, request.index, "device index") ||
        !double_at(3, request.x, "x coordinate") ||
        !double_at(4, request.y, "y coordinate") ||
        !options_from(5, "pinned timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "LEAVE") {
    request.verb = Verb::kLeave;
    if (!session_at(1) || !size_at(2, request.index, "device index") ||
        !options_from(3, "timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "FAIL" || verb == "RECOVER" || verb == "EVACUATE") {
    request.verb = verb == "FAIL"      ? Verb::kFail
                   : verb == "RECOVER" ? Verb::kRecover
                                       : Verb::kEvacuate;
    const std::string_view allowed =
        verb == "FAIL" ? "evacuate timeout_ms" : "timeout_ms";
    if (!session_at(1) || !size_at(2, request.index, "server index") ||
        !options_from(3, allowed)) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "LINK_FAIL" || verb == "LINK_RESTORE") {
    request.verb = verb == "LINK_FAIL" ? Verb::kLinkFail : Verb::kLinkRestore;
    if (!session_at(1) || !size_at(2, request.link_u, "link endpoint u") ||
        !size_at(3, request.link_v, "link endpoint v") ||
        !options_from(4, "timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "LINK_SET") {
    request.verb = Verb::kLinkSet;
    if (!session_at(1) || !size_at(2, request.link_u, "link endpoint u") ||
        !size_at(3, request.link_v, "link endpoint v") ||
        !double_at(4, request.latency_ms, "latency ms") ||
        !options_from(5, "timeout_ms")) {
      return fail(std::move(error));
    }
    if (request.latency_ms <= 0.0) {
      return fail("latency ms must be positive");
    }
    return done();
  }
  if (verb == "LINKS") {
    request.verb = Verb::kLinks;
    if (!session_at(1) || !options_from(2, "limit timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "REOPT_START") {
    request.verb = Verb::kReoptStart;
    if (!session_at(1) ||
        !options_from(2,
                      "moves device_moves window_s interval_ms timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "REOPT_STOP" || verb == "REOPT_STATS") {
    request.verb =
        verb == "REOPT_STOP" ? Verb::kReoptStop : Verb::kReoptStats;
    if (!session_at(1) || !options_from(2, "timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "ORACLE_STATS") {
    request.verb = Verb::kOracleStats;
    if (!session_at(1) || !options_from(2, "timeout_ms")) {
      return fail(std::move(error));
    }
    return done();
  }
  if (verb == "SLEEP") {
    request.verb = Verb::kSleep;
    if (!session_at(1) || !double_at(2, request.sleep_ms, "sleep ms") ||
        !options_from(3, "timeout_ms")) {
      return fail(std::move(error));
    }
    if (request.sleep_ms < 0.0 || request.sleep_ms > 10'000.0) {
      return fail("sleep ms out of range [0, 10000]");
    }
    return done();
  }
  if (verb == "STATS") {
    request.verb = Verb::kStats;
    // Session names cannot contain '=', so the first token either names a
    // session or starts the key=value options.
    std::size_t first_option = 1;
    if (tokens.size() > 1 && tokens[1].find('=') == std::string_view::npos) {
      if (!session_at(1)) return fail(std::move(error));
      first_option = 2;
    }
    if (!options_from(first_option, "shards")) return fail(std::move(error));
    return done();
  }
  if (verb == "PING") {
    request.verb = Verb::kPing;
    if (tokens.size() > 1) return fail("PING takes no arguments");
    return done();
  }
  if (verb == "SHUTDOWN") {
    request.verb = Verb::kShutdown;
    if (tokens.size() > 1) return fail("SHUTDOWN takes no arguments");
    return done();
  }
  return fail("unknown verb '" + std::string(verb) + "'");
}

std::string err_line(ErrorCode code, std::string_view message) {
  std::string line = "ERR ";
  line += to_string(code);
  if (!message.empty()) {
    line += ' ';
    line += message;
  }
  return line;
}

OkLine& OkLine::field(std::string_view key, std::string_view value) {
  line_ += ' ';
  line_ += key;
  line_ += '=';
  line_ += value;
  return *this;
}

OkLine& OkLine::field(std::string_view key, std::size_t value) {
  return field(key, std::to_string(value));
}

OkLine& OkLine::field(std::string_view key, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return field(key, std::string_view(buffer));
}

OkLine& OkLine::field(std::string_view key, bool value) {
  return field(key, std::string_view(value ? "1" : "0"));
}

}  // namespace tacc::service
