// The taccd request engine: named DynamicCluster sessions partitioned
// across per-core shards, each shard driving its sessions through its own
// bounded admission queue and runtime::ThreadPool workers, independent of
// any transport.
//
// Sharding model:
//  - Sessions are routed to one of N shards (default hardware_concurrency)
//    by a stable FNV-1a hash of the session name, so a session's requests
//    always execute in order on one shard and the route survives daemon
//    restarts. Each shard owns its sessions, admission ledger, counters,
//    and worker pool behind its own mutex — no request ever takes a
//    cross-shard lock, which is what removes the single-mutex admission
//    bottleneck the pre-shard engine serialized everything through.
//  - Admission is bounded per shard: `max_queue` is split into
//    ceil(max_queue / shards) slots per shard (min 1). When a shard's
//    queued + executing requests reach its quota, submit() answers
//    ERR OVERLOADED immediately instead of queuing unboundedly.
//  - The worker budget (`threads`, 0 = hardware concurrency) is split as
//    max(1, threads / shards) workers per shard, so the default
//    configuration is one shard and one worker per core.
//
// Execution model (per shard, unchanged from the single-engine design):
//  - Every mutation request (CONFIGURE/JOIN/MOVE/LEAVE/FAIL/RECOVER/
//    EVACUATE/LINK_*/REOPT_*/SLEEP) is admitted into its session's FIFO and
//    stamped with a
//    deadline (per-request timeout_ms or the engine default).
//  - Micro-batching: one pool task drains a session's FIFO up to
//    `max_batch` events per pass, so a burst of compatible mutations pays
//    for one task dispatch and one metrics flush instead of N. Events on
//    one session always execute sequentially (single drainer per session);
//    different sessions execute concurrently on their shards' pools.
//  - Deadlines are re-checked when an event is dequeued for execution: a
//    request whose deadline has passed at dequeue time (boundary included
//    — deadline exactly at dequeue counts as expired) answers
//    ERR DEADLINE_EXCEEDED without touching the cluster, and a request
//    that finishes executing past its deadline also answers
//    ERR DEADLINE_EXCEEDED (its cluster mutation is kept — it ran — but
//    the client contract stays deadline-consistent) and is counted
//    rejected_deadline, never completed.
//  - STATS bypasses admission entirely and answers synchronously from a
//    snapshot taken under a single shard lock, so every STATS line is a
//    coherent cut of that shard's ledger: the accounting identity
//    accepted == completed + failed + rejected_deadline + in_flight holds
//    exactly within every reply, per shard and in aggregate.
//
// Every submitted request receives exactly one terminal response: the
// responder callback is invoked exactly once, with an OK line or an ERR
// line, on the submitting thread (rejections, STATS) or a worker thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamic.hpp"
#include "metrics/histogram.hpp"
#include "optimize/reoptimizer.hpp"
#include "runtime/thread_pool.hpp"
#include "service/protocol.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::service {

struct EngineOptions {
  /// Total worker budget across all shards (0 = hardware concurrency).
  /// Each shard gets max(1, threads / shards) pool workers.
  std::size_t threads = 0;
  /// Engine shard count (0 = hardware concurrency, clamped to
  /// runtime::kMaxThreads). Sessions are hash-partitioned across shards.
  std::size_t shards = 0;
  /// Aggregate admission bound: split into ceil(max_queue / shards) slots
  /// per shard (min 1); a shard at its quota rejects with OVERLOADED.
  std::size_t max_queue = 256;
  /// Default per-request deadline when the request carries no timeout_ms.
  double default_timeout_ms = 1000.0;
  /// Max events one drain pass executes before re-checking the queue.
  std::size_t max_batch = 32;
  /// Service-latency histogram range/resolution (microseconds).
  double histogram_max_us = 20'000.0;
  std::size_t histogram_bins = 2'000;
  /// Attach + start a background re-optimizer on every session as soon as
  /// it is configured (taccd --reopt). Sessions can still attach/detach
  /// individually with REOPT_START/REOPT_STOP.
  bool auto_reopt = false;
  /// Budget/planner defaults for attached re-optimizers; REOPT_START
  /// options override per session.
  opt::ReoptOptions reopt;
  /// Delay-oracle spec applied to sessions whose CONFIGURE carries no
  /// oracle= option (taccd --oracle). Empty means the exact default; must
  /// parse (see topology/oracle/config.hpp) or CONFIGURE fails BAD_REQUEST.
  std::string default_oracle;
};

/// Aggregate counters across a shard's (or the engine's) lifetime.
struct EngineCounters {
  std::uint64_t accepted = 0;           ///< admitted into a session queue
  std::uint64_t completed = 0;          ///< executed, responded OK
  std::uint64_t failed = 0;             ///< executed, responded ERR
  std::uint64_t rejected_overload = 0;  ///< bounced at admission
  /// Expired in the queue or finished executing past the deadline.
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;  ///< bounced while draining
  /// Mutation for a session that does not exist; never admitted, so it is
  /// a rejection — counting it as `failed` would break the accounting
  /// identity (failed events must have been accepted first).
  std::uint64_t rejected_not_found = 0;
};

class Engine {
 public:
  /// Exactly-once terminal response callback. May be invoked from the
  /// submitting thread or a pool worker; must not block for long and must
  /// not call back into the engine.
  using Responder = std::function<void(std::string)>;
  using Clock = std::chrono::steady_clock;

  explicit Engine(EngineOptions options = {});
  /// Drains all admitted work before returning.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Routes one parsed request. PING/SHUTDOWN are transport-level verbs and
  /// are answered BAD_REQUEST here. Never blocks on cluster work.
  void submit(const Request& request, Responder respond);

  /// Stops admitting new requests on every shard (they answer
  /// ERR SHUTTING_DOWN); already admitted requests still execute.
  void begin_shutdown();
  /// Blocks until every admitted request on every shard has received its
  /// response.
  void drain();

  /// Queued + executing requests summed across shards.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Counters summed across shards.
  [[nodiscard]] EngineCounters counters() const;
  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Stable routing: FNV-1a(session) % shard_count(). A pure function of
  /// the name and the shard count — the same session always lands on the
  /// same shard, in this process and after a restart.
  [[nodiscard]] std::size_t shard_of(std::string_view session) const noexcept;
  /// Per-shard admission quota (ceil(max_queue / shards), min 1).
  [[nodiscard]] std::size_t shard_quota() const noexcept;
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Deadline boundary predicate: a deadline exactly at `now` counts as
  /// expired. Used at dequeue time and again when execution finishes.
  [[nodiscard]] static constexpr bool deadline_expired(
      Clock::time_point deadline, Clock::time_point now) noexcept {
    return now >= deadline;
  }

  /// Deep validation of the request-accounting invariants, reported through
  /// the contracts failure handler. Under each shard's mutex it must hold
  /// that every admitted request is exactly one of: responded OK
  /// (completed), responded ERR (failed), expired against its deadline
  /// (rejected_deadline), or still in flight — i.e.
  ///   accepted == completed + failed + rejected_deadline + in_flight
  /// per shard (and therefore in aggregate), that queued events never
  /// exceed the shard's in-flight count, that admission respects the
  /// shard quota, and that shard counters equal the sum of their sessions'
  /// counters. Safe to call concurrently with traffic (locks one shard at
  /// a time; holds each lock only to snapshot).
  void check_invariants() const;

 private:
  friend struct ServiceEngineTestPeer;  ///< corruption hook for tests

  struct Event {
    Request request;
    Responder respond;
    Clock::time_point enqueued;
    Clock::time_point deadline;
  };

  /// Cheap cluster-state numbers re-sampled after every batch so STATS
  /// never waits on an executing session.
  struct SessionSnapshot {
    bool configured = false;
    std::size_t devices = 0;
    std::size_t servers = 0;
    std::size_t healthy_servers = 0;
    double avg_delay_ms = 0.0;
    double max_utilization = 0.0;
    bool feasible = true;
    // Incremental delay engine counters (LINK_* verbs).
    std::uint64_t delay_epoch = 0;
    std::uint64_t link_updates = 0;
    std::uint64_t link_nodes_affected = 0;
    std::uint64_t link_nodes_saved = 0;
    std::uint64_t delay_rows_refreshed = 0;
    std::uint64_t delay_rows_saved = 0;
    // Background re-optimizer ledger (REOPT_START/REOPT_STOP); sampled at
    // the batch flush like everything else, so STATS stays lock-coherent.
    bool reopt_running = false;
    std::uint64_t reopt_passes = 0;
    std::uint64_t reopt_proposed = 0;
    std::uint64_t reopt_applied = 0;
    std::uint64_t reopt_rejected = 0;
    double reopt_gain = 0.0;
  };

  struct Session {
    Session(std::string session_name, const EngineOptions& options,
            Mutex* owning_shard_mutex)
        : shard_mutex(owning_shard_mutex),
          name(std::move(session_name)),
          latency_us(0.0, options.histogram_max_us, options.histogram_bins) {}

    // Back-pointer to the owning Shard's mutex: the guard expression for
    // every queue/metrics field below. The thread-safety analysis cannot
    // prove on its own that this aliases the shard mutex a call site
    // locked, so code reaching a Session from a locked Shard calls
    // shard_mutex->assert_held() once after lookup (see Mutex::assert_held).
    Mutex* const shard_mutex;
    const std::string name;

    // Queue state AND metrics — all guarded by the owning Shard's mutex,
    // so one lock yields a coherent queue+counter snapshot (the pre-shard
    // engine split these across two mutexes and STATS could observe
    // completed > accepted mid-flush).
    std::deque<Event> pending TACC_GUARDED_BY(shard_mutex);
    bool draining TACC_GUARDED_BY(shard_mutex) = false;
    EngineCounters counters TACC_GUARDED_BY(shard_mutex);
    std::uint64_t batches TACC_GUARDED_BY(shard_mutex) = 0;
    metrics::Histogram latency_us TACC_GUARDED_BY(shard_mutex);
    SessionSnapshot snapshot TACC_GUARDED_BY(shard_mutex);

    // Cluster — mutated only by the (single) active drain task and, through
    // apply_move_plan(), by the session's background re-optimizer. Both
    // serialize on cluster_mutex: the drain task locks it around each
    // batch's apply()s, the optimizer thread only ever try_locks it (the
    // serving path always wins; see opt::Reoptimizer). The oracle/delay
    // cache inside the cluster have no locks of their own — this mutex is
    // their external serialization point.
    Mutex cluster_mutex;
    std::unique_ptr<DynamicCluster> cluster TACC_GUARDED_BY(cluster_mutex)
        TACC_PT_GUARDED_BY(cluster_mutex);
    // Per-session optimizer attach/detach (REOPT_START/REOPT_STOP or
    // EngineOptions::auto_reopt). The pointer itself is only touched by the
    // drain task under cluster_mutex. Declared after `cluster`: destroyed
    // first, so the optimizer thread joins before the cluster it scans dies.
    std::unique_ptr<opt::Reoptimizer> reoptimizer
        TACC_GUARDED_BY(cluster_mutex);
    // Options used at the last attach, so CONFIGURE can re-attach a live
    // optimizer onto the replacement cluster with the same tuning.
    std::optional<opt::ReoptOptions> reopt_options
        TACC_GUARDED_BY(cluster_mutex);
  };

  /// One engine shard: sessions, admission ledger, and workers, all behind
  /// one mutex that no other shard ever touches. Lock order: shard mutex
  /// first, a session's cluster_mutex second — never both at once in this
  /// file (drain_session drops the shard lock before taking the cluster
  /// lock), but the hierarchy matters for future code.
  struct Shard {
    Shard(std::size_t admission_quota, std::size_t workers)
        : quota(admission_quota), pool(workers) {}

    const std::size_t quota;  ///< admission bound for this shard
    mutable Mutex mutex;
    CondVar drained_cv;  ///< signalled when in_flight drops
    std::map<std::string, std::shared_ptr<Session>, std::less<>> sessions
        TACC_GUARDED_BY(mutex);
    // Admitted, not yet responded.
    std::size_t in_flight TACC_GUARDED_BY(mutex) = 0;
    bool shutting_down TACC_GUARDED_BY(mutex) = false;
    EngineCounters counters TACC_GUARDED_BY(mutex);
    runtime::ThreadPool pool;  // last member: workers stop before state dies
  };

  void drain_session(Shard& shard, const std::shared_ptr<Session>& session);
  /// Executes one event against the session's cluster; returns the response
  /// line. Never throws. Caller holds the session's cluster mutex (the
  /// drain task takes it around the whole batch).
  std::string apply(Session& session, const Request& request)
      TACC_REQUIRES(session.cluster_mutex);
  [[nodiscard]] std::string stats_line(const Request& request) const;

  const EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tacc::service
