// The taccd request engine: named DynamicCluster sessions driven through a
// bounded admission queue by the shared runtime::ThreadPool, independent of
// any transport.
//
// Execution model:
//  - Every mutation request (CONFIGURE/JOIN/MOVE/LEAVE/FAIL/RECOVER/
//    EVACUATE/SLEEP) is admitted into its session's FIFO and stamped with a
//    deadline (per-request timeout_ms or the engine default). Admission is
//    bounded across ALL sessions: when `max_queue` requests are queued or
//    executing, submit() answers ERR OVERLOADED immediately instead of
//    queuing unboundedly.
//  - Micro-batching: one pool task drains a session's FIFO up to
//    `max_batch` events per pass, so a burst of compatible mutations pays
//    for one task dispatch and one metrics flush instead of N. Events on
//    one session always execute sequentially (single drainer per session);
//    different sessions execute concurrently on the pool.
//  - A request whose deadline passed while queued answers
//    ERR DEADLINE_EXCEEDED without touching the cluster. Deadlines are
//    checked at execution start; an event that has begun executing runs to
//    completion.
//  - STATS bypasses admission entirely and answers synchronously from a
//    lock-protected snapshot refreshed after every batch, so health checks
//    stay fast even when sessions are busy.
//
// Every submitted request receives exactly one terminal response: the
// responder callback is invoked exactly once, with an OK line or an ERR
// line, on the submitting thread (rejections, STATS) or a worker thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/dynamic.hpp"
#include "metrics/histogram.hpp"
#include "runtime/thread_pool.hpp"
#include "service/protocol.hpp"

namespace tacc::service {

struct EngineOptions {
  /// Worker pool size (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Admission bound: max requests queued or executing across all sessions
  /// before submit() rejects with OVERLOADED.
  std::size_t max_queue = 256;
  /// Default per-request deadline when the request carries no timeout_ms.
  double default_timeout_ms = 1000.0;
  /// Max events one drain pass executes before re-checking the queue.
  std::size_t max_batch = 32;
  /// Service-latency histogram range/resolution (microseconds).
  double histogram_max_us = 20'000.0;
  std::size_t histogram_bins = 2'000;
};

/// Aggregate counters across the engine's lifetime.
struct EngineCounters {
  std::uint64_t accepted = 0;           ///< admitted into a session queue
  std::uint64_t completed = 0;          ///< executed, responded OK
  std::uint64_t failed = 0;             ///< executed, responded ERR
  std::uint64_t rejected_overload = 0;  ///< bounced at admission
  std::uint64_t rejected_deadline = 0;  ///< expired in the queue
  std::uint64_t rejected_shutdown = 0;  ///< bounced while draining
};

class Engine {
 public:
  /// Exactly-once terminal response callback. May be invoked from the
  /// submitting thread or a pool worker; must not block for long and must
  /// not call back into the engine.
  using Responder = std::function<void(std::string)>;

  explicit Engine(EngineOptions options = {});
  /// Drains all admitted work before returning.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Routes one parsed request. PING/SHUTDOWN are transport-level verbs and
  /// are answered BAD_REQUEST here. Never blocks on cluster work.
  void submit(const Request& request, Responder respond);

  /// Stops admitting new requests (they answer ERR SHUTTING_DOWN); already
  /// admitted requests still execute.
  void begin_shutdown();
  /// Blocks until every admitted request has received its response.
  void drain();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] EngineCounters counters() const;
  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Deep validation of the request-accounting invariants, reported through
  /// the contracts failure handler. Under the engine mutex it must hold
  /// that every admitted request is exactly one of: responded OK
  /// (completed), responded ERR (failed), expired in the queue
  /// (rejected_deadline), or still in flight — i.e.
  ///   accepted == completed + failed + rejected_deadline + in_flight,
  /// that queued events never exceed the in-flight count, and that
  /// admission respects max_queue. Safe to call concurrently with traffic
  /// (takes the mutex; holds it only to snapshot).
  void check_invariants() const;

 private:
  friend struct ServiceEngineTestPeer;  ///< corruption hook for tests
  using Clock = std::chrono::steady_clock;

  struct Event {
    Request request;
    Responder respond;
    Clock::time_point enqueued;
    Clock::time_point deadline;
  };

  /// Cheap cluster-state numbers re-sampled after every batch so STATS
  /// never waits on an executing session.
  struct SessionSnapshot {
    bool configured = false;
    std::size_t devices = 0;
    std::size_t servers = 0;
    std::size_t healthy_servers = 0;
    double avg_delay_ms = 0.0;
    double max_utilization = 0.0;
    bool feasible = true;
    // Incremental delay engine counters (LINK_* verbs).
    std::uint64_t delay_epoch = 0;
    std::uint64_t link_updates = 0;
    std::uint64_t link_nodes_affected = 0;
    std::uint64_t link_nodes_saved = 0;
    std::uint64_t delay_rows_refreshed = 0;
    std::uint64_t delay_rows_saved = 0;
  };

  struct Session {
    explicit Session(std::string session_name, const EngineOptions& options)
        : name(std::move(session_name)),
          latency_us(0.0, options.histogram_max_us, options.histogram_bins) {}

    const std::string name;

    // Queue state — guarded by Engine::mutex_.
    std::deque<Event> pending;
    bool draining = false;

    // Cluster — touched only by the (single) active drain task.
    std::unique_ptr<DynamicCluster> cluster;

    // Metrics — guarded by metrics_mutex (never held across cluster work).
    mutable std::mutex metrics_mutex;
    EngineCounters counters;
    std::uint64_t batches = 0;
    metrics::Histogram latency_us;
    SessionSnapshot snapshot;
  };

  void drain_session(const std::shared_ptr<Session>& session);
  /// Executes one event against the session's cluster; returns the response
  /// line. Never throws.
  std::string apply(Session& session, const Request& request);
  [[nodiscard]] std::string stats_line(const std::string& session_name) const;

  const EngineOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;  ///< signalled when in_flight_ drops
  std::map<std::string, std::shared_ptr<Session>, std::less<>> sessions_;
  std::size_t in_flight_ = 0;  ///< admitted, not yet responded
  bool shutting_down_ = false;
  EngineCounters counters_;
  runtime::ThreadPool pool_;  // last member: workers stop before state dies
};

}  // namespace tacc::service
