#include "service/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <stdexcept>

#include "util/log.hpp"
#include "util/mutex.hpp"

namespace tacc::service {

namespace {

/// Wake-pipe write end for the installed signal handlers. A lock-free
/// atomic int is the only state a handler may touch.
std::atomic<int> g_signal_wake_fd{-1};

void signal_handler(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // The pipe is the wakeup; a full pipe already guarantees a wakeup.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void send_all(int fd, std::string_view data, bool& failed) {
  while (!failed && !data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      failed = true;  // client is gone; keep accounting, stop writing
      return;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// ---- Connection ------------------------------------------------------------

Server::Connection::~Connection() {
  ::close(fd);
}

void Server::Connection::flush_locked() {
  while (!ready.empty() && ready.begin()->first == next_write) {
    send_all(fd, ready.begin()->second, write_failed);
    ready.erase(ready.begin());
    ++next_write;
  }
  if (next_write >= seq_end && ready.empty()) {
    // Every response is out; give pipelined clients a clean EOF.
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Server::Connection::respond(std::uint64_t seq, std::string line) {
  line += '\n';
  const MutexLock lock(&write_mutex);
  ready.emplace(seq, std::move(line));
  flush_locked();
}

void Server::Connection::finish_requests(std::uint64_t total_seqs) {
  const MutexLock lock(&write_mutex);
  seq_end = total_seqs;
  flush_locked();
}

// ---- Server ----------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(std::move(options)), engine_(options_.engine) {
  if (::pipe(wake_fds_) != 0) {
    throw std::runtime_error("taccd: cannot create wake pipe");
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("taccd: unix socket path too long: " +
                               options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (unix_fd_ < 0) throw std::runtime_error("taccd: socket(AF_UNIX)");
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead daemon
    if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(unix_fd_, 128) != 0) {
      throw std::runtime_error("taccd: cannot bind unix socket " +
                               options_.unix_path);
    }
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) throw std::runtime_error("taccd: socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("taccd: bad TCP host " + options_.tcp_host);
    }
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcp_fd_, 128) != 0) {
      throw std::runtime_error("taccd: cannot bind TCP port " +
                               std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    throw std::runtime_error("taccd: no listeners configured");
  }
}

Server::~Server() {
  if (g_signal_wake_fd.load() == wake_fds_[1]) g_signal_wake_fd.store(-1);
  close_listeners();
  // Join any readers left from a run() the caller never completed. Joining
  // under connections_mutex_ is fine (readers never take it), and clearing
  // under it was always required — the pre-annotation code dropped the lock
  // before the clears, which the thread-safety analysis flagged.
  {
    const MutexLock lock(&connections_mutex_);
    for (const auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
    readers_.clear();
    connections_.clear();
  }
  close_fd(wake_fds_[0]);
  close_fd(wake_fds_[1]);
}

void Server::request_shutdown() noexcept {
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Server::install_signal_handlers() noexcept {
  g_signal_wake_fd.store(wake_fds_[1]);
  struct sigaction action{};
  action.sa_handler = &signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::run() {
  accept_loop();
  shutdown_sequence();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {wake_fds_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[count++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};

    // Finite timeout so dead connections are reaped even when idle.
    const int rc = ::poll(fds, count, 500);
    if (rc < 0 && errno != EINTR) {
      util::log_error("taccd: poll failed: ", std::strerror(errno));
      return;
    }

    reap_finished_connections();
    if (rc <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) return;  // shutdown requested

    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (client < 0) continue;
      auto connection = std::make_shared<Connection>(client);
      connections_accepted_.fetch_add(1);
      const MutexLock lock(&connections_mutex_);
      connections_.push_back(connection);
      readers_.emplace_back(
          [this, connection] { reader_loop(connection); });
    }
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& connection) {
  std::string buffer;
  std::uint64_t next_seq = 0;
  char chunk[4096];
  bool overflow = false;
  while (!overflow) {
    const ssize_t n = ::read(connection->fd, chunk, sizeof chunk);
    if (n <= 0) break;  // EOF, client reset, or our own SHUT_RDWR
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t pos = buffer.find('\n', start);
         pos != std::string::npos; pos = buffer.find('\n', start)) {
      const std::string_view line(buffer.data() + start, pos - start);
      if (line.size() > options_.max_line) {
        overflow = true;
        break;
      }
      if (!line.empty() && line != "\r") {
        handle_line(connection, next_seq++, line);
      }
      start = pos + 1;
    }
    buffer.erase(0, start);

    // Both a complete oversized line and an unbounded partial one mean the
    // client is out of protocol; answer once and hang up.
    if (buffer.size() > options_.max_line) overflow = true;
    if (overflow) {
      connection->respond(
          next_seq++,
          err_line(ErrorCode::kBadRequest,
                   "line exceeds " + std::to_string(options_.max_line) +
                       " bytes"));
    }
  }
  connection->finish_requests(next_seq);
  connection->reader_done.store(true);
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         std::uint64_t seq, std::string_view line) {
  ParseResult parsed = parse_request(line);
  if (!parsed.ok()) {
    connection->respond(seq, err_line(ErrorCode::kBadRequest, parsed.error));
    return;
  }
  const Request& request = *parsed.request;
  switch (request.verb) {
    case Verb::kPing:
      connection->respond(seq, "OK pong");
      return;
    case Verb::kShutdown:
      connection->respond(seq, "OK draining");
      request_shutdown();
      return;
    default:
      engine_.submit(request,
                     [connection, seq](std::string response) {
                       connection->respond(seq, std::move(response));
                     });
      return;
  }
}

void Server::reap_finished_connections() {
  const MutexLock lock(&connections_mutex_);
  for (std::size_t i = 0; i < connections_.size();) {
    if (connections_[i]->reader_done.load()) {
      readers_[i].join();
      readers_.erase(readers_.begin() + static_cast<std::ptrdiff_t>(i));
      connections_.erase(connections_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Server::close_listeners() noexcept {
  if (unix_fd_ >= 0 && !options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
}

void Server::shutdown_sequence() {
  util::log_info("taccd: draining");
  close_listeners();
  // Stop admitting, then let every already-admitted request reach its
  // terminal response before cutting the sockets.
  engine_.begin_shutdown();
  engine_.drain();
  {
    const MutexLock lock(&connections_mutex_);
    for (const auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
    readers_.clear();      // joins: SHUT_RDWR unblocked every read()
    connections_.clear();  // closes client fds
  }
  util::log_info("taccd: drained; all connections closed");
}

}  // namespace tacc::service
