#include "service/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/configurator.hpp"
#include "core/dynamic.hpp"
#include "core/scenario.hpp"
#include "topology/failures.hpp"
#include "topology/oracle/config.hpp"
#include "topology/oracle/oracle.hpp"
#include "util/contracts.hpp"
#include "util/mutex.hpp"

namespace tacc::service {

namespace {

std::size_t resolve_shards(const EngineOptions& options) {
  const std::size_t requested = options.shards == 0
                                    ? runtime::default_thread_count()
                                    : options.shards;
  return std::clamp<std::size_t>(requested, 1, runtime::kMaxThreads);
}

std::size_t workers_per_shard(const EngineOptions& options,
                              std::size_t shards) {
  const std::size_t budget = options.threads == 0
                                 ? runtime::default_thread_count()
                                 : std::min(options.threads,
                                            runtime::kMaxThreads);
  return std::max<std::size_t>(1, budget / shards);
}

std::size_t admission_quota(const EngineOptions& options, std::size_t shards) {
  return std::max<std::size_t>(1, (options.max_queue + shards - 1) / shards);
}

void add_counters(EngineCounters& into, const EngineCounters& from) {
  into.accepted += from.accepted;
  into.completed += from.completed;
  into.failed += from.failed;
  into.rejected_overload += from.rejected_overload;
  into.rejected_deadline += from.rejected_deadline;
  into.rejected_shutdown += from.rejected_shutdown;
  into.rejected_not_found += from.rejected_not_found;
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  const std::size_t shards = resolve_shards(options_);
  const std::size_t workers = workers_per_shard(options_, shards);
  const std::size_t quota = admission_quota(options_, shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(quota, workers));
  }
}

Engine::~Engine() {
  begin_shutdown();
  drain();
}

void Engine::begin_shutdown() {
  for (const auto& shard : shards_) {
    const MutexLock lock(&shard->mutex);
    shard->shutting_down = true;
  }
}

void Engine::drain() {
  for (const auto& shard : shards_) {
    const MutexLock lock(&shard->mutex);
    while (shard->in_flight != 0) shard->drained_cv.wait(shard->mutex);
  }
}

std::size_t Engine::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(&shard->mutex);
    depth += shard->in_flight;
  }
  return depth;
}

EngineCounters Engine::counters() const {
  EngineCounters total;
  for (const auto& shard : shards_) {
    const MutexLock lock(&shard->mutex);
    add_counters(total, shard->counters);
  }
  return total;
}

std::size_t Engine::session_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(&shard->mutex);
    count += shard->sessions.size();
  }
  return count;
}

std::size_t Engine::shard_of(std::string_view session) const noexcept {
  // FNV-1a 64-bit: stable across builds and restarts (std::hash makes no
  // such promise), so replayed streams route identically run over run.
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : session) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash % shards_.size());
}

std::size_t Engine::shard_quota() const noexcept {
  return shards_.front()->quota;
}

void Engine::check_invariants() const {
  // Snapshot each shard under its own mutex, then check unlocked: the
  // failure handler may throw, and must not do so while holding a lock.
  struct ShardView {
    EngineCounters counters;
    EngineCounters session_sum;
    std::size_t in_flight = 0;
    std::size_t pending_total = 0;
    std::size_t draining_sessions = 0;
  };
  std::vector<ShardView> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardView view;
    const MutexLock lock(&shard->mutex);
    view.counters = shard->counters;
    view.in_flight = shard->in_flight;
    for (const auto& [name, session] : shard->sessions) {
      // Session fields are guarded by the back-pointer to this very mutex;
      // tell the analysis the alias is held (see Session::shard_mutex).
      session->shard_mutex->assert_held();
      view.pending_total += session->pending.size();
      if (session->draining) ++view.draining_sessions;
      add_counters(view.session_sum, session->counters);
    }
    views.push_back(view);
  }

  EngineCounters total;
  std::size_t total_in_flight = 0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const ShardView& view = views[i];
    const EngineCounters& c = view.counters;
    const std::string where = "shard " + std::to_string(i) + ": ";
    // Every admitted request is exactly one of: completed, failed, expired
    // against its deadline, or still in flight. Rejections never enter the
    // identity — they were never admitted.
    TACC_CHECK_INVARIANT(
        c.accepted == c.completed + c.failed + c.rejected_deadline +
                          view.in_flight,
        where + "request accounting broke: accepted " +
            std::to_string(c.accepted) + " != completed " +
            std::to_string(c.completed) + " + failed " +
            std::to_string(c.failed) + " + expired " +
            std::to_string(c.rejected_deadline) + " + in-flight " +
            std::to_string(view.in_flight));
    TACC_CHECK_INVARIANT(view.pending_total <= view.in_flight,
                         where + "queued events exceed the in-flight count");
    TACC_CHECK_INVARIANT(view.in_flight <= shards_[i]->quota,
                         where + "admission exceeded the shard quota");
    TACC_CHECK_INVARIANT(
        view.pending_total == 0 || view.draining_sessions > 0,
        where + "events queued with no drainer scheduled");
    // Shard counters are the sum of their sessions' counters for every
    // event that reached a session. (Overload/shutdown/not-found bounces
    // may precede session attribution, so those are >=, not ==.)
    TACC_CHECK_INVARIANT(
        c.accepted == view.session_sum.accepted &&
            c.completed == view.session_sum.completed &&
            c.failed == view.session_sum.failed &&
            c.rejected_deadline == view.session_sum.rejected_deadline,
        where + "shard counters diverge from the sum over its sessions");
    TACC_CHECK_INVARIANT(
        c.rejected_overload >= view.session_sum.rejected_overload,
        where + "session overload rejections exceed the shard's");
    add_counters(total, c);
    total_in_flight += view.in_flight;
  }
  TACC_CHECK_INVARIANT(
      total.accepted == total.completed + total.failed +
                            total.rejected_deadline + total_in_flight,
      "aggregate request accounting broke across shards");
}

void Engine::submit(const Request& request, Responder respond) {
  switch (request.verb) {
    case Verb::kPing:
    case Verb::kShutdown:
      // Transport-level verbs; the socket server answers them before the
      // engine ever sees them.
      respond(err_line(ErrorCode::kBadRequest,
                       "verb is handled by the transport"));
      return;
    case Verb::kStats:
      respond(stats_line(request));
      return;
    default:
      break;
  }

  const Clock::time_point now = Clock::now();
  const double timeout_ms =
      request.timeout_ms.value_or(options_.default_timeout_ms);
  Event event{request, std::move(respond), now,
              now + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms))};

  Shard& shard = *shards_[shard_of(request.session)];
  enum class Outcome { kAccepted, kOverloaded, kNotFound, kShuttingDown };
  Outcome outcome = Outcome::kShuttingDown;
  std::shared_ptr<Session> session;
  bool schedule = false;
  {
    const MutexLock lock(&shard.mutex);
    if (shard.shutting_down) {
      ++shard.counters.rejected_shutdown;
      outcome = Outcome::kShuttingDown;
    } else if (shard.in_flight >= shard.quota) {
      ++shard.counters.rejected_overload;
      const auto it = shard.sessions.find(request.session);
      if (it != shard.sessions.end()) {
        it->second->shard_mutex->assert_held();
        ++it->second->counters.rejected_overload;
      }
      outcome = Outcome::kOverloaded;
    } else {
      const auto it = shard.sessions.find(request.session);
      if (it != shard.sessions.end()) {
        session = it->second;
      } else if (request.verb == Verb::kConfigure) {
        session =
            std::make_shared<Session>(request.session, options_, &shard.mutex);
        shard.sessions.emplace(request.session, session);
      }
      if (session) {
        session->shard_mutex->assert_held();
        ++shard.in_flight;
        ++shard.counters.accepted;
        ++session->counters.accepted;
        session->pending.push_back(std::move(event));
        if (!session->draining) {
          session->draining = true;
          schedule = true;
        }
        outcome = Outcome::kAccepted;
      } else {
        ++shard.counters.rejected_not_found;
        outcome = Outcome::kNotFound;
      }
    }
  }

  // Everything below runs unlocked so responders and the pool can't deadlock
  // back into submit().
  switch (outcome) {
    case Outcome::kAccepted:
      if (schedule) {
        shard.pool.submit([this, &shard, session] {
          drain_session(shard, session);
        });
      }
      return;
    case Outcome::kShuttingDown:
      event.respond(err_line(ErrorCode::kShuttingDown, "daemon is draining"));
      return;
    case Outcome::kNotFound:
      event.respond(err_line(ErrorCode::kNotFound,
                             "unknown session '" + request.session + "'"));
      return;
    case Outcome::kOverloaded:
      event.respond(err_line(ErrorCode::kOverloaded,
                             "admission queue full (shard quota=" +
                                 std::to_string(shard.quota) + ")"));
      return;
  }
}

void Engine::drain_session(Shard& shard,
                           const std::shared_ptr<Session>& session) {
  for (;;) {
    std::vector<Event> batch;
    {
      const MutexLock lock(&shard.mutex);
      session->shard_mutex->assert_held();
      const std::size_t n =
          std::min(session->pending.size(), options_.max_batch);
      if (n == 0) {
        session->draining = false;
        return;
      }
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(session->pending.front()));
        session->pending.pop_front();
      }
    }

    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t expired = 0;
    std::vector<double> latencies;
    latencies.reserve(batch.size());
    SessionSnapshot snapshot;
    // The cluster lock serializes this batch's mutations (and the snapshot
    // read below) against the session's background re-optimizer. The
    // optimizer only try_locks, so holding it for the whole batch never
    // stalls anyone but the optimizer — which simply skips a pass.
    ReleasableMutexLock cluster_lock(&session->cluster_mutex);
    for (Event& event : batch) {
      // Deadline re-check at dequeue time (boundary inclusive: a deadline
      // exactly at dequeue is expired) — the event leaves the queue for
      // execution here, possibly long after batch formation.
      if (deadline_expired(event.deadline, Clock::now())) {
        ++expired;
        event.respond(err_line(ErrorCode::kDeadlineExceeded,
                               "expired after queueing"));
        continue;
      }
      std::string line = apply(*session, event.request);
      const Clock::time_point finished = Clock::now();
      if (deadline_expired(event.deadline, finished)) {
        // The deadline passed while the event executed. The cluster
        // mutation is kept (it ran to completion), but the client is
        // answered — and the ledger counts — consistently with the
        // deadline contract: this is rejected_deadline, never completed.
        ++expired;
        event.respond(err_line(ErrorCode::kDeadlineExceeded,
                               "deadline passed during execution"));
        continue;
      }
      const bool ok = line.starts_with("OK");
      (ok ? completed : failed) += 1;
      latencies.push_back(
          std::chrono::duration<double, std::micro>(finished - event.enqueued)
              .count());
      event.respond(std::move(line));
    }

    // One metrics flush per batch (micro-batching's second dividend). Still
    // under the cluster lock: the snapshot must not race optimizer moves.
    snapshot.configured = session->cluster != nullptr;
    if (session->cluster) {
      const DynamicCluster& cluster = *session->cluster;
      snapshot.devices = cluster.active_count();
      snapshot.servers = cluster.server_count();
      snapshot.healthy_servers = cluster.healthy_server_count();
      snapshot.avg_delay_ms = cluster.avg_delay_ms();
      snapshot.max_utilization = cluster.max_utilization();
      snapshot.feasible = cluster.feasible();
      const topo::incr::EngineStats& link_stats = cluster.link_stats();
      snapshot.delay_epoch = link_stats.epoch;
      snapshot.link_updates = link_stats.link_updates;
      snapshot.link_nodes_affected = link_stats.nodes_affected;
      snapshot.link_nodes_saved = link_stats.nodes_saved;
      snapshot.delay_rows_refreshed = cluster.delay_rows_refreshed();
      snapshot.delay_rows_saved = cluster.delay_rows_saved();
    }
    if (session->reoptimizer) {
      snapshot.reopt_running = session->reoptimizer->running();
      const opt::ReoptStats reopt = session->reoptimizer->stats();
      snapshot.reopt_passes = reopt.passes;
      snapshot.reopt_proposed = reopt.moves_proposed;
      snapshot.reopt_applied = reopt.moves_applied;
      snapshot.reopt_rejected = reopt.rejected();
      snapshot.reopt_gain = reopt.achieved_gain;
    }
    cluster_lock.release();
    {
      // One lock, one coherent flush: queue ledger, per-session counters,
      // and the snapshot move together, so no STATS reply can catch the
      // identity mid-update.
      const MutexLock lock(&shard.mutex);
      session->shard_mutex->assert_held();
      session->counters.completed += completed;
      session->counters.failed += failed;
      session->counters.rejected_deadline += expired;
      ++session->batches;
      for (const double us : latencies) session->latency_us.add(us);
      session->snapshot = snapshot;
      shard.counters.completed += completed;
      shard.counters.failed += failed;
      shard.counters.rejected_deadline += expired;
      shard.in_flight -= batch.size();
      if (shard.in_flight == 0) shard.drained_cv.notify_all();
    }
  }
}

std::string Engine::apply(Session& session, const Request& request) {
  try {
    if (request.verb == Verb::kConfigure) {
      Scenario scenario = [&] {
        switch (request.preset) {
          case ScenarioPreset::kFactory:
            return Scenario::factory(request.iot, request.edge, request.seed);
          case ScenarioPreset::kCampus:
            return Scenario::campus(request.iot, request.edge, request.seed);
          case ScenarioPreset::kSmartCity:
          default:
            return Scenario::smart_city(request.iot, request.edge,
                                        request.seed);
        }
      }();
      AlgorithmOptions algorithm_options;
      algorithm_options.apply_seed(request.seed);
      // Per-request oracle= beats the daemon-wide --oracle default; both
      // were validated at parse/startup, so this parse only throws (caught
      // below as BAD_REQUEST) if a raw EngineOptions carried a bad spec.
      const std::string& oracle_spec =
          !request.oracle.empty() ? request.oracle : options_.default_oracle;
      ConfigureRequest configure(request.algorithm, algorithm_options,
                                 CostModel::kTopologyAware, 10.0,
                                 topo::oracle::parse_oracle_spec(oracle_spec));
      // The optimizer (if any) references the old cluster: stop and detach
      // it before the swap, then re-attach onto the replacement with the
      // same tuning (or the engine default under auto_reopt).
      const bool reattach =
          session.reoptimizer != nullptr || options_.auto_reopt;
      session.reoptimizer.reset();
      session.cluster = std::make_unique<DynamicCluster>(scenario, configure);
      if (reattach) {
        const opt::ReoptOptions reopt =
            session.reopt_options.value_or(options_.reopt);
        session.reoptimizer = std::make_unique<opt::Reoptimizer>(
            *session.cluster, session.cluster_mutex, reopt);
        session.reoptimizer->start();
      }
      return OkLine()
          .field("session", session.name)
          .field("preset", to_string(request.preset))
          .field("devices", session.cluster->active_count())
          .field("servers", session.cluster->server_count())
          .field("algo", tacc::to_string(request.algorithm))
          .field("oracle", session.cluster->delay_oracle().name())
          .field("avg_delay_ms", session.cluster->avg_delay_ms())
          .field("feasible", session.cluster->feasible())
          .str();
    }
    if (request.verb == Verb::kSleep) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(request.sleep_ms));
      return OkLine().field("slept_ms", request.sleep_ms).str();
    }
    if (!session.cluster) {
      return err_line(ErrorCode::kNotFound,
                      "session '" + session.name + "' is not configured");
    }
    DynamicCluster& cluster = *session.cluster;
    switch (request.verb) {
      case Verb::kJoin: {
        workload::IotDevice device;
        device.position = {request.x, request.y};
        device.request_rate_hz = request.rate_hz;
        device.demand = request.demand;
        const JoinResult joined = cluster.join(device);
        return OkLine()
            .field("device", joined.device_index)
            .field("server", joined.server)
            .field("feasible", joined.feasible)
            .field("overload", joined.overload_fallback)
            .str();
      }
      case Verb::kMove: {
        const topo::Point2D position{request.x, request.y};
        const JoinResult moved = request.pinned
                                     ? cluster.move_pinned(request.index,
                                                           position)
                                     : cluster.move(request.index, position);
        return OkLine()
            .field("device", moved.device_index)
            .field("server", moved.server)
            .field("feasible", moved.feasible)
            .field("overload", moved.overload_fallback)
            .str();
      }
      case Verb::kLeave:
        cluster.leave(request.index);
        return OkLine().field("device", request.index).str();
      case Verb::kFail: {
        const EvacuationReport report =
            cluster.fail_server(request.index, request.evacuate);
        return OkLine()
            .field("server", request.index)
            .field("evacuated", report.evacuated)
            .field("overloaded", report.overloaded)
            .str();
      }
      case Verb::kRecover:
        cluster.recover_server(request.index);
        return OkLine().field("server", request.index).str();
      case Verb::kEvacuate: {
        const EvacuationReport report = cluster.evacuate_server(request.index);
        return OkLine()
            .field("server", request.index)
            .field("evacuated", report.evacuated)
            .field("overloaded", report.overloaded)
            .str();
      }
      case Verb::kLinkFail:
      case Verb::kLinkRestore:
      case Verb::kLinkSet: {
        const auto u = static_cast<topo::NodeId>(request.link_u);
        const auto v = static_cast<topo::NodeId>(request.link_v);
        const LinkUpdateReport report =
            request.verb == Verb::kLinkFail ? cluster.fail_link(u, v)
            : request.verb == Verb::kLinkRestore
                ? cluster.restore_link(u, v)
                : cluster.set_link_latency(u, v, request.latency_ms);
        return OkLine()
            .field("u", request.link_u)
            .field("v", request.link_v)
            .field("epoch", static_cast<std::size_t>(report.epoch))
            .field("affected", static_cast<std::size_t>(report.nodes_affected))
            .field("saved", static_cast<std::size_t>(report.nodes_saved))
            .field("rows_refreshed", report.rows_refreshed)
            // For LINK_SET this is the latency the link had before.
            .field("latency_ms", report.latency_ms)
            .field("avg_delay_ms", cluster.avg_delay_ms())
            .str();
      }
      case Verb::kReoptStart: {
        opt::ReoptOptions reopt = options_.reopt;
        if (request.reopt_moves > 0) {
          reopt.budget.max_moves_per_window = request.reopt_moves;
        }
        if (request.reopt_device_moves > 0) {
          reopt.budget.max_device_moves_per_window =
              request.reopt_device_moves;
        }
        if (request.reopt_window_s > 0.0) {
          reopt.budget.window_s = request.reopt_window_s;
        }
        if (request.reopt_interval_ms > 0.0) {
          reopt.interval_ms = request.reopt_interval_ms;
        }
        // Replacing an attached optimizer stops the old one first; its
        // thread never blocks on cluster_mutex (try_lock only), so joining
        // it while we hold the lock cannot deadlock.
        session.reoptimizer.reset();
        session.reoptimizer = std::make_unique<opt::Reoptimizer>(
            cluster, session.cluster_mutex, reopt);
        session.reoptimizer->start();
        session.reopt_options = reopt;
        return OkLine()
            .field("session", session.name)
            .field("running", true)
            .field("moves_per_window", reopt.budget.max_moves_per_window)
            .field("device_moves_per_window",
                   reopt.budget.max_device_moves_per_window)
            .field("window_s", reopt.budget.window_s)
            .field("interval_ms", reopt.interval_ms)
            .str();
      }
      case Verb::kReoptStop: {
        std::uint64_t applied = 0;
        if (session.reoptimizer) {
          applied = session.reoptimizer->stats().moves_applied;
          session.reoptimizer.reset();  // stops + joins
        }
        session.reopt_options.reset();
        return OkLine()
            .field("session", session.name)
            .field("running", false)
            .field("moves_applied", static_cast<std::size_t>(applied))
            .str();
      }
      case Verb::kReoptStats: {
        OkLine line;
        line.field("session", session.name)
            .field("running", session.reoptimizer != nullptr &&
                                  session.reoptimizer->running());
        const opt::ReoptStats stats = session.reoptimizer
                                          ? session.reoptimizer->stats()
                                          : opt::ReoptStats{};
        return line
            .field("passes", static_cast<std::size_t>(stats.passes))
            .field("plans", static_cast<std::size_t>(stats.plans))
            .field("proposed",
                   static_cast<std::size_t>(stats.moves_proposed))
            .field("applied", static_cast<std::size_t>(stats.moves_applied))
            .field("rejected_stale",
                   static_cast<std::size_t>(stats.rejected_stale))
            .field("rejected_target_failed",
                   static_cast<std::size_t>(stats.rejected_target_failed))
            .field("rejected_infeasible",
                   static_cast<std::size_t>(stats.rejected_infeasible))
            .field("rejected_budget",
                   static_cast<std::size_t>(stats.rejected_budget))
            .field("predicted_gain", stats.predicted_gain)
            .field("achieved_gain", stats.achieved_gain)
            .str();
      }
      case Verb::kOracleStats: {
        const topo::oracle::DelayOracle& oracle = cluster.delay_oracle();
        const topo::oracle::OracleStats stats = oracle.stats();
        std::string hist;
        for (std::size_t i = 0; i < stats.width_hist.size(); ++i) {
          if (i > 0) hist += ':';
          hist += std::to_string(stats.width_hist[i]);
        }
        return OkLine()
            .field("session", session.name)
            .field("backend", oracle.name())
            .field("rows", oracle.row_count())
            .field("epoch", static_cast<std::size_t>(oracle.epoch()))
            .field("queries", static_cast<std::size_t>(stats.queries))
            .field("bound_hits", static_cast<std::size_t>(stats.bound_hits))
            .field("exact_fallbacks",
                   static_cast<std::size_t>(stats.exact_fallbacks))
            .field("row_fills", static_cast<std::size_t>(stats.row_fills))
            .field("rebuilds", static_cast<std::size_t>(stats.rebuilds))
            .field("resident_bytes", oracle.resident_bytes())
            .field("width_hist", hist)
            .str();
      }
      case Verb::kLinks: {
        const auto links = topo::backbone_links(cluster.network());
        std::string list;
        const std::size_t shown = std::min(request.limit, links.size());
        for (std::size_t i = 0; i < shown; ++i) {
          if (i > 0) list += ',';
          list += std::to_string(links[i].first);
          list += '-';
          list += std::to_string(links[i].second);
        }
        return OkLine()
            .field("count", links.size())
            .field("failed", cluster.network().failed_links.size())
            .field("links", list)
            .str();
      }
      default:
        return err_line(ErrorCode::kInternal, "unroutable verb");
    }
  } catch (const std::logic_error& error) {
    // DynamicCluster signals precondition violations (inactive device, bad
    // server, last healthy server) via logic_error/invalid_argument.
    return err_line(ErrorCode::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return err_line(ErrorCode::kInternal, error.what());
  }
}

std::string Engine::stats_line(const Request& request) const {
  if (request.session.empty()) {
    // Global STATS: one coherent snapshot per shard (each under its own
    // lock), summed after the locks drop. The accounting identity holds
    // exactly within every per-shard block and in the aggregate.
    struct ShardView {
      EngineCounters counters;
      std::size_t in_flight = 0;
      std::size_t sessions = 0;
    };
    std::vector<ShardView> views;
    views.reserve(shards_.size());
    for (const auto& shard : shards_) {
      ShardView view;
      const MutexLock lock(&shard->mutex);
      view.counters = shard->counters;
      view.in_flight = shard->in_flight;
      view.sessions = shard->sessions.size();
      views.push_back(view);
    }
    EngineCounters total;
    std::size_t depth = 0;
    std::size_t sessions = 0;
    for (const ShardView& view : views) {
      add_counters(total, view.counters);
      depth += view.in_flight;
      sessions += view.sessions;
    }
    OkLine line;
    line.field("sessions", sessions)
        .field("shards", shards_.size())
        .field("shard_quota", shard_quota())
        .field("queue_depth", depth)
        .field("max_queue", options_.max_queue)
        .field("accepted", static_cast<std::size_t>(total.accepted))
        .field("completed", static_cast<std::size_t>(total.completed))
        .field("failed", static_cast<std::size_t>(total.failed))
        .field("rejected_overload",
               static_cast<std::size_t>(total.rejected_overload))
        .field("rejected_deadline",
               static_cast<std::size_t>(total.rejected_deadline))
        .field("rejected_shutdown",
               static_cast<std::size_t>(total.rejected_shutdown))
        .field("rejected_not_found",
               static_cast<std::size_t>(total.rejected_not_found));
    if (request.per_shard) {
      // STATS shards=1: per-shard ledger blocks. Each block is a coherent
      // cut, so s<k>_accepted == s<k>_completed + s<k>_failed +
      // s<k>_deadline + s<k>_depth holds in every reply.
      for (std::size_t i = 0; i < views.size(); ++i) {
        const std::string prefix = "s" + std::to_string(i) + "_";
        const EngineCounters& c = views[i].counters;
        line.field(prefix + "depth", views[i].in_flight)
            .field(prefix + "accepted", static_cast<std::size_t>(c.accepted))
            .field(prefix + "completed",
                   static_cast<std::size_t>(c.completed))
            .field(prefix + "failed", static_cast<std::size_t>(c.failed))
            .field(prefix + "deadline",
                   static_cast<std::size_t>(c.rejected_deadline))
            .field(prefix + "sessions", views[i].sessions);
      }
    }
    return line.str();
  }

  const std::size_t shard_index = shard_of(request.session);
  const Shard& shard = *shards_[shard_index];
  // Everything — counters, histogram, snapshot — reads under the one shard
  // lock, so the reply is a coherent cut of the session's ledger.
  const MutexLock lock(&shard.mutex);
  const auto it = shard.sessions.find(request.session);
  if (it == shard.sessions.end()) {
    return err_line(ErrorCode::kNotFound,
                    "unknown session '" + request.session + "'");
  }
  const Session& session = *it->second;
  session.shard_mutex->assert_held();
  const EngineCounters& c = session.counters;
  const metrics::Histogram& h = session.latency_us;
  const SessionSnapshot& s = session.snapshot;
  // Derived under the same lock, so it can never go negative.
  const std::uint64_t in_flight =
      c.accepted - c.completed - c.failed - c.rejected_deadline;
  return OkLine()
      .field("session", session.name)
      .field("shard", shard_index)
      .field("configured", s.configured)
      .field("devices", s.devices)
      .field("servers", s.servers)
      .field("healthy_servers", s.healthy_servers)
      .field("avg_delay_ms", s.avg_delay_ms)
      .field("max_utilization", s.max_utilization)
      .field("feasible", s.feasible)
      .field("delay_epoch", static_cast<std::size_t>(s.delay_epoch))
      .field("link_updates", static_cast<std::size_t>(s.link_updates))
      .field("link_nodes_affected",
             static_cast<std::size_t>(s.link_nodes_affected))
      .field("link_nodes_saved",
             static_cast<std::size_t>(s.link_nodes_saved))
      .field("delay_rows_refreshed",
             static_cast<std::size_t>(s.delay_rows_refreshed))
      .field("delay_rows_saved",
             static_cast<std::size_t>(s.delay_rows_saved))
      .field("reopt_running", s.reopt_running)
      .field("reopt_passes", static_cast<std::size_t>(s.reopt_passes))
      .field("reopt_proposed", static_cast<std::size_t>(s.reopt_proposed))
      .field("reopt_applied", static_cast<std::size_t>(s.reopt_applied))
      .field("reopt_rejected", static_cast<std::size_t>(s.reopt_rejected))
      .field("reopt_gain", s.reopt_gain)
      .field("accepted", static_cast<std::size_t>(c.accepted))
      .field("completed", static_cast<std::size_t>(c.completed))
      .field("failed", static_cast<std::size_t>(c.failed))
      .field("rejected_overload",
             static_cast<std::size_t>(c.rejected_overload))
      .field("rejected_deadline",
             static_cast<std::size_t>(c.rejected_deadline))
      .field("in_flight", static_cast<std::size_t>(in_flight))
      .field("pending", session.pending.size())
      .field("batches", static_cast<std::size_t>(session.batches))
      .field("latency_count", h.total())
      .field("p50_us", h.quantile(0.50))
      .field("p99_us", h.quantile(0.99))
      .field("p999_us", h.quantile(0.999))
      .str();
}

}  // namespace tacc::service
