#include "service/engine.hpp"

#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dynamic.hpp"
#include "core/scenario.hpp"
#include "topology/failures.hpp"
#include "util/contracts.hpp"

namespace tacc::service {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), pool_(options_.threads) {}

Engine::~Engine() {
  begin_shutdown();
  drain();
}

void Engine::begin_shutdown() {
  const std::scoped_lock lock(mutex_);
  shutting_down_ = true;
}

void Engine::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t Engine::queue_depth() const {
  const std::scoped_lock lock(mutex_);
  return in_flight_;
}

EngineCounters Engine::counters() const {
  const std::scoped_lock lock(mutex_);
  return counters_;
}

std::size_t Engine::session_count() const {
  const std::scoped_lock lock(mutex_);
  return sessions_.size();
}

void Engine::check_invariants() const {
  // Snapshot under the mutex, then check unlocked: the failure handler may
  // throw, and must not do so while holding the engine lock.
  EngineCounters counters;
  std::size_t in_flight = 0;
  std::size_t pending_total = 0;
  std::size_t draining_sessions = 0;
  {
    const std::scoped_lock lock(mutex_);
    counters = counters_;
    in_flight = in_flight_;
    for (const auto& [name, session] : sessions_) {
      pending_total += session->pending.size();
      if (session->draining) ++draining_sessions;
    }
  }
  // Every admitted request is exactly one of: completed, failed, expired in
  // the queue, or still in flight. Rejections never enter the identity —
  // they were never admitted.
  TACC_CHECK_INVARIANT(
      counters.accepted == counters.completed + counters.failed +
                               counters.rejected_deadline + in_flight,
      "request accounting broke: accepted " +
          std::to_string(counters.accepted) + " != completed " +
          std::to_string(counters.completed) + " + failed " +
          std::to_string(counters.failed) + " + expired " +
          std::to_string(counters.rejected_deadline) + " + in-flight " +
          std::to_string(in_flight));
  TACC_CHECK_INVARIANT(pending_total <= in_flight,
                       "queued events exceed the in-flight count");
  TACC_CHECK_INVARIANT(in_flight <= options_.max_queue,
                       "admission exceeded max_queue");
  TACC_CHECK_INVARIANT(pending_total == 0 || draining_sessions > 0,
                       "events queued with no drainer scheduled");
}

void Engine::submit(const Request& request, Responder respond) {
  switch (request.verb) {
    case Verb::kPing:
    case Verb::kShutdown:
      // Transport-level verbs; the socket server answers them before the
      // engine ever sees them.
      respond(err_line(ErrorCode::kBadRequest,
                       "verb is handled by the transport"));
      return;
    case Verb::kStats:
      respond(stats_line(request.session));
      return;
    default:
      break;
  }

  const Clock::time_point now = Clock::now();
  const double timeout_ms =
      request.timeout_ms.value_or(options_.default_timeout_ms);
  Event event{request, std::move(respond), now,
              now + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms))};

  enum class Outcome { kAccepted, kOverloaded, kNotFound, kShuttingDown };
  Outcome outcome = Outcome::kShuttingDown;
  std::shared_ptr<Session> session;
  bool schedule = false;
  {
    const std::scoped_lock lock(mutex_);
    if (shutting_down_) {
      ++counters_.rejected_shutdown;
      outcome = Outcome::kShuttingDown;
    } else if (in_flight_ >= options_.max_queue) {
      ++counters_.rejected_overload;
      const auto it = sessions_.find(request.session);
      if (it != sessions_.end()) session = it->second;
      outcome = Outcome::kOverloaded;
    } else {
      const auto it = sessions_.find(request.session);
      if (it != sessions_.end()) {
        session = it->second;
      } else if (request.verb == Verb::kConfigure) {
        session = std::make_shared<Session>(request.session, options_);
        sessions_.emplace(request.session, session);
      } else {
        ++counters_.failed;
        outcome = Outcome::kNotFound;
      }
      if (session) {
        ++in_flight_;
        ++counters_.accepted;
        session->pending.push_back(std::move(event));
        if (!session->draining) {
          session->draining = true;
          schedule = true;
        }
        outcome = Outcome::kAccepted;
      }
    }
  }

  // Everything below runs unlocked so responders and the pool can't deadlock
  // back into submit().
  switch (outcome) {
    case Outcome::kAccepted: {
      {
        const std::scoped_lock metrics(session->metrics_mutex);
        ++session->counters.accepted;
      }
      if (schedule) {
        pool_.submit([this, session] { drain_session(session); });
      }
      return;
    }
    case Outcome::kShuttingDown:
      event.respond(err_line(ErrorCode::kShuttingDown, "daemon is draining"));
      return;
    case Outcome::kNotFound:
      event.respond(err_line(ErrorCode::kNotFound,
                             "unknown session '" + request.session + "'"));
      return;
    case Outcome::kOverloaded:
      if (session) {
        const std::scoped_lock metrics(session->metrics_mutex);
        ++session->counters.rejected_overload;
      }
      event.respond(err_line(ErrorCode::kOverloaded,
                             "admission queue full (max_queue=" +
                                 std::to_string(options_.max_queue) + ")"));
      return;
  }
}

void Engine::drain_session(const std::shared_ptr<Session>& session) {
  for (;;) {
    std::vector<Event> batch;
    {
      const std::scoped_lock lock(mutex_);
      const std::size_t n =
          std::min(session->pending.size(), options_.max_batch);
      if (n == 0) {
        session->draining = false;
        return;
      }
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(session->pending.front()));
        session->pending.pop_front();
      }
    }

    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t expired = 0;
    std::vector<double> latencies;
    latencies.reserve(batch.size());
    for (Event& event : batch) {
      if (Clock::now() > event.deadline) {
        ++expired;
        event.respond(err_line(ErrorCode::kDeadlineExceeded,
                               "expired after queueing"));
        continue;
      }
      std::string line = apply(*session, event.request);
      const bool ok = line.starts_with("OK");
      (ok ? completed : failed) += 1;
      latencies.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() -
                                                    event.enqueued)
              .count());
      event.respond(std::move(line));
    }

    // One metrics flush per batch (micro-batching's second dividend).
    SessionSnapshot snapshot;
    snapshot.configured = session->cluster != nullptr;
    if (session->cluster) {
      const DynamicCluster& cluster = *session->cluster;
      snapshot.devices = cluster.active_count();
      snapshot.servers = cluster.server_count();
      snapshot.healthy_servers = cluster.healthy_server_count();
      snapshot.avg_delay_ms = cluster.avg_delay_ms();
      snapshot.max_utilization = cluster.max_utilization();
      snapshot.feasible = cluster.feasible();
      const topo::incr::EngineStats& link_stats = cluster.link_stats();
      snapshot.delay_epoch = link_stats.epoch;
      snapshot.link_updates = link_stats.link_updates;
      snapshot.link_nodes_affected = link_stats.nodes_affected;
      snapshot.link_nodes_saved = link_stats.nodes_saved;
      snapshot.delay_rows_refreshed = cluster.delay_rows_refreshed();
      snapshot.delay_rows_saved = cluster.delay_rows_saved();
    }
    {
      const std::scoped_lock metrics(session->metrics_mutex);
      session->counters.completed += completed;
      session->counters.failed += failed;
      session->counters.rejected_deadline += expired;
      ++session->batches;
      for (const double us : latencies) session->latency_us.add(us);
      session->snapshot = snapshot;
    }
    {
      const std::scoped_lock lock(mutex_);
      counters_.completed += completed;
      counters_.failed += failed;
      counters_.rejected_deadline += expired;
      in_flight_ -= batch.size();
      if (in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

std::string Engine::apply(Session& session, const Request& request) {
  try {
    if (request.verb == Verb::kConfigure) {
      Scenario scenario = [&] {
        switch (request.preset) {
          case ScenarioPreset::kFactory:
            return Scenario::factory(request.iot, request.edge, request.seed);
          case ScenarioPreset::kCampus:
            return Scenario::campus(request.iot, request.edge, request.seed);
          case ScenarioPreset::kSmartCity:
          default:
            return Scenario::smart_city(request.iot, request.edge,
                                        request.seed);
        }
      }();
      AlgorithmOptions algorithm_options;
      algorithm_options.apply_seed(request.seed);
      session.cluster = std::make_unique<DynamicCluster>(
          scenario, request.algorithm, algorithm_options);
      return OkLine()
          .field("session", session.name)
          .field("preset", to_string(request.preset))
          .field("devices", session.cluster->active_count())
          .field("servers", session.cluster->server_count())
          .field("algo", tacc::to_string(request.algorithm))
          .field("avg_delay_ms", session.cluster->avg_delay_ms())
          .field("feasible", session.cluster->feasible())
          .str();
    }
    if (request.verb == Verb::kSleep) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(request.sleep_ms));
      return OkLine().field("slept_ms", request.sleep_ms).str();
    }
    if (!session.cluster) {
      return err_line(ErrorCode::kNotFound,
                      "session '" + session.name + "' is not configured");
    }
    DynamicCluster& cluster = *session.cluster;
    switch (request.verb) {
      case Verb::kJoin: {
        workload::IotDevice device;
        device.position = {request.x, request.y};
        device.request_rate_hz = request.rate_hz;
        device.demand = request.demand;
        const JoinResult joined = cluster.join(device);
        return OkLine()
            .field("device", joined.device_index)
            .field("server", joined.server)
            .field("feasible", joined.feasible)
            .field("overload", joined.overload_fallback)
            .str();
      }
      case Verb::kMove: {
        const topo::Point2D position{request.x, request.y};
        const JoinResult moved = request.pinned
                                     ? cluster.move_pinned(request.index,
                                                           position)
                                     : cluster.move(request.index, position);
        return OkLine()
            .field("device", moved.device_index)
            .field("server", moved.server)
            .field("feasible", moved.feasible)
            .field("overload", moved.overload_fallback)
            .str();
      }
      case Verb::kLeave:
        cluster.leave(request.index);
        return OkLine().field("device", request.index).str();
      case Verb::kFail: {
        const EvacuationReport report =
            cluster.fail_server(request.index, request.evacuate);
        return OkLine()
            .field("server", request.index)
            .field("evacuated", report.evacuated)
            .field("overloaded", report.overloaded)
            .str();
      }
      case Verb::kRecover:
        cluster.recover_server(request.index);
        return OkLine().field("server", request.index).str();
      case Verb::kEvacuate: {
        const EvacuationReport report = cluster.evacuate_server(request.index);
        return OkLine()
            .field("server", request.index)
            .field("evacuated", report.evacuated)
            .field("overloaded", report.overloaded)
            .str();
      }
      case Verb::kLinkFail:
      case Verb::kLinkRestore:
      case Verb::kLinkSet: {
        const auto u = static_cast<topo::NodeId>(request.link_u);
        const auto v = static_cast<topo::NodeId>(request.link_v);
        const LinkUpdateReport report =
            request.verb == Verb::kLinkFail ? cluster.fail_link(u, v)
            : request.verb == Verb::kLinkRestore
                ? cluster.restore_link(u, v)
                : cluster.set_link_latency(u, v, request.latency_ms);
        return OkLine()
            .field("u", request.link_u)
            .field("v", request.link_v)
            .field("epoch", static_cast<std::size_t>(report.epoch))
            .field("affected", static_cast<std::size_t>(report.nodes_affected))
            .field("saved", static_cast<std::size_t>(report.nodes_saved))
            .field("rows_refreshed", report.rows_refreshed)
            // For LINK_SET this is the latency the link had before.
            .field("latency_ms", report.latency_ms)
            .field("avg_delay_ms", cluster.avg_delay_ms())
            .str();
      }
      case Verb::kLinks: {
        const auto links = topo::backbone_links(cluster.network());
        std::string list;
        const std::size_t shown = std::min(request.limit, links.size());
        for (std::size_t i = 0; i < shown; ++i) {
          if (i > 0) list += ',';
          list += std::to_string(links[i].first);
          list += '-';
          list += std::to_string(links[i].second);
        }
        return OkLine()
            .field("count", links.size())
            .field("failed", cluster.network().failed_links.size())
            .field("links", list)
            .str();
      }
      default:
        return err_line(ErrorCode::kInternal, "unroutable verb");
    }
  } catch (const std::logic_error& error) {
    // DynamicCluster signals precondition violations (inactive device, bad
    // server, last healthy server) via logic_error/invalid_argument.
    return err_line(ErrorCode::kBadRequest, error.what());
  } catch (const std::exception& error) {
    return err_line(ErrorCode::kInternal, error.what());
  }
}

std::string Engine::stats_line(const std::string& session_name) const {
  if (session_name.empty()) {
    const std::scoped_lock lock(mutex_);
    return OkLine()
        .field("sessions", sessions_.size())
        .field("queue_depth", in_flight_)
        .field("max_queue", options_.max_queue)
        .field("accepted", static_cast<std::size_t>(counters_.accepted))
        .field("completed", static_cast<std::size_t>(counters_.completed))
        .field("failed", static_cast<std::size_t>(counters_.failed))
        .field("rejected_overload",
               static_cast<std::size_t>(counters_.rejected_overload))
        .field("rejected_deadline",
               static_cast<std::size_t>(counters_.rejected_deadline))
        .field("rejected_shutdown",
               static_cast<std::size_t>(counters_.rejected_shutdown))
        .str();
  }

  std::shared_ptr<Session> session;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = sessions_.find(session_name);
    if (it == sessions_.end()) {
      return err_line(ErrorCode::kNotFound,
                      "unknown session '" + session_name + "'");
    }
    session = it->second;
  }
  const std::scoped_lock metrics(session->metrics_mutex);
  const EngineCounters& c = session->counters;
  const metrics::Histogram& h = session->latency_us;
  const SessionSnapshot& s = session->snapshot;
  return OkLine()
      .field("session", session->name)
      .field("configured", s.configured)
      .field("devices", s.devices)
      .field("servers", s.servers)
      .field("healthy_servers", s.healthy_servers)
      .field("avg_delay_ms", s.avg_delay_ms)
      .field("max_utilization", s.max_utilization)
      .field("feasible", s.feasible)
      .field("delay_epoch", static_cast<std::size_t>(s.delay_epoch))
      .field("link_updates", static_cast<std::size_t>(s.link_updates))
      .field("link_nodes_affected",
             static_cast<std::size_t>(s.link_nodes_affected))
      .field("link_nodes_saved",
             static_cast<std::size_t>(s.link_nodes_saved))
      .field("delay_rows_refreshed",
             static_cast<std::size_t>(s.delay_rows_refreshed))
      .field("delay_rows_saved",
             static_cast<std::size_t>(s.delay_rows_saved))
      .field("accepted", static_cast<std::size_t>(c.accepted))
      .field("completed", static_cast<std::size_t>(c.completed))
      .field("failed", static_cast<std::size_t>(c.failed))
      .field("rejected_overload",
             static_cast<std::size_t>(c.rejected_overload))
      .field("rejected_deadline",
             static_cast<std::size_t>(c.rejected_deadline))
      .field("batches", static_cast<std::size_t>(session->batches))
      .field("latency_count", h.total())
      .field("p50_us", h.quantile(0.50))
      .field("p99_us", h.quantile(0.99))
      .field("p999_us", h.quantile(0.999))
      .str();
}

}  // namespace tacc::service
