// Socket front-end for the taccd engine: Unix-domain (and optional TCP)
// listeners speaking the line protocol in protocol.hpp.
//
// Threading: run() owns the accept loop (poll over the listeners plus a
// self-pipe wakeup); each accepted connection gets a reader thread that
// parses lines and submits them to the Engine. Responses are written back
// strictly in per-connection request order — a response sequencer holds
// out-of-order completions until their predecessors flush — so pipelined
// clients can match responses to requests positionally. This ordering is
// independent of the engine's completion order: with the engine sharded
// per core, one connection's requests may target sessions on different
// shards and complete in any interleaving on different worker threads,
// but each completion lands at its reader-assigned sequence number and
// flushes only after every earlier sequence has flushed.
//
// Shutdown (SIGINT/SIGTERM via install_signal_handlers(), the SHUTDOWN
// verb, or request_shutdown()):
//   1. listeners close — no new connections;
//   2. the engine stops admitting — late requests answer SHUTTING_DOWN;
//   3. every admitted request drains to its terminal response;
//   4. connections are shut down and reader threads joined.
// run() then returns; in-flight work is never abandoned.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::service {

struct ServerOptions {
  /// Filesystem path for the Unix-domain listener; empty disables it. A
  /// stale socket file at the path is unlinked before binding.
  std::string unix_path;
  /// TCP listener port; negative disables, 0 binds an ephemeral port (read
  /// it back with tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Requests longer than this (bytes, excluding the newline) answer
  /// BAD_REQUEST and the connection is closed.
  std::size_t max_line = 4096;
  EngineOptions engine;
};

class Server {
 public:
  /// Binds the listeners (throws std::runtime_error on failure) but does
  /// not serve until run().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until a shutdown is requested, then drains and returns.
  void run();

  /// Wakes run() and starts the graceful shutdown. Safe from any thread and
  /// from signal handlers (one write to a pipe).
  void request_shutdown() noexcept;

  /// Routes SIGINT/SIGTERM to request_shutdown() on this server and ignores
  /// SIGPIPE (writes to dead clients must not kill the daemon). At most one
  /// server per process can hold the handlers.
  void install_signal_handlers() noexcept;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  /// Actual TCP port (after ephemeral bind); -1 when TCP is disabled.
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const noexcept {
    return options_.unix_path;
  }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load();
  }

 private:
  /// Per-connection state shared between its reader thread and the engine
  /// responders (which may run on pool workers).
  struct Connection {
    explicit Connection(int socket_fd) : fd(socket_fd) {}
    ~Connection();

    const int fd;
    std::atomic<bool> reader_done{false};

    // Response sequencing — all guarded by write_mutex. Seqs are assigned
    // by the single reader thread in arrival order; completions may arrive
    // from any shard's workers in any order, and flush strictly by seq.
    Mutex write_mutex;
    // Seq whose response flushes next.
    std::uint64_t next_write TACC_GUARDED_BY(write_mutex) = 0;
    // Completed out of order, keyed by seq.
    std::map<std::uint64_t, std::string> ready TACC_GUARDED_BY(write_mutex);
    /// One past the last seq the reader allocated; UINT64_MAX while the
    /// reader is still accepting requests. Once every seq below it has
    /// flushed, the socket is shut down so the client sees a clean EOF.
    std::uint64_t seq_end TACC_GUARDED_BY(write_mutex) = UINT64_MAX;
    // Client gone; drop further writes.
    bool write_failed TACC_GUARDED_BY(write_mutex) = false;

    /// Queues `line` for seq and flushes every contiguous completed
    /// response. Write errors (client gone) are ignored.
    void respond(std::uint64_t seq, std::string line)
        TACC_EXCLUDES(write_mutex);
    /// Reader is done allocating seqs; closes the socket once drained.
    void finish_requests(std::uint64_t total_seqs) TACC_EXCLUDES(write_mutex);

   private:
    void flush_locked() TACC_REQUIRES(write_mutex);
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  void handle_line(const std::shared_ptr<Connection>& connection,
                   std::uint64_t seq, std::string_view line);
  void reap_finished_connections();
  void shutdown_sequence();
  void close_listeners() noexcept;

  ServerOptions options_;
  Engine engine_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::atomic<std::uint64_t> connections_accepted_{0};

  Mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_
      TACC_GUARDED_BY(connections_mutex_);
  // Index-aligned with connections_. Joining a reader under
  // connections_mutex_ is safe: reader threads never take that mutex.
  std::vector<std::jthread> readers_ TACC_GUARDED_BY(connections_mutex_);
};

}  // namespace tacc::service
