// Wire protocol for taccd: line-delimited, space-separated text requests.
//
// One request per line, one response line per request:
//
//   CONFIGURE <session> <iot> <edge> [seed=N] [algo=NAME] [preset=NAME]
//             [oracle=SPEC]            (delay-oracle backend, e.g.
//                                       "exact" or "landmark,k=8,eps=0.1" —
//                                       see topology/oracle/config.hpp)
//   JOIN      <session> <x> <y> [demand=D] [rate=HZ]
//   MOVE      <session> <device> <x> <y> [pinned=0|1]
//   LEAVE     <session> <device>
//   FAIL      <session> <server> [evacuate=0|1]
//   RECOVER   <session> <server>
//   EVACUATE  <session> <server>
//   LINK_FAIL    <session> <u> <v>         (backbone link churn; u, v are
//   LINK_RESTORE <session> <u> <v>          router node ids — see LINKS)
//   LINK_SET     <session> <u> <v> <latency_ms>
//   LINKS     <session> [limit=K]          (list live backbone links)
//   REOPT_START <session> [moves=N] [device_moves=N] [window_s=S]
//               [interval_ms=T]          (attach + start the background
//                                         re-optimizer; omitted knobs use
//                                         the daemon's --reopt-* defaults)
//   REOPT_STOP  <session>                (stop + detach; idempotent)
//   REOPT_STATS <session>                (live optimizer ledger)
//   ORACLE_STATS <session>               (delay-oracle counters: queries,
//                                         bound hits, exact fallbacks,
//                                         width histogram, bytes resident)
//   SLEEP     <session> <ms>               (diagnostic: occupies the session)
//   STATS     [<session>] [shards=0|1]   (shards=1: per-shard breakdown)
//   PING
//   SHUTDOWN
//
// Every session verb additionally accepts timeout_ms=T, overriding the
// server's default admission deadline for that request. Responses are
// either "OK key=value ..." or "ERR <CODE> <message>"; see DESIGN.md for
// the full grammar and semantics.
//
// This header is pure parsing/formatting — no sockets, no sessions — so the
// protocol is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/algorithms.hpp"

namespace tacc::service {

enum class Verb {
  kConfigure,
  kJoin,
  kMove,
  kLeave,
  kFail,
  kRecover,
  kEvacuate,
  kLinkFail,
  kLinkRestore,
  kLinkSet,
  kLinks,
  kReoptStart,
  kReoptStop,
  kReoptStats,
  kOracleStats,
  kSleep,
  kStats,
  kPing,
  kShutdown,
};
[[nodiscard]] std::string_view to_string(Verb verb) noexcept;

/// Error codes a response line can carry. OVERLOADED and DEADLINE_EXCEEDED
/// are the two admission-control rejections the paper-level deadlines call
/// for; the rest are protocol/session errors.
enum class ErrorCode {
  kBadRequest,        ///< unparseable or precondition-violating request
  kNotFound,          ///< unknown session
  kOverloaded,        ///< admission queue full — retry later
  kDeadlineExceeded,  ///< request expired before a worker reached it
  kShuttingDown,      ///< daemon is draining; no new work admitted
  kInternal,          ///< unexpected server-side failure
};
[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

enum class ScenarioPreset { kSmartCity, kFactory, kCampus };
[[nodiscard]] std::string_view to_string(ScenarioPreset preset) noexcept;

/// One parsed request. Only the fields relevant to `verb` are meaningful;
/// the rest keep their defaults.
struct Request {
  Verb verb = Verb::kPing;
  std::string session;  ///< empty only for PING/SHUTDOWN/global STATS

  // CONFIGURE
  std::size_t iot = 0;
  std::size_t edge = 0;
  std::uint64_t seed = 1;
  Algorithm algorithm = Algorithm::kGreedyBestFit;
  ScenarioPreset preset = ScenarioPreset::kSmartCity;
  /// Delay-oracle spec (oracle=SPEC, validated at parse time); empty keeps
  /// the daemon's --oracle default.
  std::string oracle;

  // JOIN / MOVE coordinates and device load
  double x = 0.0;
  double y = 0.0;
  double demand = 1.0;
  double rate_hz = 5.0;
  bool pinned = false;

  // MOVE/LEAVE device index; FAIL/RECOVER/EVACUATE server index
  std::size_t index = 0;
  bool evacuate = true;

  // LINK_FAIL / LINK_RESTORE / LINK_SET endpoints (router node ids, as
  // reported by LINKS) and the new latency for LINK_SET.
  std::size_t link_u = 0;
  std::size_t link_v = 0;
  double latency_ms = 0.0;
  // LINKS: max links listed per response line.
  std::size_t limit = 16;

  // REOPT_START migration-budget overrides; 0 keeps the engine default.
  std::size_t reopt_moves = 0;         ///< moves=N (max moves per window)
  std::size_t reopt_device_moves = 0;  ///< device_moves=N (per-device cap)
  double reopt_window_s = 0.0;         ///< window_s=S (budget window)
  double reopt_interval_ms = 0.0;      ///< interval_ms=T (pass cadence)

  // SLEEP
  double sleep_ms = 0.0;

  // STATS: shards=1 appends the per-shard ledger breakdown
  // (s<k>_depth/accepted/completed/failed/deadline/sessions) to the
  // global reply.
  bool per_shard = false;

  /// Per-request admission deadline override (timeout_ms=T).
  std::optional<double> timeout_ms;
};

/// Outcome of parse_request: either a request or a human-readable error.
struct ParseResult {
  std::optional<Request> request;
  std::string error;
  [[nodiscard]] bool ok() const noexcept { return request.has_value(); }
};

/// Parses one wire line (without the trailing newline; a trailing '\r' is
/// tolerated). Never throws.
[[nodiscard]] ParseResult parse_request(std::string_view line);

/// Formats "ERR <CODE> <message>".
[[nodiscard]] std::string err_line(ErrorCode code, std::string_view message);

/// Assembles "OK key=value ..." response lines with consistent numeric
/// formatting (doubles use %.6g so lines stay short).
class OkLine {
 public:
  OkLine& field(std::string_view key, std::string_view value);
  OkLine& field(std::string_view key, const std::string& value) {
    return field(key, std::string_view(value));
  }
  OkLine& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  OkLine& field(std::string_view key, std::size_t value);
  OkLine& field(std::string_view key, double value);
  OkLine& field(std::string_view key, bool value);

  [[nodiscard]] std::string str() const { return line_; }

 private:
  std::string line_ = "OK";
};

}  // namespace tacc::service
