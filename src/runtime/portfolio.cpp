#include "runtime/portfolio.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::runtime {

std::uint64_t derive_task_seed(std::uint64_t base_seed,
                               std::size_t task_index) noexcept {
  // Affine-then-mix: neighboring task indices land far apart in seed space
  // while the result stays a pure function of (base_seed, index).
  std::uint64_t state =
      base_seed +
      0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(task_index) + 1);
  return util::splitmix64(state);
}

namespace {

/// Generic winner scan: feasible beats infeasible, then lower cost, then
/// lower index (strict < keeps the first of a tie).
template <typename T, typename FeasibleFn, typename CostFn>
std::size_t scan_winner(std::span<const T> items, FeasibleFn feasible,
                        CostFn cost) {
  std::size_t best = PortfolioOutcome::kNoWinner;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (best == PortfolioOutcome::kNoWinner) {
      best = i;
      continue;
    }
    const bool i_feasible = feasible(items[i]);
    const bool best_feasible = feasible(items[best]);
    if (i_feasible != best_feasible) {
      if (i_feasible) best = i;
      continue;
    }
    if (cost(items[i]) < cost(items[best])) best = i;
  }
  return best;
}

}  // namespace

std::size_t pick_winner(std::span<const TaskOutcome> outcomes) {
  return scan_winner(
      outcomes, [](const TaskOutcome& o) { return o.evaluation.feasible; },
      [](const TaskOutcome& o) { return o.evaluation.total_cost; });
}

std::size_t pick_winner(std::span<const ClusterConfiguration> configurations) {
  return scan_winner(
      configurations,
      [](const ClusterConfiguration& c) { return c.feasible(); },
      [](const ClusterConfiguration& c) { return c.total_cost(); });
}

PortfolioRunner::PortfolioRunner(std::size_t threads)
    : threads_(std::min(threads == 0 ? default_thread_count() : threads,
                        kMaxThreads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

PortfolioRunner::~PortfolioRunner() = default;

RunStats PortfolioRunner::fan_out(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  RunStats stats;
  stats.threads = threads_;
  stats.tasks = count;
  stats.per_task.resize(count);
  const util::WallTimer total;
  if (!pool_ || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      const util::WallTimer task;
      fn(i);
      stats.per_task[i].wall_ms = task.elapsed_ms();
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      pool_->submit([&fn, &stats, i, enqueued = util::WallTimer()] {
        stats.per_task[i].queue_ms = enqueued.elapsed_ms();
        const util::WallTimer task;
        fn(i);
        stats.per_task[i].wall_ms = task.elapsed_ms();
      });
    }
    pool_->wait_idle();
  }
  stats.total_wall_ms = total.elapsed_ms();
  return stats;
}

PortfolioOutcome PortfolioRunner::run(
    const ClusterConfigurator& configurator,
    std::span<const ConfigureRequest> requests) {
  std::vector<std::optional<ClusterConfiguration>> slots(requests.size());
  RunStats stats = fan_out(requests.size(), [&](std::size_t i) {
    slots[i] = configurator.configure(requests[i]);
  });

  PortfolioOutcome outcome;
  outcome.stats = std::move(stats);
  outcome.configurations.reserve(slots.size());
  for (std::optional<ClusterConfiguration>& slot : slots) {
    outcome.configurations.push_back(std::move(*slot));
  }
  outcome.winner_index = pick_winner(
      std::span<const ClusterConfiguration>(outcome.configurations));
  return outcome;
}

PortfolioOutcome PortfolioRunner::run_seeded(
    const ClusterConfigurator& configurator,
    std::span<const ConfigureRequest> requests, std::uint64_t base_seed) {
  std::vector<ConfigureRequest> seeded(requests.begin(), requests.end());
  for (std::size_t i = 0; i < seeded.size(); ++i) {
    seeded[i].options.apply_seed(derive_task_seed(base_seed, i));
  }
  return run(configurator, seeded);
}

std::vector<ClusterConfiguration> PortfolioRunner::run_batch(
    std::span<const Scenario> scenarios,
    std::span<const ConfigureRequest> requests, RunStats* stats) {
  if (requests.size() != 1 && requests.size() != scenarios.size()) {
    throw std::invalid_argument(
        "PortfolioRunner::run_batch: need one request per scenario or a "
        "single broadcast request");
  }
  std::vector<std::optional<ClusterConfiguration>> slots(scenarios.size());
  RunStats run_stats = fan_out(scenarios.size(), [&](std::size_t k) {
    const ConfigureRequest& request =
        requests.size() == 1 ? requests[0] : requests[k];
    slots[k] = ClusterConfigurator(scenarios[k]).configure(request);
  });
  if (stats) *stats = std::move(run_stats);

  std::vector<ClusterConfiguration> configurations;
  configurations.reserve(slots.size());
  for (std::optional<ClusterConfiguration>& slot : slots) {
    configurations.push_back(std::move(*slot));
  }
  return configurations;
}

std::vector<TaskOutcome> PortfolioRunner::run_tasks(
    const gap::Instance& instance, std::span<const SolveTask> tasks,
    RunStats* stats) {
  std::vector<TaskOutcome> outcomes(tasks.size());
  RunStats run_stats = fan_out(tasks.size(), [&](std::size_t i) {
    TaskOutcome& out = outcomes[i];
    out.algorithm = tasks[i].algorithm;
    out.result = make_solver(tasks[i].algorithm, tasks[i].options)
                     ->solve(instance);
    out.evaluation = gap::evaluate(instance, out.result.assignment);
  });
  if (stats) *stats = std::move(run_stats);
  return outcomes;
}

AlgoStats run_repeated_parallel(
    const std::function<Scenario(std::uint64_t)>& make_scenario,
    Algorithm algorithm, std::size_t repeats, std::uint64_t base_seed,
    const AlgorithmOptions& options, PortfolioRunner& runner,
    RunStats* stats) {
  // Generate the per-repeat scenarios concurrently (each is a pure function
  // of its seed), then batch-solve them over the same pool.
  std::vector<std::optional<Scenario>> slots(repeats);
  parallel_for(repeats, runner.threads(), [&](std::size_t r) {
    slots[r] = make_scenario(base_seed + r);
  });
  std::vector<Scenario> scenarios;
  std::vector<ConfigureRequest> requests;
  scenarios.reserve(repeats);
  requests.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    scenarios.push_back(std::move(*slots[r]));
    ConfigureRequest request{algorithm, options};
    request.options.apply_seed((base_seed + r) * 1000 + 1);
    requests.push_back(std::move(request));
  }

  const std::vector<ClusterConfiguration> configurations =
      runner.run_batch(scenarios, requests, stats);

  AlgoStats algo_stats;
  algo_stats.algorithm = algorithm;
  for (const ClusterConfiguration& conf : configurations) {
    const gap::Evaluation& ev = conf.evaluation();
    algo_stats.total_cost.add(ev.total_cost);
    algo_stats.avg_delay_ms.add(ev.avg_delay_ms);
    algo_stats.max_delay_ms.add(ev.max_delay_ms);
    algo_stats.max_utilization.add(ev.max_utilization);
    algo_stats.wall_ms.add(conf.solve_wall_ms());
    if (ev.feasible) ++algo_stats.feasible_runs;
    algo_stats.overload_violations += ev.overloaded_servers;
    ++algo_stats.runs;
  }
  return algo_stats;
}

}  // namespace tacc::runtime

namespace tacc {

PortfolioOutcome ClusterConfigurator::configure_portfolio(
    std::span<const ConfigureRequest> requests, std::size_t threads) const {
  runtime::PortfolioRunner runner(threads);
  return runner.run(*this, requests);
}

}  // namespace tacc
