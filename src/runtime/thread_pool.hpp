// Fixed-size worker pool for the portfolio solve runtime.
//
// A ThreadPool owns N std::jthread workers draining a FIFO work queue.
// Determinism contract: the pool never reorders *results* — callers index
// their output slots by task id, so scheduling order can only change wall
// time, never values. Exceptions thrown by jobs are captured and rethrown
// from wait_idle() (the first one in submission order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tacc::runtime {

/// Worker count to use when the caller passes 0 ("pick for me"):
/// hardware_concurrency, clamped to at least 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Hard ceiling on worker counts everywhere in the runtime. Guards against
/// wrapped negatives (size_t(-1)) and absurd requests from CLI flags; more
/// workers than this never helps a portfolio fan-out.
inline constexpr std::size_t kMaxThreads = 256;

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count(); values above
  /// kMaxThreads are clamped to it).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a job. Jobs must not submit to the same pool recursively from
  /// a worker and then wait_idle() on it (deadlock).
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle, then rethrows
  /// the first captured job exception (submission order), if any.
  void wait_idle();

 private:
  void worker_loop(const std::stop_token& stop);

  mutable std::mutex mutex_;
  std::condition_variable_any work_cv_;   // queue became non-empty / stopping
  std::condition_variable idle_cv_;       // a job finished
  std::deque<std::pair<std::size_t, std::function<void()>>> queue_;
  std::size_t active_ = 0;        // jobs currently executing
  std::size_t next_ticket_ = 0;   // submission order for exception ranking
  std::size_t error_ticket_ = 0;
  std::exception_ptr error_;      // first (lowest-ticket) job exception
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// Runs fn(0), …, fn(count-1), spread over up to `threads` workers
/// (0 = default). Inline (no threads spawned) when threads <= 1 or
/// count <= 1. Blocks until all calls finish; rethrows the first exception
/// by index. Each index is invoked exactly once; fn must be safe to call
/// concurrently from different threads on different indices.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tacc::runtime
