// Fixed-size worker pool for the portfolio solve runtime.
//
// A ThreadPool owns N std::jthread workers draining a FIFO work queue.
// Determinism contract: the pool never reorders *results* — callers index
// their output slots by task id, so scheduling order can only change wall
// time, never values. Exceptions thrown by jobs are captured and rethrown
// from wait_idle() (the first one in submission order).
//
// Lock discipline (compiler-checked, see util/thread_annotations.hpp):
// one mutex guards the queue, the in-flight count, the error slot, and the
// stop flag; both condition variables wait on it.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::runtime {

/// Worker count to use when the caller passes 0 ("pick for me"):
/// hardware_concurrency, clamped to at least 1.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Hard ceiling on worker counts everywhere in the runtime. Guards against
/// wrapped negatives (size_t(-1)) and absurd requests from CLI flags; more
/// workers than this never helps a portfolio fan-out.
inline constexpr std::size_t kMaxThreads = 256;

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count(); values above
  /// kMaxThreads are clamped to it).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a job. Jobs must not submit to the same pool recursively from
  /// a worker and then wait_idle() on it (deadlock).
  void submit(std::function<void()> job) TACC_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and every worker is idle, then rethrows
  /// the first captured job exception (submission order), if any.
  void wait_idle() TACC_EXCLUDES(mutex_);

 private:
  void worker_loop() TACC_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_cv_;  // queue became non-empty / stopping
  CondVar idle_cv_;  // a job finished
  std::deque<std::pair<std::size_t, std::function<void()>>> queue_
      TACC_GUARDED_BY(mutex_);
  std::size_t active_ TACC_GUARDED_BY(mutex_) = 0;  // jobs executing now
  // Submission order for exception ranking.
  std::size_t next_ticket_ TACC_GUARDED_BY(mutex_) = 0;
  std::size_t error_ticket_ TACC_GUARDED_BY(mutex_) = 0;
  // First (lowest-ticket) job exception.
  std::exception_ptr error_ TACC_GUARDED_BY(mutex_);
  // Destructor ran: workers drain the queue, then exit.
  bool stopping_ TACC_GUARDED_BY(mutex_) = false;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// Runs fn(0), …, fn(count-1), spread over up to `threads` workers
/// (0 = default). Inline (no threads spawned) when threads <= 1 or
/// count <= 1. Blocks until all calls finish; rethrows the first exception
/// by index. Each index is invoked exactly once; fn must be safe to call
/// concurrently from different threads on different indices.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tacc::runtime
