// Portfolio solve runtime: fan {algorithm × options} tasks over a worker
// pool and keep the feasible winner.
//
// Determinism contract: every result is a pure function of its task inputs
// (request + derived seed), each task writes only its own output slot, and
// winner selection is a deterministic scan — so a portfolio run is
// bit-identical for threads = 1, 2, 8, … regardless of scheduling order.
//
//   PortfolioRunner runner(/*threads=*/8);
//   PortfolioOutcome out = runner.run_seeded(configurator, requests,
//                                            /*base_seed=*/1000);
//   const ClusterConfiguration& best = out.winner();
//   log << out.stats.total_wall_ms << out.stats.parallel_speedup();
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/configurator.hpp"
#include "core/experiments.hpp"
#include "runtime/run_stats.hpp"
#include "runtime/thread_pool.hpp"

namespace tacc::runtime {

/// Deterministic per-task seed: a splitmix64 mix of (base_seed, task_index).
/// Depends only on its arguments, never on thread count or scheduling, so
/// reruns with any worker count replay the exact same solver streams.
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::size_t task_index) noexcept;

/// Instance-level task: one algorithm over a raw GAP instance (no Scenario
/// required — this is what tools/tacc_solve fans out).
struct SolveTask {
  Algorithm algorithm = Algorithm::kQLearning;
  AlgorithmOptions options;
};

/// Instance-level outcome: the raw solver result plus its static evaluation.
struct TaskOutcome {
  Algorithm algorithm = Algorithm::kQLearning;
  solvers::SolveResult result;
  gap::Evaluation evaluation;
};

/// Winner rule shared by every portfolio mode: cheapest feasible outcome,
/// falling back to cheapest overall; ties break toward the lower index.
/// Returns PortfolioOutcome::kNoWinner on an empty span.
[[nodiscard]] std::size_t pick_winner(std::span<const TaskOutcome> outcomes);
[[nodiscard]] std::size_t pick_winner(
    std::span<const ClusterConfiguration> configurations);

class PortfolioRunner {
 public:
  /// `threads` = 0 picks the hardware concurrency; 1 runs inline (no worker
  /// threads), which is also the fallback whenever a fan-out has one task.
  explicit PortfolioRunner(std::size_t threads = 0);
  ~PortfolioRunner();

  PortfolioRunner(const PortfolioRunner&) = delete;
  PortfolioRunner& operator=(const PortfolioRunner&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Portfolio mode: every request against one scenario. Request options are
  /// honored verbatim (callers manage seeds).
  [[nodiscard]] PortfolioOutcome run(
      const ClusterConfigurator& configurator,
      std::span<const ConfigureRequest> requests);

  /// Portfolio mode with deterministic per-task seeding: task i runs with
  /// its options reseeded to derive_task_seed(base_seed, i).
  [[nodiscard]] PortfolioOutcome run_seeded(
      const ClusterConfigurator& configurator,
      std::span<const ConfigureRequest> requests, std::uint64_t base_seed);

  /// Batch mode: request k against scenario k (a single request broadcasts
  /// to every scenario). Returns one configuration per scenario, in order.
  [[nodiscard]] std::vector<ClusterConfiguration> run_batch(
      std::span<const Scenario> scenarios,
      std::span<const ConfigureRequest> requests, RunStats* stats = nullptr);

  /// Instance-level fan-out (no Scenario): solve + evaluate each task
  /// against `instance`. Results are in task order.
  [[nodiscard]] std::vector<TaskOutcome> run_tasks(
      const gap::Instance& instance, std::span<const SolveTask> tasks,
      RunStats* stats = nullptr);

 private:
  /// Runs fn(0..count-1) over the pool (inline when serial), filling
  /// per-task wall/queue-latency counters.
  RunStats fan_out(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when running inline
};

/// Parallel twin of tacc::run_repeated: identical seed schedule (scenario
/// seed base_seed + r, solver seed (base_seed + r) * 1000 + 1), so the
/// aggregated statistics match the serial harness bit for bit; the repeats —
/// scenario generation included — are fanned over the runner's pool.
[[nodiscard]] AlgoStats run_repeated_parallel(
    const std::function<Scenario(std::uint64_t)>& make_scenario,
    Algorithm algorithm, std::size_t repeats, std::uint64_t base_seed,
    const AlgorithmOptions& options, PortfolioRunner& runner,
    RunStats* stats = nullptr);

}  // namespace tacc::runtime
