#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/mutex.hpp"

namespace tacc::runtime {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, kMaxThreads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // jthread joins on destruction; workers drain the queue before exiting.
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const MutexLock lock(&mutex_);
    queue_.emplace_back(next_ticket_++, std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  ReleasableMutexLock lock(&mutex_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.release();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::pair<std::size_t, std::function<void()>> job;
    {
      const MutexLock lock(&mutex_);
      while (queue_.empty() && !stopping_) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      job.second();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexLock lock(&mutex_);
      if (error && (!error_ || job.first < error_ticket_)) {
        error_ = error;
        error_ticket_ = job.first;
      }
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = default_thread_count();
  if (count <= 1 || threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  threads = std::min({threads, count, kMaxThreads});

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  std::size_t error_index = count;
  std::exception_ptr error;

  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          try {
            fn(i);
          } catch (...) {
            const MutexLock lock(&error_mutex);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
          }
        }
      });
    }
  }  // jthreads join here
  if (error) std::rethrow_exception(error);
}

}  // namespace tacc::runtime
