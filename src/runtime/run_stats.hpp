// Per-task timing counters surfaced by the portfolio runtime.
//
// Standalone (std-only) so core headers can embed RunStats in their return
// types without depending on the runtime library.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace tacc::runtime {

/// Timing of one fan-out task.
struct TaskTiming {
  double queue_ms = 0.0;  ///< enqueue → start of execution (queue latency)
  double wall_ms = 0.0;   ///< start → finish (solve + evaluate)
};

/// Aggregate counters for one fan-out (portfolio or batch run).
struct RunStats {
  std::size_t threads = 1;      ///< worker count the run used
  std::size_t tasks = 0;        ///< tasks fanned out
  double total_wall_ms = 0.0;   ///< first enqueue → last task completion
  std::vector<TaskTiming> per_task;  ///< indexed by task id

  [[nodiscard]] double task_wall_ms_sum() const noexcept {
    double sum = 0.0;
    for (const TaskTiming& t : per_task) sum += t.wall_ms;
    return sum;
  }
  [[nodiscard]] double max_task_wall_ms() const noexcept {
    double max = 0.0;
    for (const TaskTiming& t : per_task) max = std::max(max, t.wall_ms);
    return max;
  }
  [[nodiscard]] double mean_queue_ms() const noexcept {
    if (per_task.empty()) return 0.0;
    double sum = 0.0;
    for (const TaskTiming& t : per_task) sum += t.queue_ms;
    return sum / static_cast<double>(per_task.size());
  }
  [[nodiscard]] double max_queue_ms() const noexcept {
    double max = 0.0;
    for (const TaskTiming& t : per_task) max = std::max(max, t.queue_ms);
    return max;
  }
  /// Aggregate task time over elapsed time; >1 means real parallel overlap.
  [[nodiscard]] double parallel_speedup() const noexcept {
    return total_wall_ms > 0.0 ? task_wall_ms_sum() / total_wall_ms : 0.0;
  }
};

}  // namespace tacc::runtime
