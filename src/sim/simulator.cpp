#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "topology/shortest_paths.hpp"
#include "util/rng.hpp"

namespace tacc::sim {

namespace {

/// One hop of a device's fixed route: directed-link state index plus the
/// link's physical properties.
struct Hop {
  std::uint32_t link_state;  ///< index into link_free_ms
  double latency_ms;         ///< propagation + forwarding
  double bandwidth_mbps;
};

struct GenerationEvent {
  std::uint32_t device;
};

struct HopArrivalEvent {
  std::uint32_t device;
  std::uint32_t hop_index;  ///< hop about to be traversed
  double generated_at_ms;
};

}  // namespace

SimResult simulate(const topo::NetworkTopology& net,
                   const workload::Workload& workload,
                   const gap::Assignment& assignment,
                   const SimParams& params) {
  const std::size_t n = workload.iot.size();
  const std::size_t m = workload.edges.size();
  if (net.iot_count() != n || net.edge_count() != m) {
    throw std::invalid_argument("simulate: net/workload shape mismatch");
  }
  if (assignment.size() != n) {
    throw std::invalid_argument("simulate: assignment size mismatch");
  }
  for (std::int32_t x : assignment) {
    if (x == gap::kUnassigned || static_cast<std::size_t>(x) >= m) {
      throw std::invalid_argument("simulate: incomplete assignment");
    }
  }

  // --- Precompute per-device routes (device node → assigned server node).
  // One Dijkstra per *server* covers all devices assigned to it.
  std::vector<std::vector<Hop>> routes(n);
  std::unordered_map<std::uint64_t, std::uint32_t> link_index;
  std::vector<double> link_free_ms;  // directed-link next-free time
  const auto directed_link_state = [&](topo::NodeId u, topo::NodeId v) {
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    const auto [it, inserted] = link_index.try_emplace(
        key, static_cast<std::uint32_t>(link_free_ms.size()));
    if (inserted) link_free_ms.push_back(0.0);
    return it->second;
  };
  const auto edge_props = [&](topo::NodeId u, topo::NodeId v) {
    for (const auto& adj : net.graph.neighbors(u)) {
      if (adj.to == v) return adj.props;
    }
    throw std::logic_error("simulate: path uses nonexistent edge");
  };

  for (std::size_t j = 0; j < m; ++j) {
    const auto tree = topo::dijkstra(net.graph, net.edge_nodes[j]);
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(assignment[i]) != j) continue;
      // Path from server to device; traverse it reversed (device → server).
      const auto path = tree.path_to(net.iot_nodes[i]);
      if (path.empty()) {
        throw std::invalid_argument("simulate: device unreachable from server");
      }
      auto& route = routes[i];
      for (std::size_t h = path.size(); h-- > 1;) {
        const topo::NodeId from = path[h];
        const topo::NodeId to = path[h - 1];
        const auto props = edge_props(from, to);
        route.push_back({directed_link_state(from, to), props.latency_ms,
                         props.bandwidth_mbps});
      }
    }
  }

  // --- Server queues: deterministic per-request service time derived from
  // capacity. demand_i units/sec at a server of capacity c_j means each of
  // the device's rate_i requests/sec costs (demand_i / rate_i)/c_j seconds.
  std::vector<double> server_free_ms(m, 0.0);
  std::vector<double> server_busy_ms(m, 0.0);
  std::vector<double> service_ms(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& dev = workload.iot[i];
    const double service_rate =
        workload.edges[static_cast<std::size_t>(assignment[i])].capacity /
        params.capacity_headroom;
    service_ms[i] =
        1000.0 * (dev.demand / dev.request_rate_hz) / service_rate;
  }

  // --- Event loop.
  struct Pending {
    bool is_generation;
    GenerationEvent gen;
    HopArrivalEvent hop;
  };
  EventQueue<Pending> queue;
  util::Rng rng(params.seed);
  const double horizon_ms = params.duration_s * 1000.0;
  const double warmup_ms = params.warmup_s * 1000.0;

  SimResult result;
  result.server_utilization.assign(m, 0.0);

  for (std::uint32_t i = 0; i < n; ++i) {
    const double first =
        rng.exponential(workload.iot[i].request_rate_hz) * 1000.0;
    queue.push(first, Pending{true, {i}, {}});
  }

  while (!queue.empty()) {
    double now = 0.0;
    const Pending event = queue.pop(&now);
    if (now > horizon_ms) break;

    if (event.is_generation) {
      const std::uint32_t i = event.gen.device;
      ++result.messages_generated;
      queue.push(now, Pending{false, {}, {i, 0, now}});
      const double next =
          now + rng.exponential(workload.iot[i].request_rate_hz) * 1000.0;
      queue.push(next, Pending{true, {i}, {}});
      continue;
    }

    const HopArrivalEvent& hop_event = event.hop;
    const std::uint32_t i = hop_event.device;
    const auto& route = routes[i];

    if (hop_event.hop_index < route.size()) {
      // Traverse the next link: wait for it to free, transmit, propagate.
      const Hop& hop = route[hop_event.hop_index];
      const double transmission_ms =
          8.0 * workload.iot[i].message_size_kb / hop.bandwidth_mbps;
      const double start = std::max(now, link_free_ms[hop.link_state]);
      link_free_ms[hop.link_state] = start + transmission_ms;
      const double arrive = start + transmission_ms + hop.latency_ms;
      queue.push(arrive, Pending{false,
                                 {},
                                 {i, hop_event.hop_index + 1,
                                  hop_event.generated_at_ms}});
      continue;
    }

    // Reached the server: FIFO service queue.
    const auto j = static_cast<std::size_t>(assignment[i]);
    const double start = std::max(now, server_free_ms[j]);
    const double complete = start + service_ms[i];
    server_free_ms[j] = complete;
    if (complete <= horizon_ms) server_busy_ms[j] += service_ms[i];

    if (hop_event.generated_at_ms >= warmup_ms && complete <= horizon_ms) {
      const double delay = complete - hop_event.generated_at_ms;
      result.delay_ms.add(delay);
      ++result.messages_measured;
      if (delay > workload.iot[i].deadline_ms) ++result.deadline_misses;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    result.server_utilization[j] = server_busy_ms[j] / horizon_ms;
  }
  return result;
}

}  // namespace tacc::sim
