// Discrete-event simulation of an assignment under real queueing.
//
// The static GAP objective scores propagation+forwarding delay only. This
// simulator replays the workload as a packet-level process — Poisson message
// generation per device, FIFO store-and-forward on every link (transmission
// time = size/bandwidth), FIFO service queues at edge servers (service rate
// from server capacity) — and reports realized end-to-end delays and
// deadline misses. Overloaded servers build unbounded queues here, which is
// how the paper's "none of the edge devices are overloaded" constraint shows
// up as tail latency (experiments F5/F6).
#pragma once

#include "gap/solution.hpp"
#include "metrics/stats.hpp"
#include "topology/network.hpp"
#include "workload/devices.hpp"

namespace tacc::sim {

struct SimParams {
  double duration_s = 30.0;  ///< simulated horizon
  double warmup_s = 3.0;     ///< messages generated before this are ignored
  std::uint64_t seed = 42;
  /// A server "at capacity" (GAP load == c_j) runs at this utilization of
  /// its actual service rate: μ_j = c_j / capacity_headroom. Headroom < 1
  /// keeps feasible assignments' queues finite while servers loaded beyond
  /// c_j / headroom genuinely diverge — which is exactly the overload
  /// behaviour the capacity constraint exists to prevent.
  double capacity_headroom = 0.75;
};

struct SimResult {
  metrics::SampleSet delay_ms;  ///< end-to-end, completed post-warmup msgs
  std::size_t messages_generated = 0;
  std::size_t messages_measured = 0;
  std::size_t deadline_misses = 0;
  std::vector<double> server_utilization;  ///< busy fraction per server

  [[nodiscard]] double deadline_miss_rate() const noexcept {
    return messages_measured
               ? static_cast<double>(deadline_misses) /
                     static_cast<double>(messages_measured)
               : 0.0;
  }
  [[nodiscard]] double mean_delay_ms() const noexcept {
    return delay_ms.stats().mean();
  }
  [[nodiscard]] double p99_delay_ms() const {
    return delay_ms.percentile(0.99);
  }
};

/// Simulates `assignment` of the workload's devices onto its servers across
/// `net`. The assignment must be complete (every device placed); workload
/// and net must describe the same devices/servers.
[[nodiscard]] SimResult simulate(const topo::NetworkTopology& net,
                                 const workload::Workload& workload,
                                 const gap::Assignment& assignment,
                                 const SimParams& params);

}  // namespace tacc::sim
