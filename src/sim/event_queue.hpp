// Time-ordered event queue for the discrete-event simulator.
//
// Stable: events with equal timestamps pop in insertion order, which keeps
// link/server FIFO semantics deterministic across platforms.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace tacc::sim {

template <typename Payload>
class EventQueue {
 public:
  void push(double time, Payload payload) {
    heap_.push(Entry{time, next_sequence_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] double next_time() const { return heap_.top().time; }

  /// Removes and returns the earliest event. Precondition: !empty().
  Payload pop(double* time_out = nullptr) {
    Entry top = heap_.top();
    heap_.pop();
    if (time_out != nullptr) *time_out = top.time;
    return std::move(top.payload);
  }

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;
    Payload payload;

    // std::priority_queue is a max-heap; invert for earliest-first.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace tacc::sim
