#include "sim/analytic.hpp"

#include <limits>
#include <stdexcept>

#include "topology/shortest_paths.hpp"

namespace tacc::sim {

AnalyticResult predict_delays(const topo::NetworkTopology& net,
                              const workload::Workload& workload,
                              const gap::Assignment& assignment,
                              const AnalyticParams& params) {
  const std::size_t n = workload.iot.size();
  const std::size_t m = workload.edges.size();
  if (net.iot_count() != n || net.edge_count() != m) {
    throw std::invalid_argument("predict_delays: shape mismatch");
  }
  if (assignment.size() != n) {
    throw std::invalid_argument("predict_delays: assignment size mismatch");
  }

  AnalyticResult result;
  result.device_delay_ms.assign(n, 0.0);
  result.server_utilization.assign(m, 0.0);

  // Server side: per-server arrival rate and (deterministic) service time.
  // Service time for a request from device i on server j is
  // (demand_i / rate_i) / (capacity_j / headroom) seconds. With demand
  // proportional to rate (the default workload), this is uniform per
  // server, making M/D/1 exact in-model.
  std::vector<double> arrival_rate(m, 0.0);       // requests/sec
  std::vector<double> busy_rate(m, 0.0);          // Σ λ_i · s_ij (= ρ)
  std::vector<double> weighted_service(m, 0.0);   // Σ λ_i · s_ij² (for PK)
  for (std::size_t i = 0; i < n; ++i) {
    if (assignment[i] == gap::kUnassigned) {
      throw std::invalid_argument("predict_delays: incomplete assignment");
    }
    const auto j = static_cast<std::size_t>(assignment[i]);
    const auto& dev = workload.iot[i];
    const double service_rate =
        workload.edges[j].capacity / params.capacity_headroom;
    const double service_s =
        (dev.demand / dev.request_rate_hz) / service_rate;
    arrival_rate[j] += dev.request_rate_hz;
    busy_rate[j] += dev.request_rate_hz * service_s;
    weighted_service[j] += dev.request_rate_hz * service_s * service_s;
  }

  // Pollaczek–Khinchine mean wait for M/G/1 with deterministic service:
  // W = λ·E[S²] / (2(1−ρ)). Using the per-server aggregate moments keeps
  // heterogeneous per-device service times exact.
  std::vector<double> wait_ms(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    result.server_utilization[j] = busy_rate[j];
    if (busy_rate[j] >= 1.0) {
      result.saturated = true;
      wait_ms[j] = std::numeric_limits<double>::infinity();
    } else {
      wait_ms[j] = 1000.0 * weighted_service[j] / (2.0 * (1.0 - busy_rate[j]));
    }
  }

  // Network side: per-server Dijkstra for path delay; transmission time
  // summed per hop from each link's bandwidth.
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    bool server_used = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(assignment[i]) == j) {
        server_used = true;
        break;
      }
    }
    if (!server_used) continue;
    const auto tree = topo::dijkstra(net.graph, net.edge_nodes[j]);
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(assignment[i]) != j) continue;
      const auto path = tree.path_to(net.iot_nodes[i]);
      if (path.empty()) {
        throw std::invalid_argument("predict_delays: unreachable server");
      }
      double delay = tree.distance_ms[net.iot_nodes[i]];
      // Transmission per hop.
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        double bandwidth = 0.0;
        for (const auto& adj : net.graph.neighbors(path[h])) {
          if (adj.to == path[h + 1]) {
            bandwidth = adj.props.bandwidth_mbps;
            break;
          }
        }
        delay += 8.0 * workload.iot[i].message_size_kb / bandwidth;
      }
      // Service + wait at the server.
      const auto& dev = workload.iot[i];
      const double service_rate =
          workload.edges[j].capacity / params.capacity_headroom;
      delay += wait_ms[j] +
               1000.0 * (dev.demand / dev.request_rate_hz) / service_rate;
      result.device_delay_ms[i] = delay;
      total += delay;
    }
  }
  result.mean_delay_ms = total / static_cast<double>(n);
  return result;
}

}  // namespace tacc::sim
