// Analytic delay prediction: a closed-form M/D/1 approximation of what the
// packet-level simulator measures, thousands of times faster.
//
// Per-device expected end-to-end delay =
//     path propagation/forwarding delay (the static metric)
//   + per-hop transmission time (message size / link bandwidth)
//   + expected server queueing + service (M/D/1: deterministic service,
//     Poisson arrivals — Pollaczek–Khinchine with C_s²=0).
//
// Link queueing is ignored (backbone links are far from saturated in the
// modeled regime), so the prediction is a slight underestimate of the DES;
// servers near capacity dominate the error budget exactly as they dominate
// the simulated tail. Accuracy is validated against the DES in tests.
//
// The predictor's use: scoring candidate assignments under *queueing*
// effects inside optimization loops where running the DES per candidate
// would be prohibitive.
#pragma once

#include "gap/solution.hpp"
#include "topology/network.hpp"
#include "workload/devices.hpp"

namespace tacc::sim {

struct AnalyticParams {
  /// Must match SimParams::capacity_headroom for comparable numbers.
  double capacity_headroom = 0.75;
};

struct AnalyticResult {
  std::vector<double> device_delay_ms;     ///< expected per device
  std::vector<double> server_utilization;  ///< offered load / service rate
  double mean_delay_ms = 0.0;              ///< across devices (unweighted)
  /// True if some server's utilization ≥ 1 (its queue has no steady state;
  /// its devices' delays are reported as +infinity).
  bool saturated = false;
};

/// Predicts expected delays for `assignment`; the assignment must be
/// complete and every used device-server path must exist.
[[nodiscard]] AnalyticResult predict_delays(
    const topo::NetworkTopology& net, const workload::Workload& workload,
    const gap::Assignment& assignment, const AnalyticParams& params = {});

}  // namespace tacc::sim
