// Assignment representation and evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gap/instance.hpp"

namespace tacc::gap {

/// Sentinel for a device not yet assigned (partial solutions during search).
constexpr std::int32_t kUnassigned = -1;

/// x[i] = server index for device i, or kUnassigned.
using Assignment = std::vector<std::int32_t>;

/// Full static evaluation of an assignment against an instance.
struct Evaluation {
  double total_cost = 0.0;          ///< Σ weight_i · delay(i, x_i)
  double avg_delay_ms = 0.0;        ///< unweighted mean device delay
  double weighted_avg_delay_ms = 0.0;  ///< traffic-weighted mean delay
  double max_delay_ms = 0.0;
  std::vector<double> loads;        ///< demand placed per server
  std::size_t overloaded_servers = 0;
  double total_overload = 0.0;      ///< Σ_j max(0, load_j - cap_j)
  double max_utilization = 0.0;     ///< max_j load_j / cap_j
  std::size_t unassigned_devices = 0;
  bool feasible = false;            ///< all assigned & no capacity violated
  /// Devices whose delay exceeds their deadline (0 when the instance has no
  /// deadlines attached). Deadline misses do NOT affect `feasible`.
  std::size_t deadline_violations = 0;
  /// True iff deadlines are attached and none is violated (vacuously false
  /// without deadlines — check instance.has_deadlines()).
  bool meets_deadlines = false;

  [[nodiscard]] std::string to_string() const;
};

/// Evaluates `assignment` (size must equal instance.device_count()).
[[nodiscard]] Evaluation evaluate(const Instance& instance,
                                  const Assignment& assignment);

/// True iff complete and capacity-feasible (cheaper than full evaluate()).
[[nodiscard]] bool is_feasible(const Instance& instance,
                               const Assignment& assignment);

/// Per-server loads only.
[[nodiscard]] std::vector<double> server_loads(const Instance& instance,
                                               const Assignment& assignment);

/// Incremental-evaluation helper used by local search / SA / RL: tracks
/// total cost and loads under move/swap updates in O(1).
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const Instance& instance, const Assignment& assignment);

  [[nodiscard]] double total_cost() const noexcept { return total_cost_; }
  [[nodiscard]] double load(ServerIndex j) const { return loads_.at(j); }
  [[nodiscard]] const std::vector<double>& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] const Assignment& assignment() const noexcept {
    return assignment_;
  }

  /// Cost delta if device moved to `to` (no state change).
  [[nodiscard]] double move_cost_delta(DeviceIndex device,
                                       ServerIndex to) const;
  /// True iff moving `device` to `to` keeps `to` within capacity.
  [[nodiscard]] bool move_feasible(DeviceIndex device, ServerIndex to) const;
  /// Applies the move, updating cost and loads.
  void apply_move(DeviceIndex device, ServerIndex to);

  /// Cost delta for swapping the servers of devices a and b.
  [[nodiscard]] double swap_cost_delta(DeviceIndex a, DeviceIndex b) const;
  /// Feasibility of the swap under both servers' capacities.
  [[nodiscard]] bool swap_feasible(DeviceIndex a, DeviceIndex b) const;
  void apply_swap(DeviceIndex a, DeviceIndex b);

 private:
  const Instance* instance_;
  Assignment assignment_;
  std::vector<double> loads_;
  double total_cost_ = 0.0;
};

}  // namespace tacc::gap
