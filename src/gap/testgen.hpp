// Direct (topology-free) instance generators for solver tests and micro-
// benchmarks, plus tiny crafted instances with known optima.
#pragma once

#include "gap/instance.hpp"
#include "gap/solution.hpp"
#include "util/rng.hpp"

namespace tacc::gap {

struct RandomInstanceParams {
  std::size_t device_count = 50;
  std::size_t server_count = 5;
  double delay_min_ms = 1.0;
  double delay_max_ms = 30.0;
  double demand_min = 0.5;
  double demand_max = 2.0;
  /// Target Σ demand / Σ capacity.
  double load_factor = 0.7;
  bool heterogeneous_capacity = true;
  bool rate_weighted = false;  ///< if true, weights U[0.5, 2.0], else 1.0
};

/// Uniform-random instance, always demand-feasible at the given load factor
/// (capacities scaled from realized total demand).
[[nodiscard]] Instance random_instance(const RandomInstanceParams& params,
                                       util::Rng& rng);

/// 2 devices × 2 servers where greedy-by-delay is forced into the wrong
/// choice but the optimum is known: used to verify exact solvers and to
/// demonstrate why look-ahead matters. Returns {instance, optimal_cost}.
struct CraftedInstance {
  Instance instance;
  double optimal_cost;
  Assignment optimal_assignment;
};
[[nodiscard]] CraftedInstance crafted_greedy_trap();

/// 3×2 instance whose only feasible solutions require splitting devices
/// across servers despite one server dominating on delay.
[[nodiscard]] CraftedInstance crafted_capacity_squeeze();

}  // namespace tacc::gap
