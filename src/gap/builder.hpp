// Builds a GAP instance from a network topology and a workload — the bridge
// between the physical model and the optimization problem.
#pragma once

#include "gap/instance.hpp"
#include "topology/network.hpp"
#include "workload/devices.hpp"

namespace tacc::gap {

struct BuilderOptions {
  /// Use straight-line distance instead of shortest-path delay as the cost
  /// metric — the *topology-oblivious* ablation (experiment A1). The true
  /// delay matrix is always kept for reporting realized delays.
  bool topology_oblivious_costs = false;
  /// Traffic weights from request rates (true) or all-ones (false).
  bool rate_weighted = true;
  /// Attach per-device deadlines from the workload so evaluations report
  /// deadline violations (and with_deadline_penalty() becomes available).
  bool attach_deadlines = true;
  /// Replacement for infinite (unreachable) delay entries, which appear
  /// when failure injection disconnects a device from *some* servers.
  /// 0 keeps the infinities (solvers then naturally avoid those servers,
  /// but averages over assignments using them are infinite). A large
  /// finite value keeps all arithmetic well-behaved while still making
  /// unreachable servers unattractive.
  double unreachable_delay_ms = 0.0;
  /// Worker threads for the delay-matrix Dijkstra fan-out (1 = serial,
  /// 0 = hardware concurrency). The instance is bit-identical either way.
  std::size_t threads = 1;
};

/// `net` must have the same device/server counts (and order) as `workload`.
[[nodiscard]] Instance build_instance(const topo::NetworkTopology& net,
                                      const workload::Workload& workload,
                                      const BuilderOptions& options = {});

}  // namespace tacc::gap
