#include "gap/instance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/mutex.hpp"

namespace tacc::gap {

Instance::Instance(topo::DelayMatrix delay, std::vector<double> weights,
                   std::vector<double> demands,
                   std::vector<double> capacities)
    : delay_(std::move(delay)),
      weights_(std::move(weights)),
      demands_(std::move(demands)),
      capacities_(std::move(capacities)) {
  if (weights_.empty()) weights_.assign(delay_.iot_count(), 1.0);
  validate();
  if (demands_.size() != delay_.iot_count()) {
    throw std::invalid_argument("Instance: demands size != device count");
  }
  for (double d : demands_) {
    if (!(d > 0.0)) {
      throw std::invalid_argument("Instance: demands must be positive");
    }
  }
}

Instance::Instance(const Instance& other)
    : delay_(other.delay_),
      weights_(other.weights_),
      demands_(other.demands_),
      demand_matrix_(other.demand_matrix_),
      has_demand_matrix_(other.has_demand_matrix_),
      capacities_(other.capacities_),
      deadlines_(other.deadlines_) {
  const MutexLock lock(&other.rank_mutex_);
  rank_cache_ = other.rank_cache_;
  rank_cache_built_.store(
      other.rank_cache_built_.load(std::memory_order_acquire),
      std::memory_order_release);
}

Instance::Instance(Instance&& other) noexcept
    : delay_(std::move(other.delay_)),
      weights_(std::move(other.weights_)),
      demands_(std::move(other.demands_)),
      demand_matrix_(std::move(other.demand_matrix_)),
      has_demand_matrix_(other.has_demand_matrix_),
      capacities_(std::move(other.capacities_)),
      deadlines_(std::move(other.deadlines_)),
      rank_cache_(std::move(other.rank_cache_)) {
  rank_cache_built_.store(
      other.rank_cache_built_.load(std::memory_order_acquire),
      std::memory_order_release);
  other.rank_cache_built_.store(false, std::memory_order_release);
}

Instance& Instance::operator=(const Instance& other) {
  if (this == &other) return *this;
  Instance copy(other);
  *this = std::move(copy);
  return *this;
}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this == &other) return *this;
  delay_ = std::move(other.delay_);
  weights_ = std::move(other.weights_);
  demands_ = std::move(other.demands_);
  demand_matrix_ = std::move(other.demand_matrix_);
  has_demand_matrix_ = other.has_demand_matrix_;
  capacities_ = std::move(other.capacities_);
  deadlines_ = std::move(other.deadlines_);
  rank_cache_ = std::move(other.rank_cache_);
  rank_cache_built_.store(
      other.rank_cache_built_.load(std::memory_order_acquire),
      std::memory_order_release);
  other.rank_cache_built_.store(false, std::memory_order_release);
  return *this;
}

Instance Instance::with_demand_matrix(topo::DelayMatrix delay,
                                      std::vector<double> weights,
                                      topo::DelayMatrix demand_matrix,
                                      std::vector<double> capacities) {
  if (demand_matrix.iot_count() != delay.iot_count() ||
      demand_matrix.edge_count() != delay.edge_count()) {
    throw std::invalid_argument("Instance: demand matrix shape mismatch");
  }
  for (std::size_t i = 0; i < demand_matrix.iot_count(); ++i) {
    for (std::size_t j = 0; j < demand_matrix.edge_count(); ++j) {
      if (!(demand_matrix.at(i, j) > 0.0)) {
        throw std::invalid_argument("Instance: demands must be positive");
      }
    }
  }
  // Route through the uniform constructor for shared validation, using the
  // per-device minimum as the placeholder demand vector, then install the
  // matrix.
  std::vector<double> placeholder(delay.iot_count(), 1.0);
  Instance instance(std::move(delay), std::move(weights),
                    std::move(placeholder), std::move(capacities));
  instance.demand_matrix_ = std::move(demand_matrix);
  instance.has_demand_matrix_ = true;
  instance.demands_.clear();
  return instance;
}

void Instance::validate() const {
  if (delay_.iot_count() == 0 || delay_.edge_count() == 0) {
    throw std::invalid_argument("Instance: empty delay matrix");
  }
  if (weights_.size() != delay_.iot_count()) {
    throw std::invalid_argument("Instance: weights size != device count");
  }
  if (capacities_.size() != delay_.edge_count()) {
    throw std::invalid_argument("Instance: capacities size != server count");
  }
  for (double w : weights_) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("Instance: weights must be positive");
    }
  }
  for (double c : capacities_) {
    if (!(c > 0.0)) {
      throw std::invalid_argument("Instance: capacities must be positive");
    }
  }
}

double Instance::total_demand_lower_bound() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < device_count(); ++i) {
    double lo = demand(i, 0);
    for (std::size_t j = 1; j < server_count(); ++j) {
      lo = std::min(lo, demand(i, j));
    }
    total += lo;
  }
  return total;
}

double Instance::total_capacity() const noexcept {
  return std::accumulate(capacities_.begin(), capacities_.end(), 0.0);
}

double Instance::load_factor() const noexcept {
  const double capacity = total_capacity();
  return capacity > 0.0 ? total_demand_lower_bound() / capacity : 0.0;
}

std::span<const std::uint32_t> Instance::servers_by_delay(
    DeviceIndex i) const {
  if (!rank_cache_built_.load(std::memory_order_acquire)) {
    const MutexLock lock(&rank_mutex_);
    if (!rank_cache_built_.load(std::memory_order_relaxed)) {
      build_rank_cache();
    }
  }
  const std::size_t m = server_count();
  if (i >= device_count()) {
    throw std::out_of_range("Instance::servers_by_delay: bad device index");
  }
  return {rank_cache_.data() + i * m, m};
}

void Instance::set_deadlines(std::vector<double> deadlines_ms) {
  if (deadlines_ms.empty()) {
    deadlines_.clear();
    return;
  }
  if (deadlines_ms.size() != device_count()) {
    throw std::invalid_argument("Instance: deadlines size != device count");
  }
  for (double d : deadlines_ms) {
    if (!(d > 0.0)) {
      throw std::invalid_argument("Instance: deadlines must be positive");
    }
  }
  deadlines_ = std::move(deadlines_ms);
}

double Instance::deadline_ms(DeviceIndex i) const {
  if (i >= device_count()) {
    throw std::out_of_range("Instance::deadline_ms: bad device index");
  }
  return deadlines_.empty() ? std::numeric_limits<double>::infinity()
                            : deadlines_[i];
}

Instance Instance::with_deadline_penalty(double penalty_factor) const {
  if (!has_deadlines()) {
    throw std::logic_error(
        "Instance::with_deadline_penalty: no deadlines attached");
  }
  if (!(penalty_factor > 1.0)) {
    throw std::invalid_argument(
        "Instance::with_deadline_penalty: factor must exceed 1");
  }
  topo::DelayMatrix inflated = delay_;
  for (DeviceIndex i = 0; i < device_count(); ++i) {
    for (ServerIndex j = 0; j < server_count(); ++j) {
      if (delay_.at(i, j) > deadlines_[i]) {
        inflated.set(i, j, delay_.at(i, j) * penalty_factor);
      }
    }
  }
  Instance penalized =
      has_demand_matrix_
          ? Instance::with_demand_matrix(std::move(inflated), weights_,
                                         demand_matrix_, capacities_)
          : Instance(std::move(inflated), weights_, demands_, capacities_);
  penalized.deadlines_ = deadlines_;
  return penalized;
}

void Instance::build_rank_cache() const {
  const std::size_t n = device_count();
  const std::size_t m = server_count();
  rank_cache_.resize(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    auto* row = rank_cache_.data() + i * m;
    std::iota(row, row + m, 0u);
    std::sort(row, row + m, [&](std::uint32_t a, std::uint32_t b) {
      const double da = delay_.at(i, a);
      const double db = delay_.at(i, b);
      return da != db ? da < db : a < b;
    });
  }
  rank_cache_built_.store(true, std::memory_order_release);
}

}  // namespace tacc::gap
