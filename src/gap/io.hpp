// Plain-text (CSV-sectioned) serialization of instances and assignments, so
// experiments can be archived and replayed.
//
// Format (line-oriented):
//   tacc-instance v1
//   devices,<n>,servers,<m>
//   capacities,<c_0>,...,<c_{m-1}>
//   weights,<w_0>,...,<w_{n-1}>
//   demands,<d_0>,...,<d_{n-1}>
//   delay,<i>,<d_i0>,...,<d_i{m-1}>        (n rows)
// Only the uniform-demand variant is serialized (general demand matrices are
// an in-memory construct for tests).
#pragma once

#include <iosfwd>
#include <string>

#include "gap/instance.hpp"
#include "gap/solution.hpp"

namespace tacc::gap {

void save_instance(const Instance& instance, std::ostream& out);
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Instance load_instance(std::istream& in);

void save_instance_file(const Instance& instance, const std::string& path);
[[nodiscard]] Instance load_instance_file(const std::string& path);

void save_assignment(const Assignment& assignment, std::ostream& out);
[[nodiscard]] Assignment load_assignment(std::istream& in);

}  // namespace tacc::gap
