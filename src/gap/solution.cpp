#include "gap/solution.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace tacc::gap {

namespace {
constexpr double kCapacityEps = 1e-9;

void check_shape(const Instance& instance, const Assignment& assignment) {
  if (assignment.size() != instance.device_count()) {
    throw std::invalid_argument("assignment size != device count");
  }
}
}  // namespace

std::string Evaluation::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "cost=" << total_cost << " avg_delay_ms=" << avg_delay_ms
     << " max_delay_ms=" << max_delay_ms
     << " max_util=" << max_utilization
     << " overloaded=" << overloaded_servers
     << (feasible ? " [feasible]" : " [INFEASIBLE]");
  return os.str();
}

Evaluation evaluate(const Instance& instance, const Assignment& assignment) {
  check_shape(instance, assignment);
  Evaluation ev;
  ev.loads.assign(instance.server_count(), 0.0);
  double weight_sum = 0.0;
  double weighted_delay_sum = 0.0;
  double delay_sum = 0.0;
  std::size_t assigned = 0;

  for (DeviceIndex i = 0; i < assignment.size(); ++i) {
    const std::int32_t x = assignment[i];
    if (x == kUnassigned) {
      ++ev.unassigned_devices;
      continue;
    }
    const auto j = static_cast<ServerIndex>(x);
    if (j >= instance.server_count()) {
      throw std::out_of_range("assignment refers to nonexistent server");
    }
    ++assigned;
    const double delay = instance.delay_ms(i, j);
    if (instance.has_deadlines() && delay > instance.deadline_ms(i)) {
      ++ev.deadline_violations;
    }
    const double weight = instance.traffic_weight(i);
    ev.total_cost += weight * delay;
    delay_sum += delay;
    weighted_delay_sum += weight * delay;
    weight_sum += weight;
    ev.max_delay_ms = std::max(ev.max_delay_ms, delay);
    ev.loads[j] += instance.demand(i, j);
  }

  ev.avg_delay_ms = assigned ? delay_sum / static_cast<double>(assigned) : 0.0;
  ev.weighted_avg_delay_ms =
      weight_sum > 0.0 ? weighted_delay_sum / weight_sum : 0.0;

  for (ServerIndex j = 0; j < instance.server_count(); ++j) {
    const double cap = instance.capacity(j);
    const double over = ev.loads[j] - cap;
    if (over > kCapacityEps) {
      ++ev.overloaded_servers;
      ev.total_overload += over;
    }
    ev.max_utilization = std::max(ev.max_utilization, ev.loads[j] / cap);
  }
  ev.feasible = ev.unassigned_devices == 0 && ev.overloaded_servers == 0;
  ev.meets_deadlines = instance.has_deadlines() &&
                       ev.unassigned_devices == 0 &&
                       ev.deadline_violations == 0;
  return ev;
}

bool is_feasible(const Instance& instance, const Assignment& assignment) {
  check_shape(instance, assignment);
  std::vector<double> loads(instance.server_count(), 0.0);
  for (DeviceIndex i = 0; i < assignment.size(); ++i) {
    const std::int32_t x = assignment[i];
    if (x == kUnassigned) return false;
    const auto j = static_cast<ServerIndex>(x);
    if (j >= instance.server_count()) return false;
    loads[j] += instance.demand(i, j);
  }
  for (ServerIndex j = 0; j < loads.size(); ++j) {
    if (loads[j] > instance.capacity(j) + kCapacityEps) return false;
  }
  return true;
}

std::vector<double> server_loads(const Instance& instance,
                                 const Assignment& assignment) {
  check_shape(instance, assignment);
  std::vector<double> loads(instance.server_count(), 0.0);
  for (DeviceIndex i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == kUnassigned) continue;
    loads[static_cast<ServerIndex>(assignment[i])] +=
        instance.demand(i, static_cast<ServerIndex>(assignment[i]));
  }
  return loads;
}

IncrementalEvaluator::IncrementalEvaluator(const Instance& instance,
                                           const Assignment& assignment)
    : instance_(&instance), assignment_(assignment) {
  check_shape(instance, assignment);
  loads_.assign(instance.server_count(), 0.0);
  for (DeviceIndex i = 0; i < assignment_.size(); ++i) {
    if (assignment_[i] == kUnassigned) {
      throw std::invalid_argument(
          "IncrementalEvaluator requires a complete assignment");
    }
    const auto j = static_cast<ServerIndex>(assignment_[i]);
    loads_[j] += instance.demand(i, j);
    total_cost_ += instance.cost(i, j);
  }
}

double IncrementalEvaluator::move_cost_delta(DeviceIndex device,
                                             ServerIndex to) const {
  const auto from = static_cast<ServerIndex>(assignment_[device]);
  if (from == to) return 0.0;
  return instance_->cost(device, to) - instance_->cost(device, from);
}

bool IncrementalEvaluator::move_feasible(DeviceIndex device,
                                         ServerIndex to) const {
  const auto from = static_cast<ServerIndex>(assignment_[device]);
  if (from == to) return true;
  return loads_[to] + instance_->demand(device, to) <=
         instance_->capacity(to) + kCapacityEps;
}

void IncrementalEvaluator::apply_move(DeviceIndex device, ServerIndex to) {
  const auto from = static_cast<ServerIndex>(assignment_[device]);
  if (from == to) return;
  loads_[from] -= instance_->demand(device, from);
  loads_[to] += instance_->demand(device, to);
  total_cost_ += instance_->cost(device, to) - instance_->cost(device, from);
  assignment_[device] = static_cast<std::int32_t>(to);
}

double IncrementalEvaluator::swap_cost_delta(DeviceIndex a,
                                             DeviceIndex b) const {
  const auto ja = static_cast<ServerIndex>(assignment_[a]);
  const auto jb = static_cast<ServerIndex>(assignment_[b]);
  if (ja == jb) return 0.0;
  return instance_->cost(a, jb) + instance_->cost(b, ja) -
         instance_->cost(a, ja) - instance_->cost(b, jb);
}

bool IncrementalEvaluator::swap_feasible(DeviceIndex a, DeviceIndex b) const {
  const auto ja = static_cast<ServerIndex>(assignment_[a]);
  const auto jb = static_cast<ServerIndex>(assignment_[b]);
  if (ja == jb) return true;
  const double load_a_side = loads_[ja] - instance_->demand(a, ja) +
                             instance_->demand(b, ja);
  const double load_b_side = loads_[jb] - instance_->demand(b, jb) +
                             instance_->demand(a, jb);
  return load_a_side <= instance_->capacity(ja) + kCapacityEps &&
         load_b_side <= instance_->capacity(jb) + kCapacityEps;
}

void IncrementalEvaluator::apply_swap(DeviceIndex a, DeviceIndex b) {
  const auto ja = static_cast<ServerIndex>(assignment_[a]);
  const auto jb = static_cast<ServerIndex>(assignment_[b]);
  if (ja == jb) return;
  apply_move(a, jb);
  apply_move(b, ja);
}

}  // namespace tacc::gap
