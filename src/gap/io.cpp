#include "gap/io.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace tacc::gap {

namespace {

[[nodiscard]] double parse_double(const std::string& field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    if (pos != field.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("tacc-instance: bad numeric field '" + field +
                             "'");
  }
}

[[nodiscard]] std::vector<double> parse_vector(
    const std::vector<std::string>& fields, std::size_t expected,
    const std::string& what) {
  if (fields.size() != expected + 1) {
    throw std::runtime_error("tacc-instance: " + what + " expects " +
                             std::to_string(expected) + " values");
  }
  std::vector<double> values;
  values.reserve(expected);
  for (std::size_t k = 1; k < fields.size(); ++k) {
    values.push_back(parse_double(fields[k]));
  }
  return values;
}

[[nodiscard]] std::string read_line_required(std::istream& in,
                                             const std::string& what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("tacc-instance: unexpected EOF reading " + what);
  }
  return line;
}

}  // namespace

void save_instance(const Instance& instance, std::ostream& out) {
  if (!instance.uniform_demand()) {
    throw std::invalid_argument(
        "save_instance: only uniform-demand instances are serializable");
  }
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  out << "tacc-instance v1\n";
  out << "devices," << n << ",servers," << m << '\n';
  out << std::setprecision(17);
  out << "capacities";
  for (std::size_t j = 0; j < m; ++j) out << ',' << instance.capacity(j);
  out << '\n' << "weights";
  for (std::size_t i = 0; i < n; ++i) out << ',' << instance.traffic_weight(i);
  out << '\n' << "demands";
  for (std::size_t i = 0; i < n; ++i) out << ',' << instance.demand(i, 0);
  out << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    out << "delay," << i;
    for (std::size_t j = 0; j < m; ++j) out << ',' << instance.delay_ms(i, j);
    out << '\n';
  }
}

Instance load_instance(std::istream& in) {
  if (read_line_required(in, "header") != "tacc-instance v1") {
    throw std::runtime_error("tacc-instance: bad magic line");
  }
  const auto dims = util::csv_parse_line(read_line_required(in, "dims"));
  if (dims.size() != 4 || dims[0] != "devices" || dims[2] != "servers") {
    throw std::runtime_error("tacc-instance: bad dims line");
  }
  const auto n = static_cast<std::size_t>(parse_double(dims[1]));
  const auto m = static_cast<std::size_t>(parse_double(dims[3]));
  if (n == 0 || m == 0) throw std::runtime_error("tacc-instance: empty");

  const auto caps_line =
      util::csv_parse_line(read_line_required(in, "capacities"));
  if (caps_line.empty() || caps_line[0] != "capacities") {
    throw std::runtime_error("tacc-instance: expected capacities row");
  }
  auto capacities = parse_vector(caps_line, m, "capacities");

  const auto weights_line =
      util::csv_parse_line(read_line_required(in, "weights"));
  if (weights_line.empty() || weights_line[0] != "weights") {
    throw std::runtime_error("tacc-instance: expected weights row");
  }
  auto weights = parse_vector(weights_line, n, "weights");

  const auto demands_line =
      util::csv_parse_line(read_line_required(in, "demands"));
  if (demands_line.empty() || demands_line[0] != "demands") {
    throw std::runtime_error("tacc-instance: expected demands row");
  }
  auto demands = parse_vector(demands_line, n, "demands");

  topo::DelayMatrix delay(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = util::csv_parse_line(read_line_required(in, "delay row"));
    if (row.size() != m + 2 || row[0] != "delay") {
      throw std::runtime_error("tacc-instance: bad delay row");
    }
    const auto row_index = static_cast<std::size_t>(parse_double(row[1]));
    if (row_index != i) {
      throw std::runtime_error("tacc-instance: delay rows out of order");
    }
    for (std::size_t j = 0; j < m; ++j) {
      delay.set(i, j, parse_double(row[j + 2]));
    }
  }
  return Instance(std::move(delay), std::move(weights), std::move(demands),
                  std::move(capacities));
}

void save_instance_file(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_instance(instance, out);
}

Instance load_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_instance(in);
}

void save_assignment(const Assignment& assignment, std::ostream& out) {
  out << "tacc-assignment v1\n";
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    out << i << ',' << assignment[i] << '\n';
  }
}

Assignment load_assignment(std::istream& in) {
  if (read_line_required(in, "header") != "tacc-assignment v1") {
    throw std::runtime_error("tacc-assignment: bad magic line");
  }
  Assignment assignment;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::csv_parse_line(line);
    if (fields.size() != 2) {
      throw std::runtime_error("tacc-assignment: bad row");
    }
    const auto index = static_cast<std::size_t>(parse_double(fields[0]));
    if (index != assignment.size()) {
      throw std::runtime_error("tacc-assignment: rows out of order");
    }
    assignment.push_back(
        static_cast<std::int32_t>(parse_double(fields[1])));
  }
  return assignment;
}

}  // namespace tacc::gap
