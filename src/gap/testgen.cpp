#include "gap/testgen.hpp"

#include <numeric>

namespace tacc::gap {

Instance random_instance(const RandomInstanceParams& params, util::Rng& rng) {
  const std::size_t n = params.device_count;
  const std::size_t m = params.server_count;
  topo::DelayMatrix delay(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      delay.set(i, j, rng.uniform(params.delay_min_ms, params.delay_max_ms));
    }
  }
  std::vector<double> demands(n);
  double total_demand = 0.0;
  for (auto& d : demands) {
    d = rng.uniform(params.demand_min, params.demand_max);
    total_demand += d;
  }
  std::vector<double> weights(n, 1.0);
  if (params.rate_weighted) {
    for (auto& w : weights) w = rng.uniform(0.5, 2.0);
  }
  std::vector<double> shares(m, 1.0);
  if (params.heterogeneous_capacity) {
    for (auto& s : shares) s = rng.uniform(0.5, 1.5);
  }
  const double share_sum = std::accumulate(shares.begin(), shares.end(), 0.0);
  std::vector<double> capacities(m);
  for (std::size_t j = 0; j < m; ++j) {
    capacities[j] =
        total_demand / params.load_factor * shares[j] / share_sum;
  }
  return Instance(std::move(delay), std::move(weights), std::move(demands),
                  std::move(capacities));
}

CraftedInstance crafted_greedy_trap() {
  // Server 0 is closest for both devices, but only fits one. Greedy that
  // assigns device 0 (processed first) to server 0 forces device 1 onto the
  // distant server 1 at delay 100; the optimum puts device 1 (for which
  // server 1 is catastrophic) on server 0 and device 0 on server 1 (delay 5).
  //      s0   s1
  // d0:   1    5       demand 1
  // d1:   2  100       demand 1
  // cap: 1, 2
  topo::DelayMatrix delay(2, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 5.0);
  delay.set(1, 0, 2.0);
  delay.set(1, 1, 100.0);
  Instance instance(std::move(delay), std::vector<double>{},
                    std::vector<double>{1.0, 1.0},
                    std::vector<double>{1.0, 2.0});
  return {std::move(instance), 7.0, {1, 0}};
}

CraftedInstance crafted_capacity_squeeze() {
  // Server 0 dominates on delay for all three devices but fits only two;
  // the optimum parks the device with the mildest penalty (d2) on server 1.
  //      s0   s1
  // d0:   1   10       demand 1
  // d1:   1   20       demand 1
  // d2:   1    3       demand 1
  // cap: 2, 2
  topo::DelayMatrix delay(3, 2);
  delay.set(0, 0, 1.0);
  delay.set(0, 1, 10.0);
  delay.set(1, 0, 1.0);
  delay.set(1, 1, 20.0);
  delay.set(2, 0, 1.0);
  delay.set(2, 1, 3.0);
  Instance instance(std::move(delay), std::vector<double>{},
                    std::vector<double>{1.0, 1.0, 1.0},
                    std::vector<double>{2.0, 2.0});
  return {std::move(instance), 5.0, {0, 0, 1}};
}

}  // namespace tacc::gap
