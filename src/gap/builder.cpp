#include "gap/builder.hpp"

#include <stdexcept>

#include "topology/shortest_paths.hpp"

namespace tacc::gap {

Instance build_instance(const topo::NetworkTopology& net,
                        const workload::Workload& workload,
                        const BuilderOptions& options) {
  if (net.iot_count() != workload.iot.size() ||
      net.edge_count() != workload.edges.size()) {
    throw std::invalid_argument(
        "build_instance: topology/workload device counts differ");
  }

  topo::DelayMatrix delay =
      options.topology_oblivious_costs
          ? topo::compute_euclidean_matrix(net)
          : topo::compute_delay_matrix(net, options.threads);
  if (options.unreachable_delay_ms > 0.0) {
    for (std::size_t i = 0; i < delay.iot_count(); ++i) {
      for (std::size_t j = 0; j < delay.edge_count(); ++j) {
        if (delay.at(i, j) == topo::kUnreachable) {
          delay.set(i, j, options.unreachable_delay_ms);
        }
      }
    }
  }

  std::vector<double> weights;
  std::vector<double> demands;
  weights.reserve(workload.iot.size());
  demands.reserve(workload.iot.size());
  for (const auto& device : workload.iot) {
    weights.push_back(options.rate_weighted ? device.request_rate_hz : 1.0);
    demands.push_back(device.demand);
  }
  std::vector<double> capacities;
  capacities.reserve(workload.edges.size());
  for (const auto& server : workload.edges) {
    capacities.push_back(server.capacity);
  }
  Instance instance(std::move(delay), std::move(weights), std::move(demands),
                    std::move(capacities));
  if (options.attach_deadlines) {
    std::vector<double> deadlines;
    deadlines.reserve(workload.iot.size());
    for (const auto& device : workload.iot) {
      deadlines.push_back(device.deadline_ms);
    }
    instance.set_deadlines(std::move(deadlines));
  }
  return instance;
}

}  // namespace tacc::gap
