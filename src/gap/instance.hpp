// The Topology-Aware Cluster Configuration (TACC) problem instance.
//
// TACC is a Generalized Assignment Problem: assign each IoT device i to an
// edge server j minimizing Σ_i cost(i, x(i)) subject to per-server capacity,
// where cost(i,j) = traffic_weight(i) · delay_ms(i,j) and the delay matrix is
// derived from the network topology (see topology/network.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "topology/network.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::gap {

using DeviceIndex = std::size_t;
using ServerIndex = std::size_t;

class Instance {
 public:
  /// Builds an instance with uniform per-device demand (w_ij = w_i).
  /// `delay` is n×m; `weights` and `demands` have size n, `capacities` m.
  /// Pass empty `weights` for all-ones. Throws on shape mismatch or
  /// non-positive capacity/demand.
  Instance(topo::DelayMatrix delay, std::vector<double> weights,
           std::vector<double> demands, std::vector<double> capacities);

  /// General-GAP variant: per-(device, server) demand matrix (n×m).
  /// A named factory rather than an overload so braced-list call sites of
  /// the uniform constructor stay unambiguous.
  [[nodiscard]] static Instance with_demand_matrix(
      topo::DelayMatrix delay, std::vector<double> weights,
      topo::DelayMatrix demand_matrix, std::vector<double> capacities);

  // Copies and moves are explicit because the lazily built rank cache is
  // guarded by a (non-copyable) mutex; the cache contents transfer, the
  // guard does not.
  Instance(const Instance& other);
  Instance(Instance&& other) noexcept;
  Instance& operator=(const Instance& other);
  Instance& operator=(Instance&& other) noexcept;
  ~Instance() = default;

  [[nodiscard]] std::size_t device_count() const noexcept {
    return delay_.iot_count();
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return delay_.edge_count();
  }

  /// Shortest-path delay in ms (the topology-aware metric).
  [[nodiscard]] double delay_ms(DeviceIndex i, ServerIndex j) const {
    return delay_.at(i, j);
  }
  /// Traffic weight w'_i (requests/sec or normalized rate).
  [[nodiscard]] double traffic_weight(DeviceIndex i) const {
    return weights_.at(i);
  }
  /// Assignment cost: weight × delay.
  [[nodiscard]] double cost(DeviceIndex i, ServerIndex j) const {
    return weights_[i] * delay_.at(i, j);
  }
  /// Capacity units device i consumes if assigned to server j.
  [[nodiscard]] double demand(DeviceIndex i, ServerIndex j) const {
    return has_demand_matrix_ ? demand_matrix_.at(i, j) : demands_.at(i);
  }
  [[nodiscard]] bool uniform_demand() const noexcept {
    return !has_demand_matrix_;
  }
  [[nodiscard]] double capacity(ServerIndex j) const {
    return capacities_.at(j);
  }
  [[nodiscard]] std::span<const double> capacities() const noexcept {
    return capacities_;
  }

  [[nodiscard]] double total_demand_lower_bound() const noexcept;
  [[nodiscard]] double total_capacity() const noexcept;
  /// Σ min_j demand / Σ capacity; >1 means certainly infeasible.
  [[nodiscard]] double load_factor() const noexcept;

  /// Servers sorted by ascending delay for device i (the "K nearest
  /// candidates" used by RL and greedy solvers). Cached on first use;
  /// safe to call concurrently (double-checked build under a mutex), as
  /// portfolio solves share one instance across worker threads.
  [[nodiscard]] std::span<const std::uint32_t> servers_by_delay(
      DeviceIndex i) const;

  [[nodiscard]] const topo::DelayMatrix& delay_matrix() const noexcept {
    return delay_;
  }

  // ---- Deadlines (optional metadata) ---------------------------------------
  // Real-time devices carry an end-to-end deadline; an assignment *meets
  // deadlines* when every device's delay is within its bound. Deadlines do
  // not change capacity feasibility — they are evaluated separately and can
  // be folded into costs via with_deadline_penalty().

  /// Attaches per-device deadlines (size n, all positive) or clears them
  /// with an empty vector. Throws on shape/positivity violations.
  void set_deadlines(std::vector<double> deadlines_ms);
  [[nodiscard]] bool has_deadlines() const noexcept {
    return !deadlines_.empty();
  }
  /// +infinity when no deadlines are attached.
  [[nodiscard]] double deadline_ms(DeviceIndex i) const;

  /// A solving-time transform: a copy of this instance whose delay entries
  /// that exceed the device's deadline are inflated by `penalty_factor`,
  /// steering any cost-minimizing solver away from deadline-violating
  /// servers. Evaluate the resulting assignment against the ORIGINAL
  /// instance for true delays. Requires deadlines to be attached.
  [[nodiscard]] Instance with_deadline_penalty(double penalty_factor) const;

 private:
  void validate() const;
  void build_rank_cache() const TACC_REQUIRES(rank_mutex_);

  topo::DelayMatrix delay_;
  std::vector<double> weights_;
  std::vector<double> demands_;        // per-device (uniform-demand variant)
  topo::DelayMatrix demand_matrix_;    // general variant
  bool has_demand_matrix_ = false;
  std::vector<double> capacities_;
  std::vector<double> deadlines_;  // empty = no deadlines attached

  // Lazily built: n×m server indices, row i sorted by delay_ms(i, ·).
  // rank_mutex_ guards the one-time build; the acquire/release flag makes
  // the fast path lock-free once built.
  //
  // Deliberately NOT TACC_GUARDED_BY(rank_mutex_): the double-checked
  // publication makes post-build reads lock-free by design, which the
  // thread-safety analysis cannot express. The write side stays disciplined
  // through build_rank_cache()'s TACC_REQUIRES(rank_mutex_); readers are
  // safe because rank_cache_ is immutable once rank_cache_built_ is
  // observed true with acquire ordering.
  mutable std::vector<std::uint32_t> rank_cache_;
  mutable std::atomic<bool> rank_cache_built_{false};
  mutable Mutex rank_mutex_;
};

}  // namespace tacc::gap
