#include "workload/wire.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace tacc::workload {

std::string wire_double(double value) {
  char buffer[64];
  const int n = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  TACC_CHECK_INVARIANT(n > 0 && static_cast<std::size_t>(n) < sizeof(buffer),
                       "wire_double formatting failed");
  return std::string(buffer, static_cast<std::size_t>(n));
}

WireAdapter::WireAdapter(const ProviderContext& context, std::string session)
    : ctx_(context), session_(std::move(session)) {
  const std::size_t n = ctx_.base_devices();
  slot_of_.resize(n);
  live_.assign(n, true);
  for (std::size_t i = 0; i < n; ++i) slot_of_[i] = i;
  slots_ = n;
}

std::string WireAdapter::configure_line(std::size_t iot, std::size_t edge,
                                        std::uint64_t seed,
                                        std::string_view algo,
                                        std::string_view preset) const {
  std::string line = "CONFIGURE " + session_ + " " + std::to_string(iot) +
                     " " + std::to_string(edge) +
                     " seed=" + std::to_string(seed);
  if (!algo.empty()) line += " algo=" + std::string(algo);
  if (!preset.empty()) line += " preset=" + std::string(preset);
  return line;
}

std::size_t WireAdapter::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return slots_++;
}

std::size_t WireAdapter::slot_of(std::size_t device) const {
  if (device >= live_.size() || !live_[device]) {
    throw std::out_of_range("WireAdapter::slot_of: device not live");
  }
  return slot_of_[device];
}

std::vector<std::string> WireAdapter::render(const Event& event) {
  std::vector<std::string> lines;
  switch (event.kind) {
    case EventKind::kJoin: {
      TACC_CHECK_INVARIANT(event.device == live_.size(),
                           "join ids must be minted densely in stream order");
      const std::size_t slot = allocate_slot();
      slot_of_.push_back(slot);
      live_.push_back(true);
      lines.push_back("JOIN " + session_ + " " + wire_double(event.position.x) +
                      " " + wire_double(event.position.y) +
                      " demand=" + wire_double(event.demand) +
                      " rate=" + wire_double(event.rate_hz));
      break;
    }
    case EventKind::kLeave: {
      const std::size_t slot = slot_of(event.device);
      live_[event.device] = false;
      free_slots_.push_back(slot);
      lines.push_back("LEAVE " + session_ + " " + std::to_string(slot));
      break;
    }
    case EventKind::kMove: {
      const std::size_t slot = slot_of(event.device);
      lines.push_back("MOVE " + session_ + " " + std::to_string(slot) + " " +
                      wire_double(event.position.x) + " " +
                      wire_double(event.position.y));
      break;
    }
    case EventKind::kDemandPulse: {
      // No wire verb for an in-place demand change: re-join with the new
      // demand. LIFO recycling puts the device back into the same slot.
      const std::size_t slot = slot_of(event.device);
      live_[event.device] = false;
      free_slots_.push_back(slot);
      lines.push_back("LEAVE " + session_ + " " + std::to_string(slot));
      const std::size_t reused = allocate_slot();
      TACC_CHECK_INVARIANT(reused == slot,
                           "LIFO recycling must reuse the pulsed slot");
      slot_of_[event.device] = reused;
      live_[event.device] = true;
      lines.push_back("JOIN " + session_ + " " + wire_double(event.position.x) +
                      " " + wire_double(event.position.y) +
                      " demand=" + wire_double(event.demand) +
                      " rate=" + wire_double(event.rate_hz));
      break;
    }
    case EventKind::kLinkFail: {
      const auto& [u, v] = ctx_.links.at(event.link);
      lines.push_back("LINK_FAIL " + session_ + " " + std::to_string(u) + " " +
                      std::to_string(v));
      break;
    }
    case EventKind::kLinkRestore: {
      const auto& [u, v] = ctx_.links.at(event.link);
      lines.push_back("LINK_RESTORE " + session_ + " " + std::to_string(u) +
                      " " + std::to_string(v));
      break;
    }
    case EventKind::kLinkSetLatency: {
      const auto& [u, v] = ctx_.links.at(event.link);
      lines.push_back("LINK_SET " + session_ + " " + std::to_string(u) + " " +
                      std::to_string(v) + " " + wire_double(event.latency_ms));
      break;
    }
  }
  return lines;
}

std::vector<std::string> WireAdapter::render(
    const std::vector<Event>& events) {
  std::vector<std::string> lines;
  for (const Event& event : events) {
    for (std::string& line : render(event)) lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace tacc::workload
