// Device models: IoT producers and edge servers.
#pragma once

#include <vector>

#include "topology/geometry.hpp"

namespace tacc::workload {

/// An IoT device streaming requests to whichever edge server it is assigned.
struct IotDevice {
  topo::Point2D position;
  double request_rate_hz = 10.0;  ///< mean Poisson arrival rate λ_i
  double message_size_kb = 4.0;   ///< payload per request
  double deadline_ms = 20.0;      ///< end-to-end deadline for its requests
  /// Capacity units this device consumes on the server it is assigned to
  /// (requests/sec × per-request cost). This is the GAP demand w_i.
  double demand = 1.0;
};

/// An edge server in the cluster.
struct EdgeServer {
  topo::Point2D position;
  /// Capacity units the server can host without overload (GAP capacity c_j).
  double capacity = 100.0;
};

/// A complete workload: devices + servers, both embedded in the plane.
struct Workload {
  std::vector<IotDevice> iot;
  std::vector<EdgeServer> edges;

  [[nodiscard]] double total_demand() const noexcept;
  [[nodiscard]] double total_capacity() const noexcept;
  /// Σ demand / Σ capacity — the system load factor ρ.
  [[nodiscard]] double load_factor() const noexcept;

  [[nodiscard]] std::vector<topo::Point2D> iot_positions() const;
  [[nodiscard]] std::vector<topo::Point2D> edge_positions() const;
};

}  // namespace tacc::workload
