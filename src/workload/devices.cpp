#include "workload/devices.hpp"

namespace tacc::workload {

double Workload::total_demand() const noexcept {
  double total = 0.0;
  for (const auto& device : iot) total += device.demand;
  return total;
}

double Workload::total_capacity() const noexcept {
  double total = 0.0;
  for (const auto& server : edges) total += server.capacity;
  return total;
}

double Workload::load_factor() const noexcept {
  const double capacity = total_capacity();
  return capacity > 0.0 ? total_demand() / capacity : 0.0;
}

std::vector<topo::Point2D> Workload::iot_positions() const {
  std::vector<topo::Point2D> positions;
  positions.reserve(iot.size());
  for (const auto& device : iot) positions.push_back(device.position);
  return positions;
}

std::vector<topo::Point2D> Workload::edge_positions() const {
  std::vector<topo::Point2D> positions;
  positions.reserve(edges.size());
  for (const auto& server : edges) positions.push_back(server.position);
  return positions;
}

}  // namespace tacc::workload
