// Pluggable workload providers: named, seed-deterministic streams of typed
// churn events (device join/leave/move, backbone link fail/restore/reweight,
// demand pulses).
//
// Every event-driven bench used to hand-roll its own event mix, so traffic
// shapes could not be shared between benches, replayed through taccd, or
// compared across PRs. A WorkloadProvider is the one place a scenario's
// dynamics live:
//
//   ProviderContext ctx = make_context(scenario.network(),
//                                      scenario.workload(),
//                                      scenario.params().workload.area_km,
//                                      seed);
//   auto provider = make_provider("flash_crowd,burst_s=30", ctx);
//   for (const Event& event : provider->step(1.0)) { ...apply... }
//
// Determinism contract: two providers built from the same (spec, context)
// and stepped with the same dt sequence emit byte-identical event streams.
// Everything flows through util::Rng forks of the context seed; a provider
// never sees consumer state, so the stream is independent of how events are
// applied (directly to a DynamicCluster, or rendered to wire verbs and
// replayed through taccd — see workload/wire.hpp).
//
// Providers (registry names, see make_provider):
//   steady               balanced join/leave + random-jump moves + pulses
//   diurnal              sinusoidal traffic waves (population breathes)
//   flash_crowd          clustered join bursts around a hotspot, then drain
//   mobility_trace       random-waypoint moves (wraps RandomWaypointModel)
//   regional_link_failure correlated outages of geographically close links
//   hotspot_adversary    demand chases a shifting hotspot (joins, pulls,
//                        demand pulses concentrated on one region)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topology/failures.hpp"
#include "topology/geometry.hpp"
#include "topology/network.hpp"
#include "workload/devices.hpp"

namespace tacc::workload {

enum class EventKind : std::uint8_t {
  kJoin,            ///< new device appears (position, rate, demand)
  kLeave,           ///< live device departs
  kMove,            ///< live device re-attaches at a new position
  kLinkFail,        ///< backbone link goes down
  kLinkRestore,     ///< previously failed backbone link comes back
  kLinkSetLatency,  ///< live backbone link reweighted (new absolute latency)
  kDemandPulse,     ///< live device's demand changes (new absolute demand)
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// One typed workload event. `device` is a provider-scoped id: base devices
/// are 0..base-1, each kJoin mints the next id. Consumers map provider ids
/// to their own device handles (see workload/wire.hpp for the canonical
/// mapping onto DynamicCluster slot indices). `link` indexes
/// ProviderContext::links. Only the fields relevant to `kind` are
/// meaningful; the rest keep their defaults.
struct Event {
  EventKind kind = EventKind::kJoin;
  double time_s = 0.0;       ///< simulated time at emission
  std::size_t device = 0;    ///< kJoin/kLeave/kMove/kDemandPulse
  topo::Point2D position{};  ///< kJoin/kMove
  double rate_hz = 5.0;      ///< kJoin
  double demand = 1.0;       ///< kJoin; kDemandPulse: new absolute demand
  std::size_t link = 0;      ///< kLink*: index into ProviderContext::links
  double latency_ms = 0.0;   ///< kLinkSetLatency: new absolute latency

  friend bool operator==(const Event&, const Event&) = default;
};

/// Everything a provider may condition on: the static deployment at t=0.
/// Built once per scenario via make_context() and shared by providers and
/// the wire adapter (both must agree on link indexing and base devices).
struct ProviderContext {
  std::uint64_t seed = 1;
  double area_km = 10.0;

  // Devices alive at t=0 (provider ids 0..n-1), in workload order.
  std::vector<topo::Point2D> base_positions;
  std::vector<double> base_demands;
  std::vector<double> base_rates_hz;

  // Failable backbone links, in topo::backbone_links order (the indexing
  // every kLink* event and the wire adapter use).
  std::vector<topo::LinkEndpoints> links;
  std::vector<topo::Point2D> link_midpoints;  ///< parallel to links
  std::vector<double> link_latency_ms;        ///< initial latency, parallel

  [[nodiscard]] std::size_t base_devices() const noexcept {
    return base_positions.size();
  }
};

/// Snapshot of a scenario into a ProviderContext. Deterministic in its
/// inputs; `area_km` comes from the scenario's workload params.
[[nodiscard]] ProviderContext make_context(const topo::NetworkTopology& net,
                                           const Workload& workload,
                                           double area_km,
                                           std::uint64_t seed);

/// A named, seed-deterministic event stream (see file comment for the
/// contract). Implementations guarantee stream legality: kLeave/kMove/
/// kDemandPulse only reference live ids, kLinkFail only live links,
/// kLinkRestore only failed ones, and latencies/demands stay positive — so
/// consumers can apply events without defensive checks.
class WorkloadProvider {
 public:
  virtual ~WorkloadProvider();

  /// Registry name this provider was created under (no parameters).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Events for the next `dt_s` seconds of simulated time, in emission
  /// order (time_s nondecreasing). May be empty (a quiet window).
  [[nodiscard]] virtual std::vector<Event> step(double dt_s) = 0;

  /// Simulated clock: sum of all step() durations so far.
  [[nodiscard]] virtual double now_s() const noexcept = 0;

  /// Currently live device count (base devices plus net joins).
  [[nodiscard]] virtual std::size_t live_devices() const noexcept = 0;
};

/// The registry names, in documentation order.
[[nodiscard]] std::vector<std::string_view> provider_names();

/// The `key=value` parameter keys `name` accepts in a spec, in consumption
/// order — including the shared reopt_pause/reopt_active_s every provider
/// honours. Throws std::invalid_argument for an unknown name. Backs
/// `tacc_workload --list`.
[[nodiscard]] std::vector<std::string> provider_param_keys(
    std::string_view name);

/// Creates a provider from "NAME[,key=value...]" — e.g. "steady" or
/// "flash_crowd,burst_s=30,burst_rate=40". Every parameter is numeric.
/// Throws std::invalid_argument for an unknown name, an unknown key (the
/// message lists the provider's valid keys), or a malformed spec.
[[nodiscard]] std::unique_ptr<WorkloadProvider> make_provider(
    std::string_view spec, const ProviderContext& context);

}  // namespace tacc::workload
