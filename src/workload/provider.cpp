#include "workload/provider.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "workload/mobility.hpp"

namespace tacc::workload {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kJoin:
      return "join";
    case EventKind::kLeave:
      return "leave";
    case EventKind::kMove:
      return "move";
    case EventKind::kLinkFail:
      return "link_fail";
    case EventKind::kLinkRestore:
      return "link_restore";
    case EventKind::kLinkSetLatency:
      return "link_set_latency";
    case EventKind::kDemandPulse:
      return "demand_pulse";
  }
  return "unknown";
}

ProviderContext make_context(const topo::NetworkTopology& net,
                             const Workload& workload, double area_km,
                             std::uint64_t seed) {
  if (workload.iot.size() != net.iot_count()) {
    throw std::invalid_argument(
        "make_context: workload/topology device count mismatch");
  }
  ProviderContext ctx;
  ctx.seed = seed;
  ctx.area_km = area_km;
  ctx.base_positions = workload.iot_positions();
  ctx.base_demands.reserve(workload.iot.size());
  ctx.base_rates_hz.reserve(workload.iot.size());
  for (const IotDevice& device : workload.iot) {
    ctx.base_demands.push_back(device.demand);
    ctx.base_rates_hz.push_back(device.request_rate_hz);
  }
  ctx.links = topo::backbone_links(net);
  ctx.link_midpoints.reserve(ctx.links.size());
  ctx.link_latency_ms.reserve(ctx.links.size());
  for (const auto& [u, v] : ctx.links) {
    const topo::Point2D a = net.positions.at(u);
    const topo::Point2D b = net.positions.at(v);
    ctx.link_midpoints.push_back({(a.x + b.x) / 2.0, (a.y + b.y) / 2.0});
    const topo::EdgeProps* props = net.graph.edge_props(u, v);
    TACC_CHECK_INVARIANT(props != nullptr,
                         "backbone_links returned a non-edge");
    ctx.link_latency_ms.push_back(props->latency_ms);
  }
  return ctx;
}

WorkloadProvider::~WorkloadProvider() = default;

namespace {

using Params = std::map<std::string, double, std::less<>>;

/// Looks up `key` in the parsed parameter map, falling back to the default.
/// Collects consumed keys so unknown ones can be rejected at the end.
class ParamReader {
 public:
  explicit ParamReader(const Params& params) : params_(&params) {}

  double get(std::string_view key, double fallback) {
    consumed_.emplace_back(key);
    const auto it = params_->find(key);
    return it == params_->end() ? fallback : it->second;
  }

  /// Every key the provider looked up (its accepted parameter set).
  [[nodiscard]] const std::vector<std::string>& consumed() const noexcept {
    return consumed_;
  }

  /// Throws for any parameter the provider never consumed.
  void reject_unknown(std::string_view provider) const {
    for (const auto& [key, value] : *params_) {
      if (std::find(consumed_.begin(), consumed_.end(), key) ==
          consumed_.end()) {
        std::string valid;
        for (const std::string& name : consumed_) {
          if (!valid.empty()) valid += ", ";
          valid += name;
        }
        throw std::invalid_argument("workload provider '" +
                                    std::string(provider) +
                                    "': unknown parameter '" + key +
                                    "' (valid: " + valid + ")");
      }
    }
  }

 private:
  const Params* params_;
  std::vector<std::string> consumed_;
};

/// Shared provider machinery: the simulated clock, per-device and per-link
/// bookkeeping that keeps emitted streams legal, and emission helpers that
/// stamp times and update that bookkeeping. Subclasses implement
/// fill_step() in terms of the emit_* helpers only.
///
/// Shared parameters (consumed here, valid for every provider):
///   reopt_pause     quiet seconds per demand cycle (default 0 = no pauses).
///                   When > 0, the stream alternates reopt_active_s seconds
///                   of normal emission with reopt_pause seconds of silence —
///                   deterministic convergence windows for the background
///                   re-optimizer to drain its move backlog against a frozen
///                   demand set.
///   reopt_active_s  active seconds per cycle (default 60).
class ProviderBase : public WorkloadProvider {
 public:
  ProviderBase(const ProviderContext& context, std::uint64_t stream,
               ParamReader& params)
      : ctx_(context),
        rng_(util::Rng(context.seed).fork(stream)),
        pause_s_(params.get("reopt_pause", 0.0)),
        active_s_(params.get("reopt_active_s", 60.0)) {
    if (pause_s_ < 0.0 || (pause_s_ > 0.0 && active_s_ <= 0.0)) {
      throw std::invalid_argument(
          "workload provider: reopt_pause must be >= 0 and reopt_active_s "
          "> 0 when pausing");
    }
    const std::size_t n = ctx_.base_devices();
    position_.assign(ctx_.base_positions.begin(), ctx_.base_positions.end());
    demand_ = ctx_.base_demands;
    base_demand_ = ctx_.base_demands;
    rate_ = ctx_.base_rates_hz;
    alive_.assign(n, true);
    live_.resize(n);
    live_slot_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      live_[i] = i;
      live_slot_[i] = i;
    }
    next_id_ = n;
    link_failed_.assign(ctx_.links.size(), false);
    link_latency_ = ctx_.link_latency_ms;
  }

  [[nodiscard]] std::vector<Event> step(double dt_s) final {
    if (!(dt_s > 0.0)) {
      throw std::invalid_argument("WorkloadProvider::step: dt must be > 0");
    }
    std::vector<Event> events;
    // reopt_pause: a step whose start falls inside the quiet part of the
    // [active, pause] cycle emits nothing; the clock still advances, so the
    // stream stays a pure function of (spec, context, dt sequence).
    if (!in_pause()) {
      fill_step(dt_s, events);
    }
    now_ += dt_s;
    return events;
  }

  [[nodiscard]] double now_s() const noexcept final { return now_; }
  [[nodiscard]] std::size_t live_devices() const noexcept final {
    return live_.size();
  }

 protected:
  virtual void fill_step(double dt_s, std::vector<Event>& events) = 0;

  /// True when the simulated clock sits in the quiet part of the
  /// reopt_pause cycle (reopt_active_s of emission, reopt_pause of silence).
  [[nodiscard]] bool in_pause() const noexcept {
    if (pause_s_ <= 0.0) return false;
    const double cycle = active_s_ + pause_s_;
    return std::fmod(now_, cycle) >= active_s_;
  }

  [[nodiscard]] const ProviderContext& context() const noexcept {
    return ctx_;
  }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] double clock() const noexcept { return now_; }

  [[nodiscard]] topo::Point2D random_position() {
    return {rng_.uniform(0.0, ctx_.area_km), rng_.uniform(0.0, ctx_.area_km)};
  }

  /// Normal scatter around `center`, clamped into the area.
  [[nodiscard]] topo::Point2D scatter(topo::Point2D center, double stddev_km) {
    const double x = center.x + rng_.normal(0.0, stddev_km);
    const double y = center.y + rng_.normal(0.0, stddev_km);
    return {std::clamp(x, 0.0, ctx_.area_km), std::clamp(y, 0.0, ctx_.area_km)};
  }

  [[nodiscard]] bool any_live() const noexcept { return !live_.empty(); }
  [[nodiscard]] std::size_t sample_live() {
    TACC_CHECK_INVARIANT(!live_.empty(), "sample_live on empty population");
    return live_[rng_.index(live_.size())];
  }
  [[nodiscard]] bool is_live(std::size_t id) const {
    return id < alive_.size() && alive_[id];
  }
  [[nodiscard]] topo::Point2D position_of(std::size_t id) const {
    return position_.at(id);
  }
  [[nodiscard]] double base_demand_of(std::size_t id) const {
    return base_demand_.at(id);
  }

  /// Mints a new device id and emits its kJoin.
  std::size_t emit_join(std::vector<Event>& events, topo::Point2D position,
                        double rate_hz, double demand) {
    const std::size_t id = next_id_++;
    position_.push_back(position);
    demand_.push_back(demand);
    base_demand_.push_back(demand);
    rate_.push_back(rate_hz);
    alive_.push_back(true);
    live_slot_.push_back(live_.size());
    live_.push_back(id);
    Event event;
    event.kind = EventKind::kJoin;
    event.time_s = now_;
    event.device = id;
    event.position = position;
    event.rate_hz = rate_hz;
    event.demand = demand;
    events.push_back(event);
    return id;
  }

  void emit_leave(std::vector<Event>& events, std::size_t id) {
    TACC_CHECK_INVARIANT(is_live(id), "emit_leave of a dead device");
    alive_[id] = false;
    const std::size_t slot = live_slot_[id];
    live_[slot] = live_.back();
    live_slot_[live_.back()] = slot;
    live_.pop_back();
    Event event;
    event.kind = EventKind::kLeave;
    event.time_s = now_;
    event.device = id;
    events.push_back(event);
  }

  void emit_move(std::vector<Event>& events, std::size_t id,
                 topo::Point2D position) {
    TACC_CHECK_INVARIANT(is_live(id), "emit_move of a dead device");
    position_[id] = position;
    Event event;
    event.kind = EventKind::kMove;
    event.time_s = now_;
    event.device = id;
    event.position = position;
    events.push_back(event);
  }

  void emit_demand_pulse(std::vector<Event>& events, std::size_t id,
                         double demand) {
    TACC_CHECK_INVARIANT(is_live(id), "emit_demand_pulse of a dead device");
    TACC_CHECK_INVARIANT(demand > 0.0, "demand pulse must stay positive");
    demand_[id] = demand;
    Event event;
    event.kind = EventKind::kDemandPulse;
    event.time_s = now_;
    event.device = id;
    event.position = position_[id];
    event.rate_hz = rate_[id];
    event.demand = demand;
    events.push_back(event);
  }

  [[nodiscard]] std::size_t link_count() const noexcept {
    return ctx_.links.size();
  }
  [[nodiscard]] bool link_failed(std::size_t link) const {
    return link_failed_.at(link);
  }

  void emit_link_fail(std::vector<Event>& events, std::size_t link) {
    TACC_CHECK_INVARIANT(!link_failed_.at(link), "failing a failed link");
    link_failed_[link] = true;
    Event event;
    event.kind = EventKind::kLinkFail;
    event.time_s = now_;
    event.link = link;
    events.push_back(event);
  }

  void emit_link_restore(std::vector<Event>& events, std::size_t link) {
    TACC_CHECK_INVARIANT(link_failed_.at(link), "restoring a live link");
    link_failed_[link] = false;
    Event event;
    event.kind = EventKind::kLinkRestore;
    event.time_s = now_;
    event.link = link;
    events.push_back(event);
  }

  void emit_link_reweight(std::vector<Event>& events, std::size_t link,
                          double latency_ms) {
    TACC_CHECK_INVARIANT(!link_failed_.at(link), "reweighting a failed link");
    TACC_CHECK_INVARIANT(latency_ms > 0.0, "latency must stay positive");
    link_latency_[link] = latency_ms;
    Event event;
    event.kind = EventKind::kLinkSetLatency;
    event.time_s = now_;
    event.link = link;
    event.latency_ms = latency_ms;
    events.push_back(event);
  }

  [[nodiscard]] double link_latency(std::size_t link) const {
    return link_latency_.at(link);
  }

 private:
  ProviderContext ctx_;
  util::Rng rng_;
  double pause_s_;   ///< quiet seconds per cycle (0 = pausing off)
  double active_s_;  ///< active seconds per cycle
  double now_ = 0.0;

  // Per device id (grows with joins; never shrinks).
  std::vector<topo::Point2D> position_;
  std::vector<double> demand_;
  std::vector<double> base_demand_;
  std::vector<double> rate_;
  std::vector<bool> alive_;
  // Live ids with O(1) sampling and swap-removal.
  std::vector<std::size_t> live_;
  std::vector<std::size_t> live_slot_;  ///< id -> index in live_
  std::size_t next_id_ = 0;

  std::vector<bool> link_failed_;
  std::vector<double> link_latency_;
};

// ---------------------------------------------------------------------------
// steady: balanced Poisson join/leave keeping the population near its base,
// random-jump moves, occasional demand pulses, optional link flaps.
class SteadyProvider : public ProviderBase {
 public:
  SteadyProvider(const ProviderContext& context, ParamReader& params)
      : ProviderBase(context, /*stream=*/0x5745ADULL, params),
        join_rate_(params.get("join_rate", 1.0)),
        move_rate_(params.get("move_rate", 10.0)),
        pulse_rate_(params.get("pulse_rate", 0.2)),
        link_rate_(params.get("link_rate", 0.0)),
        jump_km_(params.get("jump_km", 1.0)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "steady";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    const std::size_t base = context().base_devices();
    for (std::uint64_t k = rng().poisson(join_rate_ * dt_s); k > 0; --k) {
      const double rate = rng().uniform(2.0, 10.0);
      (void)emit_join(events, random_position(), rate, rate);
    }
    for (std::uint64_t k = rng().poisson(join_rate_ * dt_s); k > 0; --k) {
      // Leaves match the join rate but stop at half the base population so
      // the stream never drains the cluster.
      if (live_devices() <= std::max<std::size_t>(base / 2, 1)) break;
      emit_leave(events, sample_live());
    }
    for (std::uint64_t k = rng().poisson(move_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_move(events, id, scatter(position_of(id), jump_km_));
    }
    for (std::uint64_t k = rng().poisson(pulse_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_demand_pulse(events, id,
                        base_demand_of(id) * rng().uniform(0.5, 3.0));
    }
    if (link_count() > 0) {
      for (std::uint64_t k = rng().poisson(link_rate_ * dt_s); k > 0; --k) {
        const std::size_t link = rng().index(link_count());
        if (link_failed(link)) {
          emit_link_restore(events, link);
        } else if (rng().bernoulli(1.0 / 3.0)) {
          emit_link_reweight(events, link,
                             link_latency(link) * rng().uniform(0.5, 2.0));
        } else {
          emit_link_fail(events, link);
        }
      }
    }
  }

 private:
  double join_rate_;
  double move_rate_;
  double pulse_rate_;
  double link_rate_;
  double jump_km_;
};

// ---------------------------------------------------------------------------
// diurnal: join/leave rates modulated in antiphase by a sine wave, so the
// population breathes with a configurable period (traffic waves).
class DiurnalProvider : public ProviderBase {
 public:
  DiurnalProvider(const ProviderContext& context, ParamReader& params)
      : ProviderBase(context, /*stream=*/0xD1114AULL, params),
        period_s_(params.get("period_s", 600.0)),
        amplitude_(std::clamp(params.get("amplitude", 0.8), 0.0, 1.0)),
        join_rate_(params.get("join_rate", 2.0)),
        move_rate_(params.get("move_rate", 10.0)),
        pulse_rate_(params.get("pulse_rate", 0.2)) {
    if (period_s_ <= 0.0) {
      throw std::invalid_argument("diurnal: period_s must be > 0");
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "diurnal";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    const double phase =
        std::sin(2.0 * std::numbers::pi * clock() / period_s_);
    const double wave_up = 1.0 + amplitude_ * phase;    // daytime: arrivals
    const double wave_down = 1.0 - amplitude_ * phase;  // nighttime: churn-off
    const std::size_t base = context().base_devices();
    for (std::uint64_t k = rng().poisson(join_rate_ * wave_up * dt_s); k > 0;
         --k) {
      const double rate = rng().uniform(2.0, 10.0);
      (void)emit_join(events, random_position(), rate, rate);
    }
    for (std::uint64_t k = rng().poisson(join_rate_ * wave_down * dt_s);
         k > 0; --k) {
      if (live_devices() <= std::max<std::size_t>(base / 2, 1)) break;
      emit_leave(events, sample_live());
    }
    for (std::uint64_t k = rng().poisson(move_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_move(events, id, scatter(position_of(id), 1.0));
    }
    for (std::uint64_t k = rng().poisson(pulse_rate_ * wave_up * dt_s);
         k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_demand_pulse(events, id,
                        base_demand_of(id) * rng().uniform(0.5, 3.0));
    }
  }

 private:
  double period_s_;
  double amplitude_;
  double join_rate_;
  double move_rate_;
  double pulse_rate_;
};

// ---------------------------------------------------------------------------
// flash_crowd: a steady background plus periodic bursts — joins arrive at
// burst_rate clustered around a per-burst hotspot for burst_s seconds, then
// the cohort drains over drain_s.
class FlashCrowdProvider : public ProviderBase {
 public:
  FlashCrowdProvider(const ProviderContext& context, ParamReader& params)
      : ProviderBase(context, /*stream=*/0xF1A54ULL, params),
        background_rate_(params.get("background_rate", 0.5)),
        move_rate_(params.get("move_rate", 10.0)),
        burst_every_s_(params.get("burst_every_s", 120.0)),
        burst_s_(params.get("burst_s", 20.0)),
        burst_rate_(params.get("burst_rate", 20.0)),
        burst_stddev_km_(params.get("burst_stddev_km", 0.5)),
        drain_s_(params.get("drain_s", 40.0)) {
    if (burst_every_s_ <= 0.0 || burst_s_ <= 0.0 || drain_s_ <= 0.0) {
      throw std::invalid_argument(
          "flash_crowd: burst_every_s/burst_s/drain_s must be > 0");
    }
    next_burst_s_ = burst_every_s_;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flash_crowd";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    // Background churn, same shape as steady at a lower rate.
    const std::size_t base = context().base_devices();
    for (std::uint64_t k = rng().poisson(background_rate_ * dt_s); k > 0;
         --k) {
      const double rate = rng().uniform(2.0, 10.0);
      (void)emit_join(events, random_position(), rate, rate);
    }
    for (std::uint64_t k = rng().poisson(background_rate_ * dt_s); k > 0;
         --k) {
      if (live_devices() <= std::max<std::size_t>(base / 2, 1)) break;
      emit_leave(events, sample_live());
    }
    for (std::uint64_t k = rng().poisson(move_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_move(events, id, scatter(position_of(id), 1.0));
    }

    // Burst lifecycle.
    if (!bursting_ && clock() >= next_burst_s_) {
      bursting_ = true;
      burst_end_s_ = clock() + burst_s_;
      center_ = random_position();
      next_burst_s_ += burst_every_s_;
    }
    if (bursting_) {
      for (std::uint64_t k = rng().poisson(burst_rate_ * dt_s); k > 0; --k) {
        const double rate = rng().uniform(4.0, 12.0);
        cohort_.push_back(
            emit_join(events, scatter(center_, burst_stddev_km_), rate, rate));
      }
      if (clock() >= burst_end_s_) bursting_ = false;
    }
    if (!bursting_ && !cohort_.empty()) {
      // Drain the cohort at a rate that empties it in ~drain_s.
      const double leave_rate =
          std::max(1.0, static_cast<double>(cohort_.size()) / drain_s_);
      for (std::uint64_t k = rng().poisson(leave_rate * dt_s);
           k > 0 && !cohort_.empty(); --k) {
        const std::size_t pick = rng().index(cohort_.size());
        const std::size_t id = cohort_[pick];
        cohort_[pick] = cohort_.back();
        cohort_.pop_back();
        if (is_live(id)) emit_leave(events, id);
      }
    }
  }

 private:
  double background_rate_;
  double move_rate_;
  double burst_every_s_;
  double burst_s_;
  double burst_rate_;
  double burst_stddev_km_;
  double drain_s_;

  bool bursting_ = false;
  double next_burst_s_ = 0.0;
  double burst_end_s_ = 0.0;
  topo::Point2D center_{};
  std::vector<std::size_t> cohort_;
};

// ---------------------------------------------------------------------------
// mobility_trace: wraps the random-waypoint model over the base devices;
// emits only kMove events (no churn).
class MobilityTraceProvider : public ProviderBase {
 public:
  MobilityTraceProvider(const ProviderContext& context, ParamReader& params)
      : ProviderBase(context, /*stream=*/0x40B111ULL, params) {
    MobilityParams mobility;
    mobility.area_km = context.area_km;
    mobility.mobile_fraction = params.get("mobile_fraction", 0.6);
    mobility.speed_min_km_s = params.get("speed_min_km_s", 0.002);
    mobility.speed_max_km_s = params.get("speed_max_km_s", 0.014);
    mobility.pause_s_mean = params.get("pause_s_mean", 10.0);
    std::vector<IotDevice> devices(context.base_devices());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      devices[i].position = context.base_positions[i];
    }
    model_.emplace(devices, mobility, rng().fork(1));
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mobility_trace";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    for (const std::size_t mover : model_->advance(dt_s)) {
      emit_move(events, mover, model_->position(mover));
    }
  }

 private:
  std::optional<RandomWaypointModel> model_;
};

// ---------------------------------------------------------------------------
// regional_link_failure: correlated outages. Every outage_every_s, an
// epicenter is chosen at a random backbone link and every live link whose
// midpoint lies within radius_km fails together; the region restores
// outage_s later (reverse order). A background reweight rate models routing
// cost drift on the surviving links.
class RegionalLinkFailureProvider : public ProviderBase {
 public:
  RegionalLinkFailureProvider(const ProviderContext& context,
                              ParamReader& params)
      : ProviderBase(context, /*stream=*/0x4E610ULL, params),
        outage_every_s_(params.get("outage_every_s", 60.0)),
        outage_s_(params.get("outage_s", 20.0)),
        radius_km_(params.get("radius_km", 2.0)),
        reweight_rate_(params.get("reweight_rate", 0.5)) {
    if (outage_every_s_ <= 0.0 || outage_s_ <= 0.0) {
      throw std::invalid_argument(
          "regional_link_failure: outage_every_s/outage_s must be > 0");
    }
    if (context.links.empty()) {
      throw std::invalid_argument(
          "regional_link_failure: scenario has no backbone links");
    }
    next_outage_s_ = outage_every_s_;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "regional_link_failure";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    if (outage_.empty() && clock() >= next_outage_s_) {
      // Epicenter on a random link midpoint: guarantees a non-empty region.
      const auto& midpoints = context().link_midpoints;
      const topo::Point2D epicenter = midpoints[rng().index(midpoints.size())];
      for (std::size_t link = 0; link < link_count(); ++link) {
        if (!link_failed(link) &&
            topo::euclidean_distance(midpoints[link], epicenter) <=
                radius_km_) {
          emit_link_fail(events, link);
          outage_.push_back(link);
        }
      }
      restore_at_s_ = clock() + outage_s_;
      next_outage_s_ += outage_every_s_;
    } else if (!outage_.empty() && clock() >= restore_at_s_) {
      for (auto it = outage_.rbegin(); it != outage_.rend(); ++it) {
        emit_link_restore(events, *it);
      }
      outage_.clear();
    }

    for (std::uint64_t k = rng().poisson(reweight_rate_ * dt_s); k > 0; --k) {
      const std::size_t link = rng().index(link_count());
      if (!link_failed(link)) {
        emit_link_reweight(events, link,
                           link_latency(link) * rng().uniform(0.5, 2.0));
      }
    }
  }

 private:
  double outage_every_s_;
  double outage_s_;
  double radius_km_;
  double reweight_rate_;

  double next_outage_s_ = 0.0;
  double restore_at_s_ = 0.0;
  std::vector<std::size_t> outage_;  ///< links failed by the current outage
};

// ---------------------------------------------------------------------------
// hotspot_adversary: demand concentrates on one shifting region — clustered
// joins, existing devices pulled toward the hotspot, and demand pulses that
// inflate nearby devices. The hotspot re-picks every shift_every_s, chasing
// whatever configuration the solver just settled on.
class HotspotAdversaryProvider : public ProviderBase {
 public:
  HotspotAdversaryProvider(const ProviderContext& context, ParamReader& params)
      : ProviderBase(context, /*stream=*/0xAD5A17ULL, params),
        shift_every_s_(params.get("shift_every_s", 60.0)),
        join_rate_(params.get("join_rate", 2.0)),
        move_rate_(params.get("move_rate", 15.0)),
        pulse_rate_(params.get("pulse_rate", 1.0)),
        stddev_km_(params.get("stddev_km", 0.4)),
        pulse_factor_max_(params.get("pulse_factor_max", 5.0)) {
    if (shift_every_s_ <= 0.0) {
      throw std::invalid_argument(
          "hotspot_adversary: shift_every_s must be > 0");
    }
    hotspot_ = random_position();
    next_shift_s_ = shift_every_s_;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hotspot_adversary";
  }

 protected:
  void fill_step(double dt_s, std::vector<Event>& events) override {
    if (clock() >= next_shift_s_) {
      hotspot_ = random_position();
      next_shift_s_ += shift_every_s_;
    }
    const std::size_t base = context().base_devices();
    for (std::uint64_t k = rng().poisson(join_rate_ * dt_s); k > 0; --k) {
      const double rate = rng().uniform(4.0, 12.0);
      (void)emit_join(events, scatter(hotspot_, stddev_km_), rate, rate);
    }
    for (std::uint64_t k = rng().poisson(join_rate_ * dt_s); k > 0; --k) {
      if (live_devices() <= std::max<std::size_t>(base / 2, 1)) break;
      emit_leave(events, sample_live());
    }
    for (std::uint64_t k = rng().poisson(move_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      // Pull a random device toward the hotspot.
      emit_move(events, sample_live(), scatter(hotspot_, stddev_km_));
    }
    for (std::uint64_t k = rng().poisson(pulse_rate_ * dt_s); k > 0; --k) {
      if (!any_live()) break;
      const std::size_t id = sample_live();
      emit_demand_pulse(
          events, id,
          base_demand_of(id) * rng().uniform(2.0, pulse_factor_max_));
    }
  }

 private:
  double shift_every_s_;
  double join_rate_;
  double move_rate_;
  double pulse_rate_;
  double stddev_km_;
  double pulse_factor_max_;

  topo::Point2D hotspot_{};
  double next_shift_s_ = 0.0;
};

Params parse_params(std::string_view spec, std::string_view name) {
  Params params;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("workload provider '" + std::string(name) +
                                  "': malformed parameter '" +
                                  std::string(item) + "' (want key=value)");
    }
    const std::string key(item.substr(0, eq));
    const std::string text(item.substr(eq + 1));
    std::size_t parsed = 0;
    double value = 0.0;
    try {
      value = std::stod(text, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != text.size() || text.empty()) {
      throw std::invalid_argument("workload provider '" + std::string(name) +
                                  "': parameter '" + key +
                                  "' is not a number: '" + text + "'");
    }
    params[key] = value;
  }
  return params;
}

/// Dispatch shared by make_provider and provider_param_keys; throws for an
/// unknown name.
std::unique_ptr<WorkloadProvider> make_named(std::string_view name,
                                             const ProviderContext& context,
                                             ParamReader& reader) {
  if (name == "steady") {
    return std::make_unique<SteadyProvider>(context, reader);
  }
  if (name == "diurnal") {
    return std::make_unique<DiurnalProvider>(context, reader);
  }
  if (name == "flash_crowd") {
    return std::make_unique<FlashCrowdProvider>(context, reader);
  }
  if (name == "mobility_trace") {
    return std::make_unique<MobilityTraceProvider>(context, reader);
  }
  if (name == "regional_link_failure") {
    return std::make_unique<RegionalLinkFailureProvider>(context, reader);
  }
  if (name == "hotspot_adversary") {
    return std::make_unique<HotspotAdversaryProvider>(context, reader);
  }
  std::string known;
  for (const std::string_view n : provider_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown workload provider '" +
                              std::string(name) + "' (known: " + known + ")");
}

}  // namespace

std::vector<std::string_view> provider_names() {
  return {"steady",         "diurnal",
          "flash_crowd",    "mobility_trace",
          "regional_link_failure", "hotspot_adversary"};
}

std::unique_ptr<WorkloadProvider> make_provider(
    std::string_view spec, const ProviderContext& context) {
  const std::size_t comma = spec.find(',');
  const std::string_view name = spec.substr(0, comma);
  const std::string_view rest =
      comma == std::string_view::npos ? std::string_view{}
                                      : spec.substr(comma + 1);
  const Params params = parse_params(rest, name);
  ParamReader reader(params);
  std::unique_ptr<WorkloadProvider> provider =
      make_named(name, context, reader);
  reader.reject_unknown(name);
  return provider;
}

std::vector<std::string> provider_param_keys(std::string_view name) {
  // Probe construction against a minimal synthetic context: the reader
  // records every key the provider's constructor looks up, which IS its
  // accepted parameter set (providers read all their knobs up front).
  ProviderContext probe;
  probe.base_positions = {{0.0, 0.0}, {1.0, 1.0}};
  probe.base_demands = {1.0, 1.0};
  probe.base_rates_hz = {5.0, 5.0};
  probe.links = {{0, 1}};
  probe.link_midpoints = {{0.5, 0.5}};
  probe.link_latency_ms = {1.0};
  const Params params;
  ParamReader reader(params);
  (void)make_named(name, probe, reader);
  return reader.consumed();
}

}  // namespace tacc::workload
