// Device mobility: the random-waypoint model.
//
// Each device walks toward a uniformly chosen waypoint at its own speed,
// pauses, then picks the next waypoint. advance(dt) moves every device and
// reports which ones moved — the driver for periodic-reconfiguration
// experiments (a static assignment degrades as devices drift away from
// their servers; see bench_a5_resilience / examples).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/geometry.hpp"
#include "util/rng.hpp"
#include "workload/devices.hpp"

namespace tacc::workload {

struct MobilityParams {
  double area_km = 10.0;
  double speed_min_km_s = 0.002;  ///< ~7 km/h pedestrian
  double speed_max_km_s = 0.014;  ///< ~50 km/h vehicle
  double pause_s_mean = 10.0;     ///< exponential pause at each waypoint
  /// Fraction of devices that move at all (sensors are often static).
  double mobile_fraction = 0.5;
};

class RandomWaypointModel {
 public:
  /// Initializes per-device state from the devices' current positions.
  RandomWaypointModel(const std::vector<IotDevice>& devices,
                      const MobilityParams& params, util::Rng rng);

  /// Advances time by dt seconds; updates internal positions. Returns the
  /// indices of devices whose position changed.
  std::vector<std::size_t> advance(double dt_s);

  [[nodiscard]] topo::Point2D position(std::size_t device) const {
    return positions_.at(device);
  }
  [[nodiscard]] std::size_t device_count() const noexcept {
    return positions_.size();
  }
  [[nodiscard]] bool is_mobile(std::size_t device) const {
    return mobile_.at(device);
  }

 private:
  void pick_waypoint(std::size_t device);

  MobilityParams params_;
  util::Rng rng_;
  std::vector<topo::Point2D> positions_;
  std::vector<topo::Point2D> waypoints_;
  std::vector<double> speeds_km_s_;
  std::vector<double> pause_remaining_s_;
  std::vector<bool> mobile_;
};

}  // namespace tacc::workload
