#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tacc::workload {

std::string_view to_string(PlacementPattern pattern) noexcept {
  switch (pattern) {
    case PlacementPattern::kUniform:
      return "uniform";
    case PlacementPattern::kClustered:
      return "clustered";
  }
  return "?";
}

namespace {

[[nodiscard]] std::vector<topo::Point2D> sample_hotspots(
    const WorkloadParams& params, util::Rng& rng) {
  std::vector<topo::Point2D> hotspots(std::max<std::size_t>(
      1, params.hotspot_count));
  for (auto& h : hotspots) {
    h = {rng.uniform(0.0, params.area_km), rng.uniform(0.0, params.area_km)};
  }
  return hotspots;
}

[[nodiscard]] topo::Point2D sample_position(
    const WorkloadParams& params, const std::vector<topo::Point2D>& hotspots,
    util::Rng& rng) {
  if (params.iot_placement == PlacementPattern::kUniform) {
    return {rng.uniform(0.0, params.area_km),
            rng.uniform(0.0, params.area_km)};
  }
  const topo::Point2D& centre = hotspots[rng.index(hotspots.size())];
  return {std::clamp(rng.normal(centre.x, params.hotspot_stddev_km), 0.0,
                     params.area_km),
          std::clamp(rng.normal(centre.y, params.hotspot_stddev_km), 0.0,
                     params.area_km)};
}

}  // namespace

Workload generate_workload(const WorkloadParams& params, util::Rng& rng) {
  if (params.iot_count == 0 || params.edge_count == 0) {
    throw std::invalid_argument(
        "generate_workload: need at least one IoT device and edge server");
  }
  if (!(params.load_factor > 0.0)) {
    throw std::invalid_argument("generate_workload: load_factor must be > 0");
  }

  Workload workload;
  const auto hotspots = sample_hotspots(params, rng);

  workload.iot.reserve(params.iot_count);
  for (std::size_t i = 0; i < params.iot_count; ++i) {
    IotDevice device;
    device.position = sample_position(params, hotspots, rng);
    // Lognormal heterogeneity with mean preserved: exp(μ + σZ) where
    // μ = ln(mean) - σ²/2.
    const double mu =
        std::log(params.rate_mean_hz) -
        params.rate_sigma * params.rate_sigma / 2.0;
    device.request_rate_hz =
        std::exp(mu + params.rate_sigma * rng.normal());
    device.message_size_kb =
        std::max(0.5, rng.normal(params.message_size_mean_kb,
                                 params.message_size_mean_kb / 4.0));
    device.deadline_ms =
        rng.uniform(params.deadline_min_ms, params.deadline_max_ms);
    device.demand = device.request_rate_hz;
    if (params.demand_zipf_exponent > 0.0) {
      // Popularity skew: rank-r devices get 1/r^s extra weight (normalized
      // to keep the mean roughly unchanged by scaling below).
      const auto rank =
          rng.zipf(params.iot_count, params.demand_zipf_exponent);
      device.demand *=
          1.0 / std::pow(static_cast<double>(rank), 0.25);
    }
    workload.iot.push_back(device);
  }

  workload.edges.reserve(params.edge_count);
  for (std::size_t j = 0; j < params.edge_count; ++j) {
    EdgeServer server;
    if (params.colocate_edges_with_hotspots && j < hotspots.size()) {
      server.position = hotspots[j];
    } else {
      server.position = {rng.uniform(0.0, params.area_km),
                         rng.uniform(0.0, params.area_km)};
    }
    workload.edges.push_back(server);
  }

  // Capacities: either normalized to the requested load factor (assignment
  // studies: ρ is the controlled variable) or fixed per server
  // (provisioning studies: capacity scales with the server count).
  const double total_capacity =
      params.fixed_capacity_per_server > 0.0
          ? params.fixed_capacity_per_server *
                static_cast<double>(params.edge_count)
          : workload.total_demand() / params.load_factor;
  std::vector<double> shares(params.edge_count, 1.0);
  if (params.heterogeneous_capacity) {
    for (auto& share : shares) share = rng.uniform(0.5, 1.5);
  }
  const double share_sum =
      std::accumulate(shares.begin(), shares.end(), 0.0);
  for (std::size_t j = 0; j < params.edge_count; ++j) {
    workload.edges[j].capacity = total_capacity * shares[j] / share_sum;
  }
  return workload;
}

}  // namespace tacc::workload
