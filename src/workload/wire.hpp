// Renders WorkloadProvider events into taccd wire-protocol lines, so the
// exact same deterministic stream a bench applies in-process can be replayed
// against a live daemon (`tacc_client --stdin < stream.txt`).
//
// The adapter's job is index translation. Provider events carry
// provider-scoped device ids; taccd's MOVE/LEAVE verbs take DynamicCluster
// slot indices, which the daemon assigns on JOIN. Reading each JOIN response
// would serialize the replay, so the adapter *predicts* the indices instead
// by mirroring DynamicCluster's slot allocator exactly: base devices occupy
// slots 0..n-1, a join recycles the most recently freed slot (LIFO), else
// mints slot == slots_ever. Pipelined replay then needs no responses at all.
//
// kDemandPulse has no wire verb; it renders as LEAVE + JOIN at the same
// position with the new demand. LIFO recycling guarantees the rejoining
// device lands back in the slot it just left, so later MOVE/LEAVE lines for
// it stay valid — consumers applying events directly must do the same
// leave()+join() dance to agree (see bench_m2_churn).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/provider.hpp"

namespace tacc::workload {

/// Stateful event→wire-line renderer for one taccd session. Feed it every
/// event of the stream in order; skipping events desynchronizes the slot
/// mirror (the adapter cannot know about joins it never saw).
class WireAdapter {
 public:
  /// `context` supplies the base population (slots 0..n-1) and the link
  /// index → router endpoints mapping; `session` names the taccd session.
  WireAdapter(const ProviderContext& context, std::string session);

  /// The CONFIGURE line that creates the adapter's session with `iot`
  /// devices and `edge` servers from `preset` (must match the scenario the
  /// provider context was built from, or replayed indices are meaningless).
  [[nodiscard]] std::string configure_line(std::size_t iot, std::size_t edge,
                                           std::uint64_t seed,
                                           std::string_view algo,
                                           std::string_view preset) const;

  /// Wire lines for one event, in order (kDemandPulse yields two). Updates
  /// the slot mirror.
  [[nodiscard]] std::vector<std::string> render(const Event& event);

  /// Renders a whole step's worth of events.
  [[nodiscard]] std::vector<std::string> render(
      const std::vector<Event>& events);

  /// Predicted DynamicCluster slot of a live provider device id. Throws
  /// std::out_of_range for ids the adapter has not seen or that have left.
  [[nodiscard]] std::size_t slot_of(std::size_t device) const;

  /// Slots ever allocated by the mirror (== DynamicCluster::
  /// device_slot_count() after replay). Peak population, not arrivals.
  [[nodiscard]] std::size_t slots_ever() const noexcept { return slots_; }

 private:
  [[nodiscard]] std::size_t allocate_slot();

  ProviderContext ctx_;
  std::string session_;
  std::vector<std::size_t> slot_of_;  ///< provider id -> slot (live only)
  std::vector<bool> live_;            ///< provider id -> currently joined
  std::vector<std::size_t> free_slots_;  ///< LIFO, mirrors DynamicCluster
  std::size_t slots_ = 0;                ///< slots ever allocated
};

/// Formats a double for the wire with full round-trip precision (%.17g), so
/// a replayed stream reproduces bit-identical positions and demands.
[[nodiscard]] std::string wire_double(double value);

}  // namespace tacc::workload
