// Synthetic workload generation.
//
// Device positions follow either a uniform scatter or a hotspot mixture
// (IoT deployments cluster around points of interest). Demands are
// heterogeneous (lognormal around the mean rate, optionally Zipf-skewed),
// and server capacities are scaled so that the aggregate load factor
// ρ = Σ demand / Σ capacity hits a requested target — the knob that the F3
// experiment sweeps.
#pragma once

#include <string_view>

#include "util/rng.hpp"
#include "workload/devices.hpp"

namespace tacc::workload {

enum class PlacementPattern {
  kUniform,   ///< i.i.d. uniform over the area
  kClustered, ///< Gaussian hotspots (urban points of interest)
};

[[nodiscard]] std::string_view to_string(PlacementPattern pattern) noexcept;

struct WorkloadParams {
  std::size_t iot_count = 500;
  std::size_t edge_count = 20;
  double area_km = 10.0;

  PlacementPattern iot_placement = PlacementPattern::kClustered;
  std::size_t hotspot_count = 5;
  double hotspot_stddev_km = 0.8;
  /// Edge servers are placed uniformly unless colocate_edges_with_hotspots.
  bool colocate_edges_with_hotspots = false;

  double rate_mean_hz = 10.0;
  /// Lognormal sigma of per-device rates (0 = homogeneous).
  double rate_sigma = 0.5;
  /// Zipf exponent mixing a popularity skew into demands (0 = off).
  double demand_zipf_exponent = 0.0;

  double message_size_mean_kb = 4.0;
  double deadline_min_ms = 10.0;
  double deadline_max_ms = 50.0;

  /// Target ρ = Σ demand / Σ capacity; capacities are scaled to match.
  /// Ignored when fixed_capacity_per_server > 0.
  double load_factor = 0.7;
  /// If true, capacities vary ×[0.5, 1.5] around the even share.
  bool heterogeneous_capacity = true;
  /// Provisioning mode: give every server this capacity (mean; the
  /// heterogeneity factor still applies) instead of normalizing total
  /// capacity to load_factor. With this set, adding servers adds capacity —
  /// the framing capacity-planning studies need; the realized ρ then falls
  /// with the server count.
  double fixed_capacity_per_server = 0.0;
};

/// Generates a workload; deterministic in (params, rng state).
/// Throws std::invalid_argument for zero devices/servers or ρ <= 0.
[[nodiscard]] Workload generate_workload(const WorkloadParams& params,
                                         util::Rng& rng);

}  // namespace tacc::workload
