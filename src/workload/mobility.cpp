#include "workload/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace tacc::workload {

RandomWaypointModel::RandomWaypointModel(const std::vector<IotDevice>& devices,
                                         const MobilityParams& params,
                                         util::Rng rng)
    : params_(params), rng_(rng) {
  positions_.reserve(devices.size());
  for (const auto& device : devices) positions_.push_back(device.position);
  waypoints_ = positions_;
  speeds_km_s_.resize(devices.size());
  pause_remaining_s_.assign(devices.size(), 0.0);
  mobile_.resize(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    mobile_[i] = rng_.bernoulli(params_.mobile_fraction);
    speeds_km_s_[i] =
        rng_.uniform(params_.speed_min_km_s, params_.speed_max_km_s);
    if (mobile_[i]) pick_waypoint(i);
  }
}

void RandomWaypointModel::pick_waypoint(std::size_t device) {
  waypoints_[device] = {rng_.uniform(0.0, params_.area_km),
                        rng_.uniform(0.0, params_.area_km)};
}

std::vector<std::size_t> RandomWaypointModel::advance(double dt_s) {
  std::vector<std::size_t> moved;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (!mobile_[i] || dt_s <= 0.0) continue;
    double remaining = dt_s;
    bool changed = false;
    while (remaining > 0.0) {
      if (pause_remaining_s_[i] > 0.0) {
        const double pause = std::min(pause_remaining_s_[i], remaining);
        pause_remaining_s_[i] -= pause;
        remaining -= pause;
        continue;
      }
      const double dx = waypoints_[i].x - positions_[i].x;
      const double dy = waypoints_[i].y - positions_[i].y;
      const double distance = std::sqrt(dx * dx + dy * dy);
      const double reach = speeds_km_s_[i] * remaining;
      if (reach >= distance) {
        // Arrive, pause, and pick the next waypoint.
        positions_[i] = waypoints_[i];
        remaining -= speeds_km_s_[i] > 0.0
                         ? distance / speeds_km_s_[i]
                         : remaining;
        pause_remaining_s_[i] =
            rng_.exponential(1.0 / std::max(1e-9, params_.pause_s_mean));
        pick_waypoint(i);
        changed = changed || distance > 0.0;
      } else {
        positions_[i].x += dx / distance * reach;
        positions_[i].y += dy / distance * reach;
        remaining = 0.0;
        changed = true;
      }
    }
    if (changed) moved.push_back(i);
  }
  return moved;
}

}  // namespace tacc::workload
