#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tacc::util {

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::to_string(std::string_view title) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  }();
  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  os << rule << render_row(columns_) << rule;
  for (const auto& row : rows_) os << render_row(row);
  os << rule;
  return os.str();
}

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "-";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace tacc::util
