// Clang Thread Safety Analysis annotations (compile-time lock discipline).
//
// These macros attach the locking contract to the code itself so a clang
// build with -Wthread-safety -Werror proves it: every field that a mutex
// guards is tagged TACC_GUARDED_BY, every function that assumes a held lock
// is tagged TACC_REQUIRES, and the tacc::Mutex wrappers (util/mutex.hpp)
// carry the acquire/release annotations the analysis tracks. On any other
// compiler (the default gcc build) every macro expands to nothing — the
// annotations are free documentation there and a hard gate under the CI
// `thread-safety` job.
//
// Conventions used across the repo (see DESIGN.md "Locking discipline"):
//  - Guard with the exact expression callers lock: a member mutex for
//    internally locked classes, a `tacc::Mutex* const` back-pointer for
//    state guarded by an *owner's* mutex (service::Session — see
//    Mutex::assert_held() for how lookups re-join the analysis).
//  - TACC_REQUIRES on private _locked helpers instead of re-locking.
//  - TACC_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//    justification comment (lint rule R5 discipline applies in spirit).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TACC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TACC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define TACC_CAPABILITY(x) TACC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define TACC_SCOPED_CAPABILITY TACC_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define TACC_GUARDED_BY(x) TACC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is not covered — pair with TACC_GUARDED_BY if both).
#define TACC_PT_GUARDED_BY(x) TACC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention documentation the
/// analysis checks when both mutexes are annotated).
#define TACC_ACQUIRED_BEFORE(...) \
  TACC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TACC_ACQUIRED_AFTER(...) \
  TACC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively) when calling.
#define TACC_REQUIRES(...) \
  TACC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TACC_REQUIRES_SHARED(...) \
  TACC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define TACC_ACQUIRE(...) \
  TACC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TACC_ACQUIRE_SHARED(...) \
  TACC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define TACC_RELEASE(...) \
  TACC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TACC_RELEASE_SHARED(...) \
  TACC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TACC_RELEASE_GENERIC(...) \
  TACC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; holds the capability iff it returned `b`.
#define TACC_TRY_ACQUIRE(...) \
  TACC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TACC_TRY_ACQUIRE_SHARED(...) \
  TACC_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy documentation).
#define TACC_EXCLUDES(...) TACC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis only) that the capability is held — the escape
/// hatch for facts the checker cannot derive, e.g. an aliased owner mutex.
#define TACC_ASSERT_CAPABILITY(x) \
  TACC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability `x` (lets accessors
/// participate in guard expressions).
#define TACC_RETURN_CAPABILITY(x) TACC_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Last resort; justify in a
/// comment at the use site.
#define TACC_NO_THREAD_SAFETY_ANALYSIS \
  TACC_THREAD_ANNOTATION(no_thread_safety_analysis)
