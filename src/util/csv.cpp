#include "util/csv.hpp"

namespace tacc::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_strings(const std::vector<std::string_view>& cells) {
  bool first = true;
  for (std::string_view cell : cells) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << csv_escape(cell);
  }
  *out_ << '\n';
  ++rows_;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace tacc::util
