// Leveled logging to stderr. Intentionally tiny: the library is a batch
// algorithm/simulation toolkit, so structured logging frameworks are
// overkill; benches raise the level to keep output parseable.
#pragma once

#include <sstream>
#include <string_view>

namespace tacc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kWarn so library users see only
/// problems unless they opt in.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void emit(LogLevel level, std::string_view message);
}

template <typename... Parts>
void log(LogLevel level, const Parts&... parts) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  detail::emit(level, os.str());
}

template <typename... Parts>
void log_debug(const Parts&... parts) {
  log(LogLevel::kDebug, parts...);
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  log(LogLevel::kInfo, parts...);
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  log(LogLevel::kWarn, parts...);
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  log(LogLevel::kError, parts...);
}

}  // namespace tacc::util
