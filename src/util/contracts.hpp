// Runtime contracts: TACC_ASSERT / TACC_REQUIRE / TACC_ENSURE macros plus
// the always-on TACC_CHECK_INVARIANT used by the deep check_invariants()
// validators.
//
// The three contract macros compile to nothing unless the build defines
// TACC_ENABLE_CONTRACTS (the CMake option of the same name; ON by default
// for Debug builds, OFF for Release hot paths). When compiled out the
// condition is still type-checked via sizeof but never evaluated, so a
// contract can never change Release behavior. TACC_CHECK_INVARIANT is NOT
// gated: the validators it backs are cold-path, explicitly invoked
// (tests, sampled bench epochs), and must work in every build type.
//
// What fires on violation is pluggable per process: the default handler
// logs and aborts (the right behavior inside taccd — a broken invariant
// means derived state is lies), while tests install throw_handler via
// ScopedFailureHandler and assert on the ContractViolation. A handler that
// returns is followed by std::abort(), so a violated contract never falls
// through into the code it guards.
//
// Conditions containing unparenthesized commas (template arguments, braced
// initializers) must be wrapped in parentheses, as with standard assert.
#pragma once

#include <stdexcept>
#include <string>

namespace tacc::contracts {

/// Everything a failure handler learns about one violated contract.
struct Violation {
  const char* kind = "";       ///< "REQUIRE", "ENSURE", "ASSERT", "INVARIANT"
  const char* condition = "";  ///< stringified condition text
  const char* file = "";
  int line = 0;
  std::string message;  ///< optional caller-supplied context
};

/// Human-readable one-line rendering of a violation.
[[nodiscard]] std::string describe(const Violation& violation);

/// Thrown by throw_handler; what tests catch.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const Violation& violation)
      : std::logic_error(describe(violation)), kind_(violation.kind) {}

  [[nodiscard]] const char* kind() const noexcept { return kind_; }

 private:
  const char* kind_;
};

using FailureHandler = void (*)(const Violation&);

/// Default: log the violation at error level and std::abort(). Right for
/// daemons, where continuing past a broken invariant serves corrupt state.
void abort_handler(const Violation& violation);

/// Throws ContractViolation. Right for tests, which assert on the throw.
void throw_handler(const Violation& violation);

/// Installs `handler` process-wide and returns the previous one. Passing
/// nullptr restores abort_handler.
FailureHandler set_failure_handler(FailureHandler handler) noexcept;
[[nodiscard]] FailureHandler failure_handler() noexcept;

/// RAII handler swap for test scopes.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(set_failure_handler(handler)) {}
  ~ScopedFailureHandler() { set_failure_handler(previous_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

/// Invokes the installed handler; if it returns, aborts. Never returns.
[[noreturn]] void fail(const char* kind, const char* condition,
                       const char* file, int line, std::string message = {});

#ifdef TACC_ENABLE_CONTRACTS
#define TACC_CONTRACTS_ENABLED 1
#else
#define TACC_CONTRACTS_ENABLED 0
#endif

/// True when the contract macros are compiled in (build-time constant).
[[nodiscard]] constexpr bool enabled() noexcept {
  return TACC_CONTRACTS_ENABLED != 0;
}

}  // namespace tacc::contracts

// Always-on check: backs check_invariants() validators and other cold-path
// verification that must hold in every build type.
#define TACC_CHECK_INVARIANT(cond, ...)                              \
  ((cond) ? (void)0                                                  \
          : ::tacc::contracts::fail("INVARIANT", #cond, __FILE__,    \
                                    __LINE__ __VA_OPT__(, ) __VA_ARGS__))

#if TACC_CONTRACTS_ENABLED
#define TACC_CONTRACT_IMPL_(kind, cond, ...)                   \
  ((cond) ? (void)0                                            \
          : ::tacc::contracts::fail(kind, #cond, __FILE__,     \
                                    __LINE__ __VA_OPT__(, ) __VA_ARGS__))
#else
// Type-check but never evaluate: a disabled contract cannot change behavior.
#define TACC_CONTRACT_IMPL_(kind, cond, ...) ((void)sizeof(!(cond)))
#endif

/// Precondition at a function's entry (caller broke the deal).
#define TACC_REQUIRE(...) TACC_CONTRACT_IMPL_("REQUIRE", __VA_ARGS__)
/// Postcondition at a function's exit (we broke the deal).
#define TACC_ENSURE(...) TACC_CONTRACT_IMPL_("ENSURE", __VA_ARGS__)
/// Internal consistency mid-function.
#define TACC_ASSERT(...) TACC_CONTRACT_IMPL_("ASSERT", __VA_ARGS__)
