// Wall-clock timing for solver runtime experiments.
#pragma once

#include <chrono>

namespace tacc::util {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tacc::util
