#include "util/contracts.hpp"

#include <atomic>
#include <cstdlib>

#include "util/log.hpp"

namespace tacc::contracts {

namespace {

std::atomic<FailureHandler> g_handler{&abort_handler};

}  // namespace

std::string describe(const Violation& violation) {
  std::string text = violation.kind;
  text += " violated: ";
  text += violation.condition;
  if (!violation.message.empty()) {
    text += " — ";
    text += violation.message;
  }
  text += " [";
  text += violation.file;
  text += ':';
  text += std::to_string(violation.line);
  text += ']';
  return text;
}

void abort_handler(const Violation& violation) {
  util::log_error("contract ", describe(violation));
  std::abort();
}

void throw_handler(const Violation& violation) {
  throw ContractViolation(violation);
}

FailureHandler set_failure_handler(FailureHandler handler) noexcept {
  if (handler == nullptr) handler = &abort_handler;
  return g_handler.exchange(handler);
}

FailureHandler failure_handler() noexcept { return g_handler.load(); }

void fail(const char* kind, const char* condition, const char* file, int line,
          std::string message) {
  const Violation violation{kind, condition, file, line, std::move(message)};
  failure_handler()(violation);
  // A handler that returns must not let execution continue past the broken
  // contract — the guarded code would run on state known to be corrupt.
  std::abort();
}

}  // namespace tacc::contracts
