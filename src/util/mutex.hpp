// Annotated mutex wrappers: the lockable vocabulary the Clang Thread
// Safety Analysis (util/thread_annotations.hpp) checks at compile time.
//
// tacc::Mutex is a std::mutex carrying the capability annotations; the
// scoped lockers replace std::scoped_lock/std::lock_guard/std::unique_lock
// in every concurrent subsystem so the analysis can track acquire/release
// pairs. CondVar wraps std::condition_variable_any and waits directly on a
// held Mutex, keeping guarded-field predicate checks in the caller's
// annotated scope (explicit `while (!cond) cv.wait(mu);` loops instead of
// predicate lambdas the analysis cannot see into).
//
// Runtime cost: identical to the std types (everything is an inline
// forwarder); the annotations compile to nothing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stop_token>
#include <utility>

#include "util/thread_annotations.hpp"

namespace tacc {

/// std::mutex as a TSA capability. Satisfies BasicLockable, so CondVar
/// (condition_variable_any underneath) waits on it directly.
class TACC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TACC_ACQUIRE() { mu_.lock(); }
  void unlock() TACC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TACC_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Tells the analysis this mutex is held here — for facts it cannot
  /// derive, e.g. state guarded through an owner back-pointer that aliases
  /// a mutex the caller provably locked (service::Session's fields are
  /// guarded by `shard_mutex`, a pointer to the owning Shard's mutex the
  /// lookup sites hold). Analysis-only: compiles to nothing, asserts
  /// nothing at runtime — every call site must be inside a critical
  /// section on the aliased mutex.
  void assert_held() const TACC_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// RAII lock for the full scope (std::scoped_lock replacement).
class TACC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TACC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() TACC_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII lock that can release early (std::unique_lock's one non-wait use in
/// this codebase: drop the lock before slow work / rethrow).
class TACC_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) TACC_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~ReleasableMutexLock() TACC_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  /// Unlocks now; the destructor becomes a no-op. Call at most once.
  void release() TACC_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Scoped try-lock. Branch on the object itself so the analysis narrows:
///     TryLock lock(&mu);
///     if (!lock) return;   // not acquired on this path
///     guarded_state++;     // held here
/// (The opt::Reoptimizer cluster-mutex protocol: the background thread only
/// ever try-locks, so the serving path always wins.)
class TACC_SCOPED_CAPABILITY TryLock {
 public:
  explicit TryLock(Mutex* mu) TACC_TRY_ACQUIRE(true, mu)
      : mu_(mu), held_(mu->try_lock()) {}
  ~TryLock() TACC_RELEASE() {
    if (held_) mu_->unlock();
  }

  /// True iff the constructor acquired the mutex. The analysis only
  /// understands this form (`if (lock) ...`), not a named accessor.
  explicit operator bool() const noexcept { return held_; }

  TryLock(const TryLock&) = delete;
  TryLock& operator=(const TryLock&) = delete;

 private:
  Mutex* const mu_;
  const bool held_;
};

/// Condition variable waiting on a held tacc::Mutex. No predicate
/// overloads: write the wait loop in the (annotated) caller so guarded
/// predicate reads are visible to the analysis —
///     MutexLock lock(&mu);
///     while (!cond) cv.wait(mu);
/// The stop_token overloads wake on request_stop() as well.
class CondVar {
 public:
  void wait(Mutex& mu) TACC_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      TACC_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  /// Sleeps until notified, the timeout elapses, or `stop` is requested
  /// (whichever first); returns pred() on exit. The predicate must not
  /// touch guarded state (it runs inside the unannotated std machinery) —
  /// pass a stateless lambda and re-check real conditions in the caller.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::stop_token& stop,
                const std::chrono::duration<Rep, Period>& timeout, Pred pred)
      TACC_REQUIRES(mu) {
    return cv_.wait_for(mu, stop, timeout, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tacc
