// Tiny --key=value command-line parser for bench/example binaries.
//
// Not a general CLI framework: exactly the subset the experiment harness
// needs (typed lookups with defaults, unknown-flag detection).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::util {

class Flags {
 public:
  /// Parses argv of the form: prog --n=500 --algo=qlearning --verbose
  /// A bare "--name" is recorded with value "true". Positional arguments are
  /// collected in order. Throws std::invalid_argument on malformed input.
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view default_value) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t default_value) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double default_value) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool default_value) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags present on the command line but never read via a getter; benches
  /// call this at exit to catch typos like --seeed.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace tacc::util
