// Minimal CSV emission for experiment outputs.
//
// Every bench binary writes its series to a CSV file next to the printed
// table so results can be re-plotted without re-running. Fields containing
// commas/quotes/newlines are quoted per RFC 4180.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::util {

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streams rows of mixed scalar/string cells to an std::ostream.
class CsvWriter {
 public:
  /// The writer keeps a reference to `out`; the stream must outlive it.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string_view> names) {
    write_strings(std::vector<std::string_view>(names));
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> rendered;
    rendered.reserve(sizeof...(cells));
    (rendered.push_back(render(cells)), ...);
    std::vector<std::string_view> views(rendered.begin(), rendered.end());
    write_strings(views);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  [[nodiscard]] static std::string render(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      return std::string(std::string_view(value));
    } else {
      std::ostringstream os;
      os << value;
      return os.str();
    }
  }

  void write_strings(const std::vector<std::string_view>& cells);

  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Parses one CSV line into fields (handles RFC 4180 quoting). Used by the
/// instance (de)serializer and by tests that round-trip experiment output.
[[nodiscard]] std::vector<std::string> csv_parse_line(std::string_view line);

}  // namespace tacc::util
