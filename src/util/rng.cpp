#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace tacc::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump & (std::uint64_t{1} << bit)) {
        for (std::size_t w = 0; w < 4; ++w) acc[w] ^= s_[w];
      }
      (void)next();
    }
  }
  s_ = acc;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Mix the stream label into the seed, then decorrelate with a long jump.
  std::uint64_t mix = seed_ ^ (stream * 0xD1342543DE82EF95ULL + 0x632BE59BD9B4E019ULL);
  std::uint64_t sm = mix;
  Rng child(splitmix64(sm));
  child.engine_.long_jump();
  return child;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's rejection-free-in-expectation method.
  std::uint64_t x = engine_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = engine_.next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<std::int64_t>(next_below(span));
}

std::size_t Rng::index(std::size_t size) noexcept {
  return static_cast<std::size_t>(next_below(size));
}

double Rng::uniform() noexcept {
  return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 1;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[k - 1] = total;
    }
    for (auto& c : zipf_cdf_) c /= total;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin()) + 1;
}

}  // namespace tacc::util
