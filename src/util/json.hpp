// Minimal streaming JSON emission for machine-readable artifacts.
//
// The bench harness writes one BENCH_<name>.json per gated bench so the
// perf trajectory (throughput, tail latency, gate outcomes) can be tracked
// across PRs without scraping console tables. The writer is strictly
// streaming — begin/end pairs with comma bookkeeping — because the
// documents are small and flat; there is deliberately no DOM.
//
// Formatting contract (so artifacts diff cleanly across runs):
//  - strings escaped per RFC 8259 (quote, backslash, and control characters;
//    everything else, UTF-8 included, passes through untouched);
//  - doubles use the shortest round-trip form (std::to_chars); non-finite
//    values become null — JSON has no NaN/Infinity;
//  - two-space indentation, keys in insertion order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::util {

/// Escapes `text` for inclusion inside a JSON string literal (no quotes
/// added). Control characters below 0x20 use \uXXXX unless they have a
/// short form (\n, \t, \r, \b, \f).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders a double as a JSON number token: shortest form that round-trips
/// the exact value. Non-finite values render as "null".
[[nodiscard]] std::string json_number(double value);

/// Streams one JSON document to an std::ostream. Misuse (value without a
/// pending key inside an object, unbalanced end_*) throws std::logic_error
/// so bugs surface in tests rather than as silently malformed artifacts.
class JsonWriter {
 public:
  /// The writer keeps a reference to `out`; the stream must outlive it.
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const std::string& text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once every opened container has been closed (and at least one
  /// token was written) — the document is complete.
  [[nodiscard]] bool complete() const noexcept {
    return wrote_anything_ && stack_.empty();
  }

 private:
  enum class Container : std::uint8_t { kObject, kArray };
  struct Level {
    Container container;
    std::size_t entries = 0;
    bool key_pending = false;  ///< object: key emitted, value owed
  };

  /// Comma/newline/indent bookkeeping before any value or container start.
  void begin_token(bool is_key);
  void raw(std::string_view text) { *out_ << text; }
  void indent();

  std::ostream* out_;
  std::vector<Level> stack_;
  bool wrote_anything_ = false;
};

}  // namespace tacc::util
