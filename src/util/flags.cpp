#include "util/flags.hpp"

#include <charconv>
#include <stdexcept>

namespace tacc::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("bare '--' is not a valid flag");
    }
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      flags.values_[std::string(body)] = "true";
    } else {
      const std::string_view name = body.substr(0, eq);
      if (name.empty()) {
        throw std::invalid_argument("flag with empty name: " +
                                    std::string(arg));
      }
      flags.values_[std::string(name)] = std::string(body.substr(eq + 1));
    }
  }
  return flags;
}

std::optional<std::string> Flags::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[it->first] = true;
  return it->second;
}

std::string Flags::get_string(std::string_view name,
                              std::string_view default_value) const {
  const auto value = get(name);
  return value ? *value : std::string(default_value);
}

std::int64_t Flags::get_int(std::string_view name,
                            std::int64_t default_value) const {
  const auto value = get(name);
  if (!value) return default_value;
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects an integer, got '" + *value + "'");
  }
  return out;
}

double Flags::get_double(std::string_view name, double default_value) const {
  const auto value = get(name);
  if (!value) return default_value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*value, &pos);
    if (pos != value->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects a number, got '" + *value + "'");
  }
}

bool Flags::get_bool(std::string_view name, bool default_value) const {
  const auto value = get(name);
  if (!value) return default_value;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw std::invalid_argument("flag --" + std::string(name) +
                              " expects a boolean, got '" + *value + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : values_) {
    if (!consumed_.contains(name)) names.push_back(name);
  }
  return names;
}

}  // namespace tacc::util
