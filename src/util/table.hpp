// Fixed-width console tables for paper-style result printing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tacc::util {

/// Collects string cells and prints an aligned, boxed table. Numeric
/// formatting is the caller's concern (see format_double below).
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells);

  /// Renders the table; `title` (if non-empty) becomes a caption line.
  [[nodiscard]] std::string to_string(std::string_view title = {}) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double rendering ("12.345"); NaN renders as "-".
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace tacc::util
