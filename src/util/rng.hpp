// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through tacc::util::Rng, a small
// xoshiro256** engine seeded via splitmix64. std::mt19937 is avoided because
// libstdc++/libc++ distributions are not bit-identical across platforms;
// every distribution here is implemented in-repo so that a (seed, call
// sequence) pair replays exactly anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace tacc::util {

/// splitmix64 step; used to expand a single 64-bit seed into engine state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 engine with explicit, copyable state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  [[nodiscard]] result_type next() noexcept;

  /// Advances the engine 2^128 steps; yields a stream independent from the
  /// parent for practical purposes. Used to derive per-component streams.
  void long_jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Convenience facade bundling an engine with the distributions the library
/// needs. Cheap to copy; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// A new Rng with an independent stream, labeled by `stream`. Deriving the
  /// same (seed, stream) always yields the same child.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, size); size must be > 0.
  [[nodiscard]] std::size_t index(std::size_t size) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate). rate must be > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s=0 is uniform).
  /// O(log n) per draw after an O(n) table build on first use per (n, s).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    shuffle(std::span<T>(values));
  }

  /// Uniformly chosen element; span must be non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> values) noexcept {
    return values[index(values.size())];
  }

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_;
  // Cached Zipf CDF for the last (n, s) requested; rebuilt on change.
  std::vector<double> zipf_cdf_;
  std::size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  // Spare normal from the polar method.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace tacc::util
