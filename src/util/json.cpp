#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tacc::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  if (ec != std::errc()) return "null";  // unreachable: 64 bytes suffice
  return std::string(buffer, ptr);
}

void JsonWriter::indent() {
  raw("\n");
  for (std::size_t i = 0; i < stack_.size(); ++i) raw("  ");
}

void JsonWriter::begin_token(bool is_key) {
  if (stack_.empty()) {
    if (wrote_anything_) {
      throw std::logic_error("JsonWriter: document already complete");
    }
    wrote_anything_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.container == Container::kObject) {
    if (is_key == top.key_pending) {
      throw std::logic_error(is_key
                                 ? "JsonWriter: key after key"
                                 : "JsonWriter: object member needs a key");
    }
    if (is_key) {
      if (top.entries > 0) raw(",");
      indent();
      top.key_pending = true;
    } else {
      top.key_pending = false;
      ++top.entries;
    }
  } else {
    if (is_key) {
      throw std::logic_error("JsonWriter: key inside an array");
    }
    if (top.entries > 0) raw(",");
    indent();
    ++top.entries;
  }
  wrote_anything_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  begin_token(/*is_key=*/false);
  raw("{");
  stack_.push_back({Container::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().container != Container::kObject ||
      stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) indent();
  raw("}");
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_token(/*is_key=*/false);
  raw("[");
  stack_.push_back({Container::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().container != Container::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) indent();
  raw("]");
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().container != Container::kObject) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  begin_token(/*is_key=*/true);
  raw("\"");
  raw(json_escape(name));
  raw("\": ");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_token(/*is_key=*/false);
  raw("\"");
  raw(json_escape(text));
  raw("\"");
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_token(/*is_key=*/false);
  raw(json_number(number));
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_token(/*is_key=*/false);
  raw(std::to_string(number));
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_token(/*is_key=*/false);
  raw(std::to_string(number));
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_token(/*is_key=*/false);
  raw(flag ? "true" : "false");
  if (stack_.empty()) raw("\n");
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_token(/*is_key=*/false);
  raw("null");
  if (stack_.empty()) raw("\n");
  return *this;
}

}  // namespace tacc::util
