#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes emit(): concurrent shard workers / the reoptimizer thread must
// not interleave fragments of their lines on stderr. Only the final write
// is guarded — formatting happens in the caller, unlocked.
Mutex g_emit_mutex;

[[nodiscard]] constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void emit(LogLevel level, std::string_view message) {
  const MutexLock lock(&g_emit_mutex);
  std::cerr << "[tacc:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace tacc::util
