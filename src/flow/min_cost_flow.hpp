// Min-cost max-flow via successive shortest paths with Johnson potentials.
//
// Real-valued capacities (GAP demands are real), non-negative arc costs
// (delays). Used for:
//   - the splittable-assignment lower bound (transportation relaxation of
//     GAP: optimal when devices may split traffic across servers), and
//   - the FlowRelaxRepair baseline solver.
#pragma once

#include <cstdint>
#include <vector>

namespace tacc::flow {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  /// Adds a directed arc; returns its id for flow_on(). Capacity must be
  /// >= 0 and cost >= 0 (Dijkstra-based search requires non-negative
  /// reduced costs, which holds when original costs are non-negative).
  std::size_t add_arc(std::uint32_t from, std::uint32_t to, double capacity,
                      double cost);

  struct Result {
    double flow = 0.0;         ///< units actually shipped
    double cost = 0.0;         ///< total cost of that flow
    bool reached_target = false;  ///< flow == requested amount (within eps)
  };

  /// Sends up to `max_flow` units from source to sink at minimum cost.
  /// May be called once per instance (arcs keep their final flow).
  Result solve(std::uint32_t source, std::uint32_t sink, double max_flow);

  /// Flow currently on arc `arc_id` (valid after solve()).
  [[nodiscard]] double flow_on(std::size_t arc_id) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return head_.size();
  }

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t next;   ///< next arc index in the from-node's list
    double residual;      ///< remaining capacity
    double cost;
  };

  static constexpr std::uint32_t kNoArc = static_cast<std::uint32_t>(-1);
  static constexpr double kEps = 1e-9;

  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> head_;  ///< first arc per node
  std::vector<double> potential_;
};

}  // namespace tacc::flow
