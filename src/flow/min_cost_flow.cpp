#include "flow/min_cost_flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace tacc::flow {

MinCostFlow::MinCostFlow(std::size_t node_count)
    : head_(node_count, kNoArc), potential_(node_count, 0.0) {}

std::size_t MinCostFlow::add_arc(std::uint32_t from, std::uint32_t to,
                                 double capacity, double cost) {
  if (from >= head_.size() || to >= head_.size()) {
    throw std::out_of_range("MinCostFlow::add_arc: node out of range");
  }
  if (capacity < 0.0 || cost < 0.0) {
    throw std::invalid_argument(
        "MinCostFlow::add_arc: capacity and cost must be non-negative");
  }
  const auto id = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back({to, head_[from], capacity, cost});
  head_[from] = id;
  arcs_.push_back({from, head_[to], 0.0, -cost});  // residual arc
  head_[to] = id + 1;
  return id;
}

MinCostFlow::Result MinCostFlow::solve(std::uint32_t source,
                                       std::uint32_t sink, double max_flow) {
  if (source >= head_.size() || sink >= head_.size()) {
    throw std::out_of_range("MinCostFlow::solve: node out of range");
  }
  Result result;
  const std::size_t n = head_.size();
  std::vector<double> dist(n);
  std::vector<std::uint32_t> parent_arc(n);

  while (result.flow + kEps < max_flow) {
    // Dijkstra on reduced costs.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    dist.assign(n, kInf);
    parent_arc.assign(n, kNoArc);
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0.0;
    heap.push({0.0, source});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + kEps) continue;
      for (std::uint32_t a = head_[u]; a != kNoArc; a = arcs_[a].next) {
        const Arc& arc = arcs_[a];
        if (arc.residual <= kEps) continue;
        const double reduced =
            arc.cost + potential_[u] - potential_[arc.to];
        const double candidate = dist[u] + std::max(0.0, reduced);
        if (candidate + kEps < dist[arc.to]) {
          dist[arc.to] = candidate;
          parent_arc[arc.to] = a;
          heap.push({candidate, arc.to});
        }
      }
    }
    if (parent_arc[sink] == kNoArc) break;  // no augmenting path

    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential_[v] += dist[v];
    }

    // Bottleneck along the path.
    double push = max_flow - result.flow;
    for (std::uint32_t v = sink; v != source;) {
      const Arc& arc = arcs_[parent_arc[v]];
      push = std::min(push, arc.residual);
      v = arcs_[parent_arc[v] ^ 1u].to;  // arc's tail via its twin
    }
    // Apply.
    double path_cost = 0.0;
    for (std::uint32_t v = sink; v != source;) {
      const std::uint32_t a = parent_arc[v];
      arcs_[a].residual -= push;
      arcs_[a ^ 1u].residual += push;
      path_cost += arcs_[a].cost;
      v = arcs_[a ^ 1u].to;
    }
    result.flow += push;
    result.cost += push * path_cost;
  }
  result.reached_target = result.flow + kEps >= max_flow;
  return result;
}

double MinCostFlow::flow_on(std::size_t arc_id) const {
  if (arc_id >= arcs_.size()) {
    throw std::out_of_range("MinCostFlow::flow_on: bad arc id");
  }
  // Flow on a forward arc equals the residual accumulated on its twin.
  return arcs_[arc_id ^ 1u].residual;
}

}  // namespace tacc::flow
