#include "core/experiments.hpp"

#include "util/table.hpp"

namespace tacc {

namespace {

void accumulate(AlgoStats& stats, const gap::Instance& instance,
                const solvers::SolveResult& result) {
  const gap::Evaluation ev = gap::evaluate(instance, result.assignment);
  stats.total_cost.add(ev.total_cost);
  stats.avg_delay_ms.add(ev.avg_delay_ms);
  stats.max_delay_ms.add(ev.max_delay_ms);
  stats.max_utilization.add(ev.max_utilization);
  stats.wall_ms.add(result.wall_ms);
  if (ev.feasible) ++stats.feasible_runs;
  stats.overload_violations += ev.overloaded_servers;
  ++stats.runs;
}

}  // namespace

AlgoStats run_repeated(
    const std::function<Scenario(std::uint64_t)>& make_scenario,
    Algorithm algorithm, std::size_t repeats, std::uint64_t base_seed,
    AlgorithmOptions options) {
  AlgoStats stats;
  stats.algorithm = algorithm;
  for (std::size_t r = 0; r < repeats; ++r) {
    const std::uint64_t seed = base_seed + r;
    const Scenario scenario = make_scenario(seed);
    options.apply_seed(seed * 1000 + 1);
    solvers::SolverPtr solver = make_solver(algorithm, options);
    const solvers::SolveResult result = solver->solve(scenario.instance());
    accumulate(stats, scenario.instance(), result);
  }
  return stats;
}

AlgoStats run_repeated_on_instance(const gap::Instance& instance,
                                   Algorithm algorithm, std::size_t repeats,
                                   std::uint64_t base_seed,
                                   AlgorithmOptions options) {
  AlgoStats stats;
  stats.algorithm = algorithm;
  for (std::size_t r = 0; r < repeats; ++r) {
    options.apply_seed(base_seed + r);
    solvers::SolverPtr solver = make_solver(algorithm, options);
    const solvers::SolveResult result = solver->solve(instance);
    accumulate(stats, instance, result);
  }
  return stats;
}

std::string mean_ci(const metrics::RunningStats& stats, int precision) {
  return util::format_double(stats.mean(), precision) + " ± " +
         util::format_double(metrics::ci95_half_width(stats), precision);
}

}  // namespace tacc
