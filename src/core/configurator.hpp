// ClusterConfigurator: the top-level user-facing API.
//
//   Scenario sc = Scenario::smart_city(500, 20, /*seed=*/7);
//   ClusterConfigurator cfg(sc);
//   ClusterConfiguration conf = cfg.configure(Algorithm::kQLearning);
//   auto sim = sim::simulate(sc.network(), sc.workload(),
//                            conf.assignment(), {});
#pragma once

#include "core/algorithms.hpp"
#include "core/scenario.hpp"

namespace tacc {

/// A solved configuration: which server every IoT device talks to, plus the
/// static evaluation of that choice.
class ClusterConfiguration {
 public:
  ClusterConfiguration(Algorithm algorithm, solvers::SolveResult result,
                       gap::Evaluation evaluation)
      : algorithm_(algorithm),
        result_(std::move(result)),
        evaluation_(std::move(evaluation)) {}

  [[nodiscard]] Algorithm algorithm() const noexcept { return algorithm_; }
  [[nodiscard]] std::string_view algorithm_name() const noexcept {
    return tacc::to_string(algorithm_);
  }
  [[nodiscard]] const gap::Assignment& assignment() const noexcept {
    return result_.assignment;
  }
  /// Server index chosen for `device`.
  [[nodiscard]] std::size_t server_of(std::size_t device) const {
    return static_cast<std::size_t>(result_.assignment.at(device));
  }
  [[nodiscard]] bool feasible() const noexcept { return result_.feasible; }
  [[nodiscard]] double total_cost() const noexcept {
    return result_.total_cost;
  }
  [[nodiscard]] double avg_delay_ms() const noexcept {
    return evaluation_.avg_delay_ms;
  }
  [[nodiscard]] double max_delay_ms() const noexcept {
    return evaluation_.max_delay_ms;
  }
  [[nodiscard]] double max_utilization() const noexcept {
    return evaluation_.max_utilization;
  }
  [[nodiscard]] std::size_t overloaded_servers() const noexcept {
    return evaluation_.overloaded_servers;
  }
  [[nodiscard]] double solve_wall_ms() const noexcept {
    return result_.wall_ms;
  }
  [[nodiscard]] bool proven_optimal() const noexcept {
    return result_.proven_optimal;
  }
  [[nodiscard]] const gap::Evaluation& evaluation() const noexcept {
    return evaluation_;
  }

 private:
  Algorithm algorithm_;
  solvers::SolveResult result_;
  gap::Evaluation evaluation_;
};

class ClusterConfigurator {
 public:
  /// Keeps a reference to the scenario; it must outlive the configurator.
  explicit ClusterConfigurator(const Scenario& scenario)
      : scenario_(&scenario) {}

  /// Runs `algorithm` on the scenario's topology-aware instance.
  [[nodiscard]] ClusterConfiguration configure(
      Algorithm algorithm, const AlgorithmOptions& options = {}) const;

  /// A1 ablation: solve on Euclidean costs, evaluate on true delays.
  [[nodiscard]] ClusterConfiguration configure_topology_oblivious(
      Algorithm algorithm, const AlgorithmOptions& options = {}) const;

  /// Deadline-aware configuration: solves on a deadline-penalized cost
  /// matrix (servers whose delay exceeds a device's deadline look
  /// `penalty_factor`× worse), then evaluates on the true instance. The
  /// returned evaluation's deadline_violations/meets_deadlines report the
  /// real-time outcome. Requires the scenario's instance to carry
  /// deadlines (the default builder attaches them).
  [[nodiscard]] ClusterConfiguration configure_deadline_aware(
      Algorithm algorithm, const AlgorithmOptions& options = {},
      double penalty_factor = 10.0) const;

  [[nodiscard]] const Scenario& scenario() const noexcept {
    return *scenario_;
  }

 private:
  const Scenario* scenario_;
};

}  // namespace tacc
