// ClusterConfigurator: the top-level user-facing API.
//
//   Scenario sc = Scenario::smart_city(500, 20, /*seed=*/7);
//   ClusterConfigurator cfg(sc);
//   ClusterConfiguration conf = cfg.configure({Algorithm::kQLearning});
//   auto sim = sim::simulate(sc.network(), sc.workload(),
//                            conf.assignment(), {});
//
// Portfolio mode fans several {algorithm × options} requests over a worker
// pool and returns every configuration plus the feasible winner:
//
//   std::vector<ConfigureRequest> requests = {...};
//   PortfolioOutcome out = cfg.configure_portfolio(requests, /*threads=*/8);
//   const ClusterConfiguration& best = out.winner();
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/algorithms.hpp"
#include "core/scenario.hpp"
#include "runtime/run_stats.hpp"
#include "topology/oracle/config.hpp"

namespace tacc {

/// Which cost matrix the solver optimizes. Evaluation is ALWAYS against the
/// true topology-aware instance, so non-default models measure what a
/// distorted view of the network really costs.
enum class CostModel {
  kTopologyAware,      ///< shortest-path delay costs (the paper's metric)
  kEuclidean,          ///< straight-line distance (A1 ablation)
  kDeadlinePenalized,  ///< delays past a device's deadline look worse
};

/// One solve request: everything needed to produce a ClusterConfiguration.
/// Brace-constructible from any prefix: `{Algorithm::kQLearning}`,
/// `{Algorithm::kQLearning, options}`, `{alg, options, CostModel::kEuclidean}`.
struct ConfigureRequest {
  ConfigureRequest() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): an Algorithm IS a request.
  ConfigureRequest(Algorithm algorithm_, AlgorithmOptions options_ = {},
                   CostModel cost_model_ = CostModel::kTopologyAware,
                   double penalty_factor_ = 10.0,
                   topo::oracle::OracleConfig oracle_ = {})
      : algorithm(algorithm_),
        options(std::move(options_)),
        cost_model(cost_model_),
        penalty_factor(penalty_factor_),
        oracle(oracle_) {}

  Algorithm algorithm = Algorithm::kQLearning;
  AlgorithmOptions options;
  CostModel cost_model = CostModel::kTopologyAware;
  /// Inflation applied to deadline-violating delays when cost_model is
  /// kDeadlinePenalized (must exceed 1; ignored otherwise).
  double penalty_factor = 10.0;
  /// Delay-oracle backend a DynamicCluster built from this request serves
  /// its delay rows through (see topology/oracle/config.hpp). The one-shot
  /// solve is unaffected — it prices against the scenario's exact instance
  /// matrix either way; the default exact backend keeps the live cluster
  /// bit-identical to pre-oracle behavior.
  topo::oracle::OracleConfig oracle;
};

/// A solved configuration: which server every IoT device talks to, plus the
/// static evaluation of that choice.
class ClusterConfiguration {
 public:
  ClusterConfiguration(Algorithm algorithm, solvers::SolveResult result,
                       gap::Evaluation evaluation,
                       std::uint64_t scenario_fingerprint = 0)
      : algorithm_(algorithm),
        result_(std::move(result)),
        evaluation_(std::move(evaluation)),
        scenario_fingerprint_(scenario_fingerprint) {}

  [[nodiscard]] Algorithm algorithm() const noexcept { return algorithm_; }
  [[nodiscard]] std::string_view algorithm_name() const noexcept {
    return tacc::to_string(algorithm_);
  }
  [[nodiscard]] const gap::Assignment& assignment() const noexcept {
    return result_.assignment;
  }
  /// Server index chosen for `device`.
  [[nodiscard]] std::size_t server_of(std::size_t device) const {
    return static_cast<std::size_t>(result_.assignment.at(device));
  }
  [[nodiscard]] bool feasible() const noexcept { return result_.feasible; }
  [[nodiscard]] double total_cost() const noexcept {
    return result_.total_cost;
  }
  [[nodiscard]] double avg_delay_ms() const noexcept {
    return evaluation_.avg_delay_ms;
  }
  [[nodiscard]] double max_delay_ms() const noexcept {
    return evaluation_.max_delay_ms;
  }
  [[nodiscard]] double max_utilization() const noexcept {
    return evaluation_.max_utilization;
  }
  [[nodiscard]] std::size_t overloaded_servers() const noexcept {
    return evaluation_.overloaded_servers;
  }
  [[nodiscard]] double solve_wall_ms() const noexcept {
    return result_.wall_ms;
  }
  [[nodiscard]] bool proven_optimal() const noexcept {
    return result_.proven_optimal;
  }
  [[nodiscard]] const gap::Evaluation& evaluation() const noexcept {
    return evaluation_;
  }
  /// Fingerprint of the Scenario this configuration was solved against
  /// (Scenario::fingerprint()); 0 when built outside a configurator. Compare
  /// against a scenario's fingerprint before re-evaluating or simulating a
  /// stored configuration to detect scenario mismatches.
  [[nodiscard]] std::uint64_t scenario_fingerprint() const noexcept {
    return scenario_fingerprint_;
  }

 private:
  Algorithm algorithm_;
  solvers::SolveResult result_;
  gap::Evaluation evaluation_;
  std::uint64_t scenario_fingerprint_ = 0;
};

/// Result of a portfolio fan-out: every requested configuration (in request
/// order) plus the index of the winner — the cheapest feasible
/// configuration, falling back to the cheapest overall when none is
/// feasible; ties break toward the lower request index, so the outcome is
/// deterministic regardless of thread count.
struct PortfolioOutcome {
  static constexpr std::size_t kNoWinner = static_cast<std::size_t>(-1);

  std::vector<ClusterConfiguration> configurations;
  std::size_t winner_index = kNoWinner;  ///< kNoWinner iff no requests
  runtime::RunStats stats;

  [[nodiscard]] bool has_winner() const noexcept {
    return winner_index != kNoWinner;
  }
  [[nodiscard]] const ClusterConfiguration& winner() const {
    if (!has_winner()) {
      throw std::logic_error("PortfolioOutcome::winner: empty portfolio");
    }
    return configurations[winner_index];
  }
};

/// Thin façade over a Scenario that turns ConfigureRequests into
/// ClusterConfigurations.
///
/// Ownership: the configurator stores a pointer to the scenario and NEVER
/// copies it — the Scenario must stay alive (and unmoved) for the lifetime
/// of the configurator. The constructor takes a reference precisely so a
/// null can't sneak in; binding a temporary
/// (`ClusterConfigurator(Scenario::smart_city(...))`) is the classic
/// footgun: the temporary dies at the end of the statement and every later
/// configure() call is a use-after-free. Hold the Scenario in a named
/// variable that outlives the configurator.
class ClusterConfigurator {
 public:
  explicit ClusterConfigurator(const Scenario& scenario)
      : scenario_(&scenario) {}

  /// The single entry point: solves on the instance selected by
  /// `request.cost_model`, evaluates against the true topology-aware
  /// instance, and stamps the scenario fingerprint.
  [[nodiscard]] ClusterConfiguration configure(
      const ConfigureRequest& request) const;

  /// Fans `requests` out over a worker pool (threads = 0 picks the hardware
  /// concurrency) and returns every configuration plus the feasible winner.
  /// Results are bit-identical for any thread count. Defined in the
  /// `tacc_runtime` library — link it to use portfolio mode.
  [[nodiscard]] PortfolioOutcome configure_portfolio(
      std::span<const ConfigureRequest> requests,
      std::size_t threads = 0) const;

  [[nodiscard]] const Scenario& scenario() const noexcept {
    return *scenario_;
  }

 private:
  const Scenario* scenario_;  // non-null by construction; never owned
};

}  // namespace tacc
