// Experiment harness helpers shared by the bench/ binaries: repeated runs
// across seeds with aggregated statistics, and CSV/table emission glue.
#pragma once

#include <functional>
#include <string>

#include "core/configurator.hpp"
#include "metrics/stats.hpp"

namespace tacc {

/// Aggregates of repeated solver runs on (re)generated scenarios.
struct AlgoStats {
  Algorithm algorithm = Algorithm::kRandom;
  metrics::RunningStats total_cost;
  metrics::RunningStats avg_delay_ms;
  metrics::RunningStats max_delay_ms;
  metrics::RunningStats max_utilization;
  metrics::RunningStats wall_ms;
  std::size_t feasible_runs = 0;
  std::size_t overload_violations = 0;  ///< Σ overloaded servers across runs
  std::size_t runs = 0;

  [[nodiscard]] double feasible_fraction() const noexcept {
    return runs ? static_cast<double>(feasible_runs) /
                      static_cast<double>(runs)
                : 0.0;
  }
};

/// Runs `algorithm` `repeats` times on scenarios produced by
/// `make_scenario(seed)` with seeds base_seed, base_seed+1, …; the solver
/// seed follows the scenario seed so runs are fully reproducible.
[[nodiscard]] AlgoStats run_repeated(
    const std::function<Scenario(std::uint64_t)>& make_scenario,
    Algorithm algorithm, std::size_t repeats, std::uint64_t base_seed,
    AlgorithmOptions options = {});

/// Same but on a fixed instance (no scenario regeneration): only the solver
/// seed varies.
[[nodiscard]] AlgoStats run_repeated_on_instance(
    const gap::Instance& instance, Algorithm algorithm, std::size_t repeats,
    std::uint64_t base_seed, AlgorithmOptions options = {});

/// "12.34 ± 0.56" rendering of a stats mean with 95% CI.
[[nodiscard]] std::string mean_ci(const metrics::RunningStats& stats,
                                  int precision = 2);

}  // namespace tacc
