#include "core/configurator.hpp"

#include "util/contracts.hpp"

namespace tacc {

ClusterConfiguration ClusterConfigurator::configure(
    const ConfigureRequest& request) const {
  TACC_ASSERT(scenario_ != nullptr, "ClusterConfigurator: scenario outlived");
  const gap::Instance& truth = scenario_->instance();
  solvers::SolverPtr solver = make_solver(request.algorithm, request.options);

  solvers::SolveResult result;
  switch (request.cost_model) {
    case CostModel::kTopologyAware:
      result = solver->solve(truth);
      break;
    case CostModel::kEuclidean:
      result = solver->solve(scenario_->oblivious_instance());
      break;
    case CostModel::kDeadlinePenalized:
      result = solver->solve(truth.with_deadline_penalty(
          request.penalty_factor));
      break;
  }

  // Whatever matrix the solver saw, report what the decision *really* costs
  // on the topology.
  gap::Evaluation evaluation = gap::evaluate(truth, result.assignment);
  result.total_cost = evaluation.total_cost;
  result.feasible = evaluation.feasible;
  return {request.algorithm, std::move(result), std::move(evaluation),
          scenario_->fingerprint()};
}

// Deprecated wrappers forward to the request-based entry point; suppress the
// self-referential deprecation warnings their definitions would emit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

ClusterConfiguration ClusterConfigurator::configure_topology_oblivious(
    Algorithm algorithm, const AlgorithmOptions& options) const {
  return configure(
      ConfigureRequest{algorithm, options, CostModel::kEuclidean});
}

ClusterConfiguration ClusterConfigurator::configure_deadline_aware(
    Algorithm algorithm, const AlgorithmOptions& options,
    double penalty_factor) const {
  return configure(ConfigureRequest{algorithm, options,
                                    CostModel::kDeadlinePenalized,
                                    penalty_factor});
}

#pragma GCC diagnostic pop

}  // namespace tacc
