#include "core/configurator.hpp"

namespace tacc {

ClusterConfiguration ClusterConfigurator::configure(
    Algorithm algorithm, const AlgorithmOptions& options) const {
  const gap::Instance& instance = scenario_->instance();
  solvers::SolverPtr solver = make_solver(algorithm, options);
  solvers::SolveResult result = solver->solve(instance);
  gap::Evaluation evaluation = gap::evaluate(instance, result.assignment);
  return {algorithm, std::move(result), std::move(evaluation)};
}

ClusterConfiguration ClusterConfigurator::configure_topology_oblivious(
    Algorithm algorithm, const AlgorithmOptions& options) const {
  // Solve against straight-line costs…
  solvers::SolverPtr solver = make_solver(algorithm, options);
  solvers::SolveResult result =
      solver->solve(scenario_->oblivious_instance());
  // …but report what that decision *really* costs on the topology.
  const gap::Instance& truth = scenario_->instance();
  gap::Evaluation evaluation = gap::evaluate(truth, result.assignment);
  result.total_cost = evaluation.total_cost;
  result.feasible = evaluation.feasible;
  return {algorithm, std::move(result), std::move(evaluation)};
}

ClusterConfiguration ClusterConfigurator::configure_deadline_aware(
    Algorithm algorithm, const AlgorithmOptions& options,
    double penalty_factor) const {
  const gap::Instance& truth = scenario_->instance();
  const gap::Instance penalized = truth.with_deadline_penalty(penalty_factor);
  solvers::SolverPtr solver = make_solver(algorithm, options);
  solvers::SolveResult result = solver->solve(penalized);
  gap::Evaluation evaluation = gap::evaluate(truth, result.assignment);
  result.total_cost = evaluation.total_cost;
  result.feasible = evaluation.feasible;
  return {algorithm, std::move(result), std::move(evaluation)};
}

}  // namespace tacc
