#include "core/configurator.hpp"

#include "util/contracts.hpp"

namespace tacc {

ClusterConfiguration ClusterConfigurator::configure(
    const ConfigureRequest& request) const {
  TACC_ASSERT(scenario_ != nullptr, "ClusterConfigurator: scenario outlived");
  const gap::Instance& truth = scenario_->instance();
  solvers::SolverPtr solver = make_solver(request.algorithm, request.options);

  solvers::SolveResult result;
  switch (request.cost_model) {
    case CostModel::kTopologyAware:
      result = solver->solve(truth);
      break;
    case CostModel::kEuclidean:
      result = solver->solve(scenario_->oblivious_instance());
      break;
    case CostModel::kDeadlinePenalized:
      result = solver->solve(truth.with_deadline_penalty(
          request.penalty_factor));
      break;
  }

  // Whatever matrix the solver saw, report what the decision *really* costs
  // on the topology.
  gap::Evaluation evaluation = gap::evaluate(truth, result.assignment);
  result.total_cost = evaluation.total_cost;
  result.feasible = evaluation.feasible;
  return {request.algorithm, std::move(result), std::move(evaluation),
          scenario_->fingerprint()};
}

}  // namespace tacc
