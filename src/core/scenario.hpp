// Scenario: one self-contained experimental world — infrastructure topology,
// workload, deployed network, and the derived GAP instance.
#pragma once

#include <memory>
#include <optional>

#include "gap/builder.hpp"
#include "gap/instance.hpp"
#include "topology/generators.hpp"
#include "topology/network.hpp"
#include "workload/generator.hpp"

namespace tacc {

struct ScenarioParams {
  topo::TopologyFamily family = topo::TopologyFamily::kWaxman;
  topo::GeneratorParams topology;
  topo::LinkDelayModel delay_model;
  topo::AttachParams attach;
  workload::WorkloadParams workload;
  std::uint64_t seed = 42;
  /// Worker threads for the delay-matrix build (per-source Dijkstra
  /// fan-out); 1 = serial, 0 = hardware concurrency. The generated scenario
  /// is bit-identical for any value.
  std::size_t build_threads = 1;
};

/// Immutable after construction; the instance and its topology-oblivious
/// twin are built eagerly so accessors are cheap and const.
class Scenario {
 public:
  /// Generates everything deterministically from params.seed.
  [[nodiscard]] static Scenario generate(const ScenarioParams& params);

  // ---- Presets (domain examples; see examples/) --------------------------
  /// Metropolitan smart city: Waxman backbone, clustered devices around
  /// points of interest, moderate load.
  [[nodiscard]] static Scenario smart_city(std::size_t iot_count,
                                           std::size_t edge_count,
                                           std::uint64_t seed);
  /// Factory floor: dense geometric mesh over a small area, uniform device
  /// scatter, tight deadlines, high load factor.
  [[nodiscard]] static Scenario factory(std::size_t iot_count,
                                        std::size_t edge_count,
                                        std::uint64_t seed);
  /// Campus: hierarchical aggregation tree (cloudlet per building tier).
  [[nodiscard]] static Scenario campus(std::size_t iot_count,
                                       std::size_t edge_count,
                                       std::uint64_t seed);

  [[nodiscard]] const ScenarioParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const topo::NetworkTopology& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const workload::Workload& workload() const noexcept {
    return workload_;
  }
  /// Topology-aware instance (shortest-path delay costs).
  [[nodiscard]] const gap::Instance& instance() const noexcept {
    return *instance_;
  }
  /// Euclidean-cost twin for the A1 ablation. Built eagerly in generate()
  /// (it needs no shortest paths, so it is cheap) — accessors stay const and
  /// data-race-free under concurrent portfolio solves.
  [[nodiscard]] const gap::Instance& oblivious_instance() const noexcept {
    return *oblivious_instance_;
  }

  /// Deterministic 64-bit digest of the scenario's identity: generation
  /// parameters plus sampled instance data. Two scenarios generated from the
  /// same params share a fingerprint; any change to seed, sizes, family, or
  /// the derived instance changes it (with overwhelming probability). Stamped
  /// onto every ClusterConfiguration so mismatched evaluations are
  /// detectable.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  Scenario() = default;

  ScenarioParams params_;
  topo::NetworkTopology network_;
  workload::Workload workload_;
  std::shared_ptr<const gap::Instance> instance_;
  std::shared_ptr<const gap::Instance> oblivious_instance_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace tacc
